"""Decision caching: the §3.1 / §7 controller-scalability lever, measured.

The paper: "to avoid overloading the controller, each client could cache
the relaying decisions and refresh periodically".  This bench sweeps the
cache TTL and reports the trade between controller queries saved and the
staleness cost in PNR.
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.core.registry import build_policy
from repro.simulation.replay import replay

METRIC = "rtt_ms"
TTLS_H = (0.5, 2.0, 12.0)


@pytest.mark.benchmark(group="ext-cache")
def test_ext_decision_cache(benchmark, suite, bench_world, bench_trace, bench_plan):
    def experiment():
        base = pnr_breakdown(suite.evaluate(suite.results(METRIC)["default"]))
        table = {
            "no cache": {
                "pnr": pnr_breakdown(suite.evaluate(suite.results(METRIC)["via"]))[METRIC],
                "queries": 1.0,
            }
        }
        for ttl in TTLS_H:
            cached = build_policy(
                "cached-via", bench_world, metric=METRIC, seed=42, ttl_hours=ttl
            )
            result = replay(bench_world, bench_trace, cached, seed=99)
            table[f"TTL {ttl:g}h"] = {
                "pnr": pnr_breakdown(bench_plan.evaluate(result))[METRIC],
                "queries": cached.query_fraction,
            }
        return base, table

    base, table = once(benchmark, experiment)
    rows = [
        [name, f"{d['queries']:.1%}", f"{d['pnr']:.3f}",
         f"{relative_improvement(base[METRIC], d['pnr']):.0f}%"]
        for name, d in table.items()
    ]
    emit(
        "ext_decision_cache",
        format_table(
            ["cache", "controller queries/call", f"PNR({METRIC})", "improvement"],
            rows,
            title="§3.1/§7 extension: client-side decision caching",
        ),
    )

    no_cache = table["no cache"]["pnr"]
    # Short TTLs slash controller load with little quality cost...
    short = table["TTL 0.5h"]
    assert short["queries"] < 0.7
    assert short["pnr"] <= no_cache + 0.02
    # ...while very long TTLs trade more quality for fewer queries.
    long = table["TTL 12h"]
    assert long["queries"] < short["queries"]
    assert long["pnr"] >= short["pnr"] - 0.01
