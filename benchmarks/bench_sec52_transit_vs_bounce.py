"""Section 5.2 (text): transit vs bouncing relays, and VIA's relay mix.

Paper: allowing transit relays on top of bouncing lowers PNR (50% lower on
pairs that used both); VIA's mix comes out ~54% bounce / 38% transit / 8%
direct.  We replay VIA with and without transit options and compare, and
report the relay mix of the full policy.
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.core.baselines import make_via
from repro.netmodel import without_transit
from repro.simulation import make_inter_relay_lookup
from repro.simulation.replay import replay

METRIC = "rtt_ms"


@pytest.mark.benchmark(group="sec52")
def test_sec52_transit_vs_bounce(benchmark, suite, bench_world, bench_trace, bench_plan):
    def experiment():
        full = suite.results(METRIC)
        bounce_world = without_transit(bench_world)
        bounce_policy = make_via(
            METRIC, inter_relay=make_inter_relay_lookup(bench_world), seed=42
        )
        bounce_result = replay(bounce_world, bench_trace, bounce_policy, seed=99)
        return {
            "base": pnr_breakdown(suite.evaluate(full["default"])),
            "with_transit": pnr_breakdown(suite.evaluate(full["via"])),
            "bounce_only": pnr_breakdown(bench_plan.evaluate(bounce_result)),
            "mix": full["via"].option_mix(),
        }

    data = once(benchmark, experiment)
    base = data["base"][METRIC]
    rows = [
        ["bounce + transit", f"{data['with_transit'][METRIC]:.3f}",
         f"{relative_improvement(base, data['with_transit'][METRIC]):.0f}%"],
        ["bounce only", f"{data['bounce_only'][METRIC]:.3f}",
         f"{relative_improvement(base, data['bounce_only'][METRIC]):.0f}%"],
    ]
    mix = data["mix"]
    mix_rows = [[kind, f"{share:.1%}"] for kind, share in sorted(mix.items())]
    emit(
        "sec52_transit_vs_bounce",
        format_table(["options", "PNR(rtt)", "improvement"], rows,
                     title=f"Section 5.2: transit vs bounce (default PNR {base:.3f})")
        + "\n\n"
        + format_table(["option kind", "share of VIA calls"], mix_rows,
                       title="VIA relay mix (paper: ~54% bounce / 38% transit / 8% direct)"),
    )

    # Transit availability must help (paper: substantially lower PNR).
    assert data["with_transit"][METRIC] <= data["bounce_only"][METRIC] + 0.005
    # VIA relays the overwhelming majority of calls, split across kinds.
    assert mix.get("direct", 0.0) < 0.45
    assert mix.get("bounce", 0.0) > 0.10
    assert mix.get("transit", 0.0) > 0.10
