"""Per-relay load caps: the §4.6 "per-relay limits" budget variant.

Uncapped VIA concentrates traffic on the few most useful relays
(Figure 17c's skew).  A per-relay cap spreads load across the fleet;
this bench measures how much balancing costs in PNR.
"""

from __future__ import annotations

import numpy as np
import pytest

from _util import emit, once
from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.core.registry import build_policy
from repro.simulation.replay import replay

METRIC = "rtt_ms"
CAPS = (0.05, 0.15)


@pytest.mark.benchmark(group="ext-load-cap")
def test_ext_per_relay_load_cap(benchmark, suite, bench_world, bench_trace, bench_plan):
    def experiment():
        base = pnr_breakdown(suite.evaluate(suite.results(METRIC)["default"]))
        table = {}

        def max_load(result):
            counts: dict[int, int] = {}
            for outcome in result.outcomes:
                for rid in outcome.option.relay_ids():
                    counts[rid] = counts.get(rid, 0) + 1
            return max(counts.values()) / max(1, len(result.outcomes))

        uncapped = suite.results(METRIC)["via"]
        table["uncapped"] = {
            "pnr": pnr_breakdown(suite.evaluate(uncapped))[METRIC],
            "max_load": max_load(uncapped),
        }
        for cap in CAPS:
            policy = build_policy(
                "via", bench_world, metric=METRIC, seed=42, per_relay_cap=cap
            )
            result = replay(bench_world, bench_trace, policy, seed=99)
            table[f"cap {cap:.0%}"] = {
                "pnr": pnr_breakdown(bench_plan.evaluate(result))[METRIC],
                "max_load": max_load(result),
            }
        return base, table

    base, table = once(benchmark, experiment)
    rows = [
        [name, f"{d['max_load']:.1%}", f"{d['pnr']:.3f}",
         f"{relative_improvement(base[METRIC], d['pnr']):.0f}%"]
        for name, d in table.items()
    ]
    emit(
        "ext_relay_load_cap",
        format_table(
            ["variant", "busiest relay share", f"PNR({METRIC})", "improvement"],
            rows,
            title="§4.6 extension: per-relay load caps",
        ),
    )

    # The cap actually flattens the hottest relay...
    assert table["cap 5%"]["max_load"] < table["uncapped"]["max_load"]
    assert table["cap 5%"]["max_load"] <= 0.12  # cap + sliding-window slack
    # ...while retaining most of the improvement.
    uncapped_impr = relative_improvement(base[METRIC], table["uncapped"]["pnr"])
    capped_impr = relative_improvement(base[METRIC], table["cap 15%"]["pnr"])
    assert capped_impr >= 0.6 * uncapped_impr
