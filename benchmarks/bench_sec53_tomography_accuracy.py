"""Section 5.3: prediction accuracy and the case for top-k + exploration.

Paper: tomography-based predictions land within 20% of actual performance
for 71% of calls, but are off by >=50% for 14% -- which is why pure
prediction (Strawman I) fails.  And while the predicted-best option is the
true best only ~29% of the time (k=1), the true best falls inside the
dynamic top-k with high probability, which is what the bandit exploits.
"""

from __future__ import annotations

import numpy as np
import pytest

from _util import emit, once
from conftest import BENCH_DAYS

from repro.analysis import format_table
from repro.core.history import CallHistory
from repro.core.predictor import Predictor
from repro.core.tomography import TomographyModel
from repro.core.topk import dynamic_top_k, fixed_top_k
from repro.simulation import make_inter_relay_lookup

METRIC_IDX = 0  # rtt
HISTORY_DAY = BENCH_DAYS // 2
TARGET_DAY = HISTORY_DAY + 1
#: Mean samples per (pair, option) in the window.  Real call history is
#: *skewed* (§4.2): most options have no samples at all and rely on
#: tomography, a few favourites have many.  Poisson(1.0) reproduces that:
#: ~37% of options get zero direct samples.
MEAN_SAMPLES_PER_OPTION = 1.0


@pytest.mark.benchmark(group="sec53")
def test_sec53_prediction_accuracy_and_topk(benchmark, bench_world, bench_plan):
    def experiment():
        world = bench_world
        rng = np.random.default_rng(1234)
        pairs = sorted(bench_plan.dense)
        history = CallHistory(window_hours=24.0)
        for a, b in pairs:
            for option in world.options_for_pair(a, b):
                n_samples = int(rng.poisson(MEAN_SAMPLES_PER_OPTION))
                for _ in range(n_samples):
                    sample = world.sample_call(
                        a, b, option, HISTORY_DAY * 24.0 + rng.uniform(0, 24), rng
                    )
                    history.add((a, b), option, HISTORY_DAY * 24.0 + 1.0, sample)
        tomography = TomographyModel.fit(
            (
                ((key[0][0], key[0][1]), key[1], stat)
                for key, stat in history.window_items(HISTORY_DAY)
            ),
            make_inter_relay_lookup(world),
        )
        predictor = Predictor(history, HISTORY_DAY, tomography=tomography)

        errors = []
        argmin_hits = []
        dynamic_hits = []
        fixed3_hits = []
        k_sizes = []
        for a, b in pairs:
            options = world.options_for_pair(a, b)
            predictions = predictor.predict_all((a, b), options)
            if len(predictions) < 3:
                continue
            true_costs = {
                o: world.true_mean(a, b, o, TARGET_DAY).rtt_ms for o in options
            }
            for option, prediction in predictions.items():
                truth = true_costs[option]
                errors.append(abs(prediction.value(METRIC_IDX) - truth) / truth)
            best = min(true_costs, key=true_costs.get)
            argmin = min(predictions, key=lambda o: predictions[o].value(METRIC_IDX))
            topk = dynamic_top_k(predictions, METRIC_IDX, max_k=8)
            top3 = fixed_top_k(predictions, METRIC_IDX, 3)
            argmin_hits.append(argmin == best)
            dynamic_hits.append(best in topk)
            fixed3_hits.append(best in top3)
            k_sizes.append(len(topk))
        return {
            "within20": float(np.mean(np.asarray(errors) <= 0.2)),
            "over50": float(np.mean(np.asarray(errors) >= 0.5)),
            "argmin": float(np.mean(argmin_hits)),
            "top3": float(np.mean(fixed3_hits)),
            "dynamic": float(np.mean(dynamic_hits)),
            "avg_k": float(np.mean(k_sizes)),
            "n_predictions": len(errors),
        }

    stats = once(benchmark, experiment)
    emit(
        "sec53_tomography_accuracy",
        format_table(
            ["statistic", "value", "paper"],
            [
                ["predictions within 20% of actual", f"{stats['within20']:.0%}", "71%"],
                ["predictions off by >= 50%", f"{stats['over50']:.0%}", "14%"],
                ["P(predicted best == true best), k=1", f"{stats['argmin']:.0%}", "29%"],
                ["P(true best in fixed top-3)", f"{stats['top3']:.0%}", "60-80%"],
                ["P(true best in dynamic top-k)", f"{stats['dynamic']:.0%}", ">90%"],
                ["mean dynamic k", f"{stats['avg_k']:.1f}", "-"],
                ["predictions evaluated", str(stats["n_predictions"]), "-"],
            ],
            title="Section 5.3: prediction accuracy and top-k coverage",
        ),
    )

    assert stats["n_predictions"] > 300
    # Prediction is useful but imperfect (the paper's premise).
    assert 0.35 <= stats["within20"] <= 0.95
    assert stats["over50"] >= 0.03
    # k=1 prediction is a poor selector...
    assert stats["argmin"] <= 0.65
    # ...but coverage improves with k, and the dynamic top-k does best.
    assert stats["top3"] >= stats["argmin"]
    assert stats["dynamic"] >= stats["top3"] - 0.02
    assert stats["dynamic"] >= 0.6
