"""Session-scoped world, trace and replay cache shared by every bench.

The expensive artifacts -- the synthetic world, the 50k-call trace, and
the replays of the standard policy suite per metric -- are built once per
pytest session and reused by all table/figure benches.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.netmodel import TopologyConfig, WorldConfig, build_world
from repro.simulation import ExperimentPlan, standard_policies
from repro.simulation.replay import ReplayResult
from repro.telephony.quality import QualityModel
from repro.workload import WorkloadConfig, generate_trace

BENCH_DAYS = 25
BENCH_CALLS = 60_000
BENCH_PAIRS = 450
#: §5.1-style density filter: pairs averaging >= 10 calls/day over the
#: trace (the paper keeps pairs with >= 10 calls on >= 5 options per window).
BENCH_MIN_PAIR_CALLS = 10 * BENCH_DAYS
WARMUP_DAYS = 2


@pytest.fixture(scope="session")
def bench_world():
    return build_world(
        WorldConfig(
            topology=TopologyConfig(n_countries=30, n_relays=14, seed=20160822),
            n_days=BENCH_DAYS,
            seed=7,
        )
    )


@pytest.fixture(scope="session")
def bench_trace(bench_world):
    return generate_trace(
        bench_world.topology,
        WorkloadConfig(n_calls=BENCH_CALLS, n_pairs=BENCH_PAIRS, seed=2016),
        n_days=BENCH_DAYS,
    )


@pytest.fixture(scope="session")
def bench_plan(bench_world, bench_trace):
    return ExperimentPlan(
        world=bench_world,
        trace=bench_trace,
        warmup_days=WARMUP_DAYS,
        min_pair_calls=BENCH_MIN_PAIR_CALLS,
    )


class SuiteCache:
    """Lazy per-metric replays of the standard §5.2 policy suite."""

    def __init__(self, plan: ExperimentPlan) -> None:
        self.plan = plan
        self._cache: dict[str, dict[str, ReplayResult]] = {}

    def results(self, metric: str) -> dict[str, ReplayResult]:
        if metric not in self._cache:
            policies = standard_policies(self.plan.world, metric, seed=42)
            # Ratings are cheap and only the rtt suite needs them (Fig 1).
            quality = QualityModel(rating_fraction=1.0) if metric == "rtt_ms" else None
            self._cache[metric] = self.plan.run(policies, seed=99, quality=quality)
        return self._cache[metric]

    def default_outcomes(self):
        """Evaluation-slice default-path outcomes (with ratings)."""
        return self.plan.evaluate(self.results("rtt_ms")["default"])

    def all_default_outcomes(self):
        """Unfiltered default-path outcomes (population studies, Fig 1-6)."""
        return self.results("rtt_ms")["default"].outcomes

    def evaluate(self, result: ReplayResult):
        return self.plan.evaluate(result)


@pytest.fixture(scope="session")
def suite(bench_plan):
    return SuiteCache(bench_plan)
