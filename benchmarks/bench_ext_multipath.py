"""Multipath relaying under relay outages: path pairs vs single-path VIA.

The multipath literature (see ``PAPERS.md``) argues that under volatile
loss a call is better served by *two* concurrent overlay paths -- either
duplicating the stream (FEC-style redundancy: the receiver keeps the
best copy) or splitting it across both.  This bench builds an
outage-heavy world (a rotating relay outage for a third of every day)
and compares, through one ``run_grid`` over registry-name specs:

* ``via``             -- the paper's single-path prediction + bandit,
* ``multipath-ucb``   -- UCB1 over duplicated path pairs,
* ``multipath-random``-- uniform-random path pairs (exploration floor),
* ``default``         -- the BGP default path.

Scored on mean RTT of the delivered stream, the outage-window
degradation ratio, and dead/degraded assignment counts.  Duplication
spends 2x relay bandwidth -- the honest cost of its outage immunity
(``docs/policies.md`` discusses the trade-off).  Recorded as the
``multipath`` section of ``BENCH_core.json`` under
``REPRO_BENCH_RECORD=1``.
"""

from __future__ import annotations

import numpy as np
import pytest

from _util import emit, once, record_bench_json
from repro.analysis import format_table
from repro.netmodel import TopologyConfig, WorldConfig, build_world
from repro.netmodel.world import RelayOutage
from repro.simulation import PolicySpec, ReplayTask, run_grid
from repro.workload import WorkloadConfig, generate_trace

METRIC = "rtt_ms"
DAYS = 10
CALLS = 12_000
PAIRS = 90
N_RELAYS = 6
WORLD_SEED = 2016
TRACE_SEED = 424
REPLAY_SEED = 99
#: Hours of each day the rotating outage is active (8 h = a third).
OUTAGE_START_H = 8.0
OUTAGE_END_H = 16.0


def outage_heavy_world():
    """A seeded world where some relay is down a third of every day."""
    world = build_world(
        WorldConfig(
            topology=TopologyConfig(n_countries=12, n_relays=N_RELAYS, seed=5),
            n_days=DAYS,
            seed=WORLD_SEED,
        )
    )
    for day in range(DAYS):
        world.add_outage(
            RelayOutage(
                relay_id=day % N_RELAYS,
                start_hours=day * 24.0 + OUTAGE_START_H,
                end_hours=day * 24.0 + OUTAGE_END_H,
            )
        )
    return world


@pytest.mark.benchmark(group="ext-multipath")
def test_ext_multipath_outage(benchmark):
    def experiment():
        world = outage_heavy_world()
        trace = generate_trace(
            world.topology,
            WorkloadConfig(n_calls=CALLS, n_pairs=PAIRS, seed=TRACE_SEED),
            n_days=DAYS,
        )
        specs = {
            "default": PolicySpec.default(),
            "via": PolicySpec.via(METRIC, seed=42),
            "multipath-ucb": PolicySpec.multipath(METRIC, seed=42),
            "multipath-random": PolicySpec(kind="multipath-random", seed=42),
        }
        tasks = [
            ReplayTask(policy=spec, seed=REPLAY_SEED, label=name)
            for name, spec in specs.items()
        ]
        results = {
            r.task.label: r.result
            for r in run_grid(tasks, world=world, trace=trace)
        }
        table = {}
        for name, result in results.items():
            degradation = result.outage_degradation(METRIC) or {}
            table[name] = {
                "mean_rtt_ms": float(
                    np.mean([o.metrics.rtt_ms for o in result.outcomes])
                ),
                "rtt_during_outage": degradation.get("during"),
                "rtt_outside_outage": degradation.get("outside"),
                "outage_ratio": degradation.get("ratio"),
                "n_dead": result.n_dead_assignments,
                "n_degraded": result.n_degraded_assignments,
            }
        return table

    table = once(benchmark, experiment)
    # The headline claim this bench exists to pin: on an outage-heavy
    # world the duplicated-path bandit delivers a better stream than
    # single-path VIA, both overall and inside outage windows, and never
    # commits a call to an all-dead path set.
    assert table["multipath-ucb"]["mean_rtt_ms"] < table["via"]["mean_rtt_ms"], (
        "bandit-over-paths should beat single-path top-k on mean RTT here"
    )
    assert (
        table["multipath-ucb"]["rtt_during_outage"]
        < table["via"]["rtt_during_outage"]
    ), "duplication should beat single-path inside outage windows"
    rows = [
        [
            name,
            f"{d['mean_rtt_ms']:.1f}",
            f"{d['rtt_during_outage']:.1f}" if d["rtt_during_outage"] else "-",
            f"{d['outage_ratio']:.2f}" if d["outage_ratio"] else "-",
            str(d["n_dead"]),
            str(d["n_degraded"]),
        ]
        for name, d in table.items()
    ]
    emit(
        "ext_multipath",
        format_table(
            ["strategy", "mean RTT", "RTT in outage", "outage ratio",
             "dead", "degraded"],
            rows,
            title=f"Multipath vs single-path under rotating outages "
                  f"({CALLS:,} calls, {N_RELAYS} relays, 8h/day down)",
        ),
    )
    payload = {
        "workload": {
            "n_calls": CALLS,
            "n_pairs": PAIRS,
            "n_relays": N_RELAYS,
            "n_days": DAYS,
            "world_seed": WORLD_SEED,
            "trace_seed": TRACE_SEED,
            "replay_seed": REPLAY_SEED,
            "outage_hours_per_day": OUTAGE_END_H - OUTAGE_START_H,
        },
        "policies": table,
        "bandit_beats_single_path": bool(
            table["multipath-ucb"]["mean_rtt_ms"] < table["via"]["mean_rtt_ms"]
        ),
    }
    record_bench_json(
        "core", "bench_ext_multipath::test_ext_multipath_outage", payload,
        section="multipath",
    )
