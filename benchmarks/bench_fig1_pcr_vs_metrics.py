"""Figure 1: user-perceived Poor Call Rate vs network metrics.

Paper: binning default-path calls by RTT / loss / jitter, the fraction of
1-2 star ratings (PCR) rises across the *entire* range of each metric,
with correlation coefficients 0.97 / 0.95 / 0.91.  We regenerate the
binned normalised-PCR curves from sampled ratings and check the monotone
relationship.
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import binned_curve, format_series, pearson_correlation
from repro.netmodel.metrics import METRICS


@pytest.mark.benchmark(group="fig1")
def test_fig1_pcr_rises_with_each_metric(benchmark, suite):
    def experiment():
        outcomes = [o for o in suite.all_default_outcomes() if o.rating is not None]
        curves = {}
        for metric in METRICS:
            x = [o.metrics.get(metric) for o in outcomes]
            y = [1.0 if o.poor_rating else 0.0 for o in outcomes]
            points = binned_curve(x, y, n_bins=15, min_samples=1000)
            peak = max(p.value for p in points)
            curves[metric] = [(p.bin_center, p.value / peak) for p in points]
        return curves

    curves = once(benchmark, experiment)

    text_parts = []
    for metric, points in curves.items():
        text_parts.append(
            format_series(
                f"Figure 1 ({metric})", [(round(x, 3), round(y, 3)) for x, y in points],
                x_label=metric, y_label="normalised PCR",
            )
        )
    emit("fig1_pcr_vs_metrics", "\n\n".join(text_parts))

    for metric, points in curves.items():
        assert len(points) >= 4, f"too few dense bins for {metric}"
        correlation = pearson_correlation(
            [x for x, _ in points], [y for _, y in points]
        )
        # Paper: 0.97 / 0.95 / 0.91 -- we require a strongly positive trend.
        assert correlation > 0.8, f"PCR not rising with {metric}: r={correlation:.2f}"
        # The curve should span a real dynamic range, not a flat line.
        values = [y for _, y in points]
        assert max(values) > 2.0 * min(values), metric
