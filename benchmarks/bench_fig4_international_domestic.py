"""Figure 4: international vs domestic calls, and by-country PNR.

Paper: international calls see 2-3x the PNR of domestic calls on every
metric (larger still on "at least one bad"), and by-country PNR of
international calls is highly skewed, with the worst countries up to 70%
while half sit at 25-50%.
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import (
    by_country_pnr,
    format_table,
    pnr_breakdown,
    split_international,
)
from repro.netmodel.metrics import METRICS


@pytest.mark.benchmark(group="fig4")
def test_fig4_international_vs_domestic(benchmark, suite):
    def experiment():
        outcomes = suite.all_default_outcomes()
        intl, dom = split_international(outcomes)
        by_country = by_country_pnr(outcomes, "rtt_ms", min_calls=400)
        return pnr_breakdown(intl), pnr_breakdown(dom), by_country

    intl, dom, by_country = once(benchmark, experiment)

    rows = [
        [metric, f"{intl[metric]:.3f}", f"{dom[metric]:.3f}",
         f"{intl[metric] / max(dom[metric], 1e-9):.2f}x"]
        for metric in (*METRICS, "any")
    ]
    ranked = sorted(by_country.items(), key=lambda kv: kv[1], reverse=True)
    country_rows = [[c, f"{v:.3f}"] for c, v in ranked]
    emit(
        "fig4_international_domestic",
        format_table(["metric", "international PNR", "domestic PNR", "ratio"], rows,
                     title="Figure 4a: international vs domestic")
        + "\n\n"
        + format_table(["country", "PNR(rtt) intl calls"], country_rows,
                       title="Figure 4b: by-country PNR (one side of call)"),
    )

    for metric in (*METRICS, "any"):
        ratio = intl[metric] / max(dom[metric], 1e-9)
        assert 1.3 <= ratio <= 8.0, (metric, ratio)
    # Skewed by-country distribution: worst country well above the median.
    values = sorted(by_country.values(), reverse=True)
    assert len(values) >= 8
    assert values[0] > 2.0 * values[len(values) // 2]
