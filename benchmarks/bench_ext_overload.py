"""Extension: offered-load sweep against the admission-controlled frontend.

Not a paper figure -- this benchmarks the robustness extension: the
asyncio controller's admission ladder under synthetic overload.  For
each offered-load level, a burst of logical clients (multiplexed over a
bounded set of pipelined v2 connections, the way thousands of agents
would share a handful of sockets) fires one assignment request each,
and we record the client-observed p50/p99 latency and the shed rate.

The contract being measured (and asserted):

* **bounded tail** -- p99 stays bounded even at the most oversubscribed
  level, because excess work is shed immediately instead of queueing;
* **zero silent timeouts** -- every request resolves to an assign or an
  explicit shed; nobody burns a timeout budget learning nothing.

With ``REPRO_BENCH_RECORD=1`` (``make bench-record``) the summary is
also written to ``BENCH_deployment.json`` at the repo root, the
committed perf-trajectory baseline that later PRs diff against.

``REPRO_BENCH_OVERLOAD_CLIENTS`` scales the top load level (default
10000 logical clients).
"""

from __future__ import annotations

import asyncio
import os
import statistics
from pathlib import Path

import pytest

from _util import emit, once, record_bench_json
from repro.core.policy import ViaConfig
from repro.deployment import AdmissionConfig, AsyncViaClient, ViaController
from repro.netmodel.options import RelayOption

OPTIONS = [RelayOption.bounce(0), RelayOption.bounce(1), RelayOption.transit(0, 1)]

#: Sockets the logical clients share (fd-limit friendly pipelining).
N_CONNECTIONS = 32
#: Per-request client-side timeout; anything hitting it is a *silent*
#: timeout, which the admission contract says must never happen.
SILENT_TIMEOUT_S = 30.0

RECORD_PATH = Path(__file__).parent.parent / "BENCH_deployment.json"

#: Admission tuning for the sweep: relay capacity worth ~512 immediate
#: admissions plus 2000/s refill, and a hard queue bound at 1024;
#: everything past that must degrade or shed.  Distinct (src, dst) pairs
#: keep the degrade cache cold, so the non-admitted tail is answered
#: with explicit sheds -- the light level sails through while the
#: oversubscribed levels shed most of their burst.
ADMISSION = AdmissionConfig(
    rate=2000.0,
    burst=512.0,
    max_queue_depth=1024,
    degrade_queue_depth=1024,
    queue_timeout_s=1.0,
)


def _top_load() -> int:
    raw = os.environ.get("REPRO_BENCH_OVERLOAD_CLIENTS", "").strip()
    try:
        return max(N_CONNECTIONS, int(raw)) if raw else 10_000
    except ValueError:
        return 10_000


async def _one_level(n_clients: int) -> dict:
    """Fire ``n_clients`` concurrent assignment requests at a fresh
    controller and summarise what came back."""
    async with ViaController(ViaConfig(seed=17), admission=ADMISSION) as controller:
        clients = [
            AsyncViaClient(conn, "US", "127.0.0.1", controller.port)
            for conn in range(N_CONNECTIONS)
        ]
        await asyncio.gather(*(c.connect() for c in clients))
        loop = asyncio.get_running_loop()

        async def one_call(logical_id: int) -> tuple[float, str]:
            client = clients[logical_id % N_CONNECTIONS]
            t0 = loop.time()
            try:
                result = await client.assign(
                    1,
                    OPTIONS,
                    t_hours=0.5,
                    src_id=logical_id + 10,
                    timeout=SILENT_TIMEOUT_S,
                )
            except (asyncio.TimeoutError, ConnectionError):
                return loop.time() - t0, "silent"
            return loop.time() - t0, "shed" if result.shed else "served"

        outcomes = await asyncio.gather(*(one_call(i) for i in range(n_clients)))
        await asyncio.gather(*(c.close() for c in clients))
        n_shed_server = controller.admission.n_shed
        n_degraded = controller.admission.n_degraded

    latencies = sorted(t for t, _ in outcomes)

    def pct(p: float) -> float:
        return latencies[min(len(latencies) - 1, int(p * len(latencies)))]

    counts = {kind: sum(1 for _, k in outcomes if k == kind) for kind in
              ("served", "shed", "silent")}
    return {
        "offered_clients": n_clients,
        "p50_ms": round(statistics.median(latencies) * 1000.0, 2),
        "p99_ms": round(pct(0.99) * 1000.0, 2),
        "served": counts["served"],
        "shed": counts["shed"],
        "silent_timeouts": counts["silent"],
        "shed_rate": round(counts["shed"] / n_clients, 4),
        "server_sheds": n_shed_server,
        "server_degraded": n_degraded,
    }


async def _sweep(levels: list[int]) -> list[dict]:
    return [await _one_level(n) for n in levels]


@pytest.mark.benchmark(group="ext_overload")
def test_ext_overload_sweep(benchmark):
    top = _top_load()
    levels = sorted({max(N_CONNECTIONS, top // 20), max(N_CONNECTIONS, top // 4), top})

    rows = once(benchmark, lambda: asyncio.run(_sweep(levels)))

    header = (
        f"{'offered':>8} {'p50 ms':>8} {'p99 ms':>8} {'served':>7} "
        f"{'shed':>6} {'shed %':>7} {'silent':>7}"
    )
    lines = [header] + [
        f"{r['offered_clients']:>8} {r['p50_ms']:>8.2f} {r['p99_ms']:>8.2f} "
        f"{r['served']:>7} {r['shed']:>6} {100.0 * r['shed_rate']:>6.1f}% "
        f"{r['silent_timeouts']:>7}"
        for r in rows
    ]
    emit("ext_overload", "\n".join(lines))

    for row in rows:
        # The headline contract: every request got an explicit answer,
        # and the tail stayed bounded even when most work was shed.
        assert row["served"] + row["shed"] == row["offered_clients"]
        assert row["silent_timeouts"] == 0
        assert row["p99_ms"] <= 5000.0
        # Client-observed sheds are exactly the server's explicit sheds:
        # nothing was dropped on the floor in between.
        assert row["shed"] == row["server_sheds"]
        assert row["served"] >= 1

    overloaded = rows[-1]
    # At the top level the offered burst far exceeds the admissible rate:
    # the ladder must actually engage, and harder than at light load.
    assert overloaded["shed"] > 0
    assert overloaded["shed_rate"] >= 0.2
    assert rows[0]["shed_rate"] <= overloaded["shed_rate"]

    record_bench_json(
        "deployment",
        "bench_ext_overload",
        {
            "admission": {
                "rate": ADMISSION.rate,
                "burst": ADMISSION.burst,
                "max_queue_depth": ADMISSION.max_queue_depth,
                "degrade_queue_depth": ADMISSION.degrade_queue_depth,
                "queue_timeout_s": ADMISSION.queue_timeout_s,
            },
            "n_connections": N_CONNECTIONS,
            "levels": rows,
        },
        section="overload",
    )
