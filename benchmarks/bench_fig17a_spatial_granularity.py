"""Figure 17a: impact of spatial decision granularity.

Paper: per-country decisions lose improvement (ISPs in one country have
different optimal relays); finer-than-AS granularity stops helping because
the data thins out.  AS-pair is the sweet spot.
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.core.baselines import make_via
from repro.simulation import make_inter_relay_lookup

METRIC = "rtt_ms"
GRANULARITIES = ("country", "as", "prefix")


@pytest.mark.benchmark(group="fig17a")
def test_fig17a_spatial_granularity(benchmark, suite, bench_plan):
    def experiment():
        inter_relay = make_inter_relay_lookup(bench_plan.world)
        policies = {
            granularity: make_via(
                METRIC, inter_relay=inter_relay, granularity=granularity, seed=42
            )
            for granularity in GRANULARITIES
            if granularity != "as"  # reuse the cached suite replay for AS
        }
        results = bench_plan.run(policies, seed=99)
        base = pnr_breakdown(suite.evaluate(suite.results(METRIC)["default"]))
        table = {}
        for granularity in GRANULARITIES:
            if granularity == "as":
                outcome = suite.evaluate(suite.results(METRIC)["via"])
            else:
                outcome = bench_plan.evaluate(results[granularity])
            breakdown = pnr_breakdown(outcome)
            table[granularity] = {
                "pnr": breakdown[METRIC],
                "impr": relative_improvement(base[METRIC], breakdown[METRIC]),
            }
        return table

    table = once(benchmark, experiment)
    rows = [
        [granularity, f"{d['pnr']:.3f}", f"{d['impr']:.0f}%"]
        for granularity, d in table.items()
    ]
    emit(
        "fig17a_spatial_granularity",
        format_table(
            ["granularity", f"PNR({METRIC})", "improvement"],
            rows,
            title="Figure 17a: spatial decision granularity",
        ),
    )

    # AS-pair at least matches country-level (coarser loses opportunities).
    assert table["as"]["impr"] >= table["country"]["impr"] - 3.0
    # Finer than AS gives no material additional benefit (data sparsity).
    assert table["prefix"]["impr"] <= table["as"]["impr"] + 6.0
    # Everything still improves over the default.
    for granularity, d in table.items():
        assert d["impr"] > 10.0, granularity
