"""Figure 16: relaying under a budget.

Paper: budget-aware VIA (relay only calls whose predicted benefit is in
the top B percentile, §4.6) uses the budget far more efficiently than the
budget-unaware variant, reaching about half of the unlimited benefit with
only 30% of calls relayed.
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.core.baselines import make_via
from repro.simulation import make_inter_relay_lookup

METRIC = "rtt_ms"
BUDGETS = (0.1, 0.3, 1.0)


@pytest.mark.benchmark(group="fig16")
def test_fig16_budget_sweep(benchmark, suite, bench_plan):
    def experiment():
        inter_relay = make_inter_relay_lookup(bench_plan.world)
        policies = {}
        for budget in BUDGETS:
            policies[("aware", budget)] = make_via(
                METRIC, inter_relay=inter_relay, budget=budget, budget_aware=True, seed=42
            )
            if budget < 1.0:
                policies[("unaware", budget)] = make_via(
                    METRIC, inter_relay=inter_relay, budget=budget,
                    budget_aware=False, seed=42,
                )
        results = bench_plan.run(
            {f"{kind}-{budget}": p for (kind, budget), p in policies.items()}, seed=99
        )
        base = pnr_breakdown(suite.evaluate(suite.results(METRIC)["default"]))
        table = {}
        for (kind, budget) in policies:
            name = f"{kind}-{budget}"
            breakdown = pnr_breakdown(bench_plan.evaluate(results[name]))
            table[(kind, budget)] = {
                "pnr": breakdown[METRIC],
                "impr": relative_improvement(base[METRIC], breakdown[METRIC]),
                "relayed": results[name].relayed_fraction,
            }
        return table

    table = once(benchmark, experiment)
    rows = [
        [f"B={budget:.0%}", kind, f"{d['relayed']:.1%}", f"{d['pnr']:.3f}", f"{d['impr']:.0f}%"]
        for (kind, budget), d in sorted(table.items(), key=lambda kv: (kv[0][1], kv[0][0]))
    ]
    emit(
        "fig16_budget",
        format_table(
            ["budget", "variant", "calls relayed", f"PNR({METRIC})", "improvement"],
            rows,
            title="Figure 16: impact of the relaying budget",
        ),
    )

    # Hard caps hold.
    for (kind, budget), d in table.items():
        if budget < 1.0:
            assert d["relayed"] <= budget + 0.05, (kind, budget, d)
    unlimited = table[("aware", 1.0)]["impr"]
    at_30 = table[("aware", 0.3)]["impr"]
    # Paper: ~half of the full benefit at a 30% budget.
    assert at_30 >= 0.35 * unlimited
    # Budget-aware spends the quota at least as well as first-come-
    # first-served at the binding budget.
    assert table[("aware", 0.3)]["pnr"] <= table[("unaware", 0.3)]["pnr"] + 0.015
    # More budget never hurts materially.
    assert table[("aware", 1.0)]["pnr"] <= table[("aware", 0.1)]["pnr"] + 0.01
