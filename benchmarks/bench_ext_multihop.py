"""Multi-hop relaying headroom: why VIA stops at two relays.

Related work observes Hangouts routing streams across multiple cloud
relays.  VIA's action space is bounce (1 relay) / transit (2 relays);
this bench quantifies, over the dense evaluation pairs, how much WAN RTT
a shortest-path router could still save with unbounded backbone hops --
the justification for the paper's two-relay design if the answer is
"almost nothing".
"""

from __future__ import annotations

import numpy as np
import pytest

from _util import emit, once
from conftest import BENCH_DAYS
from repro.analysis import format_table
from repro.netmodel.graph import best_multihop_route


@pytest.mark.benchmark(group="ext-multihop")
def test_ext_multihop_headroom(benchmark, bench_world, bench_plan):
    def experiment():
        world = bench_world
        day = BENCH_DAYS // 2
        pairs = [p for p in sorted(bench_plan.dense) if p[0] != p[1]]
        gains_2_vs_1 = []
        gains_free_vs_2 = []
        hop_counts = []
        for a, b in pairs:
            _r, cost1 = best_multihop_route(world, a, b, day=day, max_relays=1)
            _r, cost2 = best_multihop_route(world, a, b, day=day, max_relays=2)
            relays_free, cost_free = best_multihop_route(world, a, b, day=day)
            gains_2_vs_1.append((cost1 - cost2) / cost1)
            gains_free_vs_2.append((cost2 - cost_free) / cost2)
            hop_counts.append(len(relays_free))
        return {
            "n_pairs": len(pairs),
            "gain_transit": float(np.mean(gains_2_vs_1)),
            "gain_beyond": float(np.mean(gains_free_vs_2)),
            "p90_gain_beyond": float(np.percentile(gains_free_vs_2, 90)),
            "mean_hops_unbounded": float(np.mean(hop_counts)),
        }

    stats = once(benchmark, experiment)
    emit(
        "ext_multihop",
        format_table(
            ["statistic", "value"],
            [
                ["pairs analysed", stats["n_pairs"]],
                ["mean WAN-RTT gain: transit over bounce", f"{stats['gain_transit']:.1%}"],
                ["mean extra gain: unbounded hops over transit", f"{stats['gain_beyond']:.1%}"],
                ["p90 extra gain beyond transit", f"{stats['p90_gain_beyond']:.1%}"],
                ["mean relay hops when unbounded", f"{stats['mean_hops_unbounded']:.2f}"],
            ],
            title="Multi-hop headroom beyond VIA's bounce/transit action space",
        ),
    )

    assert stats["n_pairs"] >= 20
    # Transit buys real WAN-RTT over bounce on these long-haul pairs...
    assert stats["gain_transit"] >= 0.02
    # ...but going beyond two relays buys almost nothing (the design point).
    assert stats["gain_beyond"] <= 0.05
    assert stats["mean_hops_unbounded"] <= 3.0
