"""Extension: durable-store write path and crash-recovery equivalence.

The paper's controller learns from every call (§4); losing its state to a
crash means relearning from scratch.  This bench measures what the
durability plane costs and what it buys: WAL append throughput under each
fsync policy, then a controller killed mid-run (no clean shutdown, no
final snapshot) and rebuilt from snapshot + WAL-tail replay -- asserting
the recovered state is *identical* to an uninterrupted twin's, down to
its future assignment choices.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from _util import emit, once
from repro.core.history import history_to_dict
from repro.core.policy import ViaConfig
from repro.deployment.controller import ViaController
from repro.deployment.protocol import (
    MeasurementMessage,
    RequestMessage,
    encode_option,
)
from repro.netmodel.options import RelayOption
from repro.store import Store, StoreConfig, recover

N_ROUNDS = 2_000  # each round = one measurement + one assignment request
N_APPENDS = 20_000  # WAL throughput sweep, per fsync policy
SNAPSHOT_AT = 1_200  # mid-run snapshot; the tail after it replays on recovery

SITES = {0: "US", 1: "GB", 2: "IN", 3: "SG"}
OPTIONS = [RelayOption.bounce(1), RelayOption.bounce(2), RelayOption.transit(1, 2)]


def _make_controller(store_dir=None) -> ViaController:
    config = ViaConfig(metric="rtt_ms", epsilon=0.1, min_direct_samples=1, seed=42)
    return ViaController(config, store=store_dir)


def _drive(controller: ViaController, n_rounds: int, *, seed: int = 7) -> None:
    """The wire workload minus the sockets: interleaved measurements and
    assignment requests across four sites."""
    rng = np.random.default_rng(seed)
    for cid, site in SITES.items():
        controller._on_hello(cid, site)
    encoded = [encode_option(o) for o in OPTIONS]
    for i in range(n_rounds):
        src, dst = int(rng.integers(0, 4)), int(rng.integers(0, 4))
        if src == dst:
            dst = (dst + 1) % 4
        t_hours = 0.1 + i * 0.005
        controller._on_measurement(MeasurementMessage(
            src_id=src, dst_id=dst, t_hours=t_hours,
            option=encode_option(OPTIONS[int(rng.integers(0, len(OPTIONS)))]),
            rtt_ms=float(80 + rng.integers(0, 100)),
            loss_rate=float(rng.uniform(0, 0.05)),
            jitter_ms=float(rng.uniform(0, 20)),
        ))
        controller._on_request(RequestMessage(
            src_id=src, dst_id=dst, t_hours=t_hours, options=list(encoded),
        ))


def _future_choices(controller: ViaController, n: int = 100) -> list[dict]:
    encoded = [encode_option(o) for o in OPTIONS]
    return [
        controller._on_request(RequestMessage(
            src_id=i % 3, dst_id=3, t_hours=20.0 + i * 0.01, options=list(encoded),
        ), log=False).option
        for i in range(n)
    ]


def _append_throughput(root: Path) -> list[tuple[str, float]]:
    """records/s for each fsync policy over the same record stream."""
    from repro.store.wal import WriteAheadLog

    record = {
        "kind": "measurement", "src_id": 1, "dst_id": 2, "t_hours": 0.5,
        "option": encode_option(OPTIONS[0]),
        "rtt_ms": 123.4, "loss_rate": 0.01, "jitter_ms": 5.0,
        "src_site": "US", "dst_site": "GB",
    }
    rows = []
    for policy in ("off", "batch", "always"):
        n = N_APPENDS if policy != "always" else N_APPENDS // 10
        wal = WriteAheadLog(root / policy, fsync=policy)
        t0 = time.perf_counter()
        for _ in range(n):
            wal.append(record)
        wal.close()
        rows.append((policy, n / (time.perf_counter() - t0)))
    return rows


@pytest.mark.benchmark(group="ext-store-recovery")
def test_ext_store_recovery(benchmark):
    workdir = Path(tempfile.mkdtemp(prefix="via-store-bench-"))

    def experiment():
        throughput = _append_throughput(workdir / "wal-sweep")

        # Live controller: snapshot mid-run, then killed (no stop/close).
        store_dir = workdir / "store"
        live = _make_controller(store_dir)
        _drive(live, SNAPSHOT_AT, seed=7)
        live.save_store_snapshot()
        _drive(live, N_ROUNDS - SNAPSHOT_AT, seed=8)
        wal_records = live.store.wal.last_seq

        # The uninterrupted twin it must match.
        twin = _make_controller()
        _drive(twin, SNAPSHOT_AT, seed=7)
        _drive(twin, N_ROUNDS - SNAPSHOT_AT, seed=8)

        t0 = time.perf_counter()
        recovered = _make_controller()
        report = recover(Store(store_dir), recovered)
        recovery_s = time.perf_counter() - t0
        return throughput, wal_records, report, recovered, twin, recovery_s

    throughput, wal_records, report, recovered, twin, recovery_s = once(
        benchmark, experiment
    )

    identical_history = (
        history_to_dict(recovered.policy.history) == history_to_dict(twin.policy.history)
    )
    identical_future = _future_choices(recovered) == _future_choices(twin)

    lines = [
        "Durable store: WAL throughput and crash-recovery equivalence",
        "",
        "WAL append throughput (one ~230 B measurement record per append):",
    ]
    lines += [f"  fsync={policy:<7} {rate:>12,.0f} records/s" for policy, rate in throughput]
    lines += [
        "",
        f"workload: {N_ROUNDS} rounds (2 records each), snapshot at round {SNAPSHOT_AT}",
        f"WAL records written: {wal_records}",
        f"recovery: snapshot={report.snapshot_outcome} (seq {report.snapshot_seq}), "
        f"replayed {report.n_replayed} records in {recovery_s * 1e3:.1f} ms",
        f"state identical to uninterrupted twin: history={identical_history}, "
        f"next 100 assignments={identical_future}",
    ]
    emit("ext_store_recovery", "\n".join(lines))
    shutil.rmtree(workdir, ignore_errors=True)

    assert report.clean
    assert report.snapshot_outcome == "ok"
    assert identical_history
    assert identical_future
