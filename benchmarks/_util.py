"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation and both prints it and writes it under
``benchmarks/results/``, so the reproduced rows/series survive the run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent


def bench_workers(default: int = 1) -> int:
    """Worker count for parallel-capable benches.

    ``make bench WORKERS=N`` exports ``REPRO_BENCH_WORKERS``; benches
    that replay independent grids pass this to
    ``repro.simulation.run_grid`` / ``run_policies(workers=...)``.
    Results are bit-identical at any worker count, so timing is the only
    thing that changes.
    """
    raw = os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    if not raw:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


def emit(name: str, text: str) -> None:
    """Print a reproduced table/figure and persist it to results/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def recording_enabled() -> bool:
    """Is this run recording perf baselines (``make bench-record``)?"""
    return os.environ.get("REPRO_BENCH_RECORD", "").strip() == "1"


def record_bench_json(
    area: str, benchmark_name: str, payload: dict, *, section: str | None = None
) -> Path | None:
    """Commit a structured perf baseline: ``BENCH_<area>.json`` at the repo root.

    Only writes under ``REPRO_BENCH_RECORD=1``; returns the written path
    (or None when recording is off).  The convention (documented in
    ``docs/performance.md``): each entry is a JSON object with a
    ``benchmark`` id, a ``recorded_at`` date, and the benchmark's own
    structured summary -- for the hot-path bench that means calls/sec,
    per-call p50/p99 and peak RSS per path, plus the speedup ratio that
    ``scripts/ci_check.py`` guards against regression.

    Without ``section`` the entry *is* the file (one benchmark owns the
    area).  With ``section`` the entry is merged in under that key, so
    several benchmarks can share one area file (``BENCH_deployment.json``
    holds both the overload ladder and the sharded fleet) and re-recording
    one of them leaves the others' baselines intact.
    """
    if not recording_enabled():
        return None
    path = REPO_ROOT / f"BENCH_{area}.json"
    entry = {
        "benchmark": benchmark_name,
        "recorded_at": time.strftime("%Y-%m-%d", time.gmtime()),
        **payload,
    }
    if section is None:
        body = entry
    else:
        body = {}
        if path.exists():
            try:
                existing = json.loads(path.read_text(encoding="utf-8"))
            except ValueError:
                existing = None
            # Only a sectioned file can be merged into; a legacy
            # whole-file baseline (has its own "benchmark" id) is replaced.
            if isinstance(existing, dict) and "benchmark" not in existing:
                body = existing
        body[section] = entry
    path.write_text(json.dumps(body, indent=2) + "\n", encoding="utf-8")
    print(f"recorded perf baseline -> {path.name}")
    return path


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments replay tens of thousands of calls; statistical timing
    repetition is meaningless and expensive, so each bench is a single
    measured round.

    Set ``REPRO_PROFILE=1`` to additionally run the experiment body under
    cProfile and print the hot functions (see ``repro.obs.profiling``).
    """
    from repro.obs.profiling import maybe_profiled

    def run():
        with maybe_profiled(label=getattr(fn, "__qualname__", "experiment")):
            return fn()

    return benchmark.pedantic(run, rounds=1, iterations=1)
