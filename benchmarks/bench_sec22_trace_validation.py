"""Section 2.2 (text): validating average-metric thresholds vs packet traces.

Paper: on 70K calls with full packet traces, 80% of calls rated non-poor
by the average-metric thresholds have a packet-trace MOS above the 75th
percentile of the calls rated poor -- i.e. thresholds on per-call average
metrics are a reasonable approximation of fine-grained quality.

We regenerate this with the RTP simulator: draw calls with varied network
conditions, compute their call-average metrics (threshold labels) and
their windowed packet-trace MOS, and compare the two populations.
"""

from __future__ import annotations

import numpy as np
import pytest

from _util import emit, once
from repro.analysis import DEFAULT_THRESHOLDS, format_table
from repro.telephony.rtp import GilbertElliottLoss, simulate_rtp_stream, trace_metrics, trace_mos

N_CALLS = 600


@pytest.mark.benchmark(group="sec22")
def test_sec22_thresholds_vs_packet_traces(benchmark):
    def experiment():
        rng = np.random.default_rng(22)
        poor_mos = []
        nonpoor_mos = []
        for _ in range(N_CALLS):
            base_owd = float(rng.lognormal(np.log(60.0), 0.7))
            jitter_scale = float(rng.lognormal(np.log(3.0), 0.8))
            loss_rate = float(min(0.25, rng.lognormal(np.log(0.004), 1.2)))
            loss = GilbertElliottLoss.from_average(
                loss_rate, burstiness=float(rng.uniform(0.1, 0.7))
            )
            trace = simulate_rtp_stream(
                60.0, base_owd_ms=base_owd, jitter_scale_ms=jitter_scale,
                loss=loss, rng=rng,
            )
            average = trace_metrics(trace)
            mos = trace_mos(trace)
            if DEFAULT_THRESHOLDS.any_poor(average):
                poor_mos.append(mos)
            else:
                nonpoor_mos.append(mos)
        poor_arr = np.asarray(poor_mos)
        nonpoor_arr = np.asarray(nonpoor_mos)
        poor_p75 = float(np.percentile(poor_arr, 75))
        separation = float(np.mean(nonpoor_arr > poor_p75))
        return {
            "n_poor": len(poor_arr),
            "n_nonpoor": len(nonpoor_arr),
            "poor_median_mos": float(np.median(poor_arr)),
            "nonpoor_median_mos": float(np.median(nonpoor_arr)),
            "poor_p75": poor_p75,
            "separation": separation,
        }

    stats = once(benchmark, experiment)
    emit(
        "sec22_trace_validation",
        format_table(
            ["statistic", "value", "paper"],
            [
                ["calls labelled poor (avg metrics)", stats["n_poor"], "-"],
                ["calls labelled non-poor", stats["n_nonpoor"], "-"],
                ["median trace-MOS (poor)", f"{stats['poor_median_mos']:.2f}", "-"],
                ["median trace-MOS (non-poor)", f"{stats['nonpoor_median_mos']:.2f}", "-"],
                ["75th pct trace-MOS of poor calls", f"{stats['poor_p75']:.2f}", "-"],
                ["P(non-poor MOS > poor p75)", f"{stats['separation']:.0%}", "80%"],
            ],
            title="Section 2.2: average-metric thresholds vs packet-trace MOS",
        ),
    )

    assert stats["n_poor"] >= 50 and stats["n_nonpoor"] >= 100
    # The threshold labels must separate trace-level quality about as well
    # as in the paper.
    assert stats["separation"] >= 0.6
    assert stats["nonpoor_median_mos"] > stats["poor_median_mos"]
