"""Vivaldi coordinates: the related-work prediction alternative, measured.

The paper's related work contrasts tomography with coordinate embeddings
(Vivaldi, IDMaps/GNP).  Tomography cannot predict the *direct* path of a
never-seen AS pair; a coordinate embedding can.  This bench trains a
Vivaldi system on direct-path RTT samples from most AS pairs of the bench
world and evaluates held-out pairs against ground truth, versus a
population-mean baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from _util import emit, once
from conftest import BENCH_DAYS

from repro.analysis import format_table
from repro.core.coordinates import CoordinateSystem, VivaldiConfig
from repro.netmodel.options import DIRECT


@pytest.mark.benchmark(group="ext-coordinates")
def test_ext_vivaldi_direct_path_prediction(benchmark, bench_world, bench_trace):
    def experiment():
        world = bench_world
        rng = np.random.default_rng(77)
        pairs = sorted(bench_trace.pair_counts())
        pairs = [p for p in pairs if p[0] != p[1]]
        rng.shuffle(pairs)
        held_out = pairs[: max(20, len(pairs) // 5)]
        training = pairs[len(held_out):]

        system = CoordinateSystem(VivaldiConfig(dimensions=5))
        horizon_h = BENCH_DAYS * 24.0
        for _round in range(10):
            for a, b in training:
                sample = world.sample_call(a, b, DIRECT, rng.uniform(0, horizon_h), rng)
                system.observe(a, b, sample.rtt_ms)

        def long_run_rtt(a: int, b: int) -> float:
            days = range(0, BENCH_DAYS, 3)
            return float(np.mean([world.true_mean(a, b, DIRECT, d).rtt_ms for d in days]))

        train_truth = [long_run_rtt(a, b) for a, b in training]
        population_mean = float(np.mean(train_truth))

        vivaldi_errors = []
        baseline_errors = []
        skipped = 0
        for a, b in held_out:
            truth = long_run_rtt(a, b)
            estimate = system.estimate_rtt(a, b)
            if estimate is None:
                skipped += 1
                continue
            vivaldi_errors.append(abs(estimate - truth) / truth)
            baseline_errors.append(abs(population_mean - truth) / truth)
        v = np.asarray(vivaldi_errors)
        base = np.asarray(baseline_errors)
        return {
            "n_eval": len(v),
            "skipped": skipped,
            "vivaldi_median": float(np.median(v)),
            "vivaldi_within50": float(np.mean(v <= 0.5)),
            "baseline_median": float(np.median(base)),
            "baseline_within50": float(np.mean(base <= 0.5)),
            "n_nodes": len(system),
        }

    stats = once(benchmark, experiment)
    emit(
        "ext_coordinates",
        format_table(
            ["predictor", "median rel. error", "within 50%"],
            [
                ["Vivaldi embedding", f"{stats['vivaldi_median']:.0%}",
                 f"{stats['vivaldi_within50']:.0%}"],
                ["population mean", f"{stats['baseline_median']:.0%}",
                 f"{stats['baseline_within50']:.0%}"],
            ],
            title=(
                f"Extension: direct-path RTT prediction for {stats['n_eval']} "
                f"held-out AS pairs ({stats['n_nodes']} embedded nodes, "
                f"{stats['skipped']} unembeddable)"
            ),
        ),
    )

    assert stats["n_eval"] >= 15
    # The embedding must clearly beat the uninformed baseline.
    assert stats["vivaldi_median"] < stats["baseline_median"]
    assert stats["vivaldi_within50"] >= stats["baseline_within50"]
    assert stats["vivaldi_median"] < 0.7
