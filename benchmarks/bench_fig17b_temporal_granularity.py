"""Figure 17b: impact of the refresh period T.

Paper: refreshing prediction + pruning every 24h is near-optimal; much
coarser refresh (stale predictions) costs improvement, much finer refresh
stops helping because per-window data thins out.
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.core.baselines import make_via
from repro.simulation import make_inter_relay_lookup

METRIC = "rtt_ms"
PERIODS_H = (6.0, 24.0, 96.0)


@pytest.mark.benchmark(group="fig17b")
def test_fig17b_temporal_granularity(benchmark, suite, bench_plan):
    def experiment():
        inter_relay = make_inter_relay_lookup(bench_plan.world)
        policies = {
            f"T={int(period)}h": make_via(
                METRIC, inter_relay=inter_relay, refresh_hours=period, seed=42
            )
            for period in PERIODS_H
            if period != 24.0  # reuse the cached suite replay for T=24
        }
        results = bench_plan.run(policies, seed=99)
        base = pnr_breakdown(suite.evaluate(suite.results(METRIC)["default"]))
        table = {}
        for period in PERIODS_H:
            name = f"T={int(period)}h"
            if period == 24.0:
                outcome = suite.evaluate(suite.results(METRIC)["via"])
            else:
                outcome = bench_plan.evaluate(results[name])
            breakdown = pnr_breakdown(outcome)
            table[name] = {
                "pnr": breakdown[METRIC],
                "impr": relative_improvement(base[METRIC], breakdown[METRIC]),
            }
        return table

    table = once(benchmark, experiment)
    rows = [[name, f"{d['pnr']:.3f}", f"{d['impr']:.0f}%"] for name, d in table.items()]
    emit(
        "fig17b_temporal_granularity",
        format_table(
            ["refresh period", f"PNR({METRIC})", "improvement"],
            rows,
            title="Figure 17b: temporal decision granularity",
        ),
    )

    best = max(d["impr"] for d in table.values())
    # T=24h is near the best across the sweep.
    assert table["T=24h"]["impr"] >= best - 8.0
    # All settings still clearly beat the default path.
    for name, d in table.items():
        assert d["impr"] > 10.0, name
