"""Figure 2: CDFs of RTT, loss rate and jitter on default paths.

Paper: a significant fraction of calls (over 15%) sit beyond 320 ms RTT,
1.2% loss, or 12 ms jitter -- exactly the thresholds chosen for "poor"
network performance.  We regenerate the three CDFs and check the mass
beyond each threshold.
"""

from __future__ import annotations

import numpy as np
import pytest

from _util import emit, once
from repro.analysis import DEFAULT_THRESHOLDS, cdf_points, format_series
from repro.netmodel.metrics import METRICS


@pytest.mark.benchmark(group="fig2")
def test_fig2_metric_distributions(benchmark, suite):
    def experiment():
        outcomes = suite.all_default_outcomes()
        result = {}
        for metric in METRICS:
            values = np.array([o.metrics.get(metric) for o in outcomes])
            threshold = DEFAULT_THRESHOLDS.get(metric)
            result[metric] = {
                "cdf": cdf_points(values, n_points=21),
                "beyond": float(np.mean(values >= threshold)),
                "median": float(np.median(values)),
            }
        return result

    stats = once(benchmark, experiment)

    parts = []
    for metric, data in stats.items():
        parts.append(
            format_series(
                f"Figure 2 CDF ({metric}); median={data['median']:.3g}, "
                f"P(beyond threshold)={data['beyond']:.2%}",
                [(round(x, 4), round(f, 3)) for x, f in data["cdf"]],
                x_label=metric, y_label="CDF",
            )
        )
    emit("fig2_metric_cdfs", "\n\n".join(parts))

    for metric, data in stats.items():
        # Paper: "over 15%" beyond each threshold; allow a broad band
        # around that on the synthetic population.
        assert 0.08 <= data["beyond"] <= 0.40, (metric, data["beyond"])
    # Medians in plausible VoIP ranges.
    assert 50.0 <= stats["rtt_ms"]["median"] <= 300.0
    assert 0.0005 <= stats["loss_rate"]["median"] <= 0.012
    assert 2.0 <= stats["jitter_ms"]["median"] <= 12.0
