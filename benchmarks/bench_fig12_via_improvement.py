"""Figure 12: VIA's improvement vs strawmen and the oracle.

Paper (12a): VIA cuts per-metric PNR by 39-45% (oracle: up to 53%) and the
"at least one bad" PNR by 23% (oracle: 30%), clearly outperforming both
the pure-prediction and pure-exploration strawmen.
Paper (12b): improvement between distribution percentiles is 20-58% at the
median and 20-57% at the 90th percentile.
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import (
    format_table,
    percentile_improvement,
    pnr_breakdown,
    relative_improvement,
)
from repro.netmodel.metrics import METRICS

STRATEGIES = ("oracle", "via", "strawman-prediction", "strawman-exploration")


@pytest.mark.benchmark(group="fig12")
def test_fig12_via_vs_strawmen(benchmark, suite):
    def experiment():
        table = {}
        for metric in METRICS:
            results = suite.results(metric)
            base_out = suite.evaluate(results["default"])
            base = pnr_breakdown(base_out)
            per_strategy = {}
            for name in STRATEGIES:
                out = suite.evaluate(results[name])
                breakdown = pnr_breakdown(out)
                percentiles = percentile_improvement(
                    [o.metrics.get(metric) for o in base_out],
                    [o.metrics.get(metric) for o in out],
                    (50, 90),
                )
                per_strategy[name] = {
                    "pnr": breakdown[metric],
                    "pnr_impr": relative_improvement(base[metric], breakdown[metric]),
                    "any_impr": relative_improvement(base["any"], breakdown["any"]),
                    "p50": percentiles[50.0],
                    "p90": percentiles[90.0],
                }
            table[metric] = {"base_pnr": base[metric], "strategies": per_strategy}
        return table

    table = once(benchmark, experiment)

    rows = []
    for metric, data in table.items():
        rows.append([metric, "default", f"{data['base_pnr']:.3f}", "-", "-", "-", "-"])
        for name in STRATEGIES:
            s = data["strategies"][name]
            rows.append([
                metric, name, f"{s['pnr']:.3f}", f"{s['pnr_impr']:.0f}%",
                f"{s['any_impr']:.0f}%", f"{s['p50']:.0f}%", f"{s['p90']:.0f}%",
            ])
    emit(
        "fig12_via_improvement",
        format_table(
            ["metric", "strategy", "PNR", "PNR impr", "any impr", "p50 impr", "p90 impr"],
            rows,
            title="Figure 12: PNR reduction and percentile improvements",
        ),
    )

    for metric, data in table.items():
        s = data["strategies"]
        # VIA achieves a substantial cut (paper: 39-45%) ...
        assert s["via"]["pnr_impr"] >= 30.0, (metric, s["via"])
        # ... close to but not above the oracle (small sampling slack) ...
        assert s["via"]["pnr"] >= s["oracle"]["pnr"] - 0.02, metric
        # ... and at least as good as both strawmen (small slack).
        assert s["via"]["pnr"] <= s["strawman-prediction"]["pnr"] + 0.01, metric
        assert s["via"]["pnr"] <= s["strawman-exploration"]["pnr"] + 0.01, metric
        # Percentile improvements land in the paper's broad band
        # (20-58% at the median; our rtt run sits at the low edge).
        assert s["via"]["p50"] >= 5.0, metric
        assert s["via"]["p90"] >= 15.0, metric
    # The combined-metric improvement is real (paper: 23%).
    any_improvements = [d["strategies"]["via"]["any_impr"] for d in table.values()]
    assert max(any_improvements) >= 20.0
