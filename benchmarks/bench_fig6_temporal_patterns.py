"""Figure 6: persistence and prevalence of high-PNR AS pairs.

Paper: labelling a pair "high PNR" on a day when its PNR is >= 1.5x the
overall PNR that day, 10-20% of pairs are always bad while 60-70% are bad
less than 30% of the time with stretches of at most ~a day -- poor
performance is temporally spread, so relay selection must be dynamic.
"""

from __future__ import annotations

import numpy as np
import pytest

from _util import emit, once
from repro.analysis import (
    daily_pair_pnr,
    format_series,
    persistence_and_prevalence,
)


@pytest.mark.benchmark(group="fig6")
def test_fig6_persistence_prevalence(benchmark, suite):
    def experiment():
        pair_pnr, overall = daily_pair_pnr(
            suite.all_default_outcomes(), None, min_calls_per_day=5
        )
        return persistence_and_prevalence(pair_pnr, overall, factor=1.5)

    persistence, prevalence = once(benchmark, experiment)
    persistence_arr = np.asarray(persistence)
    prevalence_arr = np.asarray(prevalence)

    def cdf(arr, points):
        return [(p, round(float(np.mean(arr <= p)), 3)) for p in points]

    emit(
        "fig6_temporal_patterns",
        format_series(
            f"Figure 6a: persistence CDF over {len(persistence)} high-PNR pairs",
            cdf(persistence_arr, [1, 2, 3, 5, 10, 25]),
            x_label="median streak (days)", y_label="CDF",
        )
        + "\n\n"
        + format_series(
            "Figure 6b: prevalence CDF",
            cdf(prevalence_arr, [0.1, 0.3, 0.5, 0.7, 0.9, 1.0]),
            x_label="fraction of days high-PNR", y_label="CDF",
        ),
    )

    assert len(prevalence) >= 30, "too few high-PNR pairs to characterise"
    always_bad = float(np.mean(prevalence_arr >= 0.95))
    mostly_ok = float(np.mean(prevalence_arr <= 0.5))
    # Shape: a minority of chronic pairs, a majority of intermittent ones.
    assert 0.0 <= always_bad <= 0.45
    assert mostly_ok >= 0.35
    # Most high-PNR stretches are short (a few days at most).
    assert float(np.mean(persistence_arr <= 3.0)) >= 0.5
