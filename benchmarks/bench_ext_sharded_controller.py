"""Sharded controller: what the §7 partitioning answer costs -- and buys.

The paper's discussion proposes partitioning the controller for scale.
Shards learn independently, so tomography (which pools relay-segment
observations *across* pairs) loses coverage as K grows.  This bench
replays VIA behind 1, 4 and 16 shards, then measures the two remedies
the deployment ring (``repro.deployment.ring``) implements:

* **replicated learning** -- gossip converges every shard onto the
  fleet-wide history; modelled here by sharing one ``CallHistory``
  across all shard policies, quality must land within noise of K = 1;
* **power-of-d-choices placement** -- load-aware sticky placement vs
  static hashing, measured as max/mean load imbalance.

``test_ext_fleet_throughput`` then runs the real multi-process ring:
aggregate served throughput of a 4-shard fleet vs one controller under
identical per-process admission capacity.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from _util import emit, once, record_bench_json
from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.core.baselines import make_via
from repro.core.sharding import ShardedPolicy
from repro.simulation import make_inter_relay_lookup
from repro.simulation.replay import replay

METRIC = "rtt_ms"
SHARD_COUNTS = (4, 16)


@pytest.mark.benchmark(group="ext-sharding")
def test_ext_sharded_controller(benchmark, suite, bench_world, bench_trace, bench_plan):
    def experiment():
        inter_relay = make_inter_relay_lookup(bench_world)
        base = pnr_breakdown(suite.evaluate(suite.results(METRIC)["default"]))
        table = {
            "1 shard": {
                "pnr": pnr_breakdown(suite.evaluate(suite.results(METRIC)["via"]))[METRIC],
                "imbalance": 1.0,
            }
        }
        for n_shards in SHARD_COUNTS:
            policy = ShardedPolicy(
                lambda i: make_via(METRIC, inter_relay=inter_relay, seed=42 + i),
                n_shards,
            )
            result = replay(bench_world, bench_trace, policy, seed=99)
            table[f"{n_shards} shards"] = {
                "pnr": pnr_breakdown(bench_plan.evaluate(result))[METRIC],
                "imbalance": policy.load_imbalance(),
            }
        # Replicated learning: every shard reads (and feeds) one shared
        # history -- the state ring gossip converges to.  Routing, load
        # and bandit state stay per-shard; only learned history is global.
        replicated = ShardedPolicy(
            lambda i: make_via(METRIC, inter_relay=inter_relay, seed=42 + i),
            4,
        )
        shared_history = replicated.shards[0].history
        for shard_policy in replicated.shards[1:]:
            shard_policy.history = shared_history
        result = replay(bench_world, bench_trace, replicated, seed=99)
        table["4 shards (replicated)"] = {
            "pnr": pnr_breakdown(bench_plan.evaluate(result))[METRIC],
            "imbalance": replicated.load_imbalance(),
        }
        # Power-of-d-choices placement vs static hashing at K = 16.
        pod = ShardedPolicy(
            lambda i: make_via(METRIC, inter_relay=inter_relay, seed=42 + i),
            16,
            placement="power_of_d",
            d_choices=2,
        )
        result = replay(bench_world, bench_trace, pod, seed=99)
        table["16 shards (power-of-2)"] = {
            "pnr": pnr_breakdown(bench_plan.evaluate(result))[METRIC],
            "imbalance": pod.load_imbalance(),
        }
        return base, table

    base, table = once(benchmark, experiment)
    rows = [
        [name, f"{d['imbalance']:.2f}", f"{d['pnr']:.3f}",
         f"{relative_improvement(base[METRIC], d['pnr']):.0f}%"]
        for name, d in table.items()
    ]
    emit(
        "ext_sharded_controller",
        format_table(
            ["control plane", "load imbalance (max/mean)", f"PNR({METRIC})", "improvement"],
            rows,
            title="§7 extension: partitioned controller",
        ),
    )

    single = relative_improvement(base[METRIC], table["1 shard"]["pnr"])
    # Moderate sharding must stay close to the single logical controller...
    assert relative_improvement(base[METRIC], table["4 shards"]["pnr"]) >= single - 15.0
    # ...and even heavy sharding keeps most of the benefit (dense pairs
    # carry their own history; only tomography coverage shrinks).
    assert relative_improvement(base[METRIC], table["16 shards"]["pnr"]) >= 0.5 * single
    # Hash partitioning balances load reasonably.
    assert table["16 shards"]["imbalance"] < 6.0
    # Replicated learning recovers K = 1 quality: the 4-shard fleet with a
    # fleet-wide history must sit within noise of the single controller.
    replicated = relative_improvement(base[METRIC], table["4 shards (replicated)"]["pnr"])
    assert abs(replicated - single) <= 5.0
    # Power-of-d placement must not balance worse than static hashing
    # (load-aware placement is the whole point) and keep hash-level quality.
    assert (
        table["16 shards (power-of-2)"]["imbalance"]
        <= table["16 shards"]["imbalance"] + 0.05
    )
    assert (
        relative_improvement(base[METRIC], table["16 shards (power-of-2)"]["pnr"])
        >= 0.5 * single
    )

    record_bench_json(
        "deployment",
        "bench_ext_sharded_controller",
        {
            "metric": METRIC,
            "baseline_pnr": base[METRIC],
            "configurations": {
                name: {
                    "pnr": d["pnr"],
                    "improvement_pct": relative_improvement(base[METRIC], d["pnr"]),
                    "load_imbalance": d["imbalance"],
                }
                for name, d in table.items()
            },
        },
        section="sharded_quality",
    )


# ----------------------------------------------------------------------
# The real fleet: aggregate throughput of a 4-shard multiprocess ring
# ----------------------------------------------------------------------

FLEET_SHARDS = 4
#: Per-controller admission capacity (token bucket).  Each controller
#: process serves at most this rate; sharding multiplies fleet capacity.
#: The 1-core CI box cannot demonstrate CPU-parallel speedup, so the
#: bench pins the capacity model the §7 answer actually scales.
FLEET_RATE = 60.0
FLEET_BURST = 16.0
FLEET_DURATION_S = 4.0
#: Pipelined requests in flight per load generator between pacing beats.
FLEET_INFLIGHT = 16
FLEET_PACING_S = 0.05


def _blast_worker(host, port, gen_index, duration_s, conn):
    """Load-generator process: paced pipelined assigns against one address.

    Every request uses a *fresh* (src=1, dst) pair from the slot's own
    partition of the id space, so the controller's degrade cache stays
    cold and every non-admitted request is an explicit shed -- the served
    count is then a clean capacity measurement.  The partition is the
    same ``stable_shard_of`` the ring routes by, so against a 4-shard
    ring generator ``g``'s stream is exactly shard ``g``'s owned pairs
    (zero redirects), and against one controller the four streams are
    simply disjoint.
    """
    from repro.core.sharding import stable_shard_of
    from repro.deployment.client import AsyncViaClient
    from repro.deployment.ring import ring_pair_key
    from repro.netmodel.options import DIRECT, RelayOption

    options = [DIRECT, RelayOption.bounce(0), RelayOption.bounce(1)]

    def dst_stream():
        dst = 2
        while True:
            if stable_shard_of(ring_pair_key(1, dst), FLEET_SHARDS) == gen_index:
                yield dst
            dst += 1

    async def go():
        client = AsyncViaClient(100 + gen_index, "US", host, port)
        await client.connect()
        dsts = dst_stream()
        offered = served = 0
        t0 = time.perf_counter()
        while time.perf_counter() - t0 < duration_s:
            batch = [
                client.assign(next(dsts), options, 0.1, src_id=1)
                for _ in range(FLEET_INFLIGHT)
            ]
            results = await asyncio.gather(*batch)
            offered += len(results)
            served += sum(1 for r in results if not r.shed)
            await asyncio.sleep(FLEET_PACING_S)
        elapsed = time.perf_counter() - t0
        await client.close()
        return offered, served, elapsed

    conn.send(asyncio.run(go()))
    conn.close()


def _run_fleet_load(targets):
    """Drive one generator process per target; aggregate offered/served."""
    from repro.deployment.ring import _mp_context

    ctx = _mp_context()
    procs = []
    for g, (host, port) in enumerate(targets):
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_blast_worker,
            args=(host, port, g, FLEET_DURATION_S, child_conn),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        procs.append((proc, parent_conn))
    offered = served = 0
    elapsed = 0.0
    for proc, parent_conn in procs:
        if not parent_conn.poll(FLEET_DURATION_S + 30.0):
            proc.kill()
            raise RuntimeError("load generator did not report back")
        got_offered, got_served, got_elapsed = parent_conn.recv()
        parent_conn.close()
        proc.join(timeout=30.0)
        offered += got_offered
        served += got_served
        elapsed = max(elapsed, got_elapsed)
    return {
        "offered": offered,
        "served": served,
        "elapsed_s": round(elapsed, 3),
        "served_per_sec": round(served / elapsed, 1),
    }


@pytest.mark.benchmark(group="ext-sharding")
def test_ext_fleet_throughput(benchmark):
    """A 4-shard ring vs one controller at equal per-process capacity.

    Both fleets run real controller processes behind the same admission
    config and identical paced load generators (one per shard slot, all
    four aimed at the lone controller in the baseline).  Served -- not
    offered -- throughput is the figure of merit: sheds don't count.
    """
    from repro.core.policy import ViaConfig
    from repro.deployment.admission import AdmissionConfig
    from repro.deployment.ring import ControllerRing

    admission = AdmissionConfig(rate=FLEET_RATE, burst=FLEET_BURST)

    def experiment():
        results = {}
        for n_shards in (1, FLEET_SHARDS):
            ring = ControllerRing(
                n_shards, ViaConfig(seed=1), admission=admission
            )
            shard_map = ring.start()
            try:
                # Generator g's pair stream is shard g's partition; against
                # the single controller all four streams hit shard 0.
                targets = [
                    shard_map.address_of(g if n_shards > 1 else 0)
                    for g in range(FLEET_SHARDS)
                ]
                results[n_shards] = _run_fleet_load(targets)
            finally:
                ring.stop()
        return results

    results = once(benchmark, experiment)
    single, fleet = results[1], results[FLEET_SHARDS]
    ratio = fleet["served_per_sec"] / single["served_per_sec"]
    emit(
        "ext_fleet_throughput",
        format_table(
            ["fleet", "offered", "served", "served/s"],
            [
                ["1 controller", str(single["offered"]), str(single["served"]),
                 f"{single['served_per_sec']:.0f}"],
                [f"{FLEET_SHARDS}-shard ring", str(fleet["offered"]),
                 str(fleet["served"]), f"{fleet['served_per_sec']:.0f}"],
                ["ratio", "", "", f"{ratio:.2f}x"],
            ],
            title="sharded fleet: aggregate served throughput "
            f"(admission {FLEET_RATE:.0f}/s per process)",
        ),
    )

    # Both configurations must actually be driven into their capacity
    # ceiling, otherwise the ratio measures the load generator instead.
    assert single["offered"] > single["served"] * 2
    assert fleet["offered"] > fleet["served"]
    # The acceptance bar: >= 3x aggregate served throughput at 4 shards.
    assert ratio >= 3.0, f"fleet scaled only {ratio:.2f}x"

    record_bench_json(
        "deployment",
        "bench_ext_fleet_throughput",
        {
            "n_shards": FLEET_SHARDS,
            "admission": {"rate": FLEET_RATE, "burst": FLEET_BURST},
            "duration_s": FLEET_DURATION_S,
            "generators": FLEET_SHARDS,
            "single_controller": single,
            "fleet": fleet,
            "throughput_ratio": round(ratio, 2),
            "quality": "see sharded_quality section: '4 shards (replicated)' "
            "sits within noise of '1 shard'",
        },
        section="sharded_fleet",
    )
