"""Sharded controller: what the §7 partitioning answer costs.

The paper's discussion proposes partitioning the controller for scale.
Shards learn independently, so tomography (which pools relay-segment
observations *across* pairs) loses coverage as K grows.  This bench
replays VIA behind 1, 4 and 16 shards.
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.core.baselines import make_via
from repro.core.sharding import ShardedPolicy
from repro.simulation import make_inter_relay_lookup
from repro.simulation.replay import replay

METRIC = "rtt_ms"
SHARD_COUNTS = (4, 16)


@pytest.mark.benchmark(group="ext-sharding")
def test_ext_sharded_controller(benchmark, suite, bench_world, bench_trace, bench_plan):
    def experiment():
        inter_relay = make_inter_relay_lookup(bench_world)
        base = pnr_breakdown(suite.evaluate(suite.results(METRIC)["default"]))
        table = {
            "1 shard": {
                "pnr": pnr_breakdown(suite.evaluate(suite.results(METRIC)["via"]))[METRIC],
                "imbalance": 1.0,
            }
        }
        for n_shards in SHARD_COUNTS:
            policy = ShardedPolicy(
                lambda i: make_via(METRIC, inter_relay=inter_relay, seed=42 + i),
                n_shards,
            )
            result = replay(bench_world, bench_trace, policy, seed=99)
            table[f"{n_shards} shards"] = {
                "pnr": pnr_breakdown(bench_plan.evaluate(result))[METRIC],
                "imbalance": policy.load_imbalance(),
            }
        return base, table

    base, table = once(benchmark, experiment)
    rows = [
        [name, f"{d['imbalance']:.2f}", f"{d['pnr']:.3f}",
         f"{relative_improvement(base[METRIC], d['pnr']):.0f}%"]
        for name, d in table.items()
    ]
    emit(
        "ext_sharded_controller",
        format_table(
            ["control plane", "load imbalance (max/mean)", f"PNR({METRIC})", "improvement"],
            rows,
            title="§7 extension: partitioned controller",
        ),
    )

    single = relative_improvement(base[METRIC], table["1 shard"]["pnr"])
    # Moderate sharding must stay close to the single logical controller...
    assert relative_improvement(base[METRIC], table["4 shards"]["pnr"]) >= single - 15.0
    # ...and even heavy sharding keeps most of the benefit (dense pairs
    # carry their own history; only tomography coverage shrinks).
    assert relative_improvement(base[METRIC], table["16 shards"]["pnr"]) >= 0.5 * single
    # Hash partitioning balances load reasonably.
    assert table["16 shards"]["imbalance"] < 6.0
