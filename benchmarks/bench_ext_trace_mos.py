"""Trace-level quality: does VIA improve packet-trace MOS, not just averages?

The paper validates its average-metric thresholds against a proprietary
packet-trace MOS calculator (§2.2).  This bench closes the loop for the
*policy* results: it re-synthesises RTP packet traces for evaluated calls
(via `repro.telephony.sessions`) and scores default vs VIA vs oracle with
the windowed, burst-sensitive trace MOS.
"""

from __future__ import annotations

import numpy as np
import pytest

from _util import emit, once
from repro.analysis import format_table
from repro.telephony.sessions import call_trace_mos

METRIC = "rtt_ms"
SAMPLE_CALLS = 400


@pytest.mark.benchmark(group="ext-trace-mos")
def test_ext_trace_mos(benchmark, suite):
    def experiment():
        rng = np.random.default_rng(2626)
        results = suite.results(METRIC)
        table = {}
        for name in ("default", "via", "oracle"):
            outcomes = suite.evaluate(results[name])
            step = max(1, len(outcomes) // SAMPLE_CALLS)
            sample = outcomes[::step][:SAMPLE_CALLS]
            scores = np.array([
                call_trace_mos(o.metrics, min(o.call.duration_s, 120.0), rng)
                for o in sample
            ])
            table[name] = {
                "mean": float(scores.mean()),
                "p10": float(np.percentile(scores, 10)),
                "frac_below_3": float(np.mean(scores < 3.0)),
            }
        return table

    table = once(benchmark, experiment)
    rows = [
        [name, f"{d['mean']:.3f}", f"{d['p10']:.3f}", f"{d['frac_below_3']:.1%}"]
        for name, d in table.items()
    ]
    emit(
        "ext_trace_mos",
        format_table(
            ["strategy", "mean trace-MOS", "p10 trace-MOS", "calls below MOS 3"],
            rows,
            title=f"Packet-trace MOS over {SAMPLE_CALLS} evaluated calls",
        ),
    )

    # VIA must improve fine-grained quality, not only call averages.
    assert table["via"]["mean"] > table["default"]["mean"] + 0.03
    assert table["via"]["p10"] >= table["default"]["p10"]
    assert table["via"]["frac_below_3"] <= table["default"]["frac_below_3"]
    assert table["oracle"]["mean"] >= table["via"]["mean"] - 0.05
