"""Hybrid reactive selection: the §7 "Discussion" alternative, evaluated.

The paper proposes letting clients try a prediction-pruned shortlist of
options at call start and keep the observed winner.  This bench compares
plain VIA against the hybrid on long calls, where a 10-second probe window
amortises well -- the hybrid should close part of the remaining gap to the
oracle there.
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.core.hybrid import HybridReactivePolicy
from repro.core.policy import ViaConfig
from repro.simulation import make_inter_relay_lookup
from repro.simulation.replay import replay

METRIC = "rtt_ms"
LONG_CALL_S = 120.0


@pytest.mark.benchmark(group="ext-hybrid")
def test_ext_hybrid_reactive(benchmark, suite, bench_world, bench_trace, bench_plan):
    def experiment():
        policy = HybridReactivePolicy(
            ViaConfig(metric=METRIC, seed=42),
            inter_relay=make_inter_relay_lookup(bench_world),
            probe_top_n=3,
            min_duration_s=LONG_CALL_S,
        )
        hybrid_result = replay(bench_world, bench_trace, policy, seed=99)
        results = suite.results(METRIC)

        def long_calls(outcomes):
            return [o for o in outcomes if o.call.duration_s >= LONG_CALL_S]

        table = {}
        for name, outcomes in (
            ("default", suite.evaluate(results["default"])),
            ("via", suite.evaluate(results["via"])),
            ("oracle", suite.evaluate(results["oracle"])),
            ("hybrid-reactive", bench_plan.evaluate(hybrid_result)),
        ):
            table[name] = pnr_breakdown(long_calls(outcomes))[METRIC]
        return table, policy.n_probed_calls

    table, n_probed = once(benchmark, experiment)
    base = table["default"]
    rows = [
        [name, f"{value:.3f}", f"{relative_improvement(base, value):.0f}%"]
        for name, value in table.items()
    ]
    emit(
        "ext_hybrid_reactive",
        format_table(
            ["strategy", f"long-call PNR({METRIC})", "improvement"],
            rows,
            title=f"§7 extension: hybrid reactive on calls >= {LONG_CALL_S:.0f}s "
                  f"({n_probed} probed calls)",
        ),
    )

    assert n_probed > 1000
    # The hybrid must improve on the default substantially and be
    # competitive with plain VIA on long calls (within noise, ideally better).
    assert relative_improvement(base, table["hybrid-reactive"]) >= 30.0
    assert table["hybrid-reactive"] <= table["via"] + 0.02
    # Still bounded by foresight.
    assert table["hybrid-reactive"] >= table["oracle"] - 0.02
