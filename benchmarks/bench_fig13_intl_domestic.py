"""Figure 13: VIA's improvement on international vs domestic calls.

Paper: VIA improves both populations significantly, with a slightly larger
improvement on international calls (domestic calls are more often limited
by the last mile, which relaying cannot fix).
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import (
    format_table,
    pnr_breakdown,
    relative_improvement,
    split_international,
)

METRIC = "rtt_ms"


@pytest.mark.benchmark(group="fig13")
def test_fig13_international_vs_domestic(benchmark, suite):
    def experiment():
        results = suite.results(METRIC)
        data = {}
        for name in ("default", "via", "oracle"):
            intl, dom = split_international(suite.evaluate(results[name]))
            data[name] = {
                "intl": pnr_breakdown(intl)[METRIC],
                "dom": pnr_breakdown(dom)[METRIC],
            }
        return data

    data = once(benchmark, experiment)
    rows = [
        [name, f"{values['intl']:.3f}", f"{values['dom']:.3f}"]
        for name, values in data.items()
    ]
    intl_impr = relative_improvement(data["default"]["intl"], data["via"]["intl"])
    dom_impr = relative_improvement(data["default"]["dom"], data["via"]["dom"])
    emit(
        "fig13_intl_domestic",
        format_table(
            ["strategy", "international PNR(rtt)", "domestic PNR(rtt)"],
            rows,
            title=(
                "Figure 13: VIA improvement by call type "
                f"(intl impr {intl_impr:.0f}%, domestic impr {dom_impr:.0f}%)"
            ),
        ),
    )

    # Both populations improve materially...
    assert intl_impr >= 25.0
    assert dom_impr >= 10.0
    # ...and the strategies stay ordered on both.
    for population in ("intl", "dom"):
        assert data["oracle"][population] <= data["via"][population] + 0.02
        assert data["via"][population] < data["default"][population]
