"""Figure 3: pairwise correlation between network metrics.

Paper: p10/p50/p90 bands of one metric as a function of another show a
positive but *spread-out* relationship -- improving one metric could
worsen another, motivating the combined "at least one bad" PNR.  We
regenerate the three pairwise band plots and check both the positive
median trend and the substantial spread.
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import format_table
from repro.analysis.stats import binned_quantile_bands, pearson_correlation

PAIRS = [
    ("rtt_ms", "loss_rate"),
    ("rtt_ms", "jitter_ms"),
    ("loss_rate", "jitter_ms"),
]


@pytest.mark.benchmark(group="fig3")
def test_fig3_pairwise_bands(benchmark, suite):
    def experiment():
        outcomes = suite.all_default_outcomes()
        bands = {}
        for x_metric, y_metric in PAIRS:
            x = [o.metrics.get(x_metric) for o in outcomes]
            y = [o.metrics.get(y_metric) for o in outcomes]
            bands[(x_metric, y_metric)] = binned_quantile_bands(
                x, y, n_bins=10, min_samples=1000
            )
        return bands

    bands = once(benchmark, experiment)

    parts = []
    for (x_metric, y_metric), series in bands.items():
        rows = [
            [f"{b.bin_center:.4g}", f"{b.quantiles[10.0]:.4g}",
             f"{b.quantiles[50.0]:.4g}", f"{b.quantiles[90.0]:.4g}", b.n_samples]
            for b in series
        ]
        parts.append(
            format_table(
                [x_metric, "p10", "p50", "p90", "n"],
                rows,
                title=f"Figure 3: {y_metric} binned by {x_metric}",
            )
        )
    emit("fig3_pairwise_correlation", "\n\n".join(parts))

    for (x_metric, y_metric), series in bands.items():
        assert len(series) >= 4, (x_metric, y_metric)
        medians = [b.quantiles[50.0] for b in series]
        centers = [b.bin_center for b in series]
        # Positive overall relationship between the metrics...
        assert pearson_correlation(centers, medians) > 0.3, (x_metric, y_metric)
        # ...but with substantial spread: p90 well above p10 in most bins
        # (the paper's argument that one metric does not determine another).
        spreads = [
            b.quantiles[90.0] / max(b.quantiles[10.0], 1e-9) for b in series
        ]
        assert sum(s > 2.0 for s in spreads) >= len(spreads) // 2
