"""Figure 8: potential improvement of an oracle-based relay selection.

Paper: with foresight of each option's daily mean, relaying reduces the
metric values by 30-60% at the median (40-65% at the tail) and cuts PNR
by up to 53% per metric, and by over 30% on the combined "at least one
bad" measure.
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import (
    format_table,
    percentile_improvement,
    pnr_breakdown,
    relative_improvement,
)
from repro.netmodel.metrics import METRICS


@pytest.mark.benchmark(group="fig8")
def test_fig8_oracle_potential(benchmark, suite):
    def experiment():
        rows = {}
        for metric in METRICS:
            results = suite.results(metric)
            base_out = suite.evaluate(results["default"])
            oracle_out = suite.evaluate(results["oracle"])
            base = pnr_breakdown(base_out)
            oracle = pnr_breakdown(oracle_out)
            percentiles = percentile_improvement(
                [o.metrics.get(metric) for o in base_out],
                [o.metrics.get(metric) for o in oracle_out],
                (50, 90, 99),
            )
            rows[metric] = {
                "pnr_improvement": relative_improvement(base[metric], oracle[metric]),
                "any_improvement": relative_improvement(base["any"], oracle["any"]),
                "p50": percentiles[50.0],
                "p90": percentiles[90.0],
                "p99": percentiles[99.0],
            }
        return rows

    rows = once(benchmark, experiment)

    table = [
        [metric,
         f"{data['p50']:.0f}%", f"{data['p90']:.0f}%", f"{data['p99']:.0f}%",
         f"{data['pnr_improvement']:.0f}%", f"{data['any_improvement']:.0f}%"]
        for metric, data in rows.items()
    ]
    emit(
        "fig8_oracle_potential",
        format_table(
            ["metric", "median impr", "p90 impr", "p99 impr", "PNR impr", "any-PNR impr"],
            table,
            title="Figure 8: oracle potential (per-metric optimisation)",
        ),
    )

    for metric, data in rows.items():
        # Paper: 30-60% median / 40-65% tail / up to 53% PNR / >30% any.
        assert data["p50"] >= 15.0, (metric, data)
        assert data["p90"] >= 20.0, (metric, data)
        assert data["pnr_improvement"] >= 40.0, (metric, data)
        assert data["any_improvement"] >= 20.0, (metric, data)
    assert max(d["any_improvement"] for d in rows.values()) >= 30.0
