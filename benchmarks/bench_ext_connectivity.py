"""Connectivity relaying: the §2.1 population today's relays already serve.

The paper notes that relaying in the Skype dataset exists for NAT/firewall
traversal, not performance: blocked pairs *must* relay, and pre-VIA they
get an arbitrary relay.  This bench generates a trace where 10% of calls
are NAT-blocked and measures what VIA's relay *selection* buys that
population compared to connectivity-only relay assignment.
"""

from __future__ import annotations

import pytest

from _util import emit, once
from conftest import BENCH_DAYS
from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.core.baselines import DefaultPolicy, OraclePolicy, make_via
from repro.simulation import dense_pairs, evaluation_slice, make_inter_relay_lookup
from repro.simulation.replay import replay
from repro.workload import WorkloadConfig, generate_trace

METRIC = "rtt_ms"


@pytest.mark.benchmark(group="ext-connectivity")
def test_ext_connectivity_relaying(benchmark, bench_world):
    def experiment():
        world = bench_world
        trace = generate_trace(
            world.topology,
            WorkloadConfig(
                n_calls=30_000, n_pairs=300, frac_direct_blocked=0.10, seed=2021
            ),
            n_days=BENCH_DAYS,
        )
        dense = dense_pairs(trace, min_calls=5 * BENCH_DAYS)
        policies = {
            "connectivity-only": DefaultPolicy(),
            "via": make_via(METRIC, inter_relay=make_inter_relay_lookup(world), seed=42),
            "oracle": OraclePolicy(world, METRIC),
        }
        table = {}
        for name, policy in policies.items():
            result = replay(world, trace, policy, seed=99)
            outcomes = evaluation_slice(result.outcomes, warmup_days=2, pairs=dense)
            blocked = [o for o in outcomes if o.call.direct_blocked]
            routable = [o for o in outcomes if not o.call.direct_blocked]
            table[name] = {
                "blocked_pnr": pnr_breakdown(blocked)[METRIC],
                "routable_pnr": pnr_breakdown(routable)[METRIC],
                "n_blocked": len(blocked),
            }
        return table

    table = once(benchmark, experiment)
    base = table["connectivity-only"]
    rows = [
        [name, f"{d['blocked_pnr']:.3f}",
         f"{relative_improvement(base['blocked_pnr'], d['blocked_pnr']):.0f}%",
         f"{d['routable_pnr']:.3f}"]
        for name, d in table.items()
    ]
    emit(
        "ext_connectivity",
        format_table(
            ["strategy", "blocked-call PNR", "impr vs arbitrary relay", "routable-call PNR"],
            rows,
            title=(
                f"§2.1 extension: NAT-blocked calls ({base['n_blocked']} evaluated) "
                "-- relay selection vs relay-for-connectivity"
            ),
        ),
    )

    assert base["n_blocked"] > 300
    # Picking the relay well must clearly beat picking it arbitrarily.
    via_impr = relative_improvement(base["blocked_pnr"], table["via"]["blocked_pnr"])
    assert via_impr >= 20.0
    assert table["via"]["blocked_pnr"] >= table["oracle"]["blocked_pnr"] - 0.02
