"""Active-measurement extension (§7 "Active Measurements", implemented).

The paper proposes augmenting passive call measurements with orchestrated
mock calls that fill coverage "holes".  This bench replays VIA with and
without an :class:`~repro.core.probing.ActiveProber` and compares PNR on
the *sparse* pair population -- the calls prediction struggles with --
while reporting the probing overhead.
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.core.baselines import make_via
from repro.core.probing import ActiveProber
from repro.simulation import evaluation_slice, make_inter_relay_lookup
from repro.simulation.replay import replay

METRIC = "rtt_ms"
#: Sparse slice: pairs below the dense filter but with enough calls to score.
SPARSE_MIN, SPARSE_MAX = 40, 200


@pytest.mark.benchmark(group="ablation-probing")
def test_ablation_active_probing(benchmark, bench_world, bench_trace, bench_plan):
    def experiment():
        counts = bench_trace.pair_counts()
        sparse_pairs = {
            pair for pair, count in counts.items() if SPARSE_MIN <= count < SPARSE_MAX
        }
        inter_relay = make_inter_relay_lookup(bench_world)
        table = {}
        for name, probe_fraction in (("no probing", 0.0), ("probing 5%", 0.05)):
            policy = make_via(METRIC, inter_relay=inter_relay, seed=42)
            prober = (
                ActiveProber(policy, probe_fraction=probe_fraction)
                if probe_fraction > 0.0
                else None
            )
            result = replay(bench_world, bench_trace, policy, seed=99, prober=prober)
            sparse_out = evaluation_slice(
                result.outcomes, warmup_days=bench_plan.warmup_days, pairs=sparse_pairs
            )
            table[name] = {
                "pnr": pnr_breakdown(sparse_out)[METRIC],
                "n_probes": result.n_probes,
                "n_eval": len(sparse_out),
            }
        return table

    table = once(benchmark, experiment)
    base = table["no probing"]["pnr"]
    rows = [
        [name, f"{d['pnr']:.3f}",
         f"{relative_improvement(base, d['pnr']):.0f}%", d["n_probes"], d["n_eval"]]
        for name, d in table.items()
    ]
    emit(
        "ablation_probing",
        format_table(
            ["variant", f"sparse-pair PNR({METRIC})", "vs no-probing", "probes", "eval calls"],
            rows,
            title="§7 extension: active measurements on sparse pairs",
        ),
    )

    with_probes = table["probing 5%"]
    assert with_probes["n_probes"] > 100, "prober should have found holes to fill"
    # Probing must not hurt, and typically helps, the sparse population.
    assert with_probes["pnr"] <= base + 0.02
