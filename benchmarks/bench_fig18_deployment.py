"""Figure 18: the real-world controlled deployment (§5.5).

Paper: a cloud controller plus 14 instrumented clients in five countries;
~1000 back-to-back calls over 18 pairs with 9-20 relaying options each.
VIA's per-call choice is within 20% of the oracle for ~70% of calls while
picking the exact best option no more than ~30% of the time.

This bench runs the actual asyncio controller/client testbed over
localhost TCP.
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import format_series
from repro.deployment import TestbedConfig, run_testbed


@pytest.mark.benchmark(group="fig18")
def test_fig18_deployment_suboptimality(benchmark):
    def experiment():
        return run_testbed(
            TestbedConfig(
                n_clients=14, n_pairs=18, measurement_rounds=4, via_rounds=30, seed=99
            )
        )

    report = once(benchmark, experiment)
    emit(
        "fig18_deployment",
        format_series(
            (
                f"Figure 18: sub-optimality CDF over {report.n_calls} VIA calls "
                f"({report.n_pairs} pairs, {min(report.options_per_pair)}-"
                f"{max(report.options_per_pair)} options/pair, "
                f"{report.n_measurements} measurements); "
                f"exact-best {report.frac_exact_best:.0%}, "
                f"within-20% {report.frac_within(0.2):.0%}"
            ),
            [(round(x, 4), round(f, 3)) for x, f in report.cdf(points=15)],
            x_label="(Perf_VIA - Perf_oracle)/Perf_oracle",
            y_label="fraction of calls",
        ),
    )

    # Scale matches the paper's testbed.
    assert report.n_pairs == 18
    assert report.n_calls >= 400
    assert min(report.options_per_pair) >= 9
    # Headline shapes: within 20% of oracle for most calls, while rarely
    # locking the single best option.
    assert report.frac_within(0.2) >= 0.55
    assert report.frac_exact_best <= 0.6
    assert report.frac_within(1.0) >= 0.9
