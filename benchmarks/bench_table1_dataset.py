"""Table 1: dataset summary.

Paper: 430M calls, 135M users, 1.9K ASes, 126 countries; 46.6% of calls
international, 80.7% inter-AS, 83% wireless.  We regenerate the synthetic
equivalent and check the composition shares, which are what drive every
downstream experiment.
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import format_table


@pytest.mark.benchmark(group="table1")
def test_table1_dataset_summary(benchmark, bench_trace):
    summary = once(benchmark, bench_trace.summary)
    emit(
        "table1_dataset",
        format_table(["field", "value"], summary.rows(), title="Table 1: dataset summary"),
    )
    # Composition shares should match the paper's Table 1 population.
    assert summary.frac_international == pytest.approx(0.466, abs=0.05)
    assert summary.frac_inter_as == pytest.approx(0.807, abs=0.05)
    assert 0.6 <= summary.frac_wireless <= 0.95
    assert summary.n_countries >= 25
    assert summary.n_calls == len(bench_trace)
