"""Parallel replay engine: speedup and bit-identity of the fan-out path.

The §5 evaluation grid -- (policy x seed) replays sharing one world -- is
embarrassingly parallel.  This bench runs the same grid twice through
``repro.simulation.run_grid``, once with ``workers=1`` (the serial
baseline) and once with ``workers=4``, and checks the engine's two
contracts:

* **bit-identity**: every task's outcome sequence (options and metric
  triples) and the merged per-policy ``RunningStat``\\ s are exactly equal
  across worker counts;
* **speedup**: on a machine with >= 4 cores the parallel run must be at
  least 3x faster wall-clock.  On smaller machines (CI containers are
  often 1-2 cores) the speedup line is reported but not asserted --
  there is no parallelism for the pool to harvest.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from _util import emit, once, record_bench_json
from repro.netmodel import TopologyConfig, WorldConfig, build_world
from repro.simulation import (
    ReplayTask,
    merged_stats,
    run_grid,
    standard_policy_specs,
)
from repro.workload import WorkloadConfig, generate_trace

METRIC = "rtt_ms"
N_DAYS = 10
N_SEED_SHARDS = 4
BASE_SEED = 1234
PARALLEL_WORKERS = 4


def _grid_tasks():
    specs = standard_policy_specs(METRIC, include_strawmen=False, seed=42)
    return [
        ReplayTask(policy=spec, metric=METRIC, label=f"{name}/shard{shard}")
        for shard in range(N_SEED_SHARDS)
        for name, spec in specs.items()
    ]


@pytest.mark.benchmark(group="ext-parallel")
def test_parallel_replay_speedup_and_identity(benchmark):
    world = build_world(
        WorldConfig(
            topology=TopologyConfig(n_countries=20, n_relays=10, seed=5),
            n_days=N_DAYS,
            seed=5,
        )
    )
    trace = generate_trace(
        world.topology,
        WorkloadConfig(n_calls=12_000, n_pairs=150, seed=5),
        n_days=N_DAYS,
    )

    def experiment():
        tasks = _grid_tasks()
        t0 = time.perf_counter()
        serial = run_grid(
            tasks, world=world, trace=trace, base_seed=BASE_SEED, workers=1
        )
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = run_grid(
            tasks,
            world=world,
            trace=trace,
            base_seed=BASE_SEED,
            workers=PARALLEL_WORKERS,
        )
        t_parallel = time.perf_counter() - t0
        return serial, parallel, t_serial, t_parallel

    serial, parallel, t_serial, t_parallel = once(benchmark, experiment)

    # --- bit-identity: per-task outcome sequences are exactly equal ---
    assert len(serial) == len(parallel) == len(_grid_tasks())
    for a, b in zip(serial, parallel):
        assert a.label == b.label and a.seed == b.seed
        assert [o.option for o in a.result.outcomes] == [
            o.option for o in b.result.outcomes
        ], a.label
        assert [o.metrics for o in a.result.outcomes] == [
            o.metrics for o in b.result.outcomes
        ], a.label

    # --- and so are the merged per-policy statistics ---
    stats_serial = merged_stats(serial)
    stats_parallel = merged_stats(parallel)
    assert stats_serial.keys() == stats_parallel.keys()
    for name in stats_serial:
        assert stats_serial[name].count == stats_parallel[name].count
        assert (stats_serial[name].mean == stats_parallel[name].mean).all()
        assert (
            stats_serial[name].variance() == stats_parallel[name].variance()
        ).all()

    speedup = t_serial / max(t_parallel, 1e-9)
    n_cores = os.cpu_count() or 1
    via_mean = float(np.round(stats_serial[f"via[{METRIC}]"].mean[0], 2))
    emit(
        "ext_parallel_replay",
        "\n".join(
            [
                f"grid: {len(serial)} tasks ({N_SEED_SHARDS} seed shards x "
                f"{len(serial) // N_SEED_SHARDS} policies), "
                f"{len(trace)} calls each",
                f"serial   (workers=1): {t_serial:8.2f} s",
                f"parallel (workers={PARALLEL_WORKERS}): {t_parallel:8.2f} s",
                f"speedup: {speedup:.2f}x on {n_cores} core(s)",
                f"bit-identical results: yes (merged via mean rtt {via_mean} ms)",
            ]
        ),
    )

    if n_cores >= PARALLEL_WORKERS:
        assert speedup >= 3.0, (
            f"expected >=3x speedup at {PARALLEL_WORKERS} workers on "
            f"{n_cores} cores, got {speedup:.2f}x"
        )


@pytest.mark.benchmark(group="ext-parallel")
def test_vector_hot_path_speedup(benchmark):
    """Per-worker hot path: chunked ``assign_many``/``observe_many`` vs the
    scalar loop, on the shared microbench workload (see
    ``repro.simulation.microbench``).  The PR 7 target: >= 10x calls/sec.
    With ``REPRO_BENCH_RECORD=1`` the structured summary becomes the
    committed ``BENCH_core.json`` baseline that ``make check`` diffs
    against (fail on >20% speedup regression)."""
    from repro.simulation.microbench import hot_path_microbench

    result = once(benchmark, hot_path_microbench)

    w = result["workload"]
    rows = [
        (
            f"{path:>7}: {result[path]['calls_per_sec']:>10,.0f} calls/s  "
            f"p50 {result[path]['p50_us_per_call']:>7.2f} us/call  "
            f"p99 {result[path]['p99_us_per_call']:>7.2f} us/call  "
            f"total {result[path]['total_s']:>6.2f} s"
        )
        for path in ("scalar", "vector")
    ]
    emit(
        "vector_hot_path",
        "\n".join(
            [
                f"workload: {w['n_calls']} calls, {w['n_asns']} ASes, "
                f"{w['n_options']} options/call, chunk={w['chunk']}, "
                f"best of {w['best_of']}",
                *rows,
                f"speedup: {result['speedup']:.2f}x "
                f"(peak RSS {result['peak_rss_kb'] / 1024:.0f} MiB)",
            ]
        ),
    )

    assert result["speedup"] >= 10.0, (
        f"vector hot path must be >= 10x the scalar loop, "
        f"got {result['speedup']:.2f}x"
    )
    record_bench_json(
        "core",
        "bench_ext_parallel_replay::test_vector_hot_path_speedup",
        result,
        section="hot_path",
    )
