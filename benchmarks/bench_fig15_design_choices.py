"""Figure 15: the contribution of VIA's two Algorithm-3 modifications.

Paper: (a) dynamic confidence-interval top-k instead of a fixed top-2, and
(b) normalising UCB rewards by the top-k upper-bound average instead of
the observed range, each contribute materially: on the "at least one bad"
metric the full design cuts PNR 24% vs 15% for fixed top-2 (loss: 44% vs
26%).  We replay all four combinations.
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.core.baselines import make_via
from repro.simulation import make_inter_relay_lookup

METRIC = "loss_rate"  # the metric the paper quotes numbers for

VARIANTS = {
    "dynamic-k + via-norm": {"topk_mode": "dynamic", "ucb_mode": "via"},
    "fixed-2 + via-norm": {"topk_mode": "fixed", "fixed_k": 2, "ucb_mode": "via"},
    "dynamic-k + classic-norm": {"topk_mode": "dynamic", "ucb_mode": "classic"},
    "fixed-2 + classic-norm": {"topk_mode": "fixed", "fixed_k": 2, "ucb_mode": "classic"},
}


@pytest.mark.benchmark(group="fig15")
def test_fig15_guided_exploration_variants(benchmark, suite, bench_plan):
    def experiment():
        inter_relay = make_inter_relay_lookup(bench_plan.world)
        policies = {
            name: make_via(METRIC, inter_relay=inter_relay, seed=42, **overrides)
            for name, overrides in VARIANTS.items()
        }
        results = bench_plan.run(policies, seed=99)
        base = pnr_breakdown(suite.evaluate(suite.results(METRIC)["default"]))
        table = {}
        for name, result in results.items():
            breakdown = pnr_breakdown(bench_plan.evaluate(result))
            table[name] = {
                "pnr": breakdown[METRIC],
                "impr": relative_improvement(base[METRIC], breakdown[METRIC]),
                "any_impr": relative_improvement(base["any"], breakdown["any"]),
            }
        return table

    table = once(benchmark, experiment)
    rows = [
        [name, f"{d['pnr']:.3f}", f"{d['impr']:.0f}%", f"{d['any_impr']:.0f}%"]
        for name, d in table.items()
    ]
    emit(
        "fig15_design_choices",
        format_table(
            ["variant", f"PNR({METRIC})", "PNR impr", "any-PNR impr"],
            rows,
            title="Figure 15: guided-exploration design variants",
        ),
    )

    full = table["dynamic-k + via-norm"]
    crippled = table["fixed-2 + classic-norm"]
    # The full design must at least match the fully-ablated variant, and
    # achieve a solid absolute improvement (paper: 44% on loss PNR).
    assert full["impr"] >= crippled["impr"] - 3.0
    assert full["impr"] >= 25.0
    # No single ablation should *beat* the full design materially.
    for name, data in table.items():
        assert data["impr"] <= full["impr"] + 8.0, name
