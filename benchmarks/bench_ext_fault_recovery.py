"""Extension: deployment-plane fault recovery (§7 graceful degradation).

The paper's operational claim is that relay selection is an optimisation,
never a dependency: "if the controller is unreachable, the client simply
falls back to the default path".  This bench quantifies that claim with
the chaos-mode testbed -- the same §5.5 experiment run twice, once clean
and once under a fault plan (dropped connections, a blackholed request
window, and a relay outage) -- and compares the sub-optimality profile
plus the resilience counters the machinery reported.
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.deployment import (
    FaultPlan,
    RelayOutage,
    RetryPolicy,
    TestbedConfig,
    run_testbed,
)

#: Shared scale: smaller than Fig 18 (two full testbed runs per bench).
SCALE = dict(n_clients=10, n_pairs=10, measurement_rounds=3, via_rounds=15, seed=42)

#: The chaos schedule: 2% connection drops, requests blackholed for the
#: first few VIA rounds, relay 0 dark for most of the evaluation window.
CHAOS = FaultPlan(
    seed=7,
    drop_connection_rate=0.02,
    blackhole_windows=((24.05, 24.11),),
    relay_outages=(RelayOutage(relay_id=0, start_hours=24.0, end_hours=24.25),),
)

#: Tight budgets so blackholed requests fall back quickly.
CHAOS_RETRY = RetryPolicy(
    max_attempts=2,
    request_timeout_s=0.05,
    base_delay_s=0.01,
    max_delay_s=0.02,
    deadline_s=0.5,
)


@pytest.mark.benchmark(group="ext-fault-recovery")
def test_ext_fault_recovery(benchmark):
    def experiment():
        clean = run_testbed(TestbedConfig(**SCALE))
        chaotic = run_testbed(TestbedConfig(**SCALE, chaos=CHAOS, retry=CHAOS_RETRY))
        return clean, chaotic

    clean, chaotic = once(benchmark, experiment)

    rows = [
        ("calls scored", clean.n_calls, chaotic.n_calls),
        ("mean sub-optimality", f"{_mean(clean):.3f}", f"{_mean(chaotic):.3f}"),
        ("within 20% of oracle", f"{clean.frac_within(0.2):.0%}",
         f"{chaotic.frac_within(0.2):.0%}"),
        ("exact best", f"{clean.frac_exact_best:.0%}", f"{chaotic.frac_exact_best:.0%}"),
        ("fallbacks to default", clean.n_fallbacks, chaotic.n_fallbacks),
        ("request retries", clean.n_retries, chaotic.n_retries),
        ("request timeouts", clean.n_timeouts, chaotic.n_timeouts),
        ("client reconnects", clean.n_reconnects, chaotic.n_reconnects),
        ("dropped measurements", clean.n_dropped_measurements,
         chaotic.n_dropped_measurements),
        ("faults injected", clean.n_faults_injected, chaotic.n_faults_injected),
        ("calls during outage", clean.n_outage_calls, chaotic.n_outage_calls),
        ("assigned to dead relay", clean.n_dead_assignments, chaotic.n_dead_assignments),
    ]
    width = max(len(r[0]) for r in rows)
    lines = [
        "Deployment under chaos vs clean (same scale, seed and schedule)",
        f"{'':{width}}  {'clean':>10}  {'chaos':>10}",
    ]
    lines += [f"{name:{width}}  {str(a):>10}  {str(b):>10}" for name, a, b in rows]
    emit("ext_fault_recovery", "\n".join(lines))

    # Both runs complete and score every VIA-phase call.
    assert clean.n_calls == chaotic.n_calls == SCALE["n_pairs"] * SCALE["via_rounds"]
    # The clean run never exercises the resilience machinery...
    assert clean.n_fallbacks == clean.n_retries == clean.n_faults_injected == 0
    assert clean.n_outage_calls == 0
    # ...while the chaotic run visibly absorbs faults instead of crashing.
    assert chaotic.n_faults_injected > 0
    assert chaotic.n_fallbacks > 0
    assert chaotic.n_retries > 0
    assert chaotic.n_outage_calls > 0
    # Degradation is graceful: chaos costs quality, not completion.
    assert _mean(chaotic) < 10.0


def _mean(report) -> float:
    if not report.suboptimalities:
        return 0.0
    return sum(report.suboptimalities) / len(report.suboptimalities)
