"""MOS-objective VIA: optimising user-perceived quality directly.

The paper optimises each network metric individually and notes (§2.2)
that PCR is sensitive to all three.  This extension runs Algorithm 1 with
an E-model impairment objective (``4.5 - MOS``), trading the three
metrics against each other the way a user would, and compares mean MOS /
PCR / combined PNR against the per-metric variants.
"""

from __future__ import annotations

import numpy as np
import pytest

from _util import emit, once
from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.core.registry import build_policy
from repro.simulation.replay import replay
from repro.telephony.quality import mos_from_network, poor_call_probability


@pytest.mark.benchmark(group="ext-mos")
def test_ext_mos_objective(benchmark, suite, bench_world, bench_trace, bench_plan):
    def experiment():
        def score(outcomes):
            mos = float(np.mean([mos_from_network(o.metrics) for o in outcomes]))
            pcr = float(np.mean([poor_call_probability(o.metrics) for o in outcomes]))
            return {
                "mos": mos,
                "pcr": pcr,
                "pnr_any": pnr_breakdown(outcomes)["any"],
            }

        rtt_suite = suite.results("rtt_ms")
        table = {
            "default": score(suite.evaluate(rtt_suite["default"])),
            "via[rtt]": score(suite.evaluate(rtt_suite["via"])),
        }
        mos_policy = build_policy("via", bench_world, metric="mos", seed=42)
        mos_result = replay(bench_world, bench_trace, mos_policy, seed=99)
        table["via[mos]"] = score(bench_plan.evaluate(mos_result))
        mos_oracle = build_policy("oracle", bench_world, metric="mos")
        oracle_result = replay(bench_world, bench_trace, mos_oracle, seed=99)
        table["oracle[mos]"] = score(bench_plan.evaluate(oracle_result))
        return table

    table = once(benchmark, experiment)
    rows = [
        [name, f"{d['mos']:.3f}", f"{d['pcr']:.3f}", f"{d['pnr_any']:.3f}"]
        for name, d in table.items()
    ]
    emit(
        "ext_mos_objective",
        format_table(
            ["strategy", "mean MOS", "expected PCR", "PNR(any)"],
            rows,
            title="Extension: optimising E-model MOS directly",
        ),
    )

    # MOS-objective VIA must improve user-perceived quality over default...
    assert table["via[mos]"]["mos"] > table["default"]["mos"] + 0.05
    assert table["via[mos]"]["pcr"] < table["default"]["pcr"] - 0.01
    # ...and be at least as good on PCR as single-metric rtt optimisation.
    assert table["via[mos]"]["pcr"] <= table["via[rtt]"]["pcr"] + 0.01
    # Foresight still bounds it.
    assert table["oracle[mos]"]["mos"] >= table["via[mos]"]["mos"] - 0.02
