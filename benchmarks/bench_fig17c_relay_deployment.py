"""Figure 17c: impact of relay deployment (excluding least-used relays).

Paper: benefit contributions across relay nodes are highly skewed --
removing 50% of the least-used relays barely dents VIA's gains, so new
relays should be deployed where they matter.
"""

from __future__ import annotations

from collections import Counter

import pytest

from _util import emit, once
from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.core.baselines import make_via
from repro.netmodel import restrict_relays
from repro.simulation import make_inter_relay_lookup
from repro.simulation.replay import replay

METRIC = "rtt_ms"


@pytest.mark.benchmark(group="fig17c")
def test_fig17c_relay_deployment(benchmark, suite, bench_plan, bench_trace):
    def experiment():
        world = bench_plan.world
        full_results = suite.results(METRIC)
        base = pnr_breakdown(suite.evaluate(full_results["default"]))

        # Rank relays by how often the full VIA run used them.
        usage: Counter[int] = Counter()
        for outcome in full_results["via"].outcomes:
            for relay_id in outcome.option.relay_ids():
                usage[relay_id] += 1
        ranked = [rid for rid, _count in usage.most_common()]
        for rid in world.topology.relay_ids:  # never-used relays rank last
            if rid not in ranked:
                ranked.append(rid)

        table = {
            "all relays": {
                "n_relays": len(world.topology.relay_ids),
                "pnr": pnr_breakdown(suite.evaluate(full_results["via"]))[METRIC],
            }
        }
        for keep_fraction in (0.5, 0.25):
            keep = max(2, int(keep_fraction * len(ranked)))
            filtered = restrict_relays(world, set(ranked[:keep]))
            policy = make_via(METRIC, inter_relay=make_inter_relay_lookup(world), seed=42)
            result = replay(filtered, bench_trace, policy, seed=99)
            table[f"top {keep_fraction:.0%} most-used"] = {
                "n_relays": keep,
                "pnr": pnr_breakdown(bench_plan.evaluate(result))[METRIC],
            }
        for name, data in table.items():
            data["impr"] = relative_improvement(base[METRIC], data["pnr"])
        return table, usage

    table, usage = once(benchmark, experiment)
    rows = [
        [name, d["n_relays"], f"{d['pnr']:.3f}", f"{d['impr']:.0f}%"]
        for name, d in table.items()
    ]
    usage_rows = [[rid, count] for rid, count in usage.most_common()]
    emit(
        "fig17c_relay_deployment",
        format_table(["deployment", "relays", f"PNR({METRIC})", "improvement"], rows,
                     title="Figure 17c: excluding least-used relays")
        + "\n\n"
        + format_table(["relay id", "calls relayed"], usage_rows,
                       title="Relay usage skew under full VIA"),
    )

    full = table["all relays"]["impr"]
    half = table["top 50% most-used"]["impr"]
    # Paper: removing 50% of the least-used relays causes little drop.
    assert half >= full - 12.0
    assert half >= 0.7 * full
    # Usage is skewed: the busiest relay clearly dwarfs the median one.
    counts = sorted(usage.values(), reverse=True)
    assert counts[0] > 2 * counts[len(counts) // 2]
