"""Robustness: the headline ordering must hold across random worlds.

The paper quantifies confidence with SEM error bars (§5.1).  Beyond
within-run error bars, a synthetic-substrate reproduction must show its
conclusions do not hinge on one lucky seed: this bench re-runs the
default/VIA/oracle comparison on three independently generated worlds and
traces and checks the ordering and magnitudes each time.
"""

from __future__ import annotations

import pytest

from _util import bench_workers, emit, once
from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.netmodel import TopologyConfig, WorldConfig, build_world
from repro.simulation import (
    ExperimentPlan,
    ReplayTask,
    run_grid,
    standard_policy_specs,
)
from repro.workload import WorkloadConfig, generate_trace

METRIC = "rtt_ms"
SEEDS = (101, 202, 303)
N_DAYS = 15


@pytest.mark.benchmark(group="robustness")
def test_robustness_across_seeds(benchmark):
    workers = bench_workers()

    def experiment():
        # The grid is (world seed x policy): nine independent replays over
        # three worlds, fanned out over the process pool when WORKERS>1.
        # Results are bit-identical to the old per-seed serial loop.
        plans: dict[int, ExperimentPlan] = {}
        scenarios = {}
        tasks = []
        for seed in SEEDS:
            world = build_world(
                WorldConfig(
                    topology=TopologyConfig(n_countries=25, n_relays=12, seed=seed),
                    n_days=N_DAYS,
                    seed=seed,
                )
            )
            trace = generate_trace(
                world.topology,
                WorkloadConfig(n_calls=25_000, n_pairs=250, seed=seed),
                n_days=N_DAYS,
            )
            plans[seed] = ExperimentPlan(
                world=world, trace=trace, warmup_days=2, min_pair_calls=8 * N_DAYS
            )
            scenarios[seed] = (world, trace)
            specs = standard_policy_specs(METRIC, include_strawmen=False, seed=seed)
            tasks.extend(
                ReplayTask(policy=spec, seed=seed, scenario=seed, label=name)
                for name, spec in specs.items()
            )
        grid = run_grid(tasks, scenarios=scenarios, workers=workers)
        table = {}
        for seed in SEEDS:
            results = {
                r.task.label: r.result for r in grid if r.task.scenario == seed
            }
            plan = plans[seed]
            base = pnr_breakdown(plan.evaluate(results["default"]))[METRIC]
            via = pnr_breakdown(plan.evaluate(results["via"]))[METRIC]
            oracle = pnr_breakdown(plan.evaluate(results["oracle"]))[METRIC]
            table[seed] = {"default": base, "via": via, "oracle": oracle}
        return table

    table = once(benchmark, experiment)
    rows = [
        [seed, f"{d['default']:.3f}", f"{d['via']:.3f}", f"{d['oracle']:.3f}",
         f"{relative_improvement(d['default'], d['via']):.0f}%"]
        for seed, d in table.items()
    ]
    emit(
        "robustness_seeds",
        format_table(
            ["world seed", "default PNR", "VIA PNR", "oracle PNR", "VIA impr"],
            rows,
            title=f"Seed robustness on {METRIC} (independent worlds + traces)",
        ),
    )

    for seed, d in table.items():
        # Ordering holds on every seed...
        assert d["oracle"] <= d["via"] + 0.02, seed
        assert d["via"] < d["default"], seed
        # ...and the improvement is always substantial.
        assert relative_improvement(d["default"], d["via"]) >= 30.0, seed
