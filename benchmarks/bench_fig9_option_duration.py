"""Figure 9: how long the oracle's best relaying option lasts.

Paper: the optimal option for ~30% of AS pairs changes within 2 days, and
only ~20% of pairs keep the same optimum for more than 20 days -- static
relay configuration cannot work; selection must be dynamic.
"""

from __future__ import annotations

import numpy as np
import pytest

from _util import emit, once
from conftest import BENCH_DAYS as BENCH_EVAL_DAYS

from repro.analysis import best_option_durations, format_series


@pytest.mark.benchmark(group="fig9")
def test_fig9_best_option_duration(benchmark, suite, bench_world, bench_plan):
    def experiment():
        world = bench_world
        best_by_day: dict[tuple[int, int], dict[int, object]] = {}
        for pair in bench_plan.dense:
            a, b = pair
            options = world.options_for_pair(a, b)
            per_day: dict[int, object] = {}
            for day in range(BENCH_EVAL_DAYS):
                per_day[day] = str(world.best_option(a, b, day, "rtt_ms", options))
            best_by_day[pair] = per_day
        return best_option_durations(best_by_day)

    durations = once(benchmark, experiment)
    arr = np.asarray(durations)
    points = [(d, round(float(np.mean(arr <= d)), 3)) for d in (1, 2, 3, 5, 10, 20, 25)]
    emit(
        "fig9_option_duration",
        format_series(
            f"Figure 9: CDF of median best-option duration over {len(arr)} AS pairs",
            points, x_label="duration (days)", y_label="CDF",
        ),
    )

    assert len(arr) >= 20
    short_lived = float(np.mean(arr < 2.0))
    long_lived = float(np.mean(arr > 20.0))
    # Paper: ~30% of pairs change within 2 days; only ~20% stable >20 days.
    assert short_lived >= 0.15, short_lived
    assert long_lived <= 0.40, long_lived
