"""Figure 14: dissecting VIA's improvement by country.

Paper: countries with the worst direct-path PNR sit far above the global
PNR, and for most of them VIA lands closer to the oracle than to the
default strategy (shown for PNR of RTT, loss and jitter).
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import by_country_pnr, format_table, pnr
from repro.netmodel.metrics import METRICS

N_WORST = 8


@pytest.mark.benchmark(group="fig14")
def test_fig14_by_country_dissection(benchmark, suite):
    def experiment():
        data = {}
        for metric in METRICS:
            results = suite.results(metric)
            default_out = suite.evaluate(results["default"])
            default_by_country = by_country_pnr(default_out, metric, min_calls=300)
            worst = sorted(
                default_by_country, key=default_by_country.get, reverse=True
            )[:N_WORST]
            via_by_country = by_country_pnr(
                suite.evaluate(results["via"]), metric, min_calls=200
            )
            oracle_by_country = by_country_pnr(
                suite.evaluate(results["oracle"]), metric, min_calls=200
            )
            data[metric] = {
                "global": pnr(default_out, metric),
                "rows": [
                    (
                        country,
                        default_by_country[country],
                        via_by_country.get(country),
                        oracle_by_country.get(country),
                    )
                    for country in worst
                ],
            }
        return data

    data = once(benchmark, experiment)

    parts = []
    for metric, block in data.items():
        rows = [
            [country, f"{default:.3f}",
             "-" if via is None else f"{via:.3f}",
             "-" if oracle is None else f"{oracle:.3f}"]
            for country, default, via, oracle in block["rows"]
        ]
        parts.append(
            format_table(
                ["country", "default", "VIA", "oracle"],
                rows,
                title=f"Figure 14 ({metric}): worst countries "
                      f"(global default PNR {block['global']:.3f})",
            )
        )
    emit("fig14_by_country", "\n\n".join(parts))

    for metric, block in data.items():
        # Worst countries sit well above the global PNR.
        assert block["rows"][0][1] > 1.5 * block["global"], metric
        # For most listed countries VIA improves on the default...
        comparable = [r for r in block["rows"] if r[2] is not None]
        assert len(comparable) >= 4, metric
        improved = sum(via < default for _c, default, via, _o in comparable)
        assert improved >= 0.6 * len(comparable), metric
