"""Figure 5: poor calls are not concentrated in a few AS pairs.

Paper: the worst 1000 AS pairs together account for less than 15% of all
calls with poor performance -- localized fixes cannot help.  Scaled to
our synthetic population: the worst few percent of pairs must cover only
a modest share of poor calls.
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import format_series, pair_contribution_curve


@pytest.mark.benchmark(group="fig5")
def test_fig5_worst_pairs_contribution(benchmark, suite):
    def experiment():
        return pair_contribution_curve(suite.all_default_outcomes(), None)

    curve = once(benchmark, experiment)
    n_pairs = len(curve)
    checkpoints = [1, 5, 10, 25, 50, 100, 200, n_pairs]
    series = [
        (n, round(curve[min(n, n_pairs) - 1][1], 3)) for n in checkpoints if n <= n_pairs
    ]
    emit(
        "fig5_aspair_contribution",
        format_series(
            f"Figure 5: cumulative poor-call share of worst-n AS pairs "
            f"(of {n_pairs} pairs with poor calls)",
            series, x_label="worst n pairs", y_label="share of poor calls",
        ),
    )

    assert n_pairs >= 100, "population too small to assess spread"
    # The paper's point, rescaled: the worst ~1.5% of pairs (1000 of ~66k
    # pairs in the paper) cover well under half of all poor calls.
    worst_few = max(1, int(0.015 * n_pairs))
    assert curve[worst_few - 1][1] < 0.45
    # And no single pair dominates.
    assert curve[0][1] < 0.25
