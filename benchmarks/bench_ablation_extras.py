"""Extra ablations beyond the paper's Figure 15 (DESIGN.md §5).

* tomography on/off -- how much coverage expansion buys (§4.4),
* ε = 0 vs ε = 0.05 general exploration -- tracking non-stationary
  performance (§4.5's second modification).
"""

from __future__ import annotations

import pytest

from _util import emit, once
from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.core.baselines import make_via
from repro.simulation import make_inter_relay_lookup

METRIC = "rtt_ms"


@pytest.mark.benchmark(group="ablation")
def test_ablation_tomography_and_epsilon(benchmark, suite, bench_plan):
    def experiment():
        inter_relay = make_inter_relay_lookup(bench_plan.world)
        policies = {
            "no-tomography": make_via(
                METRIC, inter_relay=None, use_tomography=False, seed=42
            ),
            "no-epsilon": make_via(METRIC, inter_relay=inter_relay, epsilon=0.0, seed=42),
        }
        results = bench_plan.run(policies, seed=99)
        base = pnr_breakdown(suite.evaluate(suite.results(METRIC)["default"]))
        table = {
            "full VIA": pnr_breakdown(suite.evaluate(suite.results(METRIC)["via"])),
        }
        for name, result in results.items():
            table[name] = pnr_breakdown(bench_plan.evaluate(result))
        return base, table

    base, table = once(benchmark, experiment)
    rows = [
        [name, f"{breakdown[METRIC]:.3f}",
         f"{relative_improvement(base[METRIC], breakdown[METRIC]):.0f}%"]
        for name, breakdown in table.items()
    ]
    emit(
        "ablation_extras",
        format_table(
            ["variant", f"PNR({METRIC})", "improvement"],
            rows,
            title="Extra ablations: tomography and general exploration",
        ),
    )

    full = relative_improvement(base[METRIC], table["full VIA"][METRIC])
    for name in ("no-tomography", "no-epsilon"):
        variant = relative_improvement(base[METRIC], table[name][METRIC])
        # Neither ablation should beat the full design materially, and
        # both should still function (graceful degradation).
        assert variant <= full + 6.0, name
        assert variant >= 10.0, name
