"""One-shot CI gate (``make check``): docs, tests, and verified verification.

Runs, in order, failing fast:

1. ``scripts/check_docs.py`` — documentation referential integrity;
2. the tier-1 test suite (``pytest tests/``) under the ``ci`` hypothesis
   profile;
3. a small-budget :func:`repro.verify.runner.run_verify` executed under
   the stdlib :mod:`trace` module, asserting both that the run passes
   *and* that it actually exercises the verification plane: aggregate
   line coverage over ``src/repro/verify/`` must clear
   :data:`COVERAGE_FLOOR`.  A verification gate whose own code stops
   running is worse than none — it green-lights silently;
4. the vector hot-path regression gate: a reduced
   :func:`repro.simulation.microbench.hot_path_microbench` run whose
   scalar-vs-vector speedup must stay within
   :data:`BENCH_REGRESSION_TOLERANCE` of the committed ``BENCH_core.json``
   baseline (recorded by ``make bench-record``) — a >20% regression on
   the batch assignment path fails the build;
5. a 2-shard controller-ring smoke: hello (shard map discovery) →
   routed measurements → a gossip round replicating the fleet history →
   a WAL-recovered failover that catches up via gossip.  The full suite
   is ``make test-shard``; this leg just proves the ring wires up end to
   end in the gate environment;
6. the registry-completeness lint: every concrete policy class in
   ``src/repro/core/`` must be reachable through
   :data:`repro.core.registry.REGISTRY`, every entry must build on a tiny
   world, ``PolicySpec`` round-trips through the registry, and every
   ``supports_checkpoint`` entry round-trips its ``state_dict``;
7. a smoke-budget chaos soak (:func:`repro.soak.run_soak`): the full
   operational lifecycle — WAL rotation, snapshots, compaction, crash +
   recover with fingerprint equivalence — under seed-derived chaos, with
   the resource-trend watchdogs armed.  The hours-long run is
   ``repro soak --budget full``; this leg proves the harness itself and
   catches gross leaks in under a minute.

The coverage leg uses :mod:`trace` (stdlib) rather than ``coverage.py``
deliberately: the reproduction environment is offline and must not grow
dependencies.  Denominators come from each file's compiled code objects
(``co_lines``), so docstrings and blank lines don't dilute the ratio.

    PYTHONPATH=src python scripts/ci_check.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import trace
import types
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
VERIFY_SRC = REPO_ROOT / "src" / "repro" / "verify"

#: Minimum fraction of executable lines in ``src/repro/verify`` that the
#: small-budget run must execute.  Error/failure branches legitimately
#: stay cold on a passing run; everything else must be warm.
COVERAGE_FLOOR = 0.65

#: The committed hot-path perf baseline (``make bench-record``).
BENCH_BASELINE = REPO_ROOT / "BENCH_core.json"

#: The measured scalar-vs-vector speedup must stay above this fraction of
#: the committed baseline's: 0.8 = "fail the build on a >20% regression".
BENCH_REGRESSION_TOLERANCE = 0.8


def _run(step: str, argv: list[str], env: dict[str, str]) -> bool:
    print(f"== {step}: {' '.join(argv)}", flush=True)
    result = subprocess.run(argv, cwd=REPO_ROOT, env=env)
    if result.returncode != 0:
        print(f"ci-check: FAILED at {step} (exit {result.returncode})")
        return False
    return True


def _executable_lines(path: Path) -> set[int]:
    """Line numbers the compiler says can execute in ``path``."""
    code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for _start, _end, lineno in obj.co_lines():
            if lineno is not None:
                lines.add(lineno)
        stack.extend(c for c in obj.co_consts if isinstance(c, types.CodeType))
    return lines


def _verify_with_coverage() -> bool:
    print("== verify: small-budget run_verify under stdlib trace", flush=True)

    def traced(tmp: Path):
        # Imports happen *inside* the traced call so the plane's
        # module-level lines (defs, dataclass fields) count as executed;
        # nothing under repro.verify may be imported before this point.
        from repro.obs.metrics import MetricsRegistry
        from repro.verify import VerifyBudget, run_verify

        budget = VerifyBudget(
            differential_streams=2,
            differential_steps=120,
            crash_rounds=4,
            corrupt_samples=16,
            statemachine_examples=3,
            statemachine_steps=15,
            seed=0,
        )
        return run_verify(
            budget,
            workdir=tmp / "work",
            registry=MetricsRegistry(),
            artifacts_dir=tmp / "artifacts",
        )

    assert not any(name.startswith("repro.verify") for name in sys.modules), (
        "repro.verify imported before the coverage tracer started"
    )
    # trace._Ignore caches its per-module ignore decision keyed on the
    # *basename* (`_modname`), so once any site-packages `__init__.py` or
    # `runner.py` is ignored, ours would be too.  Key the cache on the
    # full path instead; results().counts is unaffected.
    trace._modname = lambda path: path
    tracer = trace.Trace(
        count=1, trace=0, ignoredirs=[sys.prefix, sys.exec_prefix]
    )
    with tempfile.TemporaryDirectory(prefix="ci-check-") as tmp:
        report = tracer.runfunc(traced, Path(tmp))
    print(report.summary())
    if not report.ok or report.truncated:
        print("ci-check: FAILED at verify (run did not pass cleanly)")
        return False

    executed: dict[str, set[int]] = {}
    for (filename, lineno), hits in tracer.results().counts.items():
        if hits > 0:
            executed.setdefault(os.path.abspath(filename), set()).add(lineno)
    total_lines = 0
    total_hit = 0
    print(f"coverage of {VERIFY_SRC.relative_to(REPO_ROOT)}:")
    for path in sorted(VERIFY_SRC.glob("*.py")):
        lines = _executable_lines(path)
        hit = lines & executed.get(str(path.resolve()), set())
        total_lines += len(lines)
        total_hit += len(hit)
        print(f"  {path.name:<18} {len(hit):>4}/{len(lines):<4} "
              f"({len(hit) / max(1, len(lines)):.0%})")
    ratio = total_hit / max(1, total_lines)
    print(f"  {'TOTAL':<18} {total_hit:>4}/{total_lines:<4} ({ratio:.0%}) "
          f"[floor {COVERAGE_FLOOR:.0%}]")
    if ratio < COVERAGE_FLOOR:
        print("ci-check: FAILED at verify-coverage "
              f"({ratio:.1%} < {COVERAGE_FLOOR:.0%}: the gate is not "
              "actually exercising the verification plane)")
        return False
    return True


def _bench_regression_gate() -> bool:
    """The hot-path perf gate: measured speedup vs the committed baseline.

    Runs a reduced-size microbench (same workload shape, a third of the
    calls) so the gate costs seconds, and compares *speedup ratios* --
    machine-relative, so a slower CI box doesn't trip it; only the vector
    path losing ground against the scalar path on the same machine does.
    """
    print("== bench: vector hot-path regression gate", flush=True)
    if not BENCH_BASELINE.exists():
        print(
            "ci-check: FAILED at bench (committed baseline "
            f"{BENCH_BASELINE.name} missing; record one with `make bench-record`)"
        )
        return False
    baseline = json.loads(BENCH_BASELINE.read_text(encoding="utf-8"))
    # Sectioned layout ({"hot_path": {...}, "multipath": {...}}); fall
    # back to the pre-section whole-file layout for old baselines.
    baseline = baseline.get("hot_path", baseline)
    base_speedup = float(baseline["speedup"])
    from repro.simulation.microbench import MicrobenchConfig, hot_path_microbench

    measured = hot_path_microbench(MicrobenchConfig(n_calls=20_000, best_of=2))
    floor = BENCH_REGRESSION_TOLERANCE * base_speedup
    print(
        f"  baseline {base_speedup:.2f}x ({baseline.get('recorded_at', '?')}), "
        f"measured {measured['speedup']:.2f}x "
        f"({measured['vector']['calls_per_sec']:,.0f} vector calls/s), "
        f"floor {floor:.2f}x"
    )
    if measured["speedup"] < floor:
        print(
            "ci-check: FAILED at bench-regression "
            f"({measured['speedup']:.2f}x < {floor:.2f}x: the vector hot "
            "path regressed >20% against BENCH_core.json)"
        )
        return False
    return True


def _shard_smoke() -> bool:
    """End-to-end ring smoke: hello → route → gossip → failover."""
    print("== shard: 2-shard ring smoke (hello/route/gossip/failover)", flush=True)
    import asyncio

    async def smoke(tmp: Path) -> str | None:
        from repro.core.policy import ViaConfig
        from repro.deployment.protocol import ShardMapMessage
        from repro.deployment.ring import (
            InProcessRing,
            ShardController,
            ShardedViaClient,
        )
        from repro.netmodel.metrics import PathMetrics
        from repro.netmodel.options import DIRECT, RelayOption

        options = [DIRECT, RelayOption.bounce(0)]
        ring = InProcessRing(2, ViaConfig(seed=5), store_root=tmp)
        await ring.start()
        try:
            # hello: the ack must carry the shard map.
            client = ShardedViaClient(1, "US", "127.0.0.1", ring.shards[0].port)
            await client.connect()
            if client.shard_map != ring.shard_map:
                return "hello_ack did not carry the shard map"
            # route: one pair per shard; each measurement lands on its owner.
            dsts: dict[int, int] = {}
            dst = 2
            while len(dsts) < 2:
                dsts.setdefault(ring.shard_map.shard_of(1, dst), dst)
                dst += 1
            for d in dsts.values():
                result = await client.assign(d, options, 0.1)
                await client.report_measurement(
                    d, result.option, PathMetrics(90.0, 0.01, 4.0), 0.1
                )
            for _ in range(500):
                if all(s.n_measurements == 1 for s in ring.shards):
                    break
                await asyncio.sleep(0.01)
            await client.close()
            counts = [s.n_measurements for s in ring.shards]
            if counts != [1, 1]:
                return f"measurements misrouted: {counts}"
            # gossip: one round replicates the fleet's history everywhere.
            await ring.gossip_round()
            merged = [s.policy.history.total_calls() for s in ring.shards]
            if merged != [2, 2]:
                return f"gossip did not replicate the fleet history: {merged}"
            # failover: hard-stop shard 0, recover a replacement from its
            # WAL, then one gossip round catches it up on the fleet.
            await ring.shards[0].stop()
            revived = ShardController(
                ViaConfig(seed=5),
                shard_index=0,
                n_shards=2,
                gossip_on_map_update=False,
                store=tmp / "shard-0",
            )
            await revived.start()
            try:
                if revived.local_history.total_calls() != 1:
                    return "WAL recovery lost the shard's own measurements"
                revived._on_shard_map(
                    ShardMapMessage(
                        shard_map={
                            "version": 2,
                            "shards": [
                                ["127.0.0.1", revived.port],
                                ["127.0.0.1", ring.shards[1].port],
                            ],
                        }
                    )
                )
                await revived.gossip_now()
                if revived.policy.history.total_calls() != 2:
                    return "post-failover gossip did not catch up"
            finally:
                await revived.stop()
        finally:
            await ring.shards[1].stop()
        return None

    with tempfile.TemporaryDirectory(prefix="ci-shard-") as tmp:
        failure = asyncio.run(smoke(Path(tmp)))
    if failure is not None:
        print(f"ci-check: FAILED at shard-smoke ({failure})")
        return False
    print("  ring OK: map discovery, routing, gossip replication, WAL failover")
    return True


def _registry_lint() -> bool:
    """Registry completeness: no policy class escapes the registry.

    Four checks, all cheap:

    1. every concrete class under ``repro.core`` implementing the policy
       interface (``assign``/``observe`` or ``assign_paths``/
       ``observe_paths``) is reachable as some entry's ``policy_class``;
    2. every registered entry builds against a tiny world;
    3. ``PolicySpec(kind=<name>)`` resolves through the registry to the
       same class and display name as a direct registry build;
    4. every ``supports_checkpoint`` entry round-trips its ``state_dict``
       through a freshly built twin.
    """
    print("== registry: completeness lint over src/repro/core", flush=True)
    import importlib
    import inspect
    import pkgutil

    import repro.core
    from repro.core.registry import REGISTRY
    from repro.netmodel.topology import TopologyConfig
    from repro.netmodel.world import WorldConfig, build_world
    from repro.simulation.parallel import PolicySpec

    def is_policy_class(obj: object) -> bool:
        if not inspect.isclass(obj) or getattr(obj, "_is_protocol", False):
            return False
        single = callable(getattr(obj, "assign", None)) and callable(
            getattr(obj, "observe", None)
        )
        multi = callable(getattr(obj, "assign_paths", None)) and callable(
            getattr(obj, "observe_paths", None)
        )
        return single or multi

    concrete: set[type] = set()
    for info in pkgutil.iter_modules(repro.core.__path__):
        module = importlib.import_module(f"repro.core.{info.name}")
        for _name, obj in vars(module).items():
            if is_policy_class(obj) and obj.__module__ == module.__name__:
                concrete.add(obj)
    unregistered = concrete - REGISTRY.policy_classes()
    if unregistered:
        names = ", ".join(sorted(c.__qualname__ for c in unregistered))
        print(
            "ci-check: FAILED at registry-lint (policy classes in repro.core "
            f"with no registry entry: {names}; add a @register factory in "
            "src/repro/core/registry.py)"
        )
        return False

    world = build_world(
        WorldConfig(
            topology=TopologyConfig(n_countries=5, n_relays=4), n_days=2, seed=3
        )
    )
    for entry in REGISTRY.entries():
        try:
            built = entry.build(world, metric="rtt_ms", seed=11)
        except Exception as exc:
            print(f"ci-check: FAILED at registry-lint (entry {entry.name!r} "
                  f"did not build: {exc!r})")
            return False
        if entry.policy_class is not None and not isinstance(
            built, entry.policy_class
        ):
            print(
                f"ci-check: FAILED at registry-lint (entry {entry.name!r} "
                f"built a {type(built).__qualname__}, not its declared "
                f"{entry.policy_class.__qualname__})"
            )
            return False
        via_spec = PolicySpec(kind=entry.name, seed=11).build(world)
        if type(via_spec) is not type(built) or via_spec.name != built.name:
            print(
                f"ci-check: FAILED at registry-lint (PolicySpec round-trip "
                f"for {entry.name!r} diverged: spec built "
                f"{type(via_spec).__qualname__} {via_spec.name!r}, registry "
                f"built {type(built).__qualname__} {built.name!r})"
            )
            return False
        if entry.supports_checkpoint:
            state = built.state_dict()
            twin = entry.build(world, metric="rtt_ms", seed=11)
            twin.load_state_dict(state)
            if twin.state_dict() != state:
                print(
                    "ci-check: FAILED at registry-lint (checkpoint round-trip "
                    f"for {entry.name!r} is not stable)"
                )
                return False
    print(
        f"  registry OK: {len(concrete)} policy classes covered, "
        f"{len(REGISTRY)} entries build + spec-resolve"
        " (checkpoint entries round-trip)"
    )
    return True


def _soak_smoke() -> bool:
    """Smoke-budget chaos soak: the endurance loop, compressed to ~10 s."""
    print("== soak: smoke-budget chaos soak (repro soak --budget smoke)",
          flush=True)
    from repro.obs.metrics import MetricsRegistry
    from repro.soak import SoakBudget, run_soak

    with tempfile.TemporaryDirectory(prefix="ci-soak-") as tmp:
        report = run_soak(
            SoakBudget.smoke(seed=0),
            workdir=Path(tmp) / "work",
            registry=MetricsRegistry(),
            artifacts_dir=Path(tmp) / "artifacts",
        )
        if not report.ok:
            print(report.summary())
            print("ci-check: FAILED at soak-smoke")
            return False
    print(
        f"  soak OK: {report.n_ticks} ticks, {report.n_restores} restores "
        f"({report.n_raced_restores} raced), {report.n_compactions} "
        f"compactions, watchdogs quiet ({report.duration_s:.1f}s)"
    )
    return True


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.setdefault("REPRO_HYPOTHESIS_PROFILE", "ci")
    steps = (
        ("docs-check", [sys.executable, "scripts/check_docs.py"]),
        ("tier-1 tests", [sys.executable, "-m", "pytest", "tests/"]),
    )
    for step, argv in steps:
        if not _run(step, argv, env):
            return 1
    sys.path.insert(0, str(REPO_ROOT / "src"))
    if not _verify_with_coverage():
        return 1
    # The bench gate imports repro.* directly, so it must run after the
    # traced verify leg (which requires repro.verify to be un-imported).
    if not _bench_regression_gate():
        return 1
    if not _shard_smoke():
        return 1
    if not _registry_lint():
        return 1
    if not _soak_smoke():
        return 1
    print(
        "ci-check: OK (docs, tier-1, verify + coverage floor, bench gate, "
        "shard smoke, registry lint, soak smoke)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
