"""Calibration harness: check the synthetic world against the paper's shapes.

Prints the direct-path metric distribution (Figure 2 targets: ~15% of
calls beyond each poor threshold), the international/domestic PNR ratio
(Figure 4: 2-3x), and the oracle's headroom (Figure 8: PNR reduction up
to ~53%, metric medians down 30-60%).

Run:  python scripts/calibrate_world.py [n_calls]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import build_world, generate_trace, WorldConfig, WorkloadConfig
from repro.analysis import (
    DEFAULT_THRESHOLDS,
    pnr_breakdown,
    relative_improvement,
    split_international,
)
from repro.core.baselines import DefaultPolicy, OraclePolicy
from repro.netmodel import TopologyConfig
from repro.simulation import ExperimentPlan


def main() -> None:
    n_calls = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    t0 = time.time()
    world = build_world(
        WorldConfig(topology=TopologyConfig(n_countries=30, n_relays=14), n_days=20)
    )
    trace = generate_trace(
        world.topology, WorkloadConfig(n_calls=n_calls, n_pairs=600), n_days=20
    )
    plan = ExperimentPlan(world=world, trace=trace, warmup_days=1, min_pair_calls=30)
    results = plan.run(
        {"default": DefaultPolicy(), "oracle": OraclePolicy(world, "rtt_ms")}, seed=3
    )
    print(f"replay: {time.time() - t0:.1f}s")

    direct = plan.evaluate(results["default"])
    rtt = np.array([o.metrics.rtt_ms for o in direct])
    loss = np.array([o.metrics.loss_rate for o in direct])
    jit = np.array([o.metrics.jitter_ms for o in direct])
    for name, arr, thr in (
        ("rtt", rtt, DEFAULT_THRESHOLDS.rtt_ms),
        ("loss", loss, DEFAULT_THRESHOLDS.loss_rate),
        ("jitter", jit, DEFAULT_THRESHOLDS.jitter_ms),
    ):
        q = np.percentile(arr, [10, 50, 85, 90, 99])
        print(
            f"{name:7s} p10={q[0]:.4g} p50={q[1]:.4g} p85={q[2]:.4g} "
            f"p90={q[3]:.4g} p99={q[4]:.4g}  PNR={np.mean(arr >= thr):.3f}"
        )

    intl, dom = split_international(direct)
    b_i, b_d = pnr_breakdown(intl), pnr_breakdown(dom)
    print("intl/domestic PNR ratio:",
          {k: round(b_i[k] / b_d[k], 2) if b_d[k] else None for k in b_i})

    base = pnr_breakdown(direct)
    orc = pnr_breakdown(plan.evaluate(results["oracle"]))
    print("default PNR:", {k: round(v, 3) for k, v in base.items()})
    print("oracle  PNR:", {k: round(v, 3) for k, v in orc.items()})
    print("oracle PNR impr:",
          {k: f"{relative_improvement(base[k], orc[k]):.0f}%" for k in base})
    o_rtt = np.array([o.metrics.rtt_ms for o in plan.evaluate(results["oracle"])])
    print(f"oracle rtt median impr: {relative_improvement(float(np.median(rtt)), float(np.median(o_rtt))):.0f}%")
    print("oracle mix:", results["oracle"].option_mix())


if __name__ == "__main__":
    main()
