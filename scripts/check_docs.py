"""Documentation referential-integrity checker (``make docs-check``).

Scans the operator-facing documentation (README.md, DESIGN.md,
EXPERIMENTS.md, and -- auto-globbed, so new pages are covered the moment
they exist -- every ``docs/*.md``) and fails on *dangling* references, so
the docs cannot silently rot as the code moves:

* dotted code references — every ``repro.*`` token must resolve to an
  importable module or an attribute reachable from one
  (``repro.core.policy.ViaPolicy`` → import + getattr chain);
* ``ClassName.attr`` references — when ``ClassName`` is a class defined
  anywhere under :mod:`repro`, the attribute must exist on it;
* file paths — backticked paths and local markdown link targets must
  exist on disk (paths like ``core/policy.py`` are also tried relative
  to ``src/repro/``);
* pytest node ids — ``tests/test_x.py::test_name`` must name a test
  function that exists in that file;
* make targets — a backticked ``make <target>`` must name a rule (or
  ``.PHONY`` entry) defined in the repo Makefile.

Exit status 0 when every reference resolves; 1 otherwise, listing each
dangling reference with its file and line.

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Top-level documents checked by name; ``docs/*.md`` is globbed at run
#: time (see :func:`doc_files`), so a new handbook page is covered the
#: moment it exists -- forgetting to register it here cannot exempt it.
DOC_FILES = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
)


def doc_files() -> list[str]:
    """Every checked document: the fixed top-level set + all of docs/."""
    globbed = sorted(
        str(p.relative_to(REPO_ROOT)) for p in (REPO_ROOT / "docs").glob("*.md")
    )
    return [*DOC_FILES, *globbed]

#: ``repro.foo.Bar`` style dotted references (call parens already stripped).
DOTTED_RE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
#: Backticked spans; references are only harvested inside them (except
#: dotted repro refs, which are checked wherever they appear).
BACKTICK_RE = re.compile(r"`([^`\n]+)`")
#: ``ClassName.attr`` inside backticks.
CLASS_ATTR_RE = re.compile(r"^([A-Z][A-Za-z0-9_]*)\.([a-z_][A-Za-z0-9_]*)$")
#: File-ish tokens: at least one path separator and a known extension.
PATH_RE = re.compile(r"^[\w./-]*/[\w.-]+\.(?:py|md|txt|json|toml|cfg)$")
#: pytest node ids.
NODE_RE = re.compile(r"^([\w./-]+\.py)::(\w+)$")
#: Local markdown link targets: [text](target).
LINK_RE = re.compile(r"\]\(([^)#\s]+)(?:#[\w-]*)?\)")
#: ``make <target>`` invocations inside backticks.
MAKE_RE = re.compile(r"^make\s+([A-Za-z][\w-]*)")


def _make_targets() -> set[str]:
    """Phony/rule targets defined in the repo Makefile."""
    targets: set[str] = set()
    for line in (REPO_ROOT / "Makefile").read_text(encoding="utf-8").splitlines():
        match = re.match(r"^([A-Za-z][\w-]*)\s*:", line)
        if match:
            targets.add(match.group(1))
        if line.startswith(".PHONY:"):
            targets.update(line.split(":", 1)[1].split())
    return targets


def _class_index() -> dict[str, list[type]]:
    """Every public-ish class defined under :mod:`repro`, by name."""
    index: dict[str, list[type]] = {}
    package = importlib.import_module("repro")
    for info in pkgutil.walk_packages(package.__path__, prefix="repro."):
        try:
            module = importlib.import_module(info.name)
        except Exception:  # pragma: no cover - import errors surface elsewhere
            continue
        for name, obj in vars(module).items():
            if inspect.isclass(obj) and obj.__module__.startswith("repro"):
                index.setdefault(name, [])
                if obj not in index[name]:
                    index[name].append(obj)
    return index


def _resolves(dotted: str) -> bool:
    """Does ``a.b.c`` import as a module or resolve via getattr?"""
    parts = dotted.split(".")
    for i in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:i]))
        except ImportError:
            continue
        for attr in parts[i:]:
            if not hasattr(obj, attr):
                return False
            obj = getattr(obj, attr)
        return True
    return False


def _path_exists(token: str, doc_dir: Path) -> bool:
    candidates = (REPO_ROOT / token, doc_dir / token, REPO_ROOT / "src" / "repro" / token)
    return any(c.exists() for c in candidates)


def check_file(
    path: Path, classes: dict[str, list[type]], make_targets: set[str]
) -> list[str]:
    problems: list[str] = []
    doc_dir = path.parent
    rel = path.relative_to(REPO_ROOT)
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        for match in DOTTED_RE.finditer(line):
            dotted = match.group(0).split("(")[0]
            if not _resolves(dotted):
                problems.append(f"{rel}:{lineno}: dangling code ref `{dotted}`")
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if not _path_exists(target, doc_dir):
                problems.append(f"{rel}:{lineno}: dangling link target `{target}`")
        for span in BACKTICK_RE.findall(line):
            token = span.strip().split("(")[0]
            node = NODE_RE.match(span.strip())
            if node:
                test_file = REPO_ROOT / node.group(1)
                if not test_file.exists():
                    problems.append(f"{rel}:{lineno}: dangling test file `{node.group(1)}`")
                elif f"def {node.group(2)}" not in test_file.read_text(encoding="utf-8"):
                    problems.append(f"{rel}:{lineno}: dangling test id `{span.strip()}`")
                continue
            if PATH_RE.match(span.strip()):
                if not _path_exists(span.strip(), doc_dir):
                    problems.append(f"{rel}:{lineno}: dangling file ref `{span.strip()}`")
                continue
            make_ref = MAKE_RE.match(span.strip())
            if make_ref:
                if make_ref.group(1) not in make_targets:
                    problems.append(
                        f"{rel}:{lineno}: dangling make target `make {make_ref.group(1)}`"
                    )
                continue
            attr_ref = CLASS_ATTR_RE.match(token)
            if attr_ref and attr_ref.group(1) in classes:
                name, attr = attr_ref.group(1), attr_ref.group(2)
                if not any(hasattr(cls, attr) for cls in classes[name]):
                    problems.append(f"{rel}:{lineno}: dangling attribute ref `{token}`")
    return problems


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    classes = _class_index()
    make_targets = _make_targets()
    problems: list[str] = []
    n_checked = 0
    for name in doc_files():
        path = REPO_ROOT / name
        if not path.exists():
            problems.append(f"{name}: listed in DOC_FILES but missing")
            continue
        n_checked += 1
        problems.extend(check_file(path, classes, make_targets))
    if problems:
        print(f"docs-check: {len(problems)} dangling reference(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"docs-check: OK ({n_checked} documents, no dangling references)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
