"""International calling: where VIA helps most (Figures 4, 13, 14).

The paper's motivating workload is long-distance calling: international
calls are 2-3x more likely to hit poor network conditions, and relaying
through the managed overlay recovers most of that gap.  This example
splits the trace into international and domestic populations and dissects
the worst countries.

    python examples/international_calling.py
"""

from __future__ import annotations

from repro import WorkloadConfig, WorldConfig, build_world, generate_trace
from repro.analysis import (
    by_country_pnr,
    format_table,
    pnr_breakdown,
    split_international,
)
from repro.netmodel import TopologyConfig
from repro.simulation import ExperimentPlan, standard_policies


def main() -> None:
    world = build_world(
        WorldConfig(topology=TopologyConfig(n_countries=30, n_relays=14), n_days=15)
    )
    trace = generate_trace(
        world.topology, WorkloadConfig(n_calls=40_000, n_pairs=500), n_days=15
    )
    plan = ExperimentPlan(world=world, trace=trace, warmup_days=2, min_pair_calls=80)
    results = plan.run(standard_policies(world, "rtt_ms", include_strawmen=False), seed=2)

    rows = []
    for name in ("default", "via", "oracle"):
        outcomes = plan.evaluate(results[name])
        intl, dom = split_international(outcomes)
        rows.append(
            [
                name,
                f"{pnr_breakdown(intl)['rtt_ms']:.3f}",
                f"{pnr_breakdown(dom)['rtt_ms']:.3f}",
                f"{pnr_breakdown(intl)['any']:.3f}",
                f"{pnr_breakdown(dom)['any']:.3f}",
            ]
        )
    print(format_table(
        ["strategy", "intl PNR(rtt)", "dom PNR(rtt)", "intl PNR(any)", "dom PNR(any)"],
        rows,
        title="International vs domestic calls (Figure 13)",
    ))

    # Worst countries by direct-path PNR, and what VIA does for them.
    direct_by_country = by_country_pnr(plan.evaluate(results["default"]), "rtt_ms", min_calls=300)
    via_by_country = by_country_pnr(plan.evaluate(results["via"]), "rtt_ms", min_calls=300)
    worst = sorted(direct_by_country, key=direct_by_country.get, reverse=True)[:8]
    rows = [
        [
            country,
            f"{direct_by_country[country]:.3f}",
            f"{via_by_country.get(country, float('nan')):.3f}",
        ]
        for country in worst
    ]
    print()
    print(format_table(
        ["country", "default PNR(rtt)", "VIA PNR(rtt)"],
        rows,
        title="Worst countries, one side international (Figure 14)",
    ))


if __name__ == "__main__":
    main()
