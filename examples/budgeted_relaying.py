"""Budgeted relaying: spending a relay quota where it matters (§4.6, Fig 16).

Operators cap the fraction of calls allowed through the managed overlay.
This example sweeps the budget and compares budget-aware VIA (percentile
benefit gate) against the budget-unaware variant (first-come-first-served
on any positive benefit): the aware gate reaches about half the unlimited
benefit with only ~30% of calls relayed.

    python examples/budgeted_relaying.py
"""

from __future__ import annotations

from repro import WorkloadConfig, WorldConfig, build_world, generate_trace
from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.core.baselines import DefaultPolicy, make_via
from repro.netmodel import TopologyConfig
from repro.simulation import ExperimentPlan, make_inter_relay_lookup


def main() -> None:
    world = build_world(
        WorldConfig(topology=TopologyConfig(n_countries=20, n_relays=10), n_days=12)
    )
    trace = generate_trace(
        world.topology, WorkloadConfig(n_calls=30_000, n_pairs=350), n_days=12
    )
    plan = ExperimentPlan(world=world, trace=trace, warmup_days=2, min_pair_calls=80)
    inter_relay = make_inter_relay_lookup(world)

    policies = {"default": DefaultPolicy()}
    budgets = (0.1, 0.3, 0.5, 1.0)
    for budget in budgets:
        policies[f"aware-{budget}"] = make_via(
            "rtt_ms", inter_relay=inter_relay, budget=budget, budget_aware=True
        )
        if budget < 1.0:
            policies[f"unaware-{budget}"] = make_via(
                "rtt_ms", inter_relay=inter_relay, budget=budget, budget_aware=False
            )
    results = plan.run(policies, seed=4)
    base = pnr_breakdown(plan.evaluate(results["default"]))["any"]

    rows = []
    for budget in budgets:
        for flavour in ("aware", "unaware"):
            name = f"{flavour}-{budget}"
            if name not in results:
                continue
            outcome = pnr_breakdown(plan.evaluate(results[name]))["any"]
            relayed = results[name].relayed_fraction
            rows.append(
                [
                    f"B={budget:.0%} ({flavour})",
                    f"{relayed:.1%}",
                    f"{outcome:.3f}",
                    f"{relative_improvement(base, outcome):.0f}%",
                ]
            )
    print(format_table(
        ["policy", "calls relayed", "PNR(any)", "improvement"],
        rows,
        title=f"Budget sweep (default PNR(any) = {base:.3f})",
    ))


if __name__ == "__main__":
    main()
