"""Optimising user-perceived quality directly (MOS objective extension).

The paper optimises one network metric at a time; §2.2 shows all three
drive the Poor Call Rate.  This example runs Algorithm 1 with the E-model
impairment objective (cost = 4.5 - MOS) and compares mean MOS, expected
PCR and combined PNR against per-metric optimisation.

    python examples/mos_optimization.py
"""

from __future__ import annotations

import numpy as np

from repro import WorkloadConfig, WorldConfig, build_world, generate_trace
from repro.analysis import format_table, pnr_breakdown
from repro.core.baselines import DefaultPolicy, make_via
from repro.netmodel import TopologyConfig
from repro.simulation import ExperimentPlan, make_inter_relay_lookup
from repro.telephony.quality import mos_from_network, poor_call_probability


def main() -> None:
    world = build_world(
        WorldConfig(topology=TopologyConfig(n_countries=20, n_relays=10), n_days=12)
    )
    trace = generate_trace(
        world.topology, WorkloadConfig(n_calls=30_000, n_pairs=350), n_days=12
    )
    plan = ExperimentPlan(world=world, trace=trace, warmup_days=2, min_pair_calls=100)
    inter_relay = make_inter_relay_lookup(world)

    policies = {
        "default": DefaultPolicy(),
        "via[rtt]": make_via("rtt_ms", inter_relay=inter_relay),
        "via[loss]": make_via("loss_rate", inter_relay=inter_relay),
        "via[mos]": make_via("mos", inter_relay=inter_relay),
    }
    results = plan.run(policies, seed=11)

    rows = []
    for name, result in results.items():
        outcomes = plan.evaluate(result)
        mean_mos = float(np.mean([mos_from_network(o.metrics) for o in outcomes]))
        pcr = float(np.mean([poor_call_probability(o.metrics) for o in outcomes]))
        pnr_any = pnr_breakdown(outcomes)["any"]
        rows.append([name, f"{mean_mos:.3f}", f"{pcr:.1%}", f"{pnr_any:.3f}"])
    print(format_table(
        ["strategy", "mean MOS", "expected PCR", "PNR(any)"],
        rows,
        title="Per-metric vs MOS-objective relay selection",
    ))


if __name__ == "__main__":
    main()
