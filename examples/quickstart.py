"""Quickstart: build a world, generate a trace, compare VIA to the default.

Runs the core loop of the paper on a laptop-scale synthetic Internet:
default routing vs VIA's prediction-guided exploration vs the oracle,
reporting the Poor Network Rate (PNR) on each metric.

    python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import WorkloadConfig, WorldConfig, build_world, generate_trace
from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.netmodel import TopologyConfig
from repro.simulation import ExperimentPlan, standard_policies


def main() -> None:
    t0 = time.time()
    # A small world: 20 countries, 10 relay sites, 15 days of calls.
    world = build_world(
        WorldConfig(topology=TopologyConfig(n_countries=20, n_relays=10), n_days=15)
    )
    trace = generate_trace(
        world.topology, WorkloadConfig(n_calls=25_000, n_pairs=400), n_days=15
    )
    summary = trace.summary()
    print(f"trace: {summary.n_calls:,} calls, {summary.n_as_pairs} AS pairs, "
          f"{100 * summary.frac_international:.0f}% international")

    plan = ExperimentPlan(world=world, trace=trace, warmup_days=2, min_pair_calls=100)
    policies = standard_policies(world, "rtt_ms", include_strawmen=False)
    results = plan.run(policies, seed=1)

    baseline = pnr_breakdown(plan.evaluate(results["default"]))
    rows = []
    for name in ("default", "via", "oracle"):
        breakdown = pnr_breakdown(plan.evaluate(results[name]))
        rows.append(
            [
                name,
                f"{breakdown['rtt_ms']:.3f}",
                f"{breakdown['any']:.3f}",
                f"{relative_improvement(baseline['rtt_ms'], breakdown['rtt_ms']):.0f}%",
            ]
        )
    print(format_table(
        ["strategy", "PNR(rtt)", "PNR(any)", "rtt-PNR improvement"],
        rows,
        title=f"\nOptimising RTT ({time.time() - t0:.0f}s total)",
    ))
    print("\nVIA relay mix:", {k: f"{v:.0%}" for k, v in results["via"].option_mix().items()})


if __name__ == "__main__":
    main()
