"""Live controller demo: the §5.5 deployment over real localhost TCP.

Starts the asyncio VIA controller, connects 14 instrumented clients in
five countries, replays the paper's back-to-back-call methodology, and
prints the Figure 18 sub-optimality CDF of VIA's choices.

Runs with observability enabled (``observe=True``): at the end, the
controller is scraped over the wire and a digest of its metrics registry
is printed -- per-message-type counters and assign latency percentiles.
See docs/observability.md for the full metric catalogue.

    python examples/live_controller.py
"""

from __future__ import annotations

import time

from repro.analysis import format_series
from repro.deployment import TestbedConfig, run_testbed


def metrics_digest(text: str) -> str:
    """A short operator-style digest of the scraped exposition text."""
    wanted = []
    for line in text.splitlines():
        if line.startswith("via_controller_messages_total"):
            wanted.append(line)
        elif line.startswith("via_assign_duration_seconds_count"):
            wanted.append(line)
        elif line.startswith("via_assign_duration_seconds_sum"):
            wanted.append(line)
        elif line.startswith("via_controller_clients"):
            wanted.append(line)
    return "\n".join(wanted)


def main() -> None:
    t0 = time.time()
    config = TestbedConfig(
        n_clients=14, n_pairs=18, measurement_rounds=4, via_rounds=30, observe=True
    )
    report = run_testbed(config)
    print(
        f"deployment finished in {time.time() - t0:.1f}s: "
        f"{report.n_pairs} pairs, {report.n_measurements} measurement calls, "
        f"{report.n_calls} VIA-driven calls"
    )
    print(
        f"options per pair: {min(report.options_per_pair)}-{max(report.options_per_pair)} "
        f"(paper: 9-20)"
    )
    print(
        f"picked the exact best option on {report.frac_exact_best:.0%} of calls "
        f"(paper: no more than ~30%)"
    )
    print(
        f"within 20% of the oracle on {report.frac_within(0.2):.0%} of calls "
        f"(paper: ~70%)"
    )
    print()
    print(format_series(
        "Figure 18: CDF of sub-optimality",
        report.cdf(points=12),
        x_label="(Perf_VIA - Perf_oracle) / Perf_oracle",
        y_label="fraction of calls",
    ))
    print()
    print("scraped controller metrics (digest):")
    print(metrics_digest(report.metrics_text))


if __name__ == "__main__":
    main()
