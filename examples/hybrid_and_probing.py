"""The §7 extensions in action: hybrid reactive selection + active probes.

Compares plain VIA against (a) the hybrid reactive policy, which probes
its prediction-pruned top options during the first seconds of long calls,
and (b) VIA augmented with an active prober that fills coverage holes
with mock calls.

    python examples/hybrid_and_probing.py
"""

from __future__ import annotations

from repro import WorkloadConfig, WorldConfig, build_world, generate_trace
from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.core import ActiveProber, HybridReactivePolicy, ViaConfig
from repro.core.baselines import DefaultPolicy, make_via
from repro.netmodel import TopologyConfig
from repro.simulation import ExperimentPlan, make_inter_relay_lookup
from repro.simulation.replay import replay


def main() -> None:
    world = build_world(
        WorldConfig(topology=TopologyConfig(n_countries=20, n_relays=10), n_days=12)
    )
    trace = generate_trace(
        world.topology, WorkloadConfig(n_calls=30_000, n_pairs=350), n_days=12
    )
    plan = ExperimentPlan(world=world, trace=trace, warmup_days=2, min_pair_calls=100)
    inter_relay = make_inter_relay_lookup(world)

    results = {}
    results["default"] = replay(world, trace, DefaultPolicy(), seed=9)
    results["via"] = replay(world, trace, make_via("rtt_ms", inter_relay=inter_relay), seed=9)

    hybrid = HybridReactivePolicy(
        ViaConfig(metric="rtt_ms", seed=42), inter_relay=inter_relay,
        probe_top_n=3, min_duration_s=90.0,
    )
    results["hybrid-reactive"] = replay(world, trace, hybrid, seed=9)

    probed_policy = make_via("rtt_ms", inter_relay=inter_relay)
    prober = ActiveProber(probed_policy, probe_fraction=0.05)
    results["via+probing"] = replay(world, trace, probed_policy, seed=9, prober=prober)

    base = pnr_breakdown(plan.evaluate(results["default"]))["rtt_ms"]
    rows = []
    for name, result in results.items():
        value = pnr_breakdown(plan.evaluate(result))["rtt_ms"]
        rows.append([name, f"{value:.3f}", f"{relative_improvement(base, value):.0f}%"])
    print(format_table(
        ["strategy", "PNR(rtt)", "improvement"],
        rows,
        title=(
            f"§7 extensions ({hybrid.n_probed_calls} in-call probed calls, "
            f"{prober.n_probes_issued} active mock-call probes)"
        ),
    ))


if __name__ == "__main__":
    main()
