# Convenience targets for the VIA reproduction.

PYTHON ?= python
# Worker processes for parallel-capable benchmarks: make bench WORKERS=4
WORKERS ?= 1

.PHONY: install test test-async test-faults test-multipath test-parallel test-shard test-soak test-store test-vector test-verify check docs-check bench bench-record examples quick-bench all clean

install:
	pip install -e .

test: docs-check test-parallel test-store test-async test-vector test-shard test-multipath test-soak
	PYTHONPATH=src $(PYTHON) -m pytest tests/

# Documentation referential integrity: fail on dangling repro.* symbol
# refs, file paths, markdown links or pytest node ids in the docs.
docs-check:
	PYTHONPATH=src $(PYTHON) scripts/check_docs.py

# Asyncio controller frontend: protocol v2 pipelining, admission ladder,
# hostile-client hardening (slow loris, oversized lines, mid-request
# disconnects) and the v1 back-compat conformance checks.
test-async:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_async_controller.py -m asyncio

# Fault-injection and resilience suite only (chaos mode, outages, recovery).
test-faults:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -m faults

# Serial-vs-parallel replay equivalence suite, forced through real worker
# processes (REPRO_TEST_WORKERS=2 makes the pool path non-optional).
test-parallel:
	REPRO_TEST_WORKERS=2 PYTHONPATH=src $(PYTHON) -m pytest tests/test_parallel.py

# Vectorized hot path: batch-vs-scalar equivalence property tests
# (assign_many/observe_many against the scalar oracle, columnar layers,
# batched replay) -- see docs/performance.md.
test-vector:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_vector.py -m vector

# Multipath relaying subsystem: path-set algebra, combined-reward bound
# properties, the bandit-over-path-pairs policy, and the chaos replay
# accounting (degraded vs dead path sets under relay outages).
test-multipath:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_multipath.py -m multipath

# Sharded controller ring: consistent-hash routing + redirect repair,
# gossip replication, ShardedPolicy checkpoint/batch contracts, and the
# multiprocess WAL-failover acceptance test.
test-shard:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_ring.py tests/test_sharding.py

# Chaos soak harness: seconds-scale budgets of the time-compressed
# endurance loop (snapshot/compact/kill/recover on schedule, planted
# leaks tripping their named invariant, report + CLI contracts).  The
# real endurance run is `repro soak` -- see docs/soak.md.
test-soak:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_soak.py -m soak

# Durable storage plane: WAL framing/rotation, compaction, and the
# crash-recovery equivalence contract (snapshot + WAL-tail replay).
test-store:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_store.py tests/test_store_recovery.py

# Conformance verification plane: the verify-marked unit tests plus the
# acceptance-sized `repro verify` run (differential + crash sweep +
# lifecycle state machine), reproducible from the printed seed.
test-verify:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_verify.py tests/test_verify_statemachine.py
	PYTHONPATH=src $(PYTHON) -m repro verify --budget full

# One-shot CI gate: docs integrity, the tier-1 suite, and a small-budget
# verification run with a line-coverage floor on the verify plane itself.
check:
	PYTHONPATH=src $(PYTHON) scripts/ci_check.py

bench:
	REPRO_BENCH_WORKERS=$(WORKERS) $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Record the perf-trajectory baselines: runs the recording-enabled
# benchmarks with REPRO_BENCH_RECORD=1, committing their summaries to
# BENCH_<area>.json files at the repo root (diffable across PRs; the
# core baseline also feeds the `make check` regression gate).
bench-record:
	REPRO_BENCH_RECORD=1 PYTHONPATH=src $(PYTHON) -m pytest \
	    benchmarks/bench_ext_overload.py --benchmark-only
	REPRO_BENCH_RECORD=1 PYTHONPATH=src $(PYTHON) -m pytest \
	    benchmarks/bench_ext_sharded_controller.py --benchmark-only
	REPRO_BENCH_RECORD=1 PYTHONPATH=src $(PYTHON) -m pytest \
	    "benchmarks/bench_ext_parallel_replay.py::test_vector_hot_path_speedup" \
	    --benchmark-only
	REPRO_BENCH_RECORD=1 PYTHONPATH=src $(PYTHON) -m pytest \
	    benchmarks/bench_ext_multipath.py --benchmark-only

# A fast subset: the headline figure plus the live deployment.
quick-bench:
	$(PYTHON) -m pytest benchmarks/bench_fig12_via_improvement.py \
	    benchmarks/bench_fig18_deployment.py --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/international_calling.py
	$(PYTHON) examples/budgeted_relaying.py
	$(PYTHON) examples/live_controller.py
	$(PYTHON) examples/hybrid_and_probing.py
	$(PYTHON) examples/mos_optimization.py

all: install test bench

clean:
	rm -rf .pytest_cache benchmarks/results src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
