"""Legacy editable-install shim.

The offline build environment has setuptools but not ``wheel``, so the
PEP 517 editable path (which shells out to ``bdist_wheel``) fails.  With
this shim and no ``[build-system]`` table in pyproject.toml, ``pip
install -e .`` falls back to ``setup.py develop``, which works offline.
"""

from setuptools import setup

setup()
