"""Cross-cutting property-based tests on core invariants (hypothesis).

Example budgets come from the shared profiles in ``conftest.py``
(``REPRO_HYPOTHESIS_PROFILE=dev|ci``), not per-test ``@settings``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, strategies as st

from repro.analysis.stats import binned_quantile_bands
from repro.core.bandit import UCB1Explorer
from repro.core.budget import BudgetGate
from repro.core.history import (
    CallHistory,
    RunningStat,
    history_from_dict,
    history_to_dict,
)
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import RelayOption
from repro.telephony.quality import mos_from_network, poor_call_probability

finite_metrics = st.builds(
    PathMetrics,
    rtt_ms=st.floats(min_value=0.0, max_value=3000.0, allow_nan=False),
    loss_rate=st.floats(min_value=0.0, max_value=0.8, allow_nan=False),
    jitter_ms=st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
)


class TestQualityInvariants:
    @given(finite_metrics, finite_metrics)
    def test_strictly_worse_network_never_scores_better(self, a, b):
        """If every metric of `worse` dominates `better`, MOS must not rise."""
        better = PathMetrics(
            rtt_ms=min(a.rtt_ms, b.rtt_ms),
            loss_rate=min(a.loss_rate, b.loss_rate),
            jitter_ms=min(a.jitter_ms, b.jitter_ms),
        )
        worse = PathMetrics(
            rtt_ms=max(a.rtt_ms, b.rtt_ms),
            loss_rate=max(a.loss_rate, b.loss_rate),
            jitter_ms=max(a.jitter_ms, b.jitter_ms),
        )
        assert mos_from_network(worse) <= mos_from_network(better) + 1e-9
        assert poor_call_probability(worse) >= poor_call_probability(better) - 1e-9


class TestRunningStatInvariants:
    @given(st.lists(finite_metrics, min_size=1, max_size=40))
    def test_mean_within_sample_range(self, samples):
        stat = RunningStat()
        for m in samples:
            stat.push(m)
        rtts = [m.rtt_ms for m in samples]
        assert min(rtts) - 1e-9 <= stat.mean[0] <= max(rtts) + 1e-9
        assert stat.count == len(samples)
        assert (stat.variance() >= -1e-12).all()

    @given(st.lists(finite_metrics, min_size=2, max_size=40))
    def test_sem_shrinks_with_duplicated_data(self, samples):
        """Doubling the sample (same values) must not raise the SEM."""
        stat1 = RunningStat()
        stat2 = RunningStat()
        for m in samples:
            stat1.push(m)
            stat2.push(m)
        for m in samples:
            stat2.push(m)
        assert (stat2.sem() <= stat1.sem() + 1e-9).all()


class TestBanditInvariants:
    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
            min_size=2,
            max_size=6,
        ),
        st.integers(min_value=30, max_value=80),
    )
    def test_deterministic_costs_converge_to_best_arm(self, costs, plays):
        # UCB can only separate arms whose normalised cost gap exceeds the
        # exploration bonus within the play budget; require that here.
        normalizer = float(np.mean(costs))
        ranked = sorted(costs)
        assume((ranked[1] - ranked[0]) / normalizer >= 0.2)
        arms = [RelayOption.bounce(i) for i in range(len(costs))]
        bandit = UCB1Explorer(arms, normalizer=normalizer, exploration_coef=0.01)
        for _ in range(plays):
            choice = bandit.choose()
            bandit.update(choice, costs[arms.index(choice)])
        best = arms[int(np.argmin(costs))]
        # The most-played arm must be the cheapest one.
        most_played = max(arms, key=bandit.count)
        assert most_played == best

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
    def test_total_plays_accounting(self, costs):
        arm = RelayOption.bounce(0)
        bandit = UCB1Explorer([arm], normalizer=1.0)
        for c in costs:
            bandit.update(arm, c)
        assert bandit.total_plays == len(costs)
        assert bandit.mean_cost(arm) == pytest.approx(float(np.mean(costs)))


class TestBudgetInvariants:
    @given(
        st.floats(min_value=0.05, max_value=0.9),
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=200, max_size=600),
    )
    def test_hard_cap_never_materially_exceeded(self, budget, benefits):
        gate = BudgetGate(budget, aware=True, min_history=20)
        for benefit in benefits:
            relayed = gate.allows(benefit)
            gate.record(benefit, relayed=relayed)
        # Small startup slack allowed before the cap engages.
        assert gate.relayed_fraction <= budget + 0.15


class TestQuantileBands:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            ),
            min_size=10,
            max_size=200,
        )
    )
    def test_band_quantiles_ordered(self, points):
        x = [p[0] for p in points]
        y = [p[1] for p in points]
        bands = binned_quantile_bands(x, y, n_bins=5, min_samples=2)
        for band in bands:
            assert band.quantiles[10.0] <= band.quantiles[50.0] <= band.quantiles[90.0]
            assert band.n_samples >= 2

    def test_mismatched_input_rejected(self):
        with pytest.raises(ValueError):
            binned_quantile_bands([1.0], [1.0, 2.0])

    def test_empty_input(self):
        assert binned_quantile_bands([], []) == []

    def test_constant_x_single_band(self):
        bands = binned_quantile_bands([3.0] * 50, list(range(50)), min_samples=10)
        assert len(bands) == 1
        assert bands[0].n_samples == 50


class TestHistorySerialisationInvariants:
    """history_to_dict / history_from_dict must be lossless under JSON,
    and transparent to the map-reduce merge contract."""

    sides = st.one_of(
        st.integers(min_value=0, max_value=40),
        st.sampled_from(["US", "GB", "IN", "SG", "LK"]),
        st.tuples(st.integers(0, 10), st.integers(0, 10)),
    )
    relay_options = st.one_of(
        st.just(RelayOption.direct()),
        st.builds(RelayOption.bounce, st.integers(0, 5)),
        st.tuples(st.integers(0, 5), st.integers(0, 5))
        .filter(lambda t: t[0] != t[1])
        .map(lambda t: RelayOption.transit(*t)),
    )
    events = st.lists(
        st.tuples(
            st.tuples(sides, sides),
            relay_options,
            st.floats(min_value=0.0, max_value=480.0, allow_nan=False),
            finite_metrics,
        ),
        min_size=1,
        max_size=60,
    )

    @staticmethod
    def _build(events):
        history = CallHistory(window_hours=24.0)
        for pair_key, option, t_hours, metrics in events:
            history.add(pair_key, option, t_hours, metrics)
        return history

    @given(events)
    def test_roundtrip_through_json_is_exact(self, evts):
        import json

        history = self._build(evts)
        payload = json.loads(json.dumps(history_to_dict(history)))
        restored = history_from_dict(payload)
        assert history_to_dict(restored) == history_to_dict(history)
        assert restored.window_hours == history.window_hours
        assert restored.windows() == history.windows()
        assert restored.total_calls() == history.total_calls()

    @given(events, events)
    def test_decode_is_transparent_to_merge(self, a, b):
        """merge(decode(encode(x)), decode(encode(y))) == merge(x, y):
        shards can round-trip through disk before the reduce step."""
        direct = self._build(a).merge(self._build(b))
        via_disk = history_from_dict(history_to_dict(self._build(a))).merge(
            history_from_dict(history_to_dict(self._build(b)))
        )
        assert history_to_dict(via_disk) == history_to_dict(direct)

    @given(events)
    def test_merge_into_empty_equals_original(self, evts):
        history = self._build(evts)
        merged = CallHistory(window_hours=24.0).merge(
            history_from_dict(history_to_dict(history))
        )
        assert history_to_dict(merged) == history_to_dict(history)
