"""Unit tests for repro.core.sharding (partitioned control plane)."""

from __future__ import annotations

import pytest

from repro.core.baselines import DefaultPolicy
from repro.core.policy import ViaConfig, ViaPolicy
from repro.core.sharding import ShardedPolicy, stable_shard_of
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption
from repro.telephony.call import Call

OPTIONS = [DIRECT, RelayOption.bounce(0), RelayOption.bounce(1)]


def make_call(call_id=0, src_asn=1001, dst_asn=1002, t_hours=1.0) -> Call:
    return Call(
        call_id=call_id, t_hours=t_hours, src_asn=src_asn, dst_asn=dst_asn,
        src_country="US", dst_country="IN", src_user=0, dst_user=1,
    )


class TestStableShardOf:
    def test_deterministic(self):
        assert stable_shard_of((1, 2), 8) == stable_shard_of((1, 2), 8)

    def test_in_range(self):
        for key in [(a, b) for a in range(20) for b in range(20)]:
            assert 0 <= stable_shard_of(key, 7) < 7

    def test_single_shard(self):
        assert stable_shard_of((5, 9), 1) == 0

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            stable_shard_of((1, 2), 0)

    def test_spreads_keys(self):
        shards = {stable_shard_of((a, a + 1), 8) for a in range(200)}
        assert len(shards) >= 6  # nearly all shards hit


class TestShardedPolicy:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardedPolicy(lambda i: DefaultPolicy(), 0)

    def test_both_directions_hit_same_shard(self):
        policy = ShardedPolicy(lambda i: DefaultPolicy(), 8)
        policy.assign(make_call(call_id=0, src_asn=7, dst_asn=9), OPTIONS)
        policy.assign(make_call(call_id=1, src_asn=9, dst_asn=7), OPTIONS)
        assert sum(1 for c in policy.shard_calls if c > 0) == 1

    def test_observe_routes_to_owning_shard(self):
        counters = []

        class Counting(DefaultPolicy):
            def __init__(self, idx):
                super().__init__(name=f"shard-{idx}")
                self.observed = 0
                counters.append(self)

            def observe(self, call, option, metrics):
                self.observed += 1

        policy = ShardedPolicy(lambda i: Counting(i), 4)
        call = make_call()
        policy.observe(call, DIRECT, PathMetrics(100.0, 0.01, 5.0))
        assert sum(c.observed for c in counters) == 1

    def test_shards_learn_independently(self):
        policy = ShardedPolicy(
            lambda i: ViaPolicy(ViaConfig(seed=i, epsilon=0.0)), 2, name="test"
        )
        # Feed history for one pair; the other shard must stay empty.
        call = make_call()
        policy.observe(call, DIRECT, PathMetrics(100.0, 0.01, 5.0))
        totals = [s.history.total_calls() for s in policy.shards]
        assert sorted(totals) == [0, 1]

    def test_load_imbalance_reporting(self):
        policy = ShardedPolicy(lambda i: DefaultPolicy(), 4)
        assert policy.load_imbalance() == 1.0
        for i in range(100):
            policy.assign(make_call(call_id=i, src_asn=1000 + i, dst_asn=2000 + i), OPTIONS)
        assert policy.load_imbalance() < 2.5

    def test_single_shard_equals_plain_policy(self, small_world, small_trace):
        from repro.simulation.replay import replay
        from repro.workload.trace import TraceDataset

        trace = TraceDataset(calls=small_trace.calls[:600], n_days=small_trace.n_days)
        plain = ViaPolicy(ViaConfig(seed=3))
        sharded = ShardedPolicy(lambda i: ViaPolicy(ViaConfig(seed=3)), 1)
        r1 = replay(small_world, trace, plain, seed=4)
        r2 = replay(small_world, trace, sharded, seed=4)
        assert [o.option for o in r1.outcomes] == [o.option for o in r2.outcomes]
