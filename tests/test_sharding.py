"""Unit tests for repro.core.sharding (partitioned control plane)."""

from __future__ import annotations

import logging
import math

import pytest

from repro.core.baselines import DefaultPolicy
from repro.core.policy import ViaConfig, ViaPolicy
from repro.core.sharding import ShardedPolicy, shard_candidates, stable_shard_of
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption
from repro.telephony.call import Call

OPTIONS = [DIRECT, RelayOption.bounce(0), RelayOption.bounce(1)]


def make_call(call_id=0, src_asn=1001, dst_asn=1002, t_hours=1.0) -> Call:
    return Call(
        call_id=call_id, t_hours=t_hours, src_asn=src_asn, dst_asn=dst_asn,
        src_country="US", dst_country="IN", src_user=0, dst_user=1,
    )


class TestStableShardOf:
    def test_deterministic(self):
        assert stable_shard_of((1, 2), 8) == stable_shard_of((1, 2), 8)

    def test_in_range(self):
        for key in [(a, b) for a in range(20) for b in range(20)]:
            assert 0 <= stable_shard_of(key, 7) < 7

    def test_single_shard(self):
        assert stable_shard_of((5, 9), 1) == 0

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            stable_shard_of((1, 2), 0)

    def test_spreads_keys(self):
        shards = {stable_shard_of((a, a + 1), 8) for a in range(200)}
        assert len(shards) >= 6  # nearly all shards hit


class TestShardedPolicy:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardedPolicy(lambda i: DefaultPolicy(), 0)

    def test_both_directions_hit_same_shard(self):
        policy = ShardedPolicy(lambda i: DefaultPolicy(), 8)
        policy.assign(make_call(call_id=0, src_asn=7, dst_asn=9), OPTIONS)
        policy.assign(make_call(call_id=1, src_asn=9, dst_asn=7), OPTIONS)
        assert sum(1 for c in policy.shard_calls if c > 0) == 1

    def test_observe_routes_to_owning_shard(self):
        counters = []

        class Counting(DefaultPolicy):
            def __init__(self, idx):
                super().__init__(name=f"shard-{idx}")
                self.observed = 0
                counters.append(self)

            def observe(self, call, option, metrics):
                self.observed += 1

        policy = ShardedPolicy(lambda i: Counting(i), 4)
        call = make_call()
        policy.observe(call, DIRECT, PathMetrics(100.0, 0.01, 5.0))
        assert sum(c.observed for c in counters) == 1

    def test_shards_learn_independently(self):
        policy = ShardedPolicy(
            lambda i: ViaPolicy(ViaConfig(seed=i, epsilon=0.0)), 2, name="test"
        )
        # Feed history for one pair; the other shard must stay empty.
        call = make_call()
        policy.observe(call, DIRECT, PathMetrics(100.0, 0.01, 5.0))
        totals = [s.history.total_calls() for s in policy.shards]
        assert sorted(totals) == [0, 1]

    def test_load_imbalance_reporting(self):
        policy = ShardedPolicy(lambda i: DefaultPolicy(), 4)
        # An idle fleet has no defined balance: nan, not a fake 1.0.
        assert math.isnan(policy.load_imbalance())
        for i in range(100):
            policy.assign(make_call(call_id=i, src_asn=1000 + i, dst_asn=2000 + i), OPTIONS)
        assert policy.load_imbalance() < 2.5

    def test_single_shard_equals_plain_policy(self, small_world, small_trace):
        from repro.simulation.replay import replay
        from repro.workload.trace import TraceDataset

        trace = TraceDataset(calls=small_trace.calls[:600], n_days=small_trace.n_days)
        plain = ViaPolicy(ViaConfig(seed=3))
        sharded = ShardedPolicy(lambda i: ViaPolicy(ViaConfig(seed=3)), 1)
        r1 = replay(small_world, trace, plain, seed=4)
        r2 = replay(small_world, trace, sharded, seed=4)
        assert [o.option for o in r1.outcomes] == [o.option for o in r2.outcomes]

class TestGoldenShardVectors:
    """Pinned digest→shard mappings for representative pair keys.

    Ring membership (repro.deployment.ring) and every stored per-shard
    layout depend on this exact blake2s-of-repr digest.  If one of these
    pins fails, the hash changed and every deployed pair is stranded on
    the wrong shard -- that is a migration, not a refactor.
    """

    # (pair_key, [shard at n=2, n=4, n=8, n=16])
    GOLDEN = [
        # "as" granularity: sorted ASN (or client-id) pairs
        ((1001, 1002), [1, 1, 5, 5]),
        ((7, 9), [1, 3, 7, 7]),
        ((0, 0), [0, 0, 0, 0]),
        ((123456789, 987654321), [1, 3, 3, 3]),
        # "country" granularity: sorted ISO-code pairs
        (("US", "IN"), [1, 3, 7, 7]),
        (("BR", "DE"), [1, 1, 5, 5]),
        # "prefix" granularity: sorted (asn, prefix) tuples
        (((3301, 24), (7922, 16)), [0, 2, 2, 2]),
    ]

    def test_pinned_shards(self):
        for key, expected in self.GOLDEN:
            got = [stable_shard_of(key, n) for n in (2, 4, 8, 16)]
            assert got == expected, f"digest drifted for {key!r}: {got}"

    def test_pinned_power_of_d_candidates(self):
        assert shard_candidates((1001, 1002), 8, 3) == [2, 5]
        assert shard_candidates((7, 9), 8, 2) == [4, 7]

    def test_candidates_are_valid_shards(self):
        for a in range(50):
            for shard in shard_candidates((a, a + 1), 8, 3):
                assert 0 <= shard < 8


class TestCheckpointing:
    """state_dict/load_state_dict round-trips the whole fleet."""

    @staticmethod
    def _drive(policy, n=40, observe=True):
        for i in range(n):
            call = make_call(call_id=i, src_asn=1000 + i % 7, dst_asn=2000 + i % 5)
            chosen = policy.assign(call, OPTIONS)
            if observe:
                policy.observe(call, chosen, PathMetrics(90.0 + i, 0.01, 4.0))

    def test_round_trip_restores_identical_behaviour(self):
        factory = lambda i: ViaPolicy(ViaConfig(seed=100 + i, epsilon=0.0))
        original = ShardedPolicy(factory, 4)
        self._drive(original)
        payload = original.state_dict()

        restored = ShardedPolicy(factory, 4)
        restored.load_state_dict(payload)
        assert restored.shard_calls == original.shard_calls
        probe = make_call(call_id=999, src_asn=1003, dst_asn=2002, t_hours=1.5)
        assert restored.assign(probe, OPTIONS) == original.assign(probe, OPTIONS)

    def test_round_trip_preserves_power_of_d_placements(self):
        factory = lambda i: ViaPolicy(ViaConfig(seed=7, epsilon=0.0))
        original = ShardedPolicy(factory, 4, placement="power_of_d", d_choices=2)
        self._drive(original, observe=False)
        restored = ShardedPolicy(factory, 4, placement="power_of_d", d_choices=2)
        restored.load_state_dict(original.state_dict())
        assert restored._placement == original._placement
        # A known pair must route to its sticky shard, not re-place.
        call = make_call(call_id=500, src_asn=1001, dst_asn=2001)
        assert restored._route(call) == original._route(call)

    def test_payload_is_keyed_by_shard_index(self):
        policy = ShardedPolicy(lambda i: ViaPolicy(ViaConfig(seed=i)), 3)
        payload = policy.state_dict()
        assert payload["format"] == "via-sharded-policy-v1"
        assert sorted(payload["shards"]) == ["0", "1", "2"]

    def test_rejects_wrong_format(self):
        policy = ShardedPolicy(lambda i: ViaPolicy(ViaConfig()), 2)
        with pytest.raises(ValueError, match="format"):
            policy.load_state_dict({"format": "something-else"})

    def test_rejects_wrong_n_shards(self):
        donor = ShardedPolicy(lambda i: ViaPolicy(ViaConfig()), 2)
        target = ShardedPolicy(lambda i: ViaPolicy(ViaConfig()), 4)
        with pytest.raises(ValueError, match="n_shards"):
            target.load_state_dict(donor.state_dict())

    def test_rejects_wrong_granularity(self):
        donor = ShardedPolicy(lambda i: ViaPolicy(ViaConfig()), 2, granularity="country")
        target = ShardedPolicy(lambda i: ViaPolicy(ViaConfig()), 2, granularity="as")
        with pytest.raises(ValueError, match="granularity"):
            target.load_state_dict(donor.state_dict())

    def test_rejects_missing_shard_entry(self):
        policy = ShardedPolicy(lambda i: ViaPolicy(ViaConfig()), 2)
        payload = policy.state_dict()
        del payload["shards"]["1"]
        with pytest.raises(ValueError, match="missing shard entries"):
            policy.load_state_dict(payload)


class TestBatchDispatch:
    """assign_many/observe_many must be bit-identical to the scalar loop."""

    @staticmethod
    def _batch(n=60):
        calls = [
            make_call(call_id=i, src_asn=1000 + i % 9, dst_asn=2000 + i % 6,
                      t_hours=0.1 + 0.01 * i)
            for i in range(n)
        ]
        return calls, [OPTIONS for _ in calls]

    @pytest.mark.parametrize("placement", ["hash", "power_of_d"])
    def test_assign_many_matches_scalar_loop(self, placement):
        factory = lambda i: ViaPolicy(ViaConfig(seed=50 + i))
        scalar = ShardedPolicy(factory, 4, placement=placement)
        batched = ShardedPolicy(factory, 4, placement=placement)
        calls, options = self._batch()
        want = [scalar.assign(c, o) for c, o in zip(calls, options)]
        got = batched.assign_many(calls, options)
        assert got == want
        assert batched.shard_calls == scalar.shard_calls
        assert batched._placement == scalar._placement

    @pytest.mark.parametrize("placement", ["hash", "power_of_d"])
    def test_observe_many_matches_scalar_loop(self, placement):
        factory = lambda i: ViaPolicy(ViaConfig(seed=9, epsilon=0.0))
        scalar = ShardedPolicy(factory, 4, placement=placement)
        batched = ShardedPolicy(factory, 4, placement=placement)
        calls, options = self._batch()
        # Place pairs the same way first (observe does not count load).
        want = [scalar.assign(c, o) for c, o in zip(calls, options)]
        batched.assign_many(calls, options)
        metrics = [PathMetrics(80.0 + i, 0.02, 3.0) for i in range(len(calls))]
        for c, o, m in zip(calls, want, metrics):
            scalar.observe(c, o, m)
        batched.observe_many(calls, want, metrics)
        for a, b in zip(scalar.shards, batched.shards):
            assert a.history.total_calls() == b.history.total_calls()

    def test_length_mismatch_rejected(self):
        policy = ShardedPolicy(lambda i: ViaPolicy(ViaConfig()), 2)
        calls, options = self._batch(4)
        with pytest.raises(ValueError, match="mismatch"):
            policy.assign_many(calls, options[:-1])
        with pytest.raises(ValueError, match="mismatch"):
            policy.observe_many(calls, [DIRECT] * 4, [PathMetrics(80, 0.0, 1.0)] * 3)

    def test_scalar_fallback_logs_once(self, caplog):
        # DefaultPolicy has no batch API: the fleet still serves batches
        # (scalar loop inside), telling the operator exactly once.
        policy = ShardedPolicy(lambda i: DefaultPolicy(), 2)
        calls, options = self._batch(8)
        with caplog.at_level(logging.INFO, logger="repro.core.sharding"):
            policy.assign_many(calls, options)
            policy.assign_many(calls, options)
        notices = [r for r in caplog.records if "scalar loop" in r.getMessage()]
        assert len(notices) == 1


class TestPowerOfDPlacement:
    def test_placement_is_sticky(self):
        policy = ShardedPolicy(
            lambda i: DefaultPolicy(), 8, placement="power_of_d", d_choices=3
        )
        call = make_call(src_asn=42, dst_asn=77)
        first = policy._route(call)
        for i in range(50):  # pile load everywhere else
            policy.assign(make_call(call_id=i, src_asn=5000 + i, dst_asn=6000 + i), OPTIONS)
        assert policy._route(call) == first

    def test_placement_drawn_from_candidates(self):
        policy = ShardedPolicy(
            lambda i: DefaultPolicy(), 8, placement="power_of_d", d_choices=3
        )
        for i in range(100):
            call = make_call(call_id=i, src_asn=1000 + i, dst_asn=2000 + i)
            shard = policy._route(call)
            key = policy._keyer.view(call).pair_key
            assert shard in shard_candidates(key, 8, 3)

    def test_rejects_unknown_placement(self):
        with pytest.raises(ValueError, match="placement"):
            ShardedPolicy(lambda i: DefaultPolicy(), 2, placement="round_robin")


class TestFleetRefresh:
    def test_refresh_forwards_to_every_shard(self):
        policy = ShardedPolicy(
            lambda i: ViaPolicy(ViaConfig(seed=i, refresh_hours=24.0)), 3
        )
        assert policy.refresh(25.0) == 3  # all shards roll into period 1
        assert policy.refresh(25.0) == 0  # already there: no-op
        assert policy.n_refreshes == 3

    def test_policies_without_refresh_are_skipped(self):
        policy = ShardedPolicy(lambda i: DefaultPolicy(), 2)
        assert policy.refresh(10.0) == 0
        assert policy.n_refreshes == 0
