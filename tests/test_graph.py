"""Unit tests for repro.netmodel.graph (multi-hop overlay analysis)."""

from __future__ import annotations

import pytest

from repro.netmodel.graph import backbone_graph, best_multihop_route, overlay_graph
from repro.netmodel.options import RelayOption


@pytest.fixture(scope="module")
def as_pair(small_world):
    asns = small_world.topology.asns
    a = asns[0]
    b = next(x for x in asns if small_world.topology.is_international(a, x))
    return a, b


class TestBackboneGraph:
    def test_complete_over_relays(self, small_world):
        graph = backbone_graph(small_world)
        n = len(small_world.topology.relay_ids)
        assert graph.number_of_nodes() == n
        assert graph.number_of_edges() == n * (n - 1) // 2

    def test_edge_weights_match_segments(self, small_world):
        graph = backbone_graph(small_world, day=1)
        rtt = graph.edges[0, 1]["rtt_ms"]
        assert rtt == pytest.approx(small_world.inter_segment(0, 1).mean_on_day(1).rtt_ms)


class TestOverlayGraph:
    def test_endpoints_attached_to_every_relay(self, small_world, as_pair):
        a, b = as_pair
        graph = overlay_graph(small_world, a, b)
        n = len(small_world.topology.relay_ids)
        assert graph.degree[("as", a)] == n
        assert graph.degree[("as", b)] == n


class TestBestMultihopRoute:
    def test_rejects_same_as(self, small_world):
        asn = small_world.topology.asns[0]
        with pytest.raises(ValueError):
            best_multihop_route(small_world, asn, asn)

    def test_single_relay_matches_best_bounce(self, small_world, as_pair):
        a, b = as_pair
        relays, cost = best_multihop_route(small_world, a, b, day=2, max_relays=1)
        assert len(relays) == 1
        best_bounce = min(
            small_world.wan_segment(a, rid).mean_on_day(2).rtt_ms
            + small_world.wan_segment(b, rid).mean_on_day(2).rtt_ms
            for rid in small_world.topology.relay_ids
        )
        assert cost == pytest.approx(best_bounce)

    def test_two_relay_cost_matches_transit_composition(self, small_world, as_pair):
        a, b = as_pair
        relays, cost = best_multihop_route(small_world, a, b, day=2, max_relays=2)
        assert 1 <= len(relays) <= 2
        if len(relays) == 2:
            r1, r2 = relays
            expected = (
                small_world.wan_segment(a, r1).mean_on_day(2).rtt_ms
                + small_world.inter_segment(r1, r2).mean_on_day(2).rtt_ms
                + small_world.wan_segment(b, r2).mean_on_day(2).rtt_ms
            )
            assert cost == pytest.approx(expected)

    def test_more_hops_never_hurt(self, small_world, as_pair):
        a, b = as_pair
        _r1, cost1 = best_multihop_route(small_world, a, b, day=2, max_relays=1)
        _r2, cost2 = best_multihop_route(small_world, a, b, day=2, max_relays=2)
        relays_free, cost_free = best_multihop_route(small_world, a, b, day=2)
        assert cost2 <= cost1 + 1e-9
        assert cost_free <= cost2 + 1e-9
        assert relays_free  # at least one relay on the route

    def test_unbounded_beyond_transit_gains_little(self, small_world, as_pair):
        """The engineering claim behind VIA's bounce/transit action space:
        on a well-provisioned backbone, >2 relay hops add almost nothing."""
        a, b = as_pair
        _r2, cost2 = best_multihop_route(small_world, a, b, day=2, max_relays=2)
        _rf, cost_free = best_multihop_route(small_world, a, b, day=2)
        assert cost_free >= 0.9 * cost2
