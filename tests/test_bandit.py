"""Unit tests for repro.core.bandit (Algorithm 3: modified UCB1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bandit import UCB1Explorer
from repro.core.predictor import Prediction
from repro.netmodel.options import RelayOption


def arms(n: int) -> list[RelayOption]:
    return [RelayOption.bounce(i) for i in range(n)]


def prediction(mean: float, sem: float = 5.0) -> Prediction:
    return Prediction(
        mean=np.array([mean, 0.01, 5.0]), sem=np.array([sem, 0.001, 0.5]),
        n=5, source="history",
    )


class TestConstruction:
    def test_rejects_empty_arms(self):
        with pytest.raises(ValueError):
            UCB1Explorer([], normalizer=1.0)

    def test_rejects_duplicate_arms(self):
        a = arms(2)
        with pytest.raises(ValueError):
            UCB1Explorer([a[0], a[0]], normalizer=1.0)

    def test_rejects_bad_normalizer(self):
        with pytest.raises(ValueError):
            UCB1Explorer(arms(2), normalizer=0.0)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            UCB1Explorer(arms(2), normalizer=1.0, mode="other")

    def test_from_predictions_normalizer_is_mean_upper(self):
        a = arms(3)
        preds = {
            a[0]: prediction(100.0, 10.0),
            a[1]: prediction(150.0, 10.0),
            a[2]: prediction(200.0, 10.0),
        }
        bandit = UCB1Explorer.from_predictions(a, preds, 0)
        expected = np.mean([p.upper(0) for p in preds.values()])
        assert bandit._normalizer == pytest.approx(expected)

    def test_from_predictions_without_any_prediction(self):
        bandit = UCB1Explorer.from_predictions(arms(2), {}, 0)
        assert bandit._normalizer == 1.0


class TestSelection:
    def test_untried_arms_played_first_in_order(self):
        a = arms(3)
        bandit = UCB1Explorer(a, normalizer=100.0)
        assert bandit.choose() == a[0]
        bandit.update(a[0], 50.0)
        assert bandit.choose() == a[1]
        bandit.update(a[1], 50.0)
        assert bandit.choose() == a[2]

    def test_exploits_clearly_better_arm(self):
        a = arms(2)
        bandit = UCB1Explorer(a, normalizer=100.0, exploration_coef=0.05)
        rng = np.random.default_rng(0)
        for _ in range(200):
            choice = bandit.choose()
            cost = rng.normal(50.0, 5.0) if choice == a[0] else rng.normal(150.0, 5.0)
            bandit.update(choice, max(1.0, float(cost)))
        assert bandit.count(a[0]) > 5 * bandit.count(a[1])

    def test_exploration_bonus_revisits_undersampled_arm(self):
        a = arms(2)
        bandit = UCB1Explorer(a, normalizer=100.0, exploration_coef=0.5)
        # Arm 0 looks slightly better but has been played a lot; arm 1 has
        # one sample -- a large bonus should send us back to arm 1.
        for _ in range(50):
            bandit.update(a[0], 100.0)
        bandit.update(a[1], 110.0)
        assert bandit.choose() == a[1]

    def test_zero_coef_is_pure_greedy(self):
        a = arms(2)
        bandit = UCB1Explorer(a, normalizer=100.0, exploration_coef=0.0)
        bandit.update(a[0], 100.0)
        bandit.update(a[1], 90.0)
        for _ in range(10):
            assert bandit.choose() == a[1]
            bandit.update(a[1], 90.0)


class TestNormalisation:
    def test_classic_mode_uses_max_seen(self):
        a = arms(2)
        bandit = UCB1Explorer(a, normalizer=1.0, mode="classic")
        bandit.update(a[0], 100.0)
        bandit.update(a[1], 1000.0)  # outlier compresses the scale
        assert bandit._effective_normalizer() == pytest.approx(1000.0)

    def test_via_mode_ignores_outliers(self):
        a = arms(2)
        bandit = UCB1Explorer(a, normalizer=120.0, mode="via")
        bandit.update(a[0], 100.0)
        bandit.update(a[1], 10_000.0)
        assert bandit._effective_normalizer() == pytest.approx(120.0)

    def test_outlier_robustness_story(self):
        """With one huge outlier, via-normalisation still separates the
        arms while classic normalisation nearly cannot (Figure 15)."""
        a = arms(2)
        via = UCB1Explorer(a, normalizer=120.0, mode="via", exploration_coef=0.1)
        classic = UCB1Explorer(a, normalizer=1.0, mode="classic", exploration_coef=0.1)
        for bandit in (via, classic):
            for _ in range(20):
                bandit.update(a[0], 100.0)
                bandit.update(a[1], 110.0)
            bandit.update(a[1], 50_000.0)  # one pathological RTT sample

        def gap(bandit: UCB1Explorer) -> float:
            n = bandit._effective_normalizer()
            means = [bandit.mean_cost(x) / n for x in a]
            return abs(means[1] - means[0])

        assert gap(via) > 20 * gap(classic)


class TestUpdate:
    def test_accounting(self):
        a = arms(2)
        bandit = UCB1Explorer(a, normalizer=1.0)
        bandit.update(a[0], 10.0)
        bandit.update(a[0], 20.0)
        assert bandit.count(a[0]) == 2
        assert bandit.mean_cost(a[0]) == pytest.approx(15.0)
        assert bandit.mean_cost(a[1]) is None
        assert bandit.total_plays == 2

    def test_rejects_unknown_arm(self):
        bandit = UCB1Explorer(arms(1), normalizer=1.0)
        with pytest.raises(KeyError):
            bandit.update(RelayOption.bounce(99), 1.0)

    def test_rejects_negative_cost(self):
        bandit = UCB1Explorer(arms(1), normalizer=1.0)
        with pytest.raises(ValueError):
            bandit.update(arms(1)[0], -1.0)

    def test_rejects_nan_cost(self):
        bandit = UCB1Explorer(arms(1), normalizer=1.0)
        with pytest.raises(ValueError):
            bandit.update(arms(1)[0], float("nan"))

    def test_snapshot(self):
        a = arms(2)
        bandit = UCB1Explorer(a, normalizer=1.0)
        bandit.update(a[0], 10.0)
        snap = bandit.snapshot()
        assert snap[str(a[0])]["count"] == 1.0
        assert np.isnan(snap[str(a[1])]["mean_cost"])
