"""Unit tests for repro.core.coordinates (Vivaldi embedding)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.coordinates import CoordinateSystem, VivaldiConfig


def synthetic_space(n_nodes: int, rng: np.random.Generator, dims: int = 3):
    """Ground-truth positions + heights for a synthetic metric space."""
    positions = rng.uniform(0.0, 200.0, size=(n_nodes, dims))
    heights = rng.uniform(2.0, 15.0, size=n_nodes)

    def true_rtt(i: int, j: int) -> float:
        return float(np.linalg.norm(positions[i] - positions[j]) + heights[i] + heights[j])

    return true_rtt


class TestConfig:
    def test_defaults_valid(self):
        VivaldiConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [{"dimensions": 0}, {"error_gain": 0.0}, {"position_gain": 1.5}, {"min_height_ms": -1.0}],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            VivaldiConfig(**kwargs)


class TestCoordinateSystem:
    def test_nodes_created_lazily(self):
        system = CoordinateSystem()
        assert len(system) == 0
        system.node("a")
        assert len(system) == 1

    def test_observe_rejects_bad_rtt(self):
        system = CoordinateSystem()
        with pytest.raises(ValueError):
            system.observe("a", "b", 0.0)
        with pytest.raises(ValueError):
            system.observe("a", "b", float("nan"))

    def test_self_observation_is_ignored(self):
        system = CoordinateSystem()
        system.observe("a", "a", 50.0)
        assert system.n_observations == 0

    def test_estimate_requires_warm_nodes(self):
        system = CoordinateSystem()
        assert system.estimate_rtt("a", "b") is None
        for _ in range(3):
            system.observe("a", "b", 100.0)
        # 3 observations < min_updates=5 -> still None.
        assert system.estimate_rtt("a", "b") is None

    def test_two_node_convergence(self):
        system = CoordinateSystem()
        for _ in range(60):
            system.observe("a", "b", 120.0)
        estimate = system.estimate_rtt("a", "b")
        assert estimate == pytest.approx(120.0, rel=0.15)

    def test_error_estimates_shrink(self):
        system = CoordinateSystem()
        for _ in range(80):
            system.observe("a", "b", 80.0)
        confidence = system.estimation_confidence("a", "b")
        assert confidence is not None
        assert confidence < 0.5

    def test_triangle_embedding(self):
        # Three nodes with consistent metric distances embed accurately.
        system = CoordinateSystem()
        rtts = {("a", "b"): 100.0, ("b", "c"): 120.0, ("a", "c"): 160.0}
        rng = np.random.default_rng(0)
        keys = list(rtts)
        for _ in range(300):
            pair = keys[rng.integers(len(keys))]
            system.observe(pair[0], pair[1], rtts[pair])
        for (a, b), expected in rtts.items():
            assert system.estimate_rtt(a, b) == pytest.approx(expected, rel=0.2)

    def test_predicts_unseen_pairs_in_metric_space(self):
        """The headline property: pairs never observed together still get
        useful RTT estimates once both endpoints are embedded."""
        rng = np.random.default_rng(1)
        n = 14
        true_rtt = synthetic_space(n, rng)
        system = CoordinateSystem(VivaldiConfig(dimensions=3))
        pairs = list(itertools.combinations(range(n), 2))
        held_out = {(0, 1), (2, 3), (4, 5), (6, 7)}
        training = [p for p in pairs if p not in held_out]
        for _ in range(40):
            for i, j in training:
                noisy = true_rtt(i, j) * float(rng.lognormal(0.0, 0.05))
                system.observe(i, j, noisy)
        errors = []
        for i, j in held_out:
            estimate = system.estimate_rtt(i, j)
            assert estimate is not None
            errors.append(abs(estimate - true_rtt(i, j)) / true_rtt(i, j))
        assert float(np.median(errors)) < 0.25

    def test_heights_capture_access_penalty(self):
        """A node whose every path carries a constant extra delay should
        grow height rather than wander in space."""
        rng = np.random.default_rng(2)
        true_rtt = synthetic_space(8, rng)
        system = CoordinateSystem()
        for _ in range(60):
            for i in range(8):
                for j in range(i + 1, 8):
                    penalty = 40.0 if (i == 0 or j == 0) else 0.0
                    system.observe(i, j, true_rtt(i, j) + penalty)
        assert system.node(0).height > system.node(3).height
