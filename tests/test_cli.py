"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.workload import TraceDataset


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.metric == "rtt_ms"
        assert args.calls == 20_000

    def test_simulate_rejects_unknown_metric(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--metric", "pesq"])

    def test_trace_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])


class TestQualityCommand:
    def test_good_network(self, capsys):
        assert main(["quality", "--rtt", "50", "--loss", "0.001", "--jitter", "2"]) == 0
        out = capsys.readouterr().out
        assert "MOS = " in out

    def test_threshold_point_is_marginal(self, capsys):
        main(["quality", "--rtt", "320", "--loss", "0.012", "--jitter", "12"])
        out = capsys.readouterr().out
        mos = float(out.split("MOS = ")[1].split()[0])
        assert 2.0 < mos < 4.0

    def test_invalid_metrics_exit_code(self, capsys):
        assert main(["quality", "--rtt", "-5", "--loss", "0", "--jitter", "0"]) == 2
        assert "error" in capsys.readouterr().err


class TestTraceCommand:
    def test_writes_loadable_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main([
            "trace", "--calls", "500", "--days", "4", "--countries", "8",
            "--relays", "5", "--out", str(out),
        ])
        assert code == 0
        assert "wrote 500 calls" in capsys.readouterr().out
        loaded = TraceDataset.load_jsonl(out)
        assert len(loaded) == 500
        assert loaded.n_days == 4


class TestSimulateCommand:
    def test_small_run_prints_table(self, capsys):
        code = main([
            "simulate", "--calls", "1500", "--days", "5", "--countries", "8",
            "--relays", "5", "--no-strawmen", "--min-pair-calls", "20",
            "--warmup-days", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "default" in out and "via" in out and "oracle" in out
        assert "PNR" in out


class TestTestbedCommand:
    def test_small_deployment(self, capsys):
        code = main([
            "testbed", "--clients", "6", "--pairs", "3",
            "--measurement-rounds", "2", "--via-rounds", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "within 20% of oracle" in out


class TestTraceReuse:
    def test_simulate_from_saved_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert main([
            "trace", "--calls", "1200", "--days", "5", "--countries", "8",
            "--relays", "5", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        code = main([
            "simulate", "--trace-in", str(out), "--days", "5", "--countries", "8",
            "--relays", "5", "--no-strawmen", "--min-pair-calls", "15",
            "--warmup-days", "1",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "1,200 calls" in text


class TestFullReport:
    def test_simulate_full_report(self, capsys):
        code = main([
            "simulate", "--calls", "1500", "--days", "5", "--countries", "8",
            "--relays", "5", "--no-strawmen", "--min-pair-calls", "20",
            "--warmup-days", "1", "--full-report",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PNR by strategy" in out
        assert "Relay mix" in out
        assert "±" in out


class TestStoreCommand:
    """`repro store inspect|verify|compact` exit-code contract:
    0 = clean, 1 = damage found (verify), 2 = not a store directory."""

    @pytest.fixture()
    def healthy_store(self, tmp_path):
        from repro.verify.crashpoints import record_workload

        root = tmp_path / "store"
        record_workload(root, n_rounds=6, seed=3)
        return root

    @pytest.mark.parametrize("action", ["inspect", "verify", "compact"])
    def test_missing_directory_exits_2(self, tmp_path, action, capsys):
        assert main(["store", action, str(tmp_path / "nope")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_empty_directory_is_clean(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["store", "inspect", str(empty)]) == 0
        assert "no WAL segments" in capsys.readouterr().out
        assert main(["store", "verify", str(empty)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_healthy_store_verifies_clean(self, healthy_store, capsys):
        assert main(["store", "inspect", str(healthy_store)]) == 0
        out = capsys.readouterr().out
        assert "wal-00000001.seg" in out
        assert "ok" in out
        assert main(["store", "verify", str(healthy_store)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_corrupt_frame_fails_verify_but_not_inspect(self, healthy_store, capsys):
        from repro.store.wal import segment_paths

        segment = segment_paths(healthy_store / "wal")[0]
        data = bytearray(segment.read_bytes())
        data[len(data) // 2] ^= 0xFF
        segment.write_bytes(bytes(data))
        # inspect is a read-only listing: it reports damage, exit 0.
        assert main(["store", "inspect", str(healthy_store)]) == 0
        capsys.readouterr()
        assert main(["store", "verify", str(healthy_store)]) == 1
        assert "DAMAGED" in capsys.readouterr().out

    def test_corrupt_snapshot_fails_verify(self, healthy_store, capsys):
        (healthy_store / "snapshot.json").write_text("{not json", encoding="utf-8")
        assert main(["store", "verify", str(healthy_store)]) == 1
        out = capsys.readouterr().out
        assert "DAMAGED" in out and "corrupt" in out

    def test_compact_then_verify_stays_clean(self, healthy_store, capsys):
        assert main(["store", "compact", str(healthy_store)]) == 0
        assert "Compaction" in capsys.readouterr().out
        assert main(["store", "verify", str(healthy_store)]) == 0
        assert "clean" in capsys.readouterr().out
