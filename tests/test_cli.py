"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.workload import TraceDataset


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.metric == "rtt_ms"
        assert args.calls == 20_000

    def test_simulate_rejects_unknown_metric(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--metric", "pesq"])

    def test_trace_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])


class TestQualityCommand:
    def test_good_network(self, capsys):
        assert main(["quality", "--rtt", "50", "--loss", "0.001", "--jitter", "2"]) == 0
        out = capsys.readouterr().out
        assert "MOS = " in out

    def test_threshold_point_is_marginal(self, capsys):
        main(["quality", "--rtt", "320", "--loss", "0.012", "--jitter", "12"])
        out = capsys.readouterr().out
        mos = float(out.split("MOS = ")[1].split()[0])
        assert 2.0 < mos < 4.0

    def test_invalid_metrics_exit_code(self, capsys):
        assert main(["quality", "--rtt", "-5", "--loss", "0", "--jitter", "0"]) == 2
        assert "error" in capsys.readouterr().err


class TestTraceCommand:
    def test_writes_loadable_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main([
            "trace", "--calls", "500", "--days", "4", "--countries", "8",
            "--relays", "5", "--out", str(out),
        ])
        assert code == 0
        assert "wrote 500 calls" in capsys.readouterr().out
        loaded = TraceDataset.load_jsonl(out)
        assert len(loaded) == 500
        assert loaded.n_days == 4


class TestSimulateCommand:
    def test_small_run_prints_table(self, capsys):
        code = main([
            "simulate", "--calls", "1500", "--days", "5", "--countries", "8",
            "--relays", "5", "--no-strawmen", "--min-pair-calls", "20",
            "--warmup-days", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "default" in out and "via" in out and "oracle" in out
        assert "PNR" in out


class TestTestbedCommand:
    def test_small_deployment(self, capsys):
        code = main([
            "testbed", "--clients", "6", "--pairs", "3",
            "--measurement-rounds", "2", "--via-rounds", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "within 20% of oracle" in out


class TestTraceReuse:
    def test_simulate_from_saved_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert main([
            "trace", "--calls", "1200", "--days", "5", "--countries", "8",
            "--relays", "5", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        code = main([
            "simulate", "--trace-in", str(out), "--days", "5", "--countries", "8",
            "--relays", "5", "--no-strawmen", "--min-pair-calls", "15",
            "--warmup-days", "1",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "1,200 calls" in text


class TestFullReport:
    def test_simulate_full_report(self, capsys):
        code = main([
            "simulate", "--calls", "1500", "--days", "5", "--countries", "8",
            "--relays", "5", "--no-strawmen", "--min-pair-calls", "20",
            "--warmup-days", "1", "--full-report",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PNR by strategy" in out
        assert "Relay mix" in out
        assert "±" in out
