"""Shared fixtures: tiny deterministic worlds and traces for fast tests.

Also registers the repo-wide hypothesis settings profiles so no test
carries its own ``@settings`` tuning:

* ``dev`` (default) -- 25 examples per property, the quick inner loop;
* ``ci`` -- 150 examples, what the gate runs.

Select with ``REPRO_HYPOTHESIS_PROFILE=ci pytest tests/``.  Both disable
deadlines (CI containers stall unpredictably) and tolerate slow or
filter-heavy strategies rather than turning throughput into failures.
"""

from __future__ import annotations

import asyncio
import inspect
import os

import numpy as np
import pytest

from repro.netmodel import TopologyConfig, WorldConfig, build_world
from repro.workload import WorkloadConfig, generate_trace

try:
    from hypothesis import HealthCheck, settings as _hyp_settings
except ImportError:  # pragma: no cover - hypothesis-less environments
    pass
else:
    _COMMON = dict(
        deadline=None,
        suppress_health_check=(
            HealthCheck.too_slow,
            HealthCheck.filter_too_much,
        ),
    )
    _hyp_settings.register_profile("dev", max_examples=25, **_COMMON)
    _hyp_settings.register_profile("ci", max_examples=150, **_COMMON)
    _hyp_settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "dev"))


def pytest_configure(config):
    # Registered in pyproject.toml too; duplicated here so the suite stays
    # marker-clean even when pytest runs without the repo's ini options
    # (e.g. `pytest tests/test_soak.py -c /dev/null` in a bisect).
    config.addinivalue_line(
        "markers", "soak: chaos soak harness tests (run with `make test-soak`)"
    )


@pytest.fixture(scope="session")
def poll_until():
    """Await an eventually-true condition instead of sleeping a fixed beat.

    Fire-and-forget effects (measurement counters, disconnect pruning,
    gossip folds) land asynchronously; fixed sleeps either flake under
    load or waste wall-clock.  ``await poll_until(get, predicate)``
    re-evaluates ``get`` (sync or async) until ``predicate(value)`` is
    truthy and returns that value; on timeout it returns the *last*
    value so the caller's own assert reports the real final state.
    """

    async def _poll(get, predicate=bool, *, timeout_s=5.0, interval_s=0.01):
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while True:
            value = get()
            if inspect.isawaitable(value):
                value = await value
            if predicate(value) or loop.time() >= deadline:
                return value
            await asyncio.sleep(interval_s)

    return _poll


@pytest.fixture(scope="session")
def small_world():
    """A small but non-trivial world: 8 countries, 6 relays, 8 days."""
    return build_world(
        WorldConfig(
            topology=TopologyConfig(n_countries=8, n_relays=6, seed=11),
            n_days=8,
            seed=13,
        )
    )


@pytest.fixture(scope="session")
def small_trace(small_world):
    """~4k calls over the small world's 8 days."""
    return generate_trace(
        small_world.topology,
        WorkloadConfig(n_calls=4_000, n_pairs=120, seed=17),
        n_days=8,
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
