"""Shared fixtures: tiny deterministic worlds and traces for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netmodel import TopologyConfig, WorldConfig, build_world
from repro.workload import WorkloadConfig, generate_trace


@pytest.fixture(scope="session")
def small_world():
    """A small but non-trivial world: 8 countries, 6 relays, 8 days."""
    return build_world(
        WorldConfig(
            topology=TopologyConfig(n_countries=8, n_relays=6, seed=11),
            n_days=8,
            seed=13,
        )
    )


@pytest.fixture(scope="session")
def small_trace(small_world):
    """~4k calls over the small world's 8 days."""
    return generate_trace(
        small_world.topology,
        WorkloadConfig(n_calls=4_000, n_pairs=120, seed=17),
        n_days=8,
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
