"""Unit tests for repro.core.hybrid (§7 hybrid reactive selection)."""

from __future__ import annotations

import pytest

from repro.core.hybrid import HybridReactivePolicy, ProbePlan, blend_call_metrics
from repro.core.policy import ViaConfig
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption
from repro.simulation import make_inter_relay_lookup
from repro.simulation.replay import replay
from repro.telephony.call import Call
from repro.workload.trace import TraceDataset

OPTIONS = [DIRECT, RelayOption.bounce(0), RelayOption.bounce(1), RelayOption.transit(0, 1)]


def make_call(call_id=0, t_hours=30.0, duration_s=300.0) -> Call:
    return Call(
        call_id=call_id, t_hours=t_hours, src_asn=1001, dst_asn=1002,
        src_country="US", dst_country="IN", src_user=0, dst_user=1,
        duration_s=duration_s,
    )


def metrics(rtt: float) -> PathMetrics:
    return PathMetrics(rtt_ms=rtt, loss_rate=0.01, jitter_ms=5.0)


class TestProbePlan:
    def test_valid(self):
        plan = ProbePlan(candidates=(OPTIONS[0], OPTIONS[1]), primary=OPTIONS[0])
        assert plan.primary in plan.candidates

    def test_rejects_single_candidate(self):
        with pytest.raises(ValueError):
            ProbePlan(candidates=(OPTIONS[0],), primary=OPTIONS[0])

    def test_rejects_foreign_primary(self):
        with pytest.raises(ValueError):
            ProbePlan(candidates=(OPTIONS[0], OPTIONS[1]), primary=OPTIONS[2])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            ProbePlan(candidates=(OPTIONS[0], OPTIONS[0]), primary=OPTIONS[0])


class TestBlend:
    def test_pure_phases(self):
        a, b = metrics(100.0), metrics(200.0)
        assert blend_call_metrics(a, b, 1.0) == a
        assert blend_call_metrics(a, b, 0.0).rtt_ms == pytest.approx(200.0)

    def test_midpoint(self):
        blended = blend_call_metrics(metrics(100.0), metrics(200.0), 0.5)
        assert blended.rtt_ms == pytest.approx(150.0)

    def test_loss_blends_in_linear_domain(self):
        a = PathMetrics(rtt_ms=1.0, loss_rate=0.1, jitter_ms=1.0)
        b = PathMetrics(rtt_ms=1.0, loss_rate=0.0, jitter_ms=1.0)
        blended = blend_call_metrics(a, b, 0.5)
        assert 0.0 < blended.loss_rate < 0.1

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            blend_call_metrics(metrics(1.0), metrics(2.0), 1.5)


class TestHybridPolicy:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HybridReactivePolicy(probe_top_n=1)
        with pytest.raises(ValueError):
            HybridReactivePolicy(probe_window_s=0.0)

    def test_short_calls_not_probed(self):
        policy = HybridReactivePolicy(ViaConfig(seed=1), min_duration_s=60.0)
        plan = policy.plan_probe(make_call(duration_s=20.0), OPTIONS)
        assert plan is None

    def test_long_calls_get_candidate_plans(self):
        policy = HybridReactivePolicy(ViaConfig(seed=1), probe_top_n=3)
        plan = policy.plan_probe(make_call(duration_s=300.0), OPTIONS)
        assert plan is not None
        assert 2 <= len(plan.candidates) <= 3
        assert all(c in OPTIONS for c in plan.candidates)

    def test_probe_weight(self):
        policy = HybridReactivePolicy(ViaConfig(seed=1), probe_window_s=10.0)
        assert policy.probe_weight(make_call(duration_s=100.0)) == pytest.approx(0.1)
        assert policy.probe_weight(make_call(duration_s=5.0)) == 1.0

    def test_commit_picks_observed_winner(self):
        policy = HybridReactivePolicy(ViaConfig(seed=1, metric="rtt_ms"))
        call = make_call()
        plan = ProbePlan(candidates=(OPTIONS[1], OPTIONS[2]), primary=OPTIONS[1])
        samples = {OPTIONS[1]: metrics(200.0), OPTIONS[2]: metrics(80.0)}
        assert policy.commit_probe(call, plan, samples) == OPTIONS[2]

    def test_commit_requires_all_samples(self):
        policy = HybridReactivePolicy(ViaConfig(seed=1))
        plan = ProbePlan(candidates=(OPTIONS[1], OPTIONS[2]), primary=OPTIONS[1])
        with pytest.raises(ValueError, match="missing"):
            policy.commit_probe(make_call(), plan, {OPTIONS[1]: metrics(100.0)})

    def test_commit_feeds_history(self):
        policy = HybridReactivePolicy(ViaConfig(seed=1))
        call = make_call(t_hours=1.0)
        plan = ProbePlan(candidates=(OPTIONS[1], OPTIONS[2]), primary=OPTIONS[1])
        policy.commit_probe(
            call, plan, {OPTIONS[1]: metrics(100.0), OPTIONS[2]: metrics(90.0)}
        )
        assert policy.history.stats((1001, 1002), OPTIONS[1], 0) is not None
        assert policy.history.stats((1001, 1002), OPTIONS[2], 0) is not None


class TestHybridReplay:
    def test_end_to_end_beats_default_tail(self, small_world, small_trace):
        trace = TraceDataset(calls=small_trace.calls[:2500], n_days=small_trace.n_days)
        policy = HybridReactivePolicy(
            ViaConfig(seed=2), inter_relay=make_inter_relay_lookup(small_world)
        )
        result = replay(small_world, trace, policy, seed=3)
        assert len(result) == len(trace)
        assert policy.n_probed_calls > 100
        # Outcome options must always come from the pair's candidate set.
        for outcome in result.outcomes[:200]:
            options = small_world.options_for_pair(
                outcome.call.src_asn, outcome.call.dst_asn
            )
            assert outcome.option in options
