"""Unit tests for repro.netmodel.geo."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.netmodel.geo import (
    EARTH_RADIUS_KM,
    FIBER_KM_PER_MS,
    GeoPoint,
    haversine_km,
    propagation_rtt_ms,
)

lat = st.floats(min_value=-90.0, max_value=90.0, allow_nan=False)
lon = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)
points = st.builds(GeoPoint, lat=lat, lon=lon)


class TestGeoPoint:
    def test_valid_construction(self):
        p = GeoPoint(45.0, -120.0)
        assert p.lat == 45.0
        assert p.lon == -120.0

    @pytest.mark.parametrize("bad_lat", [-91.0, 90.5, 180.0])
    def test_rejects_bad_latitude(self, bad_lat):
        with pytest.raises(ValueError, match="latitude"):
            GeoPoint(bad_lat, 0.0)

    @pytest.mark.parametrize("bad_lon", [-181.0, 200.0, 999.0])
    def test_rejects_bad_longitude(self, bad_lon):
        with pytest.raises(ValueError, match="longitude"):
            GeoPoint(0.0, bad_lon)

    def test_is_hashable_value_object(self):
        assert GeoPoint(1.0, 2.0) == GeoPoint(1.0, 2.0)
        assert hash(GeoPoint(1.0, 2.0)) == hash(GeoPoint(1.0, 2.0))

    def test_distance_km_method_matches_function(self):
        a, b = GeoPoint(0.0, 0.0), GeoPoint(10.0, 10.0)
        assert a.distance_km(b) == haversine_km(a, b)


class TestHaversine:
    def test_zero_distance_to_self(self):
        p = GeoPoint(37.4, -122.1)
        assert haversine_km(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_known_distance_london_newyork(self):
        london = GeoPoint(51.5074, -0.1278)
        new_york = GeoPoint(40.7128, -74.0060)
        assert haversine_km(london, new_york) == pytest.approx(5570.0, rel=0.01)

    def test_quarter_circumference_pole_to_equator(self):
        pole = GeoPoint(90.0, 0.0)
        equator = GeoPoint(0.0, 0.0)
        expected = math.pi * EARTH_RADIUS_KM / 2.0
        assert haversine_km(pole, equator) == pytest.approx(expected, rel=1e-6)

    @given(points, points)
    def test_symmetry(self, a, b):
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a), rel=1e-9)

    @given(points, points)
    def test_bounded_by_half_circumference(self, a, b):
        assert 0.0 <= haversine_km(a, b) <= math.pi * EARTH_RADIUS_KM * 1.000001

    def test_antipodal_points(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 180.0)
        assert haversine_km(a, b) == pytest.approx(math.pi * EARTH_RADIUS_KM, rel=1e-6)

    def test_longitude_wraparound_equivalence(self):
        a = GeoPoint(10.0, 179.0)
        b = GeoPoint(10.0, -179.0)
        # 2 degrees apart across the dateline, not 358.
        assert haversine_km(a, b) < 250.0


class TestPropagation:
    def test_round_trip_is_twice_one_way(self):
        a, b = GeoPoint(0.0, 0.0), GeoPoint(0.0, 90.0)
        d = haversine_km(a, b)
        assert propagation_rtt_ms(a, b) == pytest.approx(2.0 * d / FIBER_KM_PER_MS)

    def test_transatlantic_rtt_plausible(self):
        london = GeoPoint(51.5, -0.13)
        new_york = GeoPoint(40.7, -74.0)
        rtt = propagation_rtt_ms(london, new_york)
        # Physical floor should be ~55 ms RTT for ~5570 km.
        assert 50.0 < rtt < 62.0

    @given(points, points)
    def test_non_negative(self, a, b):
        assert propagation_rtt_ms(a, b) >= 0.0
