"""Unit tests for repro.telephony.rtp (packet traces, RFC 3550 jitter)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netmodel.metrics import PathMetrics
from repro.telephony.codec import G711
from repro.telephony.quality import mos_from_network
from repro.telephony.rtp import (
    GilbertElliottLoss,
    PacketTrace,
    rfc3550_jitter,
    simulate_rtp_stream,
    trace_metrics,
    trace_mos,
)


class TestGilbertElliott:
    def test_from_average_hits_target(self):
        for target in (0.005, 0.02, 0.08):
            model = GilbertElliottLoss.from_average(target)
            assert model.average_loss() == pytest.approx(target, rel=1e-6)

    def test_from_average_empirical(self):
        model = GilbertElliottLoss.from_average(0.05, burstiness=0.5)
        rng = np.random.default_rng(0)
        mask = model.sample_mask(200_000, rng)
        assert mask.mean() == pytest.approx(0.05, rel=0.1)

    def test_burstiness_creates_longer_runs(self):
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        random = GilbertElliottLoss.from_average(0.05, burstiness=0.0)
        bursty = GilbertElliottLoss.from_average(0.05, burstiness=0.9)

        def max_run(mask: np.ndarray) -> int:
            best = run = 0
            for lost in mask:
                run = run + 1 if lost else 0
                best = max(best, run)
            return best

        assert max_run(bursty.sample_mask(50_000, rng1)) > max_run(
            random.sample_mask(50_000, rng2)
        )

    def test_zero_loss(self):
        model = GilbertElliottLoss.from_average(0.0)
        rng = np.random.default_rng(2)
        assert not model.sample_mask(10_000, rng).any()

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss.from_average(1.0)
        with pytest.raises(ValueError):
            GilbertElliottLoss.from_average(0.05, burstiness=1.5)
        with pytest.raises(ValueError):
            GilbertElliottLoss.from_average(0.05, mean_burst_packets=0.5)
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_gb=0.0, p_bg=0.0, loss_good=0.0, loss_bad=0.5)

    def test_sample_mask_rejects_negative(self, rng):
        model = GilbertElliottLoss.from_average(0.01)
        with pytest.raises(ValueError):
            model.sample_mask(-1, rng)


class TestPacketTrace:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PacketTrace(send_ms=np.zeros(3), recv_ms=np.zeros(4), rtt_ms=10.0)

    def test_loss_rate_counts_nan(self):
        trace = PacketTrace(
            send_ms=np.array([0.0, 20.0, 40.0, 60.0]),
            recv_ms=np.array([50.0, np.nan, 90.0, np.nan]),
            rtt_ms=100.0,
        )
        assert trace.loss_rate == pytest.approx(0.5)
        assert trace.n_packets == 4
        assert trace.duration_ms == pytest.approx(60.0)


class TestSimulateStream:
    def test_packet_rate_matches_codec(self, rng):
        trace = simulate_rtp_stream(
            10.0, base_owd_ms=50.0, jitter_scale_ms=5.0, loss=0.01, rng=rng, codec=G711
        )
        assert trace.n_packets == 500  # 10s at 50 pps

    def test_loss_rate_near_target(self):
        rng = np.random.default_rng(3)
        trace = simulate_rtp_stream(
            600.0, base_owd_ms=40.0, jitter_scale_ms=3.0, loss=0.05, rng=rng
        )
        assert trace.loss_rate == pytest.approx(0.05, abs=0.015)

    def test_received_packets_arrive_after_send(self, rng):
        trace = simulate_rtp_stream(
            5.0, base_owd_ms=30.0, jitter_scale_ms=2.0, loss=0.0, rng=rng
        )
        received = ~trace.lost_mask
        assert (trace.recv_ms[received] > trace.send_ms[received]).all()

    def test_rtt_carried_through(self, rng):
        trace = simulate_rtp_stream(
            5.0, base_owd_ms=75.0, jitter_scale_ms=2.0, loss=0.0, rng=rng
        )
        assert trace.rtt_ms == pytest.approx(150.0)

    def test_rejects_bad_duration(self, rng):
        with pytest.raises(ValueError):
            simulate_rtp_stream(0.0, base_owd_ms=10.0, jitter_scale_ms=1.0, loss=0.0, rng=rng)


class TestRfc3550Jitter:
    def test_constant_delay_zero_jitter(self):
        send = np.arange(100, dtype=float) * 20.0
        trace = PacketTrace(send_ms=send, recv_ms=send + 40.0, rtt_ms=80.0)
        assert rfc3550_jitter(trace) == pytest.approx(0.0)

    def test_alternating_delay_converges_to_step(self):
        # Transit alternates +-d, so |D| = 2 ms every packet; J -> 2.
        send = np.arange(2000, dtype=float) * 20.0
        delays = np.where(np.arange(2000) % 2 == 0, 40.0, 42.0)
        trace = PacketTrace(send_ms=send, recv_ms=send + delays, rtt_ms=80.0)
        assert rfc3550_jitter(trace) == pytest.approx(2.0, abs=0.05)

    def test_scales_with_jitter_parameter(self):
        rng1, rng2 = np.random.default_rng(4), np.random.default_rng(4)
        low = simulate_rtp_stream(
            60.0, base_owd_ms=40.0, jitter_scale_ms=2.0, loss=0.0, rng=rng1,
            delay_spike_rate_per_min=0.0,
        )
        high = simulate_rtp_stream(
            60.0, base_owd_ms=40.0, jitter_scale_ms=12.0, loss=0.0, rng=rng2,
            delay_spike_rate_per_min=0.0,
        )
        assert rfc3550_jitter(high) > 2.0 * rfc3550_jitter(low)

    def test_too_few_packets_zero(self):
        trace = PacketTrace(send_ms=np.array([0.0]), recv_ms=np.array([40.0]), rtt_ms=80.0)
        assert rfc3550_jitter(trace) == 0.0


class TestTraceMetrics:
    def test_consistency_with_inputs(self):
        rng = np.random.default_rng(5)
        trace = simulate_rtp_stream(
            120.0, base_owd_ms=60.0, jitter_scale_ms=4.0, loss=0.03, rng=rng
        )
        metrics = trace_metrics(trace)
        assert metrics.rtt_ms == pytest.approx(120.0)
        assert metrics.loss_rate == pytest.approx(0.03, abs=0.015)
        assert metrics.jitter_ms > 0.0


class TestTraceMos:
    def test_higher_for_clean_stream(self):
        rng1, rng2 = np.random.default_rng(6), np.random.default_rng(6)
        clean = simulate_rtp_stream(
            60.0, base_owd_ms=40.0, jitter_scale_ms=2.0, loss=0.001, rng=rng1
        )
        dirty = simulate_rtp_stream(
            60.0, base_owd_ms=200.0, jitter_scale_ms=15.0, loss=0.08, rng=rng2
        )
        assert trace_mos(clean) > trace_mos(dirty) + 0.5

    def test_bursty_loss_scores_worse_than_average_suggests(self):
        # A trace with one catastrophic window should have trace-MOS below
        # the MOS computed from its own call-average metrics.
        send = np.arange(3000, dtype=float) * 20.0
        recv = send + 40.0
        recv[1000:1200] = np.nan  # 4-second total blackout
        trace = PacketTrace(send_ms=send, recv_ms=recv, rtt_ms=80.0)
        avg_mos = mos_from_network(trace_metrics(trace))
        assert trace_mos(trace) < avg_mos

    def test_bounds(self):
        rng = np.random.default_rng(7)
        trace = simulate_rtp_stream(
            30.0, base_owd_ms=50.0, jitter_scale_ms=5.0, loss=0.02, rng=rng
        )
        assert 1.0 <= trace_mos(trace) <= 4.5

    def test_rejects_bad_window(self):
        rng = np.random.default_rng(8)
        trace = simulate_rtp_stream(
            10.0, base_owd_ms=50.0, jitter_scale_ms=5.0, loss=0.02, rng=rng
        )
        with pytest.raises(ValueError):
            trace_mos(trace, window_s=0.0)
