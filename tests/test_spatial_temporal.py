"""Unit tests for repro.analysis.spatial and repro.analysis.temporal."""

from __future__ import annotations

import pytest

from repro.analysis.spatial import (
    by_country_pnr,
    pair_contribution_curve,
    split_international,
)
from repro.analysis.temporal import (
    best_option_durations,
    daily_pair_pnr,
    persistence_and_prevalence,
)
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT
from repro.telephony.call import Call, CallOutcome

GOOD = PathMetrics(rtt_ms=100.0, loss_rate=0.005, jitter_ms=5.0)
BAD = PathMetrics(rtt_ms=400.0, loss_rate=0.05, jitter_ms=30.0)


def outcome(
    metrics: PathMetrics,
    *,
    src_asn: int = 1,
    dst_asn: int = 2,
    src_country: str = "A",
    dst_country: str = "B",
    day: int = 0,
    call_id: int = 0,
) -> CallOutcome:
    call = Call(
        call_id=call_id, t_hours=day * 24.0 + 1.0, src_asn=src_asn, dst_asn=dst_asn,
        src_country=src_country, dst_country=dst_country, src_user=0, dst_user=1,
    )
    return CallOutcome(call=call, option=DIRECT, metrics=metrics)


class TestSplitInternational:
    def test_partition(self):
        outcomes = [
            outcome(GOOD, src_country="A", dst_country="B"),
            outcome(GOOD, src_country="A", dst_country="A"),
        ]
        intl, dom = split_international(outcomes)
        assert len(intl) == 1 and len(dom) == 1
        assert intl[0].call.international


class TestByCountryPnr:
    def test_counts_both_sides(self):
        outcomes = [outcome(BAD, src_country="X", dst_country="Y", call_id=i) for i in range(10)]
        result = by_country_pnr(outcomes, "rtt_ms", min_calls=5)
        assert result["X"] == pytest.approx(1.0)
        assert result["Y"] == pytest.approx(1.0)

    def test_domestic_excluded_when_international_only(self):
        outcomes = [outcome(BAD, src_country="X", dst_country="X", call_id=i) for i in range(10)]
        assert by_country_pnr(outcomes, "rtt_ms", min_calls=1) == {}
        assert by_country_pnr(outcomes, "rtt_ms", min_calls=1, international_only=False)

    def test_min_calls_filters(self):
        outcomes = [outcome(BAD, call_id=i) for i in range(3)]
        assert by_country_pnr(outcomes, min_calls=5) == {}


class TestPairContribution:
    def test_concentrated_single_pair(self):
        outcomes = [outcome(BAD, src_asn=1, dst_asn=2, call_id=i) for i in range(10)]
        curve = pair_contribution_curve(outcomes, "rtt_ms")
        assert curve == [(1, 1.0)]

    def test_spread_across_pairs(self):
        outcomes = []
        for pair_idx in range(10):
            outcomes.append(
                outcome(BAD, src_asn=pair_idx * 2, dst_asn=pair_idx * 2 + 1,
                        call_id=pair_idx)
            )
        curve = pair_contribution_curve(outcomes, "rtt_ms")
        assert curve[0] == (1, pytest.approx(0.1))
        assert curve[-1] == (10, pytest.approx(1.0))

    def test_no_poor_calls(self):
        assert pair_contribution_curve([outcome(GOOD)], "rtt_ms") == []

    def test_cumulative_monotone(self):
        outcomes = [
            outcome(BAD if i % 3 else GOOD, src_asn=i % 7, dst_asn=10 + i % 5, call_id=i)
            for i in range(200)
        ]
        curve = pair_contribution_curve(outcomes)
        fractions = [f for _n, f in curve]
        assert fractions == sorted(fractions)


class TestDailyPairPnr:
    def test_basic_series(self):
        outcomes = []
        cid = 0
        for day in range(3):
            for _ in range(6):
                outcomes.append(outcome(BAD if day == 1 else GOOD, day=day, call_id=cid))
                cid += 1
        pair_pnr, overall = daily_pair_pnr(outcomes, "rtt_ms", min_calls_per_day=5)
        series = pair_pnr[(1, 2)]
        assert series[0] == 0.0 and series[1] == 1.0 and series[2] == 0.0
        assert overall[1] == 1.0

    def test_sparse_days_dropped(self):
        outcomes = [outcome(BAD, day=0, call_id=0)]
        pair_pnr, _overall = daily_pair_pnr(outcomes, min_calls_per_day=5)
        assert pair_pnr == {}


class TestPersistencePrevalence:
    def test_always_bad_pair(self):
        pair_pnr = {(1, 2): {d: 1.0 for d in range(10)}}
        overall = {d: 0.2 for d in range(10)}
        persistence, prevalence = persistence_and_prevalence(pair_pnr, overall)
        assert prevalence == [1.0]
        assert persistence == [10.0]

    def test_intermittent_pair(self):
        # Bad on days 0 and 5 only: two 1-day streaks, prevalence 0.2.
        series = {d: (1.0 if d in (0, 5) else 0.0) for d in range(10)}
        persistence, prevalence = persistence_and_prevalence(
            {(1, 2): series}, {d: 0.2 for d in range(10)}
        )
        assert prevalence == [pytest.approx(0.2)]
        assert persistence == [1.0]

    def test_never_high_pair_excluded(self):
        series = {d: 0.1 for d in range(10)}
        persistence, prevalence = persistence_and_prevalence(
            {(1, 2): series}, {d: 0.2 for d in range(10)}
        )
        assert persistence == [] and prevalence == []

    def test_factor_threshold(self):
        # PNR of 0.25 vs overall 0.2: below the 1.5x factor -> not high.
        series = {0: 0.25}
        persistence, _ = persistence_and_prevalence({(1, 2): series}, {0: 0.2})
        assert persistence == []
        persistence, _ = persistence_and_prevalence(
            {(1, 2): {0: 0.31}}, {0: 0.2}
        )
        assert persistence == [1.0]


class TestBestOptionDurations:
    def test_stable_choice(self):
        durations = best_option_durations({(1, 2): {d: "opt-a" for d in range(10)}})
        assert durations == [10.0]

    def test_alternating_choice(self):
        best = {d: ("a" if d % 2 == 0 else "b") for d in range(10)}
        durations = best_option_durations({(1, 2): best})
        assert durations == [1.0]

    def test_median_of_runs(self):
        # Runs: a,a,a | b | a,a -> lengths 3,1,2 -> median 2.
        sequence = ["a", "a", "a", "b", "a", "a"]
        best = {d: v for d, v in enumerate(sequence)}
        assert best_option_durations({(1, 2): best}) == [2.0]

    def test_empty(self):
        assert best_option_durations({}) == []
