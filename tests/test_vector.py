"""Batch-vs-scalar equivalence suite for the vectorized hot path.

Every test pins the contract documented in ``docs/performance.md``: the
columnar layers (``RunningStat.push_many``, ``CallHistory.add_many``,
``UCB1Explorer.update_many``, ``PredictionTable``,
``top_k_from_bounds``, ``epsilon_explorations``) and the policy-level
``assign_many``/``observe_many`` interface must be **bit-identical** to
the scalar path -- same outputs, same RNG draw order, same post-state.
Floating-point comparisons are therefore exact (``==`` /
``np.array_equal``), never approximate: the vector path is required to
perform the same IEEE-754 operations in the same order, not merely land
close.

Run with ``make test-vector``; the differential harness
(``repro.verify.differential``) proves the same contract end-to-end
against the algorithm oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.bandit import UCB1Explorer
from repro.core.history import CallHistory, RunningStat, history_to_dict
from repro.core.policy import ViaConfig, ViaPolicy, VectorizedViaPolicy
from repro.core.predictor import Prediction, PredictionTable
from repro.core.topk import top_k_from_bounds
from repro.core.vector import CallBatch, MetricsBatch, epsilon_explorations
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption
from repro.obs.metrics import MetricsRegistry
from repro.simulation.microbench import MicrobenchConfig, _inter_relay, _make_stream
from repro.simulation.replay import ReplayResult, _replay_batched, replay
from repro.telephony.quality import QualityModel
from repro.verify.differential import run_differential

pytestmark = pytest.mark.vector

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_rtt = st.floats(0.0, 1000.0, allow_nan=False, allow_infinity=False)
_loss = st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)
_jitter = st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False)
_triples = st.lists(st.tuples(_rtt, _loss, _jitter), max_size=40)
_finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)

_MENU = [DIRECT, RelayOption.bounce(1), RelayOption.bounce(2), RelayOption.transit(1, 2)]


def _metrics(row) -> PathMetrics:
    return PathMetrics(rtt_ms=row[0], loss_rate=row[1], jitter_ms=row[2])


# ---------------------------------------------------------------------------
# RunningStat / CallHistory
# ---------------------------------------------------------------------------


@given(prefix=_triples, rows=_triples)
def test_push_many_matches_sequential_push(prefix, rows):
    """push_many == a loop of push: same count, mean and M2, bit for bit."""
    scalar, vector = RunningStat(), RunningStat()
    for row in prefix:  # start from an arbitrary existing aggregate
        scalar.push(_metrics(row))
        vector.push(_metrics(row))
    for row in rows:
        scalar.push(_metrics(row))
    vector.push_many(np.array(rows, dtype=np.float64).reshape(len(rows), 3))
    assert vector.count == scalar.count
    assert np.array_equal(vector.mean, scalar.mean)
    assert np.array_equal(vector.variance(), scalar.variance())
    assert np.array_equal(vector.sem(), scalar.sem())


def test_push_many_rejects_bad_shape():
    stat = RunningStat()
    with pytest.raises(ValueError):
        stat.push_many(np.zeros((4, 2)))


@given(
    calls=st.lists(
        st.tuples(
            st.integers(0, 2),  # pair-key index
            st.integers(0, len(_MENU) - 1),  # option index
            st.floats(0.0, 72.0, allow_nan=False),  # t_hours (3 windows)
            st.tuples(_rtt, _loss, _jitter),
        ),
        max_size=60,
    )
)
def test_add_many_matches_sequential_add(calls):
    """add_many == a loop of add: same cells, same aggregates, same
    bucket insertion order (observable through serialisation)."""
    pairs = [(100, 200), (100, 201), (150, 250)]
    scalar, vector = CallHistory(), CallHistory()
    for pair_idx, opt_idx, t_hours, row in calls:
        scalar.add(pairs[pair_idx], _MENU[opt_idx], t_hours, _metrics(row))
    vector.add_many(
        [pairs[i] for i, _, _, _ in calls],
        [_MENU[i] for _, i, _, _ in calls],
        np.array([t for _, _, t, _ in calls], dtype=np.float64),
        np.array([row for _, _, _, row in calls], dtype=np.float64).reshape(
            len(calls), 3
        ),
    )
    assert history_to_dict(vector) == history_to_dict(scalar)


def test_add_many_rejects_mismatched_lengths():
    history = CallHistory()
    with pytest.raises(ValueError):
        history.add_many([(1, 2)], [], np.array([0.0]), np.zeros((1, 3)))


# ---------------------------------------------------------------------------
# Bandit
# ---------------------------------------------------------------------------


@given(
    plays=st.lists(
        st.tuples(st.integers(0, 2), st.floats(0.0, 500.0, allow_nan=False)),
        max_size=50,
    )
)
def test_update_many_matches_grouped_updates(plays):
    """Grouping a play sequence by arm and folding each group with
    update_many leaves the bandit in the exact state of the scalar loop
    (per-arm sums are order-preserved; cross-arm totals commute)."""
    arms = [RelayOption.bounce(i) for i in (1, 2, 3)]
    scalar = UCB1Explorer(list(arms), normalizer=50.0)
    vector = UCB1Explorer(list(arms), normalizer=50.0)
    for arm_idx, cost in plays:
        scalar.update(arms[arm_idx], cost)
    groups: dict[int, list[float]] = {}
    for arm_idx, cost in plays:
        groups.setdefault(arm_idx, []).append(cost)
    for arm_idx, costs in groups.items():
        vector.update_many(arms[arm_idx], costs)
    assert vector.total_plays == scalar.total_plays
    assert vector.max_seen_cost == scalar.max_seen_cost
    for arm in arms:
        assert vector.count(arm) == scalar.count(arm)
        assert vector.mean_cost(arm) == scalar.mean_cost(arm)


def test_update_many_rejects_whole_batch_on_bad_cost():
    bandit = UCB1Explorer([DIRECT], normalizer=1.0)
    with pytest.raises(ValueError):
        bandit.update_many(DIRECT, [1.0, 2.0, -3.0])
    assert bandit.total_plays == 0  # no partial effect


# ---------------------------------------------------------------------------
# PredictionTable
# ---------------------------------------------------------------------------


@given(
    rows=st.lists(
        st.tuples(
            st.tuples(_finite, _finite, _finite),  # mean
            st.tuples(
                st.floats(0.0, 1e3, allow_nan=False),
                st.floats(0.0, 1e3, allow_nan=False),
                st.floats(0.0, 1e3, allow_nan=False),
            ),  # sem
            st.integers(0, 1000),
        ),
        max_size=len(_MENU),
    )
)
def test_prediction_table_round_trips_scalar_predictions(rows):
    """PredictionTable rows and bounds equal the scalar Prediction's."""
    predictions = {
        _MENU[i]: Prediction(
            mean=np.array(mean), sem=np.array(sem), n=n, source=f"s{i}"
        )
        for i, (mean, sem, n) in enumerate(rows)
    }
    table = PredictionTable.from_predictions(predictions)
    assert len(table) == len(predictions)
    assert table.options == tuple(predictions)
    lower, upper = table.lower(), table.upper()
    for i, option in enumerate(table.options):
        scalar = predictions[option]
        row = table.row(i)
        assert np.array_equal(row.mean, scalar.mean)
        assert np.array_equal(row.sem, scalar.sem)
        assert (row.n, row.source) == (scalar.n, scalar.source)
        for m in range(3):
            assert lower[i, m] == scalar.lower(m)
            assert upper[i, m] == scalar.upper(m)
    # as_dict round-trips the keys in order (values already checked
    # field-by-field above; Prediction.__eq__ on arrays is ambiguous).
    assert list(table.as_dict()) == list(predictions)


# ---------------------------------------------------------------------------
# Top-k
# ---------------------------------------------------------------------------


def _scalar_top_k(lowers, uppers, means, max_k):
    """The historical scalar walk of Algorithm 2 (reference oracle)."""
    order = sorted(range(len(lowers)), key=lambda i: lowers[i])  # stable
    kept: list[int] = []
    running_upper = -np.inf
    for idx in order:
        if kept and lowers[idx] > running_upper:
            break
        kept.append(idx)
        running_upper = max(running_upper, uppers[idx])
    kept = sorted(kept, key=lambda i: means[i])  # stable re-rank
    if max_k is not None:
        kept = kept[:max_k]
    return kept


@given(
    bounds=st.lists(
        st.tuples(_finite, st.floats(0.0, 100.0, allow_nan=False), _finite),
        max_size=16,
    ),
    max_k=st.one_of(st.none(), st.integers(1, 6)),
)
def test_top_k_from_bounds_matches_scalar_walk(bounds, max_k):
    lowers = np.array([b[0] for b in bounds])
    uppers = np.array([b[0] + b[1] for b in bounds])  # upper >= lower
    means = np.array([b[2] for b in bounds])
    kept = top_k_from_bounds(lowers, uppers, means, max_k=max_k)
    assert kept.tolist() == _scalar_top_k(lowers, uppers, means, max_k)


# ---------------------------------------------------------------------------
# Epsilon exploration RNG
# ---------------------------------------------------------------------------


def _scalar_epsilon(rng, epsilon, lens):
    picks = []
    for i, n_options in enumerate(lens):
        if rng.random() < epsilon:
            picks.append((i, int(rng.integers(n_options))))
    return picks


@given(
    seed=st.integers(0, 2**31),
    epsilon=st.floats(0.0, 1.0, allow_nan=False),
    lens=st.lists(st.integers(1, 8), max_size=80),
)
def test_epsilon_explorations_matches_scalar_coin_loop(seed, epsilon, lens):
    """Same picks AND the same final generator state, bit for bit."""
    scalar_rng = np.random.default_rng(seed)
    vector_rng = np.random.default_rng(seed)
    expected = _scalar_epsilon(scalar_rng, epsilon, lens)
    assert epsilon_explorations(vector_rng, epsilon, lens) == expected
    assert vector_rng.bit_generator.state == scalar_rng.bit_generator.state


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_epsilon_explorations_across_block_boundaries(seed):
    """Batches larger than the speculative block cap (512) still consume
    the bitstream in scalar order across block seams and rewinds."""
    lens = [5] * 1300
    scalar_rng = np.random.default_rng(seed)
    vector_rng = np.random.default_rng(seed)
    expected = _scalar_epsilon(scalar_rng, 0.3, lens)
    assert epsilon_explorations(vector_rng, 0.3, lens) == expected
    assert vector_rng.bit_generator.state == scalar_rng.bit_generator.state
    # The generators must also agree on the *next* bounded draw -- this is
    # what an advance()-based rewind gets wrong (it drops the buffered
    # uint32 half-word used by integers()).
    assert int(vector_rng.integers(1 << 20)) == int(scalar_rng.integers(1 << 20))


# ---------------------------------------------------------------------------
# Policy-level equivalence
# ---------------------------------------------------------------------------


def _small_stream(n_calls=600):
    return _make_stream(
        MicrobenchConfig(n_calls=n_calls, n_asns=3, n_bounce=4, chunk=50, seed=9)
    )


def _policy(config, cls=ViaPolicy):
    return cls(config, inter_relay=_inter_relay, registry=MetricsRegistry())


@pytest.mark.parametrize(
    "config",
    [
        ViaConfig(seed=7),
        ViaConfig(epsilon=0.25, seed=11),
        ViaConfig(metric="mos", topk_mode="fixed", fixed_k=3, seed=13),
    ],
    ids=["default", "high-epsilon", "mos-fixed-k"],
)
def test_assign_many_observe_many_match_chunked_scalar(config):
    """The batch interface == the scalar loop under the same interleaving
    (assign the whole chunk, then observe it): same choices, same RNG
    position, same learned state."""
    calls, options_per_call, metrics = _small_stream()
    scalar = _policy(config)
    vector = _policy(config)
    chunk = 50
    for i0 in range(0, len(calls), chunk):
        i1 = min(i0 + chunk, len(calls))
        expected = [scalar.assign(calls[i], options_per_call[i]) for i in range(i0, i1)]
        for i, option in zip(range(i0, i1), expected):
            scalar.observe(calls[i], option, metrics[i])
        batch = CallBatch.from_calls(calls[i0:i1])
        choices = vector.assign_many(batch, options_per_call[i0:i1])
        assert choices == expected
        vector.observe_many(
            batch, choices, MetricsBatch.from_metrics(metrics[i0:i1])
        )
    assert vector._rng.bit_generator.state == scalar._rng.bit_generator.state
    assert vector.state_dict() == scalar.state_dict()


def test_vectorized_policy_facade_matches_scalar_interleaved():
    """VectorizedViaPolicy (batches of one) == ViaPolicy per call, with
    fully interleaved assign/observe -- the differential harness's setup."""
    calls, options_per_call, metrics = _small_stream(400)
    scalar = _policy(ViaConfig(seed=21))
    vector = _policy(ViaConfig(seed=21), cls=VectorizedViaPolicy)
    for call, options, row in zip(calls, options_per_call, metrics):
        expected = scalar.assign(call, options)
        assert vector.assign(call, options) == expected
        scalar.observe(call, expected, row)
        vector.observe(call, expected, row)
    assert vector._rng.bit_generator.state == scalar._rng.bit_generator.state
    assert vector.state_dict() == scalar.state_dict()


def test_assign_many_validates_inputs():
    policy = _policy(ViaConfig(seed=3))
    calls, options_per_call, _ = _small_stream(4)
    with pytest.raises(ValueError):
        policy.assign_many(calls, options_per_call[:2])
    with pytest.raises(ValueError):
        policy.assign_many(calls, [[], *options_per_call[1:]])
    assert policy.assign_many([], []) == []


# ---------------------------------------------------------------------------
# Replay integration
# ---------------------------------------------------------------------------


def _outcome_tuples(result):
    return [
        (o.call.call_id, o.option, o.metrics, o.rating) for o in result.outcomes
    ]


def test_batched_replay_chunk_of_one_is_serial(small_world, small_trace):
    """_replay_batched with batch_calls=1 == the serial loop bit for bit
    (same options, metrics, ratings, outage flags)."""
    quality = QualityModel(rating_fraction=0.4)
    serial = replay(
        small_world, small_trace, _policy(ViaConfig(seed=5)), seed=5, quality=quality
    )
    policy = _policy(ViaConfig(seed=5))
    batched = _replay_batched(
        small_world,
        small_trace,
        policy,
        np.random.default_rng(5),
        ReplayResult(policy_name=policy.name),
        quality=quality,
        batch_calls=1,
    )
    assert _outcome_tuples(batched) == _outcome_tuples(serial)
    assert batched.outage_flags == serial.outage_flags
    assert batched.n_dead_assignments == serial.n_dead_assignments


def test_batched_replay_covers_trace_and_policies_without_batch_api(
    small_world, small_trace
):
    """batch_calls>1 assigns every call exactly once (delayed feedback may
    change *which* options win, not coverage); a policy without the batch
    interface silently falls back to the serial loop."""
    batched = replay(
        small_world, small_trace, _policy(ViaConfig(seed=5)), seed=5, batch_calls=64
    )
    assert len(batched.outcomes) == len(small_trace.calls)
    assert [o.call.call_id for o in batched.outcomes] == [
        c.call_id for c in small_trace.calls
    ]

    class FirstOption:
        name = "first-option"

        def assign(self, call, options):
            return options[0]

        def observe(self, call, option, metrics):
            return None

    serial = replay(small_world, small_trace, FirstOption(), seed=5)
    fallback = replay(small_world, small_trace, FirstOption(), seed=5, batch_calls=64)
    assert _outcome_tuples(fallback) == _outcome_tuples(serial)

    with pytest.raises(ValueError):
        replay(small_world, small_trace, FirstOption(), seed=5, batch_calls=0)


# ---------------------------------------------------------------------------
# Differential harness
# ---------------------------------------------------------------------------


def test_run_differential_accepts_vectorized_candidate():
    """The PR 5 oracle harness proves the vector path call for call: the
    vectorized policy as production candidate must not diverge."""
    report = run_differential(
        n_steps=150, seed=6, production_factory=VectorizedViaPolicy
    )
    assert report.n_steps == 150
    assert report.n_assigns > 0 and report.n_observes > 0
