"""Unit tests for repro.core.budget (§4.6 budget gate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.budget import BudgetGate


class TestConstruction:
    def test_rejects_out_of_range_budget(self):
        with pytest.raises(ValueError):
            BudgetGate(1.5)
        with pytest.raises(ValueError):
            BudgetGate(-0.1)

    def test_rejects_bad_memory(self):
        with pytest.raises(ValueError):
            BudgetGate(0.5, benefit_memory=0)


class TestThreshold:
    def test_zero_before_history_accumulates(self):
        gate = BudgetGate(0.3, min_history=100)
        for b in np.linspace(0, 100, 50):
            gate.record(float(b), relayed=False)
        assert gate.threshold() == 0.0

    def test_percentile_once_warm(self):
        gate = BudgetGate(0.3, min_history=50)
        benefits = list(np.linspace(0.0, 100.0, 101))
        for b in benefits:
            gate.record(b, relayed=False)
        # Top 30% of [0, 100] starts at the 70th percentile = 70.
        assert gate.threshold() == pytest.approx(70.0, abs=1.0)

    def test_unaware_threshold_always_zero(self):
        gate = BudgetGate(0.3, aware=False)
        for b in np.linspace(0, 100, 200):
            gate.record(float(b), relayed=False)
        assert gate.threshold() == 0.0


class TestAllows:
    def test_zero_budget_blocks_everything(self):
        gate = BudgetGate(0.0)
        assert not gate.allows(1000.0)
        assert not gate.allows(None)

    def test_full_budget_unaware_allows_everything(self):
        gate = BudgetGate(1.0, aware=False)
        assert gate.allows(-5.0)
        assert gate.allows(None)

    def test_negative_benefit_blocked_when_aware(self):
        gate = BudgetGate(0.5, aware=True)
        assert not gate.allows(-1.0)
        assert not gate.allows(0.0)

    def test_unknown_benefit_allowed(self):
        gate = BudgetGate(0.5, aware=True)
        assert gate.allows(None)

    def test_aware_gate_selects_top_percentile(self):
        gate = BudgetGate(0.2, min_history=50)
        for b in np.linspace(0.0, 100.0, 200):
            gate.record(float(b), relayed=False)
        threshold = gate.threshold()
        assert not gate.allows(threshold - 10.0)
        assert gate.allows(threshold + 10.0)

    def test_hard_cap_enforced(self):
        gate = BudgetGate(0.3, aware=False, min_history=10)
        blocked = 0
        rng = np.random.default_rng(0)
        for _ in range(2000):
            benefit = float(rng.uniform(0.1, 10.0))  # always positive
            if gate.allows(benefit):
                gate.record(benefit, relayed=True)
            else:
                gate.record(benefit, relayed=False)
                blocked += 1
        assert gate.relayed_fraction <= 0.31
        assert blocked > 0

    def test_aware_gate_stays_within_cap_on_uniform_benefits(self):
        gate = BudgetGate(0.25, aware=True, min_history=50)
        rng = np.random.default_rng(1)
        for _ in range(5000):
            benefit = float(rng.uniform(0.0, 100.0))
            relayed = gate.allows(benefit)
            gate.record(benefit, relayed=relayed)
        assert gate.relayed_fraction <= 0.30


class TestRecord:
    def test_relayed_fraction(self):
        gate = BudgetGate(1.0)
        gate.record(1.0, relayed=True)
        gate.record(1.0, relayed=False)
        gate.record(None, relayed=True)
        assert gate.relayed_fraction == pytest.approx(2.0 / 3.0)

    def test_empty_fraction_zero(self):
        assert BudgetGate(0.5).relayed_fraction == 0.0

    def test_none_benefits_not_in_percentile_history(self):
        gate = BudgetGate(0.3, min_history=2)
        gate.record(None, relayed=False)
        gate.record(None, relayed=False)
        assert gate.threshold() == 0.0  # still no benefit history
