"""Unit tests for repro.netmodel.metrics (the metric algebra)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.netmodel.metrics import (
    METRICS,
    PathMetrics,
    compose_loss,
    linear_to_loss,
    loss_to_linear,
)

loss_rates = st.floats(min_value=0.0, max_value=0.99, allow_nan=False)
metrics_values = st.builds(
    PathMetrics,
    rtt_ms=st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
    loss_rate=loss_rates,
    jitter_ms=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
)


class TestLossLinearisation:
    @given(loss_rates)
    def test_roundtrip(self, loss):
        assert linear_to_loss(loss_to_linear(loss)) == pytest.approx(loss, abs=1e-12)

    @given(loss_rates, loss_rates)
    def test_additivity_matches_survival_composition(self, l1, l2):
        linear_sum = loss_to_linear(l1) + loss_to_linear(l2)
        assert linear_to_loss(linear_sum) == pytest.approx(compose_loss([l1, l2]), abs=1e-12)

    def test_zero_maps_to_zero(self):
        assert loss_to_linear(0.0) == 0.0
        assert linear_to_loss(0.0) == 0.0

    def test_monotone(self):
        assert loss_to_linear(0.1) < loss_to_linear(0.2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            loss_to_linear(-0.01)
        with pytest.raises(ValueError):
            linear_to_loss(-0.5)

    def test_full_loss_saturates(self):
        # loss = 1.0 is clamped just below 1 to stay finite.
        assert loss_to_linear(1.0) > 10.0


class TestComposeLoss:
    def test_empty_composition_is_lossless(self):
        assert compose_loss([]) == 0.0

    def test_single(self):
        assert compose_loss([0.25]) == pytest.approx(0.25)

    def test_two_independent_segments(self):
        assert compose_loss([0.1, 0.1]) == pytest.approx(0.19)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            compose_loss([0.5, 1.5])


class TestPathMetrics:
    def test_valid_construction(self):
        m = PathMetrics(rtt_ms=100.0, loss_rate=0.01, jitter_ms=5.0)
        assert m.rtt_ms == 100.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rtt_ms": -1.0, "loss_rate": 0.0, "jitter_ms": 0.0},
            {"rtt_ms": 0.0, "loss_rate": -0.1, "jitter_ms": 0.0},
            {"rtt_ms": 0.0, "loss_rate": 1.1, "jitter_ms": 0.0},
            {"rtt_ms": 0.0, "loss_rate": 0.0, "jitter_ms": -2.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            PathMetrics(**kwargs)

    def test_get_by_name(self):
        m = PathMetrics(rtt_ms=100.0, loss_rate=0.01, jitter_ms=5.0)
        assert m.get("rtt_ms") == 100.0
        assert m.get("loss_rate") == 0.01
        assert m.get("jitter_ms") == 5.0

    def test_get_unknown_metric_raises(self):
        m = PathMetrics(rtt_ms=1.0, loss_rate=0.0, jitter_ms=0.0)
        with pytest.raises(KeyError):
            m.get("bandwidth")

    def test_metric_names_constant(self):
        assert METRICS == ("rtt_ms", "loss_rate", "jitter_ms")

    def test_as_dict(self):
        m = PathMetrics(rtt_ms=1.0, loss_rate=0.5, jitter_ms=2.0)
        assert m.as_dict() == {"rtt_ms": 1.0, "loss_rate": 0.5, "jitter_ms": 2.0}

    @given(metrics_values, metrics_values)
    def test_compose_additive_rtt_jitter(self, a, b):
        c = PathMetrics.compose([a, b])
        assert c.rtt_ms == pytest.approx(a.rtt_ms + b.rtt_ms)
        assert c.jitter_ms == pytest.approx(a.jitter_ms + b.jitter_ms)

    @given(metrics_values, metrics_values)
    def test_compose_loss_survival(self, a, b):
        c = PathMetrics.compose([a, b])
        expected = 1.0 - (1.0 - a.loss_rate) * (1.0 - b.loss_rate)
        assert c.loss_rate == pytest.approx(expected, abs=1e-12)

    def test_compose_empty_raises(self):
        with pytest.raises(ValueError):
            PathMetrics.compose([])

    def test_compose_is_order_invariant(self):
        a = PathMetrics(10.0, 0.02, 1.0)
        b = PathMetrics(20.0, 0.05, 2.0)
        c1 = PathMetrics.compose([a, b])
        c2 = PathMetrics.compose([b, a])
        assert c1 == c2

    def test_scaled_identity(self):
        m = PathMetrics(rtt_ms=50.0, loss_rate=0.1, jitter_ms=3.0)
        assert m.scaled() == m

    def test_scaled_loss_stays_valid_for_large_factor(self):
        m = PathMetrics(rtt_ms=50.0, loss_rate=0.4, jitter_ms=3.0)
        scaled = m.scaled(loss=100.0)
        assert 0.0 <= scaled.loss_rate <= 1.0

    @given(metrics_values)
    def test_scaled_doubles_rtt(self, m):
        assert m.scaled(rtt=2.0).rtt_ms == pytest.approx(2.0 * m.rtt_ms)

    def test_frozen(self):
        m = PathMetrics(1.0, 0.0, 0.0)
        with pytest.raises(AttributeError):
            m.rtt_ms = 2.0  # type: ignore[misc]
