"""Unit tests for repro.telephony.sessions (metrics -> packet traces)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netmodel.metrics import PathMetrics
from repro.telephony.rtp import rfc3550_jitter, trace_metrics
from repro.telephony.sessions import call_trace_mos, trace_for_call

TYPICAL = PathMetrics(rtt_ms=160.0, loss_rate=0.01, jitter_ms=8.0)
CLEAN = PathMetrics(rtt_ms=60.0, loss_rate=0.001, jitter_ms=2.0)
POOR = PathMetrics(rtt_ms=450.0, loss_rate=0.05, jitter_ms=25.0)


class TestTraceForCall:
    def test_rejects_bad_duration(self, rng):
        with pytest.raises(ValueError):
            trace_for_call(TYPICAL, 0.0, rng)

    def test_rtt_round_trips_exactly(self, rng):
        trace = trace_for_call(TYPICAL, 60.0, rng)
        assert trace.rtt_ms == pytest.approx(TYPICAL.rtt_ms)

    def test_loss_round_trips(self):
        rng = np.random.default_rng(5)
        losses = [
            trace_for_call(TYPICAL, 120.0, rng).loss_rate for _ in range(10)
        ]
        assert float(np.mean(losses)) == pytest.approx(TYPICAL.loss_rate, rel=0.35)

    def test_jitter_round_trips(self):
        rng = np.random.default_rng(6)
        jitters = [
            rfc3550_jitter(trace_for_call(TYPICAL, 120.0, rng)) for _ in range(10)
        ]
        assert float(np.mean(jitters)) == pytest.approx(TYPICAL.jitter_ms, rel=0.35)

    def test_full_metric_round_trip(self):
        rng = np.random.default_rng(7)
        measured = trace_metrics(trace_for_call(TYPICAL, 300.0, rng))
        assert measured.rtt_ms == pytest.approx(TYPICAL.rtt_ms)
        assert measured.loss_rate == pytest.approx(TYPICAL.loss_rate, rel=0.5)
        assert measured.jitter_ms == pytest.approx(TYPICAL.jitter_ms, rel=0.5)


class TestCallTraceMos:
    def test_ranks_call_quality(self):
        rng = np.random.default_rng(8)
        clean = np.mean([call_trace_mos(CLEAN, 60.0, rng) for _ in range(5)])
        poor = np.mean([call_trace_mos(POOR, 60.0, rng) for _ in range(5)])
        assert clean > poor + 0.5

    def test_bounds(self, rng):
        for metrics in (CLEAN, TYPICAL, POOR):
            assert 1.0 <= call_trace_mos(metrics, 30.0, rng) <= 4.5

    def test_burstier_loss_scores_worse(self):
        rng1, rng2 = np.random.default_rng(9), np.random.default_rng(9)
        lossy = PathMetrics(rtt_ms=120.0, loss_rate=0.04, jitter_ms=5.0)
        from repro.telephony.rtp import trace_mos
        from repro.telephony.sessions import trace_for_call as build

        smooth = np.mean([
            trace_mos(build(lossy, 120.0, rng1, burstiness=0.05)) for _ in range(5)
        ])
        bursty = np.mean([
            trace_mos(build(lossy, 120.0, rng2, burstiness=0.9)) for _ in range(5)
        ])
        # Same average loss; concentrated bursts read worse at trace level.
        assert bursty <= smooth + 0.05
