"""Unit tests for repro.core.costs (cost models incl. MOS objective)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.costs import COST_MODEL_NAMES, MetricCost, MosCost, make_cost_model
from repro.core.predictor import Prediction
from repro.netmodel.metrics import METRICS, PathMetrics
from repro.telephony.quality import mos_from_network


def prediction(mean=(100.0, 0.01, 5.0), sem=(10.0, 0.002, 1.0)) -> Prediction:
    return Prediction(
        mean=np.array(mean), sem=np.array(sem), n=10, source="history"
    )


class TestMetricCost:
    def test_call_cost_matches_metric(self):
        m = PathMetrics(rtt_ms=120.0, loss_rate=0.02, jitter_ms=7.0)
        assert MetricCost("rtt_ms").call_cost(m) == 120.0
        assert MetricCost("loss_rate").call_cost(m) == 0.02
        assert MetricCost("jitter_ms").call_cost(m) == 7.0

    def test_predicted_bounds_bracket_point(self):
        cost = MetricCost("rtt_ms")
        p = prediction()
        assert cost.predicted_lower(p) < cost.predicted(p) < cost.predicted_upper(p)
        assert cost.predicted(p) == pytest.approx(100.0)

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            MetricCost("bandwidth")


class TestMosCost:
    def test_cost_decreases_with_quality(self):
        cost = MosCost()
        good = PathMetrics(rtt_ms=50.0, loss_rate=0.001, jitter_ms=2.0)
        bad = PathMetrics(rtt_ms=600.0, loss_rate=0.1, jitter_ms=40.0)
        assert cost.call_cost(good) < cost.call_cost(bad)

    def test_cost_is_45_minus_mos(self):
        cost = MosCost()
        m = PathMetrics(rtt_ms=150.0, loss_rate=0.01, jitter_ms=8.0)
        assert cost.call_cost(m) == pytest.approx(4.5 - mos_from_network(m))

    def test_bounds_bracket_point_estimate(self):
        cost = MosCost()
        p = prediction(mean=(200.0, 0.02, 10.0), sem=(30.0, 0.008, 3.0))
        assert cost.predicted_lower(p) <= cost.predicted(p) <= cost.predicted_upper(p)

    def test_bounds_clamp_invalid_triples(self):
        # Huge SEM pushes the optimistic triple negative; must not raise.
        cost = MosCost()
        p = prediction(mean=(10.0, 0.001, 1.0), sem=(50.0, 0.5, 10.0))
        assert cost.predicted_lower(p) >= 0.0
        assert cost.predicted_upper(p) <= 3.5 + 1e-9  # 4.5 - MOS_min(=1.0)


class TestFactory:
    @pytest.mark.parametrize("name", METRICS)
    def test_metric_names(self, name):
        model = make_cost_model(name)
        assert isinstance(model, MetricCost)
        assert model.name == name

    def test_mos_name(self):
        assert isinstance(make_cost_model("mos"), MosCost)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_cost_model("pesq")

    def test_catalog(self):
        assert set(COST_MODEL_NAMES) == {*METRICS, "mos"}


class TestMosPolicyIntegration:
    def test_via_policy_accepts_mos_metric(self):
        from repro.core.policy import ViaConfig, ViaPolicy
        from repro.netmodel.options import DIRECT, RelayOption
        from repro.telephony.call import Call

        policy = ViaPolicy(ViaConfig(metric="mos", seed=1))
        options = [DIRECT, RelayOption.bounce(0), RelayOption.bounce(1)]
        call = Call(call_id=0, t_hours=1.0, src_asn=1, dst_asn=2,
                    src_country="A", dst_country="B", src_user=0, dst_user=1)
        assert policy.assign(call, options) in options
        policy.observe(call, DIRECT, PathMetrics(100.0, 0.01, 5.0))

    def test_mos_oracle_picks_highest_quality(self, small_world):
        from repro.core.baselines import OraclePolicy
        from repro.telephony.call import Call

        asns = small_world.topology.asns
        a = asns[0]
        b = next(x for x in asns if small_world.topology.is_international(a, x))
        call = Call(call_id=0, t_hours=30.0, src_asn=a, dst_asn=b,
                    src_country=small_world.topology.country_of_as(a),
                    dst_country=small_world.topology.country_of_as(b),
                    src_user=0, dst_user=1)
        options = small_world.options_for_pair(a, b)
        choice = OraclePolicy(small_world, "mos").assign(call, options)
        best_mos = max(
            mos_from_network(small_world.true_mean(a, b, o, call.day)) for o in options
        )
        got = mos_from_network(small_world.true_mean(a, b, choice, call.day))
        assert got == pytest.approx(best_mos)

    def test_config_rejects_unknown_metric(self):
        from repro.core.policy import ViaConfig

        with pytest.raises(ValueError, match="metric"):
            ViaConfig(metric="pesq")
