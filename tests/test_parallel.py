"""Serial-vs-parallel replay equivalence and mergeable-statistics tests.

The engine's contract (see docs/parallel.md): the same grid run with
``workers=1`` and ``workers=N`` produces identical per-task outcome
sequences and identical merged ``RunningStat``\\ s -- exact float
equality, not approximate.  ``make test-parallel`` runs this file with
``REPRO_TEST_WORKERS=2`` so the pool path is exercised with real worker
processes.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.history import CallHistory, RunningStat
from repro.netmodel import TopologyConfig, WorldConfig
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import RelayOption
from repro.simulation import (
    ExperimentPlan,
    PolicySpec,
    ReplayTask,
    ScenarioSpec,
    merged_stats,
    outcome_stat,
    run_grid,
    run_policies,
    standard_policies,
    standard_policy_specs,
    task_seed,
)
from repro.telephony.quality import QualityModel
from repro.workload import WorkloadConfig
from repro.workload.trace import TraceDataset

pytestmark = pytest.mark.slow

#: Pool size for the fan-out side of every equivalence test.  The issue
#: contract is workers=1 vs workers=4; ``make test-parallel`` narrows it
#: to 2 for cheap CI containers.
WORKERS = max(2, int(os.environ.get("REPRO_TEST_WORKERS", "4") or "4"))


@pytest.fixture(scope="module")
def grid_trace(small_trace):
    """First 1200 calls of the shared trace: fast but non-trivial."""
    return TraceDataset(calls=small_trace.calls[:1200], n_days=small_trace.n_days)


def _outcome_key(result):
    """Everything a replay produces per call, for exact comparison."""
    return [
        (o.option, o.metrics, o.rating) for o in result.outcomes
    ]


def _suite_tasks(shards: int = 2) -> list[ReplayTask]:
    specs = standard_policy_specs("rtt_ms", include_strawmen=False, seed=42)
    return [
        ReplayTask(policy=spec, label=f"{name}/{shard}")
        for shard in range(shards)
        for name, spec in specs.items()
    ]


class TestTaskSeed:
    def test_deterministic(self):
        assert task_seed(7, 3) == task_seed(7, 3)

    def test_distinct_across_index_and_base(self):
        seeds = {task_seed(7, i) for i in range(32)}
        assert len(seeds) == 32
        assert task_seed(7, 0) != task_seed(8, 0)

    def test_independent_of_grid_size(self, small_world, grid_trace):
        """A task's seed depends on its index, never on the grid length."""
        spec = PolicySpec.default()
        short = run_grid(
            [ReplayTask(policy=spec)], world=small_world, trace=grid_trace,
            base_seed=9,
        )
        long = run_grid(
            [ReplayTask(policy=spec)] * 3, world=small_world, trace=grid_trace,
            base_seed=9,
        )
        assert short[0].seed == long[0].seed == task_seed(9, 0)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            task_seed(0, -1)


def test_parallel_matches_serial_exactly(small_world, grid_trace):
    """The headline contract: workers=1 == workers=N, bit for bit."""
    tasks = _suite_tasks(shards=2)
    serial = run_grid(
        tasks, world=small_world, trace=grid_trace, base_seed=11, workers=1
    )
    parallel = run_grid(
        tasks, world=small_world, trace=grid_trace, base_seed=11, workers=WORKERS
    )
    assert [r.index for r in parallel] == list(range(len(tasks)))
    for a, b in zip(serial, parallel):
        assert a.label == b.label
        assert a.seed == b.seed
        assert _outcome_key(a.result) == _outcome_key(b.result)
        assert a.result.n_dead_assignments == b.result.n_dead_assignments

    stats_serial = merged_stats(serial)
    stats_parallel = merged_stats(parallel)
    assert stats_serial.keys() == stats_parallel.keys()
    for name in stats_serial:
        assert stats_serial[name].count == stats_parallel[name].count
        assert (stats_serial[name].mean == stats_parallel[name].mean).all()
        assert (
            stats_serial[name].variance() == stats_parallel[name].variance()
        ).all()


class TestRunGrid:
    def test_explicit_seed_wins_over_derivation(self, small_world, grid_trace):
        tasks = [ReplayTask(policy=PolicySpec.default(), seed=77)]
        (result,) = run_grid(
            tasks, world=small_world, trace=grid_trace, base_seed=5
        )
        assert result.seed == 77

    def test_quality_ratings_survive_the_pool(self, small_world, grid_trace):
        tasks = [ReplayTask(policy=PolicySpec.default())]
        quality = QualityModel(rating_fraction=0.5)
        (serial,) = run_grid(
            tasks, world=small_world, trace=grid_trace, quality=quality, workers=1
        )
        # A single-task grid short-circuits the pool, so use two tasks to
        # force worker processes while comparing the first result only.
        parallel = run_grid(
            tasks * 2, world=small_world, trace=grid_trace, quality=quality,
            workers=WORKERS,
        )
        assert _outcome_key(serial.result) == _outcome_key(parallel[0].result)
        assert any(o.rating is not None for o in parallel[0].result.outcomes)

    def test_scenario_specs_build_in_worker(self, small_world, grid_trace):
        scenario = ScenarioSpec(
            world=WorldConfig(
                topology=TopologyConfig(n_countries=5, n_relays=4, seed=23),
                n_days=3,
                seed=23,
            ),
            workload=WorkloadConfig(n_calls=400, n_pairs=30, seed=23),
        )
        tasks = [
            ReplayTask(policy=PolicySpec.via("rtt_ms"), scenario="s"),
            ReplayTask(policy=PolicySpec.default(), scenario="s"),
            ReplayTask(policy=PolicySpec.default()),
        ]
        kwargs = dict(
            world=small_world, trace=grid_trace, scenarios={"s": scenario},
            base_seed=3,
        )
        serial = run_grid(tasks, workers=1, **kwargs)
        parallel = run_grid(tasks, workers=WORKERS, **kwargs)
        for a, b in zip(serial, parallel):
            assert _outcome_key(a.result) == _outcome_key(b.result)
        # The scenario trace differs from the shared one.
        assert len(serial[0].result.outcomes) == 400
        assert len(serial[2].result.outcomes) == len(grid_trace)

    def test_prebuilt_scenario_pair(self, small_world, grid_trace):
        tasks = [ReplayTask(policy=PolicySpec.default(), scenario="w")]
        (serial,) = run_grid(
            tasks, scenarios={"w": (small_world, grid_trace)}, workers=1
        )
        assert len(serial.result.outcomes) == len(grid_trace)

    def test_unknown_scenario_key_raises(self, small_world, grid_trace):
        with pytest.raises(KeyError):
            run_grid(
                [ReplayTask(policy=PolicySpec.default(), scenario="nope")],
                world=small_world,
                trace=grid_trace,
            )

    def test_missing_shared_world_raises(self):
        with pytest.raises(ValueError):
            run_grid([ReplayTask(policy=PolicySpec.default())])

    def test_world_without_trace_raises(self, small_world):
        with pytest.raises(ValueError):
            run_grid([ReplayTask(policy=PolicySpec.default())], world=small_world)

    def test_empty_grid(self):
        assert run_grid([]) == []


class TestRunPoliciesWorkers:
    def test_spec_parallel_matches_live_serial(self, small_world, grid_trace):
        """run_policies(workers=N) over specs == the classic serial path."""
        live = standard_policies(
            small_world, "rtt_ms", include_strawmen=False, seed=42
        )
        specs = standard_policy_specs("rtt_ms", include_strawmen=False, seed=42)
        serial = run_policies(small_world, grid_trace, live, seed=6)
        parallel = run_policies(
            small_world, grid_trace, specs, seed=6, workers=WORKERS
        )
        assert serial.keys() == parallel.keys()
        for name in serial:
            assert _outcome_key(serial[name]) == _outcome_key(parallel[name]), name

    def test_specs_accepted_serially(self, small_world, grid_trace):
        specs = {"default": PolicySpec.default()}
        results = run_policies(small_world, grid_trace, specs, seed=1)
        assert len(results["default"].outcomes) == len(grid_trace)

    def test_live_policies_rejected_with_workers(self, small_world, grid_trace):
        live = standard_policies(small_world, "rtt_ms", include_strawmen=False)
        with pytest.raises(TypeError, match="PolicySpec"):
            run_policies(small_world, grid_trace, live, workers=2)

    def test_experiment_plan_passthrough(self, small_world, grid_trace):
        plan = ExperimentPlan(
            world=small_world, trace=grid_trace, warmup_days=0, min_pair_calls=1
        )
        specs = {"default": PolicySpec.default(), "via": PolicySpec.via("rtt_ms")}
        serial = plan.run(specs, seed=2, workers=1)
        parallel = plan.run(specs, seed=2, workers=WORKERS)
        for name in serial:
            assert _outcome_key(serial[name]) == _outcome_key(parallel[name])


# ----------------------------------------------------------------------
# Mergeable statistics
# ----------------------------------------------------------------------

finite_metrics = st.builds(
    PathMetrics,
    rtt_ms=st.floats(min_value=0.0, max_value=3000.0, allow_nan=False),
    loss_rate=st.floats(min_value=0.0, max_value=0.8, allow_nan=False),
    jitter_ms=st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
)


def _pushed(samples) -> RunningStat:
    stat = RunningStat()
    for m in samples:
        stat.push(m)
    return stat


class TestRunningStatMerge:
    @given(
        st.lists(finite_metrics, min_size=0, max_size=60),
        st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=150)
    def test_merge_matches_single_pass(self, samples, cut):
        """Chan's merge of any split == pushing the whole stream once."""
        cut = min(cut, len(samples))
        merged = _pushed(samples[:cut]).merge(_pushed(samples[cut:]))
        whole = _pushed(samples)
        assert merged.count == whole.count
        assert np.allclose(merged.mean, whole.mean, rtol=1e-9, atol=1e-6)
        assert np.allclose(
            merged.variance(), whole.variance(), rtol=1e-6, atol=1e-6
        )

    @given(st.lists(finite_metrics, min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_merge_with_empty_is_identity(self, samples):
        stat = _pushed(samples)
        before = (stat.count, stat.mean.copy(), stat.variance().copy())
        stat.merge(RunningStat())
        assert stat.count == before[0]
        assert (stat.mean == before[1]).all()
        assert (stat.variance() == before[2]).all()

    @given(st.lists(finite_metrics, min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_merge_into_empty_copies(self, samples):
        source = _pushed(samples)
        target = RunningStat().merge(source)
        assert target.count == source.count
        assert (target.mean == source.mean).all()
        # No aliasing: pushing to the target must not disturb the source.
        target.push(PathMetrics(rtt_ms=1.0, loss_rate=0.0, jitter_ms=0.0))
        assert source.count == len(samples)

    @given(
        st.lists(finite_metrics, min_size=0, max_size=20),
        st.lists(finite_metrics, min_size=0, max_size=20),
        st.lists(finite_metrics, min_size=0, max_size=20),
    )
    @settings(max_examples=75)
    def test_three_way_merge_associative_with_single_pass(self, a, b, c):
        merged = _pushed(a).merge(_pushed(b)).merge(_pushed(c))
        whole = _pushed(a + b + c)
        assert merged.count == whole.count
        assert np.allclose(merged.mean, whole.mean, rtol=1e-9, atol=1e-6)
        assert np.allclose(
            merged.variance(), whole.variance(), rtol=1e-6, atol=1e-6
        )

    def test_merge_returns_self_for_chaining(self):
        stat = RunningStat()
        assert stat.merge(RunningStat()) is stat


class TestCallHistoryMerge:
    OPT = RelayOption.bounce(1)

    def _history(self, values, t_hours=1.0) -> CallHistory:
        history = CallHistory()
        for v in values:
            history.add(
                (1, 2), self.OPT, t_hours,
                PathMetrics(rtt_ms=v, loss_rate=0.01, jitter_ms=2.0),
            )
        return history

    def test_sharded_merge_matches_single_store(self):
        left = self._history([100.0, 120.0])
        right = self._history([90.0, 130.0, 140.0])
        whole = self._history([100.0, 120.0, 90.0, 130.0, 140.0])
        left.merge(right)
        merged_stat = left.stats((1, 2), self.OPT, 0)
        whole_stat = whole.stats((1, 2), self.OPT, 0)
        assert merged_stat.count == whole_stat.count == 5
        assert np.allclose(merged_stat.mean, whole_stat.mean)
        assert np.allclose(merged_stat.sem(), whole_stat.sem())

    def test_merge_creates_missing_windows_without_aliasing(self):
        left = self._history([100.0], t_hours=1.0)
        right = self._history([200.0], t_hours=30.0)  # window 1
        left.merge(right)
        assert left.windows() == [0, 1]
        # Mutating the merged store must not write through to the source.
        left.add(
            (1, 2), self.OPT, 30.0,
            PathMetrics(rtt_ms=1.0, loss_rate=0.0, jitter_ms=0.0),
        )
        assert right.stats((1, 2), self.OPT, 1).count == 1

    def test_merge_total_calls_adds(self):
        left = self._history([1.0, 2.0])
        right = self._history([3.0])
        assert left.merge(right).total_calls() == 3

    def test_window_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="window"):
            CallHistory(window_hours=24.0).merge(CallHistory(window_hours=12.0))

    def test_merge_returns_self(self):
        history = CallHistory()
        assert history.merge(CallHistory()) is history


class TestMergedStats:
    def test_grid_reduction_groups_by_policy(self, small_world, grid_trace):
        tasks = _suite_tasks(shards=2)
        results = run_grid(
            tasks, world=small_world, trace=grid_trace, base_seed=1
        )
        stats = merged_stats(results)
        assert set(stats) == {r.result.policy_name for r in results}
        for stat in stats.values():
            assert stat.count == 2 * len(grid_trace)

    def test_matches_single_pass_over_concatenation(self, small_world, grid_trace):
        tasks = [
            ReplayTask(policy=PolicySpec.default(), seed=1),
            ReplayTask(policy=PolicySpec.default(), seed=2),
        ]
        results = run_grid(tasks, world=small_world, trace=grid_trace)
        stats = merged_stats(results)["default"]
        whole = outcome_stat(
            o for r in results for o in r.result.outcomes
        )
        assert stats.count == whole.count
        assert np.allclose(stats.mean, whole.mean, rtol=1e-12)
        assert np.allclose(stats.variance(), whole.variance(), rtol=1e-9)
