"""Asyncio frontend tests: protocol v2, admission ladder, hostile clients.

Covers the overload-resilience contract end to end over real localhost
TCP: correlation-id pipelining with out-of-order completion, v1
back-compat conformance (the PR 1 dialect against the v2 server),
hardened line framing (oversized and malformed input, slow-loris
peers, mid-request disconnects), the admission ladder
(admit -> degrade-to-cache -> explicit shed, deadline sheds), and the
differential check that v2-served assignments match v1 for the same
seed.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.policy import ViaConfig
from repro.deployment import (
    AdmissionConfig,
    AdmissionController,
    AsyncViaClient,
    FaultPlan,
    RetryPolicy,
    ViaController,
)
from repro.deployment import TestbedClient as AgentClient
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import RelayOption

pytestmark = pytest.mark.asyncio

OPTIONS = [RelayOption.bounce(0), RelayOption.bounce(1), RelayOption.transit(0, 1)]

FAST_RETRY = RetryPolicy(
    max_attempts=2,
    request_timeout_s=0.25,
    base_delay_s=0.01,
    max_delay_s=0.02,
    deadline_s=2.0,
)


def run(coro):
    return asyncio.run(coro)


def wire(obj: dict) -> bytes:
    return (json.dumps(obj) + "\n").encode("utf-8")


async def raw_connect(port: int):
    return await asyncio.open_connection("127.0.0.1", port)


async def read_json(reader: asyncio.StreamReader) -> dict:
    line = await asyncio.wait_for(reader.readline(), timeout=5.0)
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)


def request_payload(corr_id: int | None, t_hours: float = 0.1) -> dict:
    payload = {
        "type": "request",
        "src_id": 0,
        "dst_id": 1,
        "t_hours": t_hours,
        "options": [
            {"kind": o.kind.value, "ingress": o.ingress, "egress": o.egress}
            for o in OPTIONS
        ],
    }
    if corr_id is not None:
        payload["corr_id"] = corr_id
    return payload


class TestProtocolNegotiation:
    def test_v2_hello_is_acked_with_corr_id(self):
        async def scenario():
            async with ViaController() as controller:
                reader, writer = await raw_connect(controller.port)
                writer.write(
                    wire({"type": "hello", "client_id": 0, "site": "US",
                          "protocol": 2, "corr_id": 7})
                )
                await writer.drain()
                ack = await read_json(reader)
                assert ack["type"] == "hello_ack"
                assert ack["protocol"] == 2
                assert ack["corr_id"] == 7
                assert ack["max_line_bytes"] > 0
                writer.close()

        run(scenario())

    def test_v1_hello_gets_no_ack_and_idless_replies(self):
        async def scenario():
            async with ViaController() as controller:
                reader, writer = await raw_connect(controller.port)
                # The PR 1 dialect: no protocol field, no corr ids.
                writer.write(wire({"type": "hello", "client_id": 0, "site": "US"}))
                writer.write(wire(request_payload(None)))
                await writer.drain()
                reply = await read_json(reader)
                # First reply is the assign itself -- no ack interleaved,
                # and no corr_id key on the wire (byte-compatible v1).
                assert reply["type"] == "assign"
                assert "corr_id" not in reply
                writer.close()

        run(scenario())

    def test_v1_testbed_client_round_trips(self):
        async def scenario():
            async with ViaController(ViaConfig(seed=3)) as controller:
                async with AgentClient(
                    0, "US", "127.0.0.1", controller.port, protocol=1
                ) as client:
                    choice = await client.request_assignment(1, OPTIONS, t_hours=0.5)
                    assert choice in OPTIONS
                    assert client.protocol == 1
                    stats = await client.fetch_stats()
                    assert stats.n_requests == 1

        run(scenario())

    def test_v2_client_negotiates(self):
        async def scenario():
            async with ViaController(ViaConfig(seed=3)) as controller:
                async with AgentClient(
                    0, "US", "127.0.0.1", controller.port
                ) as client:
                    assert await client.request_assignment(1, OPTIONS, 0.5) in OPTIONS
                    assert client.protocol == 2

        run(scenario())


class TestPipelining:
    def test_burst_completes_out_of_order(self):
        async def scenario():
            faults = FaultPlan(stall_windows=((4.9, 5.1),), stall_s=0.2)
            async with ViaController(faults=faults) as controller:
                reader, writer = await raw_connect(controller.port)
                writer.write(
                    wire({"type": "hello", "client_id": 0, "site": "US", "protocol": 2})
                )
                await writer.drain()
                assert (await read_json(reader))["type"] == "hello_ack"
                # Request 1 lands in the stall window (0.2 s of policy
                # time); request 2 does not.  Both pipeline on the one
                # connection; the later request must finish first.
                writer.write(wire(request_payload(1, t_hours=5.0)))
                writer.write(wire(request_payload(2, t_hours=8.0)))
                await writer.drain()
                first = await read_json(reader)
                second = await read_json(reader)
                assert [first["corr_id"], second["corr_id"]] == [2, 1]
                assert {first["type"], second["type"]} == {"assign"}
                writer.close()

        run(scenario())

    def test_concurrent_assigns_on_one_client(self):
        async def scenario():
            async with ViaController(ViaConfig(seed=5)) as controller:
                async with AsyncViaClient(
                    0, "US", "127.0.0.1", controller.port
                ) as client:
                    results = await asyncio.gather(
                        *(
                            client.assign(1, OPTIONS, 0.1 + i * 0.01, src_id=i)
                            for i in range(20)
                        )
                    )
                    assert len(results) == 20
                    assert all(r.option in OPTIONS for r in results)
                    assert controller.n_requests == 20

        run(scenario())


class TestHostileClients:
    def test_oversized_line_v2_gets_error_and_connection_survives(self):
        async def scenario():
            async with ViaController() as controller:
                reader, writer = await raw_connect(controller.port)
                writer.write(
                    wire({"type": "hello", "client_id": 0, "site": "US", "protocol": 2})
                )
                await writer.drain()
                assert (await read_json(reader))["type"] == "hello_ack"
                writer.write(b"x" * (80 * 1024) + b"\n")
                await writer.drain()
                error = await read_json(reader)
                assert error["type"] == "error"
                assert error["code"] == "oversized"
                # The stream resynchronised: the same connection still
                # serves real requests.
                writer.write(wire(request_payload(9)))
                await writer.drain()
                reply = await read_json(reader)
                assert reply["type"] == "assign" and reply["corr_id"] == 9
                writer.close()

        run(scenario())

    def test_oversized_line_v1_closes_cleanly(self):
        async def scenario():
            async with ViaController() as controller:
                reader, writer = await raw_connect(controller.port)
                writer.write(wire({"type": "hello", "client_id": 0, "site": "US"}))
                writer.write(b"y" * (80 * 1024) + b"\n")
                await writer.drain()
                # v1 has no per-request error vocabulary: clean close.
                assert await asyncio.wait_for(reader.read(), timeout=5.0) == b""
                writer.close()
                # The server survived; a fresh client is served normally.
                async with AgentClient(
                    1, "GB", "127.0.0.1", controller.port
                ) as client:
                    assert await client.request_assignment(2, OPTIONS, 0.2) in OPTIONS

        run(scenario())

    def test_malformed_line_v2_gets_error_and_connection_survives(self):
        async def scenario():
            async with ViaController() as controller:
                reader, writer = await raw_connect(controller.port)
                writer.write(
                    wire({"type": "hello", "client_id": 0, "site": "US", "protocol": 2})
                )
                await writer.drain()
                assert (await read_json(reader))["type"] == "hello_ack"
                for bad in (b"{not json}\n", b'{"type": "nonsense"}\n',
                            b'{"type": "request"}\n'):
                    writer.write(bad)
                    await writer.drain()
                    error = await read_json(reader)
                    assert error["type"] == "error"
                    assert error["code"] == "malformed"
                writer.write(wire(request_payload(3)))
                await writer.drain()
                assert (await read_json(reader))["type"] == "assign"
                writer.close()

        run(scenario())

    def test_slow_loris_is_disconnected_by_idle_timeout(self):
        async def scenario():
            async with ViaController(idle_timeout_s=0.1) as controller:
                reader, writer = await raw_connect(controller.port)
                writer.write(
                    wire({"type": "hello", "client_id": 0, "site": "US", "protocol": 2})
                )
                await writer.drain()
                assert (await read_json(reader))["type"] == "hello_ack"
                # Dribble half a message and stall, holding the line open.
                writer.write(b'{"type": "request", "src_id"')
                await writer.drain()
                # The server reclaims the connection instead of waiting
                # forever on the partial line.
                assert await asyncio.wait_for(reader.read(), timeout=5.0) == b""
                writer.close()

        run(scenario())

    def test_mid_request_disconnect_leaves_server_healthy(self, poll_until):
        async def scenario():
            async with ViaController() as controller:
                reader, writer = await raw_connect(controller.port)
                writer.write(
                    wire({"type": "hello", "client_id": 5, "site": "US", "protocol": 2})
                )
                writer.write(wire(request_payload(1)))
                await writer.drain()
                writer.close()  # vanish before reading any reply
                # The server notices the dead socket asynchronously; poll
                # instead of betting a fixed sleep beats the reader task.
                await poll_until(lambda: 5 not in controller.client_sites)
                assert 5 not in controller.client_sites  # live set updated
                async with AgentClient(
                    6, "GB", "127.0.0.1", controller.port
                ) as client:
                    assert await client.request_assignment(1, OPTIONS, 0.3) in OPTIONS
                assert controller.n_policy_errors == 0

        run(scenario())


class TestAdmissionLadder:
    def test_forced_overload_sheds_v2_explicitly(self):
        async def scenario():
            faults = FaultPlan(overload_windows=((1.0, 2.0),))
            async with ViaController(faults=faults) as controller:
                async with AsyncViaClient(
                    0, "US", "127.0.0.1", controller.port
                ) as client:
                    shed = await client.assign(1, OPTIONS, 1.5)
                    assert shed.shed and shed.reason == "fault"
                    assert shed.option == OPTIONS[0]  # client-side default
                    served = await client.assign(1, OPTIONS, 2.5)
                    assert not served.shed
                    assert client.stats.n_sheds == 1
                assert controller.admission.n_shed == 1

        run(scenario())

    def test_forced_overload_assigns_default_path_for_v1(self):
        async def scenario():
            faults = FaultPlan(overload_windows=((1.0, 2.0),))
            async with ViaController(faults=faults) as controller:
                async with AgentClient(
                    0, "US", "127.0.0.1", controller.port, protocol=1
                ) as client:
                    # v1 has no shed vocabulary: the server answers with
                    # the default path, so even legacy clients never hang.
                    choice = await client.request_assignment(1, OPTIONS, 1.5)
                    assert choice == OPTIONS[0]
                assert controller.admission.n_shed == 1

        run(scenario())

    def test_resilient_client_counts_shed_and_falls_back(self):
        async def scenario():
            faults = FaultPlan(overload_windows=((0.0, 100.0),))
            async with ViaController(faults=faults) as controller:
                async with AgentClient(
                    0, "US", "127.0.0.1", controller.port, retry=FAST_RETRY
                ) as client:
                    choice = await client.request_assignment(1, OPTIONS, 0.5)
                    assert choice == OPTIONS[0]
                    # One attempt, no retry storm into the overload:
                    assert client.stats.n_sheds == 1
                    assert client.stats.n_fallbacks == 1
                    assert client.stats.n_retries == 0
                    stats = await client.fetch_stats()
                    assert stats.n_shed == 1

        run(scenario())

    def test_rate_exhaustion_degrades_to_cached_assignment(self):
        async def scenario():
            # One token, negligible refill: the first request is admitted,
            # the second degrades and is answered from the pair's cache.
            admission = AdmissionConfig(rate=1e-9, burst=1.0)
            async with ViaController(
                ViaConfig(seed=4), admission=admission
            ) as controller:
                async with AsyncViaClient(
                    0, "US", "127.0.0.1", controller.port
                ) as client:
                    first = await client.assign(1, OPTIONS, 0.1)
                    second = await client.assign(1, OPTIONS, 0.2)
                    assert not first.shed and not second.shed
                    assert second.option == first.option  # stale-but-instant
                    third = await client.assign(9, OPTIONS, 0.3, src_id=8)
                    # Unknown pair: nothing cached, one more rung down.
                    assert third.shed and third.reason == "rate"
                assert controller.admission.n_admitted == 1
                assert controller.admission.n_degraded == 1
                assert controller.admission.n_shed == 1

        run(scenario())

    def test_deadline_expiry_sheds_instead_of_serving_late(self):
        async def scenario():
            faults = FaultPlan(stall_windows=((4.9, 5.1),), stall_s=0.3)
            admission = AdmissionConfig(queue_timeout_s=0.05)
            async with ViaController(
                faults=faults, admission=admission, n_workers=1
            ) as controller:
                async with AsyncViaClient(
                    0, "US", "127.0.0.1", controller.port
                ) as client:
                    stalled, starved = await asyncio.gather(
                        client.assign(1, OPTIONS, 5.0),
                        client.assign(2, OPTIONS, 8.0),
                    )
                    # The stalled request was served; the one queued behind
                    # it blew its deadline and got an explicit shed.
                    assert not stalled.shed
                    assert starved.shed and starved.reason == "deadline"

        run(scenario())

    def test_every_non_admitted_request_gets_an_explicit_answer(self):
        async def scenario():
            faults = FaultPlan(overload_windows=((0.0, 100.0),))
            async with ViaController(faults=faults) as controller:
                async with AsyncViaClient(
                    0, "US", "127.0.0.1", controller.port
                ) as client:
                    results = await asyncio.gather(
                        *(
                            client.assign(1, OPTIONS, 0.1, src_id=i, timeout=5.0)
                            for i in range(50)
                        )
                    )
                    # Zero silent timeouts: all 50 resolved, all shed.
                    assert len(results) == 50
                    assert all(r.shed for r in results)
                assert controller.admission.n_shed == 50

        run(scenario())


class TestAdmissionUnit:
    """The ladder as a pure function of its three signals and the clock."""

    def make(self, **overrides):
        now = [0.0]
        config = AdmissionConfig(
            max_queue_depth=4,
            degrade_queue_depth=2,
            queue_timeout_s=1.0,
            rate=overrides.pop("rate", 10.0),
            burst=overrides.pop("burst", 2.0),
            **overrides,
        )
        return AdmissionController(config, clock=lambda: now[0]), now

    def test_token_bucket_admits_then_degrades_then_refills(self):
        ctrl, now = self.make()
        assert ctrl.decide(0).admitted
        assert ctrl.decide(0).admitted
        decision = ctrl.decide(0)
        assert decision.degraded and decision.reason == "rate"
        now[0] += 0.2  # 10/s refill -> 2 tokens back
        assert ctrl.decide(0).admitted

    def test_queue_depth_ladder(self):
        ctrl, _ = self.make(rate=None, burst=256.0)
        assert ctrl.decide(1).admitted
        soft = ctrl.decide(2)
        assert soft.degraded and soft.reason == "queue_depth"
        hard = ctrl.decide(4)
        assert hard.shed and hard.reason == "queue_full"

    def test_queue_latency_signal_sheds_up_front(self):
        ctrl, _ = self.make(rate=None, burst=256.0)
        ctrl.observe_service(0.6)
        assert ctrl.estimated_wait_s(3) == pytest.approx(1.8)
        decision = ctrl.decide(3)
        assert decision.shed and decision.reason == "queue_latency"

    def test_connection_signals(self):
        ctrl, _ = self.make(
            rate=None, burst=256.0, max_connections=2, degrade_connections=2
        )
        assert ctrl.connection_opened()
        assert ctrl.connection_opened()
        assert not ctrl.connection_opened()  # refused at the door
        assert ctrl.n_connections_refused == 1
        decision = ctrl.decide(0)  # soft signal: degrade requests
        assert decision.degraded and decision.reason == "connections"
        ctrl.connection_closed()
        assert ctrl.n_connections == 1

    def test_forced_overload_short_circuits(self):
        ctrl, _ = self.make()
        ctrl.forced_overload = True
        decision = ctrl.decide(0)
        assert decision.shed and decision.reason == "fault"

    def test_for_relay_fleet_rate_derivation(self):
        capped = AdmissionConfig.for_relay_fleet(10, per_relay_cap=0.15)
        # 200/s per relay, busiest relay carries <= 15% of assignments:
        # admissible total is 200/0.15, below the fleet's 2000/s.
        assert capped.rate == pytest.approx(200.0 / 0.15)
        uncapped = AdmissionConfig.for_relay_fleet(10, per_relay_cap=None)
        assert uncapped.rate == pytest.approx(200.0)  # one relay's worth
        small = AdmissionConfig.for_relay_fleet(2, per_relay_cap=0.15)
        assert small.rate == pytest.approx(2 * 200.0)  # fleet-bounded


class TestDifferential:
    def test_v2_assignments_match_v1_for_same_seed(self):
        async def drive(protocol: int) -> list[RelayOption]:
            choices: list[RelayOption] = []
            async with ViaController(ViaConfig(seed=11)) as controller:
                async with AgentClient(
                    0, "US", "127.0.0.1", controller.port, protocol=protocol
                ) as client:
                    for i, option in enumerate(OPTIONS):
                        await client.report_measurement(
                            1,
                            option,
                            PathMetrics(
                                rtt_ms=50.0 + 10.0 * i, loss_rate=0.0, jitter_ms=1.0
                            ),
                            0.1 + 0.01 * i,
                        )
                    for i in range(8):
                        choices.append(
                            await client.request_assignment(1, OPTIONS, 0.5 + 0.01 * i)
                        )
            return choices

        v1 = run(drive(1))
        v2 = run(drive(2))
        assert v1 == v2
