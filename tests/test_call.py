"""Unit tests for repro.telephony.call."""

from __future__ import annotations

import pytest

from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption
from repro.telephony.call import Call, CallOutcome


def make_call(**overrides) -> Call:
    defaults = dict(
        call_id=1,
        t_hours=30.5,
        src_asn=1001,
        dst_asn=1002,
        src_country="US",
        dst_country="IN",
        src_user=5,
        dst_user=9,
    )
    defaults.update(overrides)
    return Call(**defaults)


class TestCall:
    def test_day_from_time(self):
        assert make_call(t_hours=0.0).day == 0
        assert make_call(t_hours=23.99).day == 0
        assert make_call(t_hours=24.0).day == 1
        assert make_call(t_hours=49.5).day == 2

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            make_call(t_hours=-1.0)

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError):
            make_call(duration_s=0.0)

    def test_international_flag(self):
        assert make_call().international
        assert not make_call(dst_country="US").international

    def test_inter_as_flag(self):
        assert make_call().inter_as
        assert not make_call(dst_asn=1001).inter_as

    def test_as_pair_is_canonical(self):
        assert make_call(src_asn=9, dst_asn=3).as_pair == (3, 9)
        assert make_call(src_asn=3, dst_asn=9).as_pair == (3, 9)

    def test_any_wireless(self):
        assert not make_call().any_wireless
        assert make_call(src_wireless=True).any_wireless
        assert make_call(dst_wireless=True).any_wireless

    def test_dict_roundtrip(self):
        call = make_call(src_wireless=True, src_prefix=3)
        assert Call.from_dict(call.to_dict()) == call

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make_call().t_hours = 5.0  # type: ignore[misc]


class TestCallOutcome:
    METRICS = PathMetrics(rtt_ms=100.0, loss_rate=0.01, jitter_ms=5.0)

    def test_poor_rating(self):
        outcome = CallOutcome(call=make_call(), option=DIRECT, metrics=self.METRICS)
        assert not outcome.poor_rating
        assert outcome.with_rating(1).poor_rating
        assert outcome.with_rating(2).poor_rating
        assert not outcome.with_rating(3).poor_rating

    @pytest.mark.parametrize("rating", [0, 6, -1])
    def test_rejects_out_of_range_rating(self, rating):
        with pytest.raises(ValueError):
            CallOutcome(call=make_call(), option=DIRECT, metrics=self.METRICS, rating=rating)

    def test_with_rating_preserves_fields(self):
        outcome = CallOutcome(
            call=make_call(), option=RelayOption.bounce(2), metrics=self.METRICS
        )
        rated = outcome.with_rating(4)
        assert rated.option == RelayOption.bounce(2)
        assert rated.metrics == self.METRICS
        assert rated.rating == 4
