"""Unit tests for repro.workload (generator + trace container)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.telephony.call import Call
from repro.workload import TraceDataset, WorkloadConfig, generate_trace


class TestWorkloadConfig:
    def test_defaults_valid(self):
        WorkloadConfig()

    def test_rejects_zero_calls(self):
        with pytest.raises(ValueError):
            WorkloadConfig(n_calls=0)

    def test_rejects_fraction_overflow(self):
        with pytest.raises(ValueError):
            WorkloadConfig(frac_intra_as=0.6, frac_international=0.6)

    def test_rejects_bad_zipf(self):
        with pytest.raises(ValueError):
            WorkloadConfig(volume_zipf_s=0.0)


class TestGenerateTrace:
    def test_chronological_order(self, small_trace):
        times = [c.t_hours for c in small_trace]
        assert times == sorted(times)

    def test_call_count(self, small_trace):
        assert len(small_trace) == 4_000

    def test_times_within_horizon(self, small_trace):
        assert all(0.0 <= c.t_hours < small_trace.horizon_hours for c in small_trace)

    def test_mix_fractions_near_targets(self, small_world):
        config = WorkloadConfig(n_calls=20_000, n_pairs=150, seed=23)
        trace = generate_trace(small_world.topology, config, n_days=8)
        summary = trace.summary()
        assert summary.frac_international == pytest.approx(config.frac_international, abs=0.05)
        assert 1.0 - summary.frac_inter_as == pytest.approx(config.frac_intra_as, abs=0.05)

    def test_volume_skew_is_heavy_tailed(self, small_trace):
        counts = sorted(small_trace.pair_counts().values(), reverse=True)
        # The busiest pair should dwarf the median pair.
        assert counts[0] > 10 * counts[len(counts) // 2]

    def test_durations_above_minimum(self, small_trace):
        config = small_trace.config
        assert config is not None
        assert all(c.duration_s >= config.min_duration_s for c in small_trace)

    def test_prefixes_within_as_range(self, small_world, small_trace):
        for call in small_trace.calls[:500]:
            assert 0 <= call.src_prefix < small_world.topology.as_of(call.src_asn).n_prefixes

    def test_countries_match_topology(self, small_world, small_trace):
        for call in small_trace.calls[:500]:
            assert call.src_country == small_world.topology.country_of_as(call.src_asn)
            assert call.dst_country == small_world.topology.country_of_as(call.dst_asn)

    def test_deterministic_given_seed(self, small_world):
        config = WorkloadConfig(n_calls=500, n_pairs=50, seed=31)
        t1 = generate_trace(small_world.topology, config, n_days=5)
        t2 = generate_trace(small_world.topology, config, n_days=5)
        assert t1.calls == t2.calls

    def test_different_seeds_differ(self, small_world):
        t1 = generate_trace(small_world.topology, WorkloadConfig(n_calls=500, n_pairs=50, seed=1), n_days=5)
        t2 = generate_trace(small_world.topology, WorkloadConfig(n_calls=500, n_pairs=50, seed=2), n_days=5)
        assert t1.calls != t2.calls


class TestTraceDataset:
    def test_rejects_unsorted(self):
        c1 = Call(call_id=0, t_hours=5.0, src_asn=1, dst_asn=2, src_country="A",
                  dst_country="B", src_user=0, dst_user=1)
        c2 = Call(call_id=1, t_hours=1.0, src_asn=1, dst_asn=2, src_country="A",
                  dst_country="B", src_user=0, dst_user=1)
        with pytest.raises(ValueError, match="sorted"):
            TraceDataset(calls=[c1, c2], n_days=1)

    def test_rejects_zero_days(self):
        with pytest.raises(ValueError):
            TraceDataset(calls=[], n_days=0)

    def test_filter(self, small_trace):
        intl = small_trace.filter(lambda c: c.international)
        assert all(c.international for c in intl)
        assert len(intl) < len(small_trace)

    def test_split_by_day_partitions(self, small_trace):
        by_day = small_trace.split_by_day()
        assert sum(len(v) for v in by_day.values()) == len(small_trace)
        for day, calls in by_day.items():
            assert all(c.day == day for c in calls)

    def test_calls_on_day(self, small_trace):
        day3 = small_trace.calls_on_day(3)
        assert day3 == small_trace.split_by_day().get(3, [])

    def test_summary_counts(self, small_trace):
        summary = small_trace.summary()
        assert summary.n_calls == len(small_trace)
        assert summary.n_as_pairs == len(small_trace.pair_counts())
        assert 0.0 <= summary.frac_wireless <= 1.0

    def test_summary_rows_render(self, small_trace):
        rows = small_trace.summary().rows()
        labels = [r[0] for r in rows]
        assert "Calls" in labels and "Countries/regions" in labels

    def test_jsonl_roundtrip(self, small_trace, tmp_path):
        subset = TraceDataset(calls=small_trace.calls[:100], n_days=small_trace.n_days)
        path = tmp_path / "trace.jsonl"
        subset.save_jsonl(path)
        loaded = TraceDataset.load_jsonl(path)
        assert loaded.calls == subset.calls
        assert loaded.n_days == subset.n_days

    def test_load_rejects_headerless_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"call_id": 0}\n')
        with pytest.raises(ValueError, match="header"):
            TraceDataset.load_jsonl(path)


class TestArrivalSeasonality:
    def test_evening_peak(self, small_trace):
        import numpy as np

        hours = np.array([c.t_hours % 24.0 for c in small_trace]).astype(int)
        evening = np.mean((hours >= 17) & (hours < 22))
        night = np.mean(hours < 5)
        assert evening > 2.0 * night

    def test_weekend_heavier_than_midweek(self, small_world):
        import numpy as np

        from repro.workload import WorkloadConfig, generate_trace

        trace = generate_trace(
            small_world.topology,
            WorkloadConfig(n_calls=40_000, n_pairs=100, seed=71),
            n_days=14,
        )
        days = np.array([c.day for c in trace]) % 7
        weekend = np.mean((days == 5) | (days == 6)) / 2.0
        midweek = np.mean((days == 1) | (days == 2)) / 2.0
        assert weekend > midweek
