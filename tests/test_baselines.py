"""Unit tests for repro.core.baselines (default, oracle, strawmen)."""

from __future__ import annotations

import pytest

from repro.core.baselines import (
    DefaultPolicy,
    OraclePolicy,
    make_strawman_exploration,
    make_strawman_prediction,
    make_via,
)
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT
from repro.telephony.call import Call


def make_call(world, t_hours=1.0, call_id=0):
    asns = world.topology.asns
    a = asns[0]
    b = next(x for x in asns if world.topology.is_international(a, x))
    return Call(
        call_id=call_id, t_hours=t_hours, src_asn=a, dst_asn=b,
        src_country=world.topology.country_of_as(a),
        dst_country=world.topology.country_of_as(b),
        src_user=0, dst_user=1,
    )


class TestDefaultPolicy:
    def test_always_direct(self, small_world):
        policy = DefaultPolicy()
        call = make_call(small_world)
        options = small_world.options_for_pair(call.src_asn, call.dst_asn)
        for _ in range(5):
            assert policy.assign(call, options) is DIRECT

    def test_observe_is_noop(self, small_world):
        policy = DefaultPolicy()
        call = make_call(small_world)
        policy.observe(call, DIRECT, PathMetrics(100.0, 0.01, 5.0))  # no raise


class TestOraclePolicy:
    def test_picks_true_best(self, small_world):
        policy = OraclePolicy(small_world, "rtt_ms")
        call = make_call(small_world, t_hours=30.0)
        options = small_world.options_for_pair(call.src_asn, call.dst_asn)
        choice = policy.assign(call, options)
        best_cost = min(
            small_world.true_mean(call.src_asn, call.dst_asn, o, call.day).rtt_ms
            for o in options
        )
        got = small_world.true_mean(call.src_asn, call.dst_asn, choice, call.day).rtt_ms
        assert got == pytest.approx(best_cost)

    def test_choice_depends_on_metric(self, small_world):
        call = make_call(small_world, t_hours=30.0)
        options = small_world.options_for_pair(call.src_asn, call.dst_asn)
        choices = {
            metric: OraclePolicy(small_world, metric).assign(call, options)
            for metric in ("rtt_ms", "loss_rate", "jitter_ms")
        }
        for metric, choice in choices.items():
            best = min(
                small_world.true_mean(call.src_asn, call.dst_asn, o, call.day).get(metric)
                for o in options
            )
            got = small_world.true_mean(
                call.src_asn, call.dst_asn, choice, call.day
            ).get(metric)
            assert got == pytest.approx(best)

    def test_caches_per_day(self, small_world):
        policy = OraclePolicy(small_world, "rtt_ms")
        call = make_call(small_world, t_hours=1.0)
        options = small_world.options_for_pair(call.src_asn, call.dst_asn)
        policy.assign(call, options)
        assert len(policy._best_cache) == 1
        policy.assign(make_call(small_world, t_hours=2.0, call_id=1), options)
        assert len(policy._best_cache) == 1  # same pair + day -> cached
        policy.assign(make_call(small_world, t_hours=30.0, call_id=2), options)
        assert len(policy._best_cache) == 2

    def test_reverse_direction_consistent(self, small_world):
        policy = OraclePolicy(small_world, "rtt_ms")
        call = make_call(small_world, t_hours=1.0)
        options = small_world.options_for_pair(call.src_asn, call.dst_asn)
        fwd = policy.assign(call, options)
        rev_call = Call(
            call_id=9, t_hours=1.5, src_asn=call.dst_asn, dst_asn=call.src_asn,
            src_country=call.dst_country, dst_country=call.src_country,
            src_user=1, dst_user=0,
        )
        rev_options = small_world.options_for_pair(rev_call.src_asn, rev_call.dst_asn)
        rev = policy.assign(rev_call, rev_options)
        assert rev == fwd.reversed()

    def test_budgeted_oracle_limits_relaying(self, small_world):
        policy = OraclePolicy(small_world, "rtt_ms", budget=0.0)
        call = make_call(small_world)
        options = small_world.options_for_pair(call.src_asn, call.dst_asn)
        for i in range(20):
            assert policy.assign(make_call(small_world, call_id=i), options) is DIRECT


class TestFactories:
    def test_make_via_configuration(self):
        policy = make_via("loss_rate", budget=0.5)
        assert policy.config.metric == "loss_rate"
        assert policy.config.topk_mode == "dynamic"
        assert policy.config.selector == "ucb"
        assert policy.config.budget == 0.5
        assert "loss_rate" in policy.name

    def test_make_via_accepts_overrides(self):
        policy = make_via("rtt_ms", epsilon=0.2, max_k=3)
        assert policy.config.epsilon == 0.2
        assert policy.config.max_k == 3

    def test_strawman_prediction_is_argmin(self):
        policy = make_strawman_prediction("rtt_ms")
        assert policy.config.topk_mode == "argmin"

    def test_strawman_exploration_has_no_pruning_or_tomography(self):
        policy = make_strawman_exploration("rtt_ms")
        assert policy.config.topk_mode == "all"
        assert policy.config.selector == "greedy"
        assert not policy.config.use_tomography
        assert policy.config.epsilon == 0.0
        assert policy.config.greedy_epsilon > 0.0
