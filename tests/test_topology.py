"""Unit tests for repro.netmodel.topology."""

from __future__ import annotations

import pytest

from repro.netmodel.geo import GeoPoint
from repro.netmodel.topology import (
    COUNTRY_CATALOG,
    RELAY_SITE_CATALOG,
    TopologyConfig,
    build_topology,
)


class TestTopologyConfig:
    def test_defaults_valid(self):
        TopologyConfig()

    def test_rejects_too_many_countries(self):
        with pytest.raises(ValueError):
            TopologyConfig(n_countries=len(COUNTRY_CATALOG) + 1)

    def test_rejects_zero_countries(self):
        with pytest.raises(ValueError):
            TopologyConfig(n_countries=0)

    def test_rejects_too_many_relays(self):
        with pytest.raises(ValueError):
            TopologyConfig(n_relays=len(RELAY_SITE_CATALOG) + 1)

    def test_rejects_fractional_ases_below_one(self):
        with pytest.raises(ValueError):
            TopologyConfig(ases_per_country=0.5)


class TestBuildTopology:
    @pytest.fixture(scope="class")
    def topo(self):
        return build_topology(TopologyConfig(n_countries=10, n_relays=8, seed=3))

    def test_country_count(self, topo):
        assert len(topo.countries) == 10

    def test_relay_count_and_ids(self, topo):
        assert len(topo.relays) == 8
        assert sorted(topo.relays) == list(range(8))

    def test_every_as_belongs_to_a_country(self, topo):
        for asys in topo.ases.values():
            assert asys.country in topo.countries

    def test_country_ases_index_is_consistent(self, topo):
        for code, members in topo.country_ases.items():
            for asn in members:
                assert topo.ases[asn].country == code
        indexed = sum(len(v) for v in topo.country_ases.values())
        assert indexed == len(topo.ases)

    def test_as_attributes_in_range(self, topo):
        for asys in topo.ases.values():
            assert 0.0 < asys.access_quality <= 1.0
            assert 0.0 < asys.wireless_fraction < 1.0
            assert asys.n_prefixes >= 1

    def test_deterministic_given_seed(self):
        t1 = build_topology(TopologyConfig(n_countries=6, n_relays=4, seed=42))
        t2 = build_topology(TopologyConfig(n_countries=6, n_relays=4, seed=42))
        assert list(t1.ases) == list(t2.ases)
        for asn in t1.ases:
            assert t1.ases[asn] == t2.ases[asn]

    def test_different_seed_changes_ases(self):
        t1 = build_topology(TopologyConfig(n_countries=6, n_relays=4, seed=1))
        t2 = build_topology(TopologyConfig(n_countries=6, n_relays=4, seed=2))
        same = all(
            t1.ases.get(a) == t2.ases.get(a) for a in set(t1.ases) & set(t2.ases)
        )
        assert not same

    def test_nearest_relays_sorted_by_distance(self, topo):
        origin = GeoPoint(0.0, 0.0)
        ranked = topo.nearest_relays(origin, 8)
        distances = [origin.distance_km(topo.relays[r].location) for r in ranked]
        assert distances == sorted(distances)

    def test_nearest_relays_truncates(self, topo):
        assert len(topo.nearest_relays(GeoPoint(0.0, 0.0), 3)) == 3

    def test_is_international(self, topo):
        asns = topo.asns
        a = asns[0]
        same_country = next(
            x for x in asns if topo.country_of_as(x) == topo.country_of_as(a)
        )
        assert not topo.is_international(a, same_country)
        other = next(
            (x for x in asns if topo.country_of_as(x) != topo.country_of_as(a)), None
        )
        assert other is not None
        assert topo.is_international(a, other)

    def test_catalog_entries_have_valid_coordinates(self):
        for _code, _name, lat, lon, weight, quality in COUNTRY_CATALOG:
            GeoPoint(lat, lon)  # raises if invalid
            assert weight > 0.0
            assert 0.0 < quality <= 1.0
        for _site, lat, lon in RELAY_SITE_CATALOG:
            GeoPoint(lat, lon)

    def test_catalog_codes_unique(self):
        codes = [c[0] for c in COUNTRY_CATALOG]
        assert len(codes) == len(set(codes))
