"""Unit tests for OptionFilteredWorld / restrict_relays / without_transit."""

from __future__ import annotations

import pytest

from repro.netmodel import restrict_relays, without_transit
from repro.netmodel.options import DIRECT, OptionKind


@pytest.fixture(scope="module")
def as_pair(small_world):
    asns = small_world.topology.asns
    a = asns[0]
    b = next(x for x in asns if small_world.topology.is_international(a, x))
    return a, b


class TestRestrictRelays:
    def test_only_allowed_relays_offered(self, small_world, as_pair):
        allowed = {0, 1}
        filtered = restrict_relays(small_world, allowed)
        for option in filtered.options_for_pair(*as_pair):
            assert all(rid in allowed for rid in option.relay_ids())

    def test_direct_always_survives(self, small_world, as_pair):
        filtered = restrict_relays(small_world, set())
        assert filtered.options_for_pair(*as_pair) == [DIRECT]

    def test_rejects_unknown_relay(self, small_world):
        with pytest.raises(ValueError):
            restrict_relays(small_world, {9999})

    def test_subset_of_original_options(self, small_world, as_pair):
        filtered = restrict_relays(small_world, {0, 1, 2})
        original = set(small_world.options_for_pair(*as_pair))
        assert set(filtered.options_for_pair(*as_pair)) <= original

    def test_delegates_ground_truth(self, small_world, as_pair):
        filtered = restrict_relays(small_world, {0})
        a, b = as_pair
        assert filtered.true_mean(a, b, DIRECT, 1) == small_world.true_mean(a, b, DIRECT, 1)
        assert filtered.topology is small_world.topology

    def test_options_cached(self, small_world, as_pair):
        filtered = restrict_relays(small_world, {0, 1})
        assert filtered.options_for_pair(*as_pair) is filtered.options_for_pair(*as_pair)


class TestWithoutTransit:
    def test_no_transit_options(self, small_world, as_pair):
        filtered = without_transit(small_world)
        kinds = {o.kind for o in filtered.options_for_pair(*as_pair)}
        assert OptionKind.TRANSIT not in kinds
        assert OptionKind.BOUNCE in kinds
        assert OptionKind.DIRECT in kinds

    def test_bounce_set_unchanged(self, small_world, as_pair):
        filtered = without_transit(small_world)
        original_bounce = {
            o for o in small_world.options_for_pair(*as_pair)
            if o.kind is OptionKind.BOUNCE
        }
        filtered_bounce = {
            o for o in filtered.options_for_pair(*as_pair)
            if o.kind is OptionKind.BOUNCE
        }
        assert filtered_bounce == original_bounce
