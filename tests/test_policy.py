"""Unit tests for repro.core.policy (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policy import ViaConfig, ViaPolicy
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption
from repro.telephony.call import Call

OPTIONS = [DIRECT, RelayOption.bounce(0), RelayOption.bounce(1), RelayOption.transit(0, 1)]


def make_call(call_id=0, t_hours=1.0, src_asn=1001, dst_asn=1002) -> Call:
    return Call(
        call_id=call_id, t_hours=t_hours, src_asn=src_asn, dst_asn=dst_asn,
        src_country="US", dst_country="IN", src_user=0, dst_user=1,
    )


def metrics(rtt: float) -> PathMetrics:
    return PathMetrics(rtt_ms=rtt, loss_rate=0.01, jitter_ms=5.0)


def run_day(policy: ViaPolicy, day: int, costs: dict[RelayOption, float], n_calls: int = 60,
            noise: float = 0.0, seed: int = 0) -> list[RelayOption]:
    """Replay one synthetic day where each option has a fixed true cost."""
    rng = np.random.default_rng(seed + day)
    choices = []
    for i in range(n_calls):
        call = make_call(call_id=day * 1000 + i, t_hours=day * 24.0 + 0.2 + i * 0.01)
        option = policy.assign(call, OPTIONS)
        choices.append(option)
        cost = costs[option] * (1.0 + noise * float(rng.standard_normal()) * 0.1)
        policy.observe(call, option, metrics(max(1.0, cost)))
    return choices


class TestViaConfig:
    def test_defaults_valid(self):
        ViaConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"topk_mode": "bogus"},
            {"selector": "bogus"},
            {"epsilon": 1.5},
            {"refresh_hours": 0.0},
            {"budget": 2.0},
            {"fixed_k": 0},
            {"greedy_epsilon": -0.1},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ViaConfig(**kwargs)

    def test_with_metric(self):
        config = ViaConfig(metric="rtt_ms", epsilon=0.2)
        other = config.with_metric("loss_rate")
        assert other.metric == "loss_rate"
        assert other.epsilon == 0.2


class TestAssignBasics:
    def test_returns_an_offered_option(self):
        policy = ViaPolicy(ViaConfig(seed=1))
        for i in range(20):
            call = make_call(call_id=i, t_hours=0.5 + i * 0.01)
            assert policy.assign(call, OPTIONS) in OPTIONS

    def test_rejects_empty_options(self):
        policy = ViaPolicy()
        with pytest.raises(ValueError):
            policy.assign(make_call(), [])

    def test_refresh_happens_per_period(self):
        policy = ViaPolicy(ViaConfig(refresh_hours=24.0))
        policy.assign(make_call(t_hours=1.0), OPTIONS)
        policy.assign(make_call(t_hours=2.0), OPTIONS)
        assert policy.n_refreshes == 1
        policy.assign(make_call(t_hours=25.0), OPTIONS)
        assert policy.n_refreshes == 2

    def test_custom_refresh_cadence(self):
        policy = ViaPolicy(ViaConfig(refresh_hours=6.0))
        for t in (1.0, 7.0, 13.0, 19.0):
            policy.assign(make_call(t_hours=t), OPTIONS)
        assert policy.n_refreshes == 4

    def test_epsilon_one_explores_everything(self):
        policy = ViaPolicy(ViaConfig(epsilon=1.0, seed=3))
        seen = set()
        for i in range(200):
            seen.add(policy.assign(make_call(call_id=i, t_hours=0.5), OPTIONS))
        assert seen == set(OPTIONS)

    def test_epsilon_counted(self):
        policy = ViaPolicy(ViaConfig(epsilon=1.0, seed=3))
        for i in range(10):
            policy.assign(make_call(call_id=i), OPTIONS)
        assert policy.n_epsilon_explorations == 10


class TestLearning:
    def test_via_converges_to_best_option(self):
        policy = ViaPolicy(ViaConfig(epsilon=0.05, seed=5))
        costs = {DIRECT: 300.0, OPTIONS[1]: 80.0, OPTIONS[2]: 200.0, OPTIONS[3]: 220.0}
        run_day(policy, 0, costs)  # cold start day
        choices = run_day(policy, 1, costs)  # predictor now active
        best_share = sum(c == OPTIONS[1] for c in choices) / len(choices)
        assert best_share > 0.5

    def test_argmin_mode_follows_prediction(self):
        policy = ViaPolicy(ViaConfig(topk_mode="argmin", epsilon=0.0, seed=6))
        costs = {DIRECT: 100.0, OPTIONS[1]: 300.0, OPTIONS[2]: 310.0, OPTIONS[3]: 320.0}
        # Day 0: no predictions -> argmin falls back to DIRECT (and only
        # ever observes it, a real weakness of pure prediction).
        choices0 = run_day(policy, 0, costs)
        assert all(c is DIRECT for c in choices0)
        choices1 = run_day(policy, 1, costs)
        assert all(c is DIRECT for c in choices1)

    def test_bandit_recovers_from_stale_prediction(self):
        """Yesterday's best degrades overnight; UCB should shift away,
        which is exactly what pure prediction cannot do."""
        via = ViaPolicy(ViaConfig(epsilon=0.05, seed=7))
        day0 = {DIRECT: 300.0, OPTIONS[1]: 80.0, OPTIONS[2]: 120.0, OPTIONS[3]: 250.0}
        day1 = {DIRECT: 300.0, OPTIONS[1]: 400.0, OPTIONS[2]: 120.0, OPTIONS[3]: 250.0}
        run_day(via, 0, day0)
        run_day(via, 1, day0)
        choices = run_day(via, 2, day1, n_calls=120)
        late = choices[60:]
        assert sum(c == OPTIONS[2] for c in late) > sum(c == OPTIONS[1] for c in late)

    def test_greedy_selector_exploits(self):
        policy = ViaPolicy(
            ViaConfig(topk_mode="all", selector="greedy", greedy_epsilon=0.1,
                      epsilon=0.0, use_tomography=False, seed=8)
        )
        costs = {DIRECT: 300.0, OPTIONS[1]: 80.0, OPTIONS[2]: 200.0, OPTIONS[3]: 220.0}
        run_day(policy, 0, costs)
        choices = run_day(policy, 1, costs)
        best_share = sum(c == OPTIONS[1] for c in choices) / len(choices)
        assert best_share > 0.5


class TestOrientation:
    def test_flipped_pair_gets_mirrored_transit(self):
        """A transit option learned from A->B calls must come back
        reversed for B->A calls."""
        policy = ViaPolicy(ViaConfig(epsilon=0.0, seed=9))
        fwd_options = [DIRECT, RelayOption.transit(0, 1)]
        rev_options = [DIRECT, RelayOption.transit(1, 0)]
        # Teach the policy that transit is far better, in the fwd direction.
        for day in range(2):
            for i in range(40):
                call = make_call(call_id=day * 100 + i, t_hours=day * 24.0 + 0.3 + i * 0.01,
                                 src_asn=1001, dst_asn=1002)
                option = policy.assign(call, fwd_options)
                cost = 50.0 if option.is_relayed else 300.0
                policy.observe(call, option, metrics(cost))
        call = make_call(call_id=999, t_hours=24.0 + 20.0, src_asn=1002, dst_asn=1001)
        choice = policy.assign(call, rev_options)
        assert choice in rev_options

    def test_country_granularity_pools_pairs(self):
        policy = ViaPolicy(ViaConfig(granularity="country", epsilon=0.0, seed=10))
        # Calls between different AS pairs in the same countries share state.
        c1 = make_call(call_id=1, src_asn=1001, dst_asn=1002)
        c2 = make_call(call_id=2, src_asn=1003, dst_asn=1004)
        policy.assign(c1, OPTIONS)
        policy.observe(c1, DIRECT, metrics(100.0))
        policy.assign(c2, OPTIONS)
        assert len(policy._pair_state) == 1


class TestBudgetIntegration:
    def test_zero_budget_never_relays(self):
        policy = ViaPolicy(ViaConfig(budget=0.0, seed=11))
        costs = {o: 100.0 for o in OPTIONS}
        for day in range(3):
            choices = run_day(policy, day, costs)
            assert all(c is DIRECT for c in choices)

    def test_budget_cap_roughly_respected(self):
        policy = ViaPolicy(ViaConfig(budget=0.3, budget_aware=False, seed=12))
        costs = {DIRECT: 300.0, OPTIONS[1]: 80.0, OPTIONS[2]: 200.0, OPTIONS[3]: 220.0}
        for day in range(4):
            run_day(policy, day, costs, n_calls=100)
        assert policy.relayed_fraction is not None
        assert policy.relayed_fraction <= 0.35

    def test_unbudgeted_policy_reports_none(self):
        assert ViaPolicy(ViaConfig(budget=1.0)).relayed_fraction is None


class TestObserve:
    def test_observe_feeds_history(self):
        policy = ViaPolicy(ViaConfig(seed=13))
        call = make_call()
        policy.observe(call, DIRECT, metrics(123.0))
        stat = policy.history.stats((1001, 1002), DIRECT, 0)
        assert stat is not None and stat.count == 1

    def test_observe_unassigned_pair_is_safe(self):
        policy = ViaPolicy()
        policy.observe(make_call(), RelayOption.bounce(5), metrics(100.0))


class TestCheckpointing:
    def test_save_load_roundtrip(self, tmp_path):
        policy = ViaPolicy(ViaConfig(seed=20))
        costs = {DIRECT: 300.0, OPTIONS[1]: 80.0, OPTIONS[2]: 200.0, OPTIONS[3]: 220.0}
        run_day(policy, 0, costs)
        run_day(policy, 1, costs)
        path = tmp_path / "state.json"
        policy.save_state(path)

        restored = ViaPolicy(ViaConfig(seed=21))
        restored.load_state(path)
        assert restored.history.total_calls() == policy.history.total_calls()
        for window in policy.history.windows():
            for key, stat in policy.history.window_items(window):
                other = restored.history.stats(key[0], key[1], window)
                assert other is not None
                assert other.count == stat.count
                assert other.mean == pytest.approx(stat.mean)
                assert other.sem() == pytest.approx(stat.sem())

    def test_restored_policy_keeps_its_knowledge(self, tmp_path):
        """After a restart, the policy should immediately favour the
        option its predecessor had learned is best."""
        costs = {DIRECT: 300.0, OPTIONS[1]: 60.0, OPTIONS[2]: 250.0, OPTIONS[3]: 260.0}
        original = ViaPolicy(ViaConfig(seed=22, epsilon=0.0))
        run_day(original, 0, costs)
        run_day(original, 1, costs)
        path = tmp_path / "state.json"
        original.save_state(path)

        restored = ViaPolicy(ViaConfig(seed=23, epsilon=0.0))
        restored.load_state(path)
        choices = run_day(restored, 2, costs)
        best_share = sum(c == OPTIONS[1] for c in choices) / len(choices)
        assert best_share > 0.5

    def test_load_rejects_wrong_metric(self, tmp_path):
        policy = ViaPolicy(ViaConfig(metric="rtt_ms"))
        path = tmp_path / "state.json"
        policy.save_state(path)
        other = ViaPolicy(ViaConfig(metric="loss_rate"))
        with pytest.raises(ValueError, match="optimises"):
            other.load_state(path)

    def test_load_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="format"):
            ViaPolicy(ViaConfig()).load_state(path)
