"""Unit tests for repro.analysis (thresholds, PNR, stats, reporting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    DEFAULT_THRESHOLDS,
    Thresholds,
    at_least_one_bad,
    binned_curve,
    cdf_points,
    format_series,
    format_table,
    is_poor,
    pearson_correlation,
    percentile_improvement,
    percentile_summary,
    pnr,
    pnr_breakdown,
    relative_improvement,
)
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT
from repro.telephony.call import Call, CallOutcome

GOOD = PathMetrics(rtt_ms=100.0, loss_rate=0.005, jitter_ms=5.0)
BAD_RTT = PathMetrics(rtt_ms=400.0, loss_rate=0.005, jitter_ms=5.0)
BAD_ALL = PathMetrics(rtt_ms=400.0, loss_rate=0.05, jitter_ms=30.0)


def outcome(metrics: PathMetrics, call_id: int = 0) -> CallOutcome:
    call = Call(call_id=call_id, t_hours=1.0, src_asn=1, dst_asn=2,
                src_country="A", dst_country="B", src_user=0, dst_user=1)
    return CallOutcome(call=call, option=DIRECT, metrics=metrics)


class TestThresholds:
    def test_paper_values(self):
        assert DEFAULT_THRESHOLDS.rtt_ms == 320.0
        assert DEFAULT_THRESHOLDS.loss_rate == 0.012
        assert DEFAULT_THRESHOLDS.jitter_ms == 12.0

    def test_is_poor_boundary_inclusive(self):
        at_threshold = PathMetrics(rtt_ms=320.0, loss_rate=0.0, jitter_ms=0.0)
        assert DEFAULT_THRESHOLDS.is_poor(at_threshold, "rtt_ms")

    def test_any_poor(self):
        assert not DEFAULT_THRESHOLDS.any_poor(GOOD)
        assert DEFAULT_THRESHOLDS.any_poor(BAD_RTT)

    def test_get_unknown_metric(self):
        with pytest.raises(KeyError):
            DEFAULT_THRESHOLDS.get("bandwidth")

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Thresholds(rtt_ms=0.0)


class TestPnr:
    def test_empty_population(self):
        assert pnr([]) == 0.0

    def test_per_metric(self):
        outcomes = [outcome(GOOD), outcome(BAD_RTT), outcome(BAD_ALL)]
        assert pnr(outcomes, "rtt_ms") == pytest.approx(2 / 3)
        assert pnr(outcomes, "loss_rate") == pytest.approx(1 / 3)

    def test_any_metric_default(self):
        outcomes = [outcome(GOOD), outcome(BAD_RTT)]
        assert pnr(outcomes) == pytest.approx(0.5)

    def test_breakdown_consistent_with_pnr(self):
        outcomes = [outcome(GOOD), outcome(BAD_RTT), outcome(BAD_ALL), outcome(GOOD)]
        breakdown = pnr_breakdown(outcomes)
        assert breakdown["rtt_ms"] == pnr(outcomes, "rtt_ms")
        assert breakdown["any"] == pnr(outcomes)

    def test_breakdown_empty(self):
        breakdown = pnr_breakdown([])
        assert breakdown == {"rtt_ms": 0.0, "loss_rate": 0.0, "jitter_ms": 0.0, "any": 0.0}

    def test_helpers(self):
        assert is_poor(BAD_RTT, "rtt_ms")
        assert not is_poor(GOOD, "rtt_ms")
        assert at_least_one_bad(BAD_ALL)
        assert not at_least_one_bad(GOOD)


class TestRelativeImprovement:
    def test_reduction_is_positive(self):
        assert relative_improvement(0.2, 0.1) == pytest.approx(50.0)

    def test_regression_is_negative(self):
        assert relative_improvement(0.1, 0.2) == pytest.approx(-100.0)

    def test_zero_baseline(self):
        assert relative_improvement(0.0, 0.1) == 0.0


class TestCdfPoints:
    def test_monotone(self):
        points = cdf_points(np.random.default_rng(0).normal(size=500))
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[0] == 0.0 and ys[-1] == 1.0

    def test_empty(self):
        assert cdf_points([]) == []

    def test_rejects_bad_n_points(self):
        with pytest.raises(ValueError):
            cdf_points([1.0], n_points=1)


class TestBinnedCurve:
    def test_monotone_relationship_recovered(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 100, 20_000)
        y = x / 100.0 + rng.normal(0, 0.05, x.size)
        points = binned_curve(x, y, n_bins=10, min_samples=100)
        values = [p.value for p in points]
        assert values == sorted(values)

    def test_min_samples_drops_sparse_bins(self):
        x = [1.0] * 2000 + [99.0] * 5
        y = [0.0] * 2000 + [1.0] * 5
        points = binned_curve(x, y, n_bins=10, min_samples=1000)
        assert len(points) == 1

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            binned_curve([1.0, 2.0], [1.0])

    def test_empty(self):
        assert binned_curve([], []) == []

    def test_degenerate_constant_x(self):
        points = binned_curve([5.0] * 100, list(range(100)), min_samples=1)
        assert len(points) == 1
        assert points[0].value == pytest.approx(49.5)


class TestPearson:
    def test_perfect_correlation(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_anticorrelation(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_rejects_constant(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 1, 1], [1, 2, 3])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            pearson_correlation([1], [1])


class TestPercentiles:
    def test_summary(self):
        values = list(range(101))
        summary = percentile_summary(values, (50, 90))
        assert summary[50.0] == pytest.approx(50.0)
        assert summary[90.0] == pytest.approx(90.0)

    def test_summary_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile_summary([])

    def test_improvement_between_percentiles(self):
        baseline = [100.0] * 100
        improved = [50.0] * 100
        result = percentile_improvement(baseline, improved, (50,))
        assert result[50.0] == pytest.approx(50.0)

    def test_improvement_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile_improvement([], [1.0])


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [["x", 1], ["yy", 2.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series("S", [(1, 2.0), (3, 4.0)], x_label="in", y_label="out")
        assert "S" in text
        assert text.count("->") >= 3  # header + 2 rows


class TestPnrWithSem:
    def test_empty(self):
        from repro.analysis import pnr_with_sem

        assert pnr_with_sem([]) == (0.0, 0.0)

    def test_binomial_sem(self):
        from repro.analysis import pnr_with_sem

        outcomes = [outcome(BAD_RTT, call_id=i) for i in range(25)] + [
            outcome(GOOD, call_id=100 + i) for i in range(75)
        ]
        p, sem = pnr_with_sem(outcomes, "rtt_ms")
        assert p == pytest.approx(0.25)
        assert sem == pytest.approx((0.25 * 0.75 / 100) ** 0.5)

    def test_degenerate_proportion_zero_sem(self):
        from repro.analysis import pnr_with_sem

        outcomes = [outcome(GOOD, call_id=i) for i in range(10)]
        p, sem = pnr_with_sem(outcomes, "rtt_ms")
        assert p == 0.0 and sem == 0.0
