"""Unit tests for repro.netmodel.world (ground-truth path model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, OptionKind, RelayOption
from repro.netmodel.world import WorldConfig, _mid_longitude, build_world
from repro.netmodel.topology import TopologyConfig


@pytest.fixture(scope="module")
def world():
    return build_world(
        WorldConfig(topology=TopologyConfig(n_countries=8, n_relays=6, seed=11), n_days=8, seed=13)
    )


@pytest.fixture(scope="module")
def as_pair(world):
    asns = world.topology.asns
    # Pick an international pair for meaningful relay options.
    a = asns[0]
    b = next(x for x in asns if world.topology.is_international(a, x))
    return a, b


class TestWorldConfig:
    def test_rejects_zero_days(self):
        with pytest.raises(ValueError):
            WorldConfig(n_days=0)

    def test_rejects_zero_bounce_candidates(self):
        with pytest.raises(ValueError):
            WorldConfig(n_bounce_near=0)


class TestSegments:
    def test_access_segment_cached(self, world):
        asn = world.topology.asns[0]
        assert world.access_segment(asn) is world.access_segment(asn)

    def test_direct_segment_symmetric(self, world, as_pair):
        a, b = as_pair
        assert world.direct_segment(a, b) is world.direct_segment(b, a)

    def test_inter_segment_symmetric(self, world):
        assert world.inter_segment(0, 1) is world.inter_segment(1, 0)

    def test_inter_segment_rejects_self(self, world):
        with pytest.raises(ValueError):
            world.inter_segment(2, 2)

    def test_wan_segment_per_direction_of_key(self, world):
        asn = world.topology.asns[0]
        assert world.wan_segment(asn, 0) is world.wan_segment(asn, 0)
        assert world.wan_segment(asn, 0) is not world.wan_segment(asn, 1)

    def test_deterministic_across_instances(self, as_pair):
        cfg = WorldConfig(
            topology=TopologyConfig(n_countries=8, n_relays=6, seed=11), n_days=8, seed=13
        )
        w1, w2 = build_world(cfg), build_world(cfg)
        a, b = as_pair
        assert w1.direct_segment(a, b).base == w2.direct_segment(a, b).base
        # Lazy creation order must not matter.
        w3 = build_world(cfg)
        w3.wan_segment(a, 3)  # touch something else first
        assert w3.direct_segment(a, b).base == w1.direct_segment(a, b).base


class TestOptions:
    def test_direct_is_first_option(self, world, as_pair):
        options = world.options_for_pair(*as_pair)
        assert options[0] is DIRECT

    def test_option_count_in_testbed_range(self, world, as_pair):
        options = world.options_for_pair(*as_pair)
        assert 5 <= len(options) <= 25

    def test_options_unique(self, world, as_pair):
        options = world.options_for_pair(*as_pair)
        assert len(set(options)) == len(options)

    def test_transit_options_use_distinct_relays(self, world, as_pair):
        for option in world.options_for_pair(*as_pair):
            if option.kind is OptionKind.TRANSIT:
                assert option.ingress != option.egress

    def test_reverse_pair_offers_mirrored_options(self, world, as_pair):
        a, b = as_pair
        fwd = {o if not o.is_relayed else o for o in world.options_for_pair(a, b)}
        rev = {o.reversed() for o in world.options_for_pair(b, a)}
        assert fwd == rev

    def test_options_cached(self, world, as_pair):
        assert world.options_for_pair(*as_pair) is world.options_for_pair(*as_pair)


class TestPathComposition:
    def test_direct_path_segments(self, world, as_pair):
        a, b = as_pair
        segs = world.path_segments(a, b, DIRECT)
        names = [s.name for s in segs]
        assert names[0] == f"access({a})"
        assert names[-1] == f"access({b})"
        assert any(name.startswith("direct(") for name in names)
        assert len(segs) == 3

    def test_bounce_path_segments(self, world, as_pair):
        a, b = as_pair
        segs = world.path_segments(a, b, RelayOption.bounce(0))
        assert len(segs) == 4  # access + wan(a) + wan(b) + access

    def test_transit_path_segments(self, world, as_pair):
        a, b = as_pair
        segs = world.path_segments(a, b, RelayOption.transit(0, 1))
        assert len(segs) == 5
        assert any(s.name.startswith("inter(") for s in segs)

    def test_true_mean_composes_segments(self, world, as_pair):
        a, b = as_pair
        option = RelayOption.bounce(0)
        expected = PathMetrics.compose(
            seg.mean_on_day(2) for seg in world.path_segments(a, b, option)
        )
        residual = world.path_residual(a, b, option)
        got = world.true_mean(a, b, option, 2)
        assert got.rtt_ms == pytest.approx(expected.rtt_ms * residual[0])

    def test_true_mean_direct_has_no_residual(self, world, as_pair):
        a, b = as_pair
        expected = PathMetrics.compose(
            seg.mean_on_day(1) for seg in world.path_segments(a, b, DIRECT)
        )
        assert world.true_mean(a, b, DIRECT, 1) == expected

    def test_true_mean_symmetric_in_pair(self, world, as_pair):
        a, b = as_pair
        opt = RelayOption.transit(0, 1)
        fwd = world.true_mean(a, b, opt, 3)
        rev = world.true_mean(b, a, opt.reversed(), 3)
        assert fwd.rtt_ms == pytest.approx(rev.rtt_ms)

    def test_sample_path_positive(self, world, as_pair, rng):
        for option in world.options_for_pair(*as_pair)[:5]:
            m = world.sample_path(*as_pair, option, 5.0, rng)
            assert m.rtt_ms > 0 and 0 <= m.loss_rate <= 1 and m.jitter_ms >= 0


class TestResiduals:
    def test_direct_residual_is_identity(self, world, as_pair):
        assert world.path_residual(*as_pair, DIRECT) == (1.0, 1.0, 1.0)

    def test_residual_symmetric_under_reversal(self, world, as_pair):
        a, b = as_pair
        opt = RelayOption.transit(0, 1)
        assert world.path_residual(a, b, opt) == world.path_residual(b, a, opt.reversed())

    def test_residual_cached_and_positive(self, world, as_pair):
        opt = RelayOption.bounce(2)
        r1 = world.path_residual(*as_pair, opt)
        r2 = world.path_residual(*as_pair, opt)
        assert r1 == r2
        assert all(f > 0 for f in r1)

    def test_residuals_differ_across_options(self, world, as_pair):
        r1 = world.path_residual(*as_pair, RelayOption.bounce(0))
        r2 = world.path_residual(*as_pair, RelayOption.bounce(1))
        assert r1 != r2


class TestClientEffects:
    def test_prefix_factor_cached(self, world):
        asn = world.topology.asns[0]
        assert world.prefix_factor(asn, 0) == world.prefix_factor(asn, 0)

    def test_prefix_factors_differ(self, world):
        asn = world.topology.asns[0]
        assert world.prefix_factor(asn, 0) != world.prefix_factor(asn, 1)

    def test_wireless_extra_non_negative(self, world, rng):
        asn = world.topology.asns[0]
        for _ in range(50):
            extra = world.sample_wireless_extra(asn, rng)
            assert extra.rtt_ms >= 0
            assert 0 <= extra.loss_rate <= 0.5
            assert extra.jitter_ms >= 0

    def test_sample_call_wireless_increases_mean_rtt(self, world, as_pair):
        a, b = as_pair
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        wired = np.mean([
            world.sample_call(a, b, DIRECT, 1.0, rng1).rtt_ms for _ in range(400)
        ])
        wireless = np.mean([
            world.sample_call(
                a, b, DIRECT, 1.0, rng2, src_wireless=True, dst_wireless=True
            ).rtt_ms
            for _ in range(400)
        ])
        assert wireless > wired

    def test_best_option_minimises_true_mean(self, world, as_pair):
        a, b = as_pair
        best = world.best_option(a, b, 2, "rtt_ms")
        options = world.options_for_pair(a, b)
        best_cost = world.true_mean(a, b, best, 2).rtt_ms
        assert all(world.true_mean(a, b, o, 2).rtt_ms >= best_cost - 1e-9 for o in options)


class TestMidLongitude:
    def test_simple_midpoint(self):
        assert _mid_longitude(0.0, 10.0) == pytest.approx(5.0)

    def test_wraps_around_dateline(self):
        mid = _mid_longitude(170.0, -170.0)
        assert mid == pytest.approx(180.0) or mid == pytest.approx(-180.0)

    def test_result_in_range(self):
        for lon1 in (-179.0, -90.0, 0.0, 90.0, 179.0):
            for lon2 in (-179.0, -90.0, 0.0, 90.0, 179.0):
                assert -180.0 <= _mid_longitude(lon1, lon2) <= 180.0
