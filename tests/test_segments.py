"""Unit tests for repro.netmodel.segments."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netmodel.dynamics import PUBLIC_WAN_REGIME, RegimeProcess
from repro.netmodel.metrics import PathMetrics, loss_to_linear
from repro.netmodel.segments import (
    NoiseConfig,
    SegmentModel,
    heavy_tailed_inflation,
    lognormal_unit_mean,
)


@pytest.fixture()
def segment(rng):
    return SegmentModel(
        name="test",
        base=PathMetrics(rtt_ms=50.0, loss_rate=0.005, jitter_ms=2.0),
        regime=RegimeProcess.sample(PUBLIC_WAN_REGIME, 10, rng),
        noise=NoiseConfig(),
    )


class TestNoiseConfig:
    def test_defaults(self):
        NoiseConfig()

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            NoiseConfig(rtt_sigma=-0.1)


class TestLognormalUnitMean:
    def test_sigma_zero_is_one(self, rng):
        assert lognormal_unit_mean(rng, 0.0) == 1.0

    def test_rejects_negative_sigma(self, rng):
        with pytest.raises(ValueError):
            lognormal_unit_mean(rng, -1.0)

    def test_mean_is_one(self):
        rng = np.random.default_rng(0)
        draws = [lognormal_unit_mean(rng, 0.5) for _ in range(20000)]
        assert np.mean(draws) == pytest.approx(1.0, abs=0.03)

    def test_all_positive(self):
        rng = np.random.default_rng(1)
        assert all(lognormal_unit_mean(rng, 1.0) > 0 for _ in range(100))


class TestHeavyTailedInflation:
    @given(st.floats(min_value=1.0, max_value=5.0), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50)
    def test_respects_floor(self, median, sigma):
        rng = np.random.default_rng(2)
        for _ in range(20):
            assert heavy_tailed_inflation(rng, median, sigma) >= 1.02

    def test_median_roughly_matches(self):
        rng = np.random.default_rng(3)
        draws = [heavy_tailed_inflation(rng, 2.0, 0.3) for _ in range(20000)]
        assert np.median(draws) == pytest.approx(2.0, rel=0.05)

    def test_rejects_median_below_one(self, rng):
        with pytest.raises(ValueError):
            heavy_tailed_inflation(rng, 0.9, 0.3)

    def test_zero_sigma_is_deterministic(self, rng):
        assert heavy_tailed_inflation(rng, 1.5, 0.0) == pytest.approx(1.5)


class TestSegmentModel:
    def test_mean_on_day_applies_regime_multipliers(self, segment):
        for day in range(10):
            mults = segment.regime.multipliers_on(day)
            mean = segment.mean_on_day(day)
            assert mean.rtt_ms == pytest.approx(segment.base.rtt_ms * mults[0])
            assert loss_to_linear(mean.loss_rate) == pytest.approx(
                loss_to_linear(segment.base.loss_rate) * mults[1]
            )
            assert mean.jitter_ms == pytest.approx(segment.base.jitter_ms * mults[2])

    def test_sample_positive_and_valid(self, segment, rng):
        for t in np.linspace(0.0, 239.0, 25):
            sample = segment.sample(float(t), rng)
            assert sample.rtt_ms > 0
            assert 0.0 <= sample.loss_rate <= 1.0
            assert sample.jitter_ms >= 0

    def test_sample_rtt_floor(self, segment, rng):
        samples = [segment.sample(0.0, rng).rtt_ms for _ in range(200)]
        assert min(samples) >= 0.8 * segment.base.rtt_ms

    def test_sample_mean_converges_to_day_mean(self, segment):
        rng = np.random.default_rng(8)
        day_mean = segment.mean_on_day(0)
        # Sample at a fixed hour and correct for the diurnal factor there.
        from repro.netmodel.dynamics import diurnal_factor

        t = 3.0
        load = diurnal_factor(t, amplitude=segment.diurnal_amplitude)
        samples = [segment.sample(t, rng).rtt_ms for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(day_mean.rtt_ms * load, rel=0.03)

    def test_zero_noise_sample_equals_mean_times_diurnal(self, rng):
        seg = SegmentModel(
            name="exact",
            base=PathMetrics(rtt_ms=100.0, loss_rate=0.01, jitter_ms=5.0),
            regime=RegimeProcess.sample(PUBLIC_WAN_REGIME, 5, rng),
            noise=NoiseConfig(rtt_sigma=0.0, loss_sigma=0.0, jitter_sigma=0.0),
            diurnal_amplitude=0.0,
        )
        sample = seg.sample(0.0, rng)
        mean = seg.mean_on_day(0)
        assert sample.rtt_ms == pytest.approx(mean.rtt_ms)
        assert sample.jitter_ms == pytest.approx(mean.jitter_ms)
        assert sample.loss_rate == pytest.approx(mean.loss_rate, rel=1e-9)

    def test_mean_over_days_averages(self, segment):
        window = segment.mean_over_days(0, 10)
        rtts = [segment.mean_on_day(d).rtt_ms for d in range(10)]
        assert window.rtt_ms == pytest.approx(np.mean(rtts))

    def test_mean_over_days_rejects_empty_range(self, segment):
        with pytest.raises(ValueError):
            segment.mean_over_days(5, 5)
