"""Unit tests for repro.telephony.codec."""

from __future__ import annotations

import pytest

from repro.telephony.codec import DEFAULT_CODEC, G711, G729, OPUS_WB, SILK_WB, CodecSpec


class TestCodecSpec:
    def test_packets_per_second(self):
        assert G711.packets_per_second == pytest.approx(50.0)

    def test_ie_monotone_in_loss(self):
        for codec in (G711, G729, SILK_WB, OPUS_WB):
            values = [codec.ie_at_loss(e) for e in (0.0, 0.01, 0.05, 0.2)]
            assert values == sorted(values), codec.name

    def test_ie_base_at_zero_loss(self):
        assert G729.ie_at_loss(0.0) == pytest.approx(11.0)
        assert SILK_WB.ie_at_loss(0.0) == pytest.approx(2.0)

    def test_ie_rejects_negative_loss(self):
        with pytest.raises(ValueError):
            G711.ie_at_loss(-0.01)

    def test_rejects_bad_bitrate(self):
        with pytest.raises(ValueError):
            CodecSpec(
                name="x", bitrate_kbps=0.0, frame_ms=20.0, codec_delay_ms=0.0,
                ie_base=0.0, ie_gamma2=1.0, ie_gamma3=1.0,
            )

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            CodecSpec(
                name="x", bitrate_kbps=8.0, frame_ms=20.0, codec_delay_ms=-1.0,
                ie_base=0.0, ie_gamma2=1.0, ie_gamma3=1.0,
            )

    def test_default_codec_is_silk(self):
        assert DEFAULT_CODEC is SILK_WB

    def test_catalog_names_unique(self):
        names = [c.name for c in (G711, G729, SILK_WB, OPUS_WB)]
        assert len(names) == len(set(names))

    def test_narrowband_codecs_more_fragile_than_wideband(self):
        # At moderate loss the low-bitrate G.729 should show higher Ie.
        assert G729.ie_at_loss(0.03) > SILK_WB.ie_at_loss(0.03)
