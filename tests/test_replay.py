"""Unit tests for repro.simulation.replay and experiment plumbing."""

from __future__ import annotations

import pytest

from repro.core.baselines import DefaultPolicy, OraclePolicy, make_via
from repro.core.hybrid import ProbePlan
from repro.netmodel import TopologyConfig, WorldConfig, build_world
from repro.netmodel.options import DIRECT
from repro.netmodel.world import RelayOutage
from repro.simulation import (
    ExperimentPlan,
    ReplayResult,
    dense_pairs,
    evaluation_slice,
    make_inter_relay_lookup,
    replay,
    run_policies,
    standard_policies,
)
from repro.telephony.quality import QualityModel
from repro.workload import WorkloadConfig, generate_trace


@pytest.fixture(scope="module")
def tiny_trace(small_trace):
    """First 800 calls of the shared trace (fast replay)."""
    from repro.workload.trace import TraceDataset

    return TraceDataset(calls=small_trace.calls[:800], n_days=small_trace.n_days)


class TestReplay:
    def test_outcome_per_call_in_order(self, small_world, tiny_trace):
        result = replay(small_world, tiny_trace, DefaultPolicy(), seed=1)
        assert len(result) == len(tiny_trace)
        assert [o.call for o in result.outcomes] == list(tiny_trace.calls)

    def test_default_policy_yields_direct_outcomes(self, small_world, tiny_trace):
        result = replay(small_world, tiny_trace, DefaultPolicy(), seed=1)
        assert all(o.option is DIRECT for o in result.outcomes)
        assert result.relayed_fraction == 0.0

    def test_deterministic_given_seed(self, small_world, tiny_trace):
        r1 = replay(small_world, tiny_trace, DefaultPolicy(), seed=7)
        r2 = replay(small_world, tiny_trace, DefaultPolicy(), seed=7)
        assert [o.metrics for o in r1.outcomes] == [o.metrics for o in r2.outcomes]

    def test_seed_changes_outcomes(self, small_world, tiny_trace):
        r1 = replay(small_world, tiny_trace, DefaultPolicy(), seed=1)
        r2 = replay(small_world, tiny_trace, DefaultPolicy(), seed=2)
        assert [o.metrics for o in r1.outcomes] != [o.metrics for o in r2.outcomes]

    def test_option_mix_sums_to_one(self, small_world, tiny_trace):
        policy = OraclePolicy(small_world, "rtt_ms")
        result = replay(small_world, tiny_trace, policy, seed=1)
        assert sum(result.option_mix().values()) == pytest.approx(1.0)

    def test_ratings_sampled_at_requested_fraction(self, small_world, tiny_trace):
        result = replay(
            small_world, tiny_trace, DefaultPolicy(), seed=1,
            quality=QualityModel(rating_fraction=0.5),
        )
        rated = sum(o.rating is not None for o in result.outcomes)
        assert rated == pytest.approx(0.5 * len(tiny_trace), rel=0.2)

    def test_policy_observes_every_call(self, small_world, tiny_trace):
        policy = make_via("rtt_ms", inter_relay=make_inter_relay_lookup(small_world))
        replay(small_world, tiny_trace, policy, seed=1)
        assert policy.history.total_calls() == len(tiny_trace)


class TestDensePairs:
    def test_threshold(self, small_trace):
        pairs = dense_pairs(small_trace, min_calls=50)
        counts = small_trace.pair_counts()
        assert all(counts[p] >= 50 for p in pairs)
        assert all(counts[p] < 50 for p in counts if p not in pairs)

    def test_rejects_bad_min(self, small_trace):
        with pytest.raises(ValueError):
            dense_pairs(small_trace, min_calls=0)


class TestEvaluationSlice:
    def test_warmup_trims_early_calls(self, small_world, tiny_trace):
        result = replay(small_world, tiny_trace, DefaultPolicy(), seed=1)
        kept = evaluation_slice(result.outcomes, warmup_days=2)
        assert all(o.call.t_hours >= 48.0 for o in kept)

    def test_pair_filter(self, small_world, tiny_trace):
        result = replay(small_world, tiny_trace, DefaultPolicy(), seed=1)
        pair = tiny_trace.calls[0].as_pair
        kept = evaluation_slice(result.outcomes, pairs={pair})
        assert kept and all(o.call.as_pair == pair for o in kept)


class TestExperimentPlan:
    def test_run_and_evaluate(self, small_world, tiny_trace):
        plan = ExperimentPlan(world=small_world, trace=tiny_trace,
                              warmup_days=1, min_pair_calls=10)
        results = plan.run({"default": DefaultPolicy()}, seed=3)
        outcomes = plan.evaluate(results["default"])
        assert outcomes
        assert all(o.call.t_hours >= 24.0 for o in outcomes)
        assert all(o.call.as_pair in plan.dense for o in outcomes)

    def test_dense_cached(self, small_world, tiny_trace):
        plan = ExperimentPlan(world=small_world, trace=tiny_trace, min_pair_calls=10)
        assert plan.dense is plan.dense

    def test_standard_policies_names(self, small_world):
        policies = standard_policies(small_world, "rtt_ms")
        assert set(policies) == {
            "default", "oracle", "via", "strawman-prediction", "strawman-exploration",
        }
        slim = standard_policies(small_world, "rtt_ms", include_strawmen=False)
        assert set(slim) == {"default", "oracle", "via"}

    def test_run_policies_keys_match(self, small_world, tiny_trace):
        results = run_policies(
            small_world, tiny_trace, {"default": DefaultPolicy()}, seed=0
        )
        assert set(results) == {"default"}
        assert results["default"].policy_name == "default"


class TestOutageDegradationValidation:
    """Regression: a typo'd metric used to surface as an opaque numpy
    TypeError (``np.mean`` over ``None``s); it must be a clear KeyError."""

    def test_unknown_metric_raises_keyerror_listing_valid_names(self):
        result = ReplayResult(policy_name="x")
        result.outage_flags.append(True)
        with pytest.raises(KeyError, match="rtt_ms.*loss_rate.*jitter_ms"):
            result.outage_degradation("rtt")  # typo for "rtt_ms"

    def test_unknown_metric_rejected_even_without_outages(self):
        with pytest.raises(KeyError):
            ReplayResult(policy_name="x").outage_degradation("latency")

    def test_valid_metric_without_outage_windows_returns_none(self):
        assert ReplayResult(policy_name="x").outage_degradation("rtt_ms") is None


class _ProbeEverything:
    """Stub hybrid policy: probes the first two relayed options of every
    call and always commits to the first (relayed) candidate."""

    name = "probe-stub"

    def assign(self, call, options):
        return DIRECT

    def observe(self, call, option, metrics):
        return None

    def plan_probe(self, call, options):
        relayed = [o for o in options if o.is_relayed]
        if len(relayed) < 2:
            return None
        return ProbePlan(candidates=tuple(relayed[:2]), primary=relayed[0])

    def commit_probe(self, call, plan, samples):
        return plan.candidates[0]

    def probe_weight(self, call):
        return 0.2


class TestProbedOutageAccounting:
    """Regression: the hybrid-probe path ``continue``d before the
    dead-assignment check, so probed calls committed to a down relay were
    never counted in ``n_dead_assignments``."""

    def test_probed_dead_assignments_counted(self):
        world = build_world(
            WorldConfig(
                topology=TopologyConfig(n_countries=5, n_relays=4, seed=31),
                n_days=2,
                seed=31,
            )
        )
        # Every relay is down for the whole trace, so every committed
        # relayed option is a dead assignment.
        for rid in world.topology.relay_ids:
            world.add_outage(
                RelayOutage(relay_id=rid, start_hours=0.0, end_hours=48.0)
            )
        trace = generate_trace(
            world.topology,
            WorkloadConfig(n_calls=200, n_pairs=20, seed=31),
            n_days=2,
        )
        result = replay(world, trace, _ProbeEverything(), seed=1)
        probed_relayed = sum(o.option.is_relayed for o in result.outcomes)
        assert probed_relayed > 0
        assert result.n_dead_assignments == probed_relayed
