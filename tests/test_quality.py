"""Unit tests for repro.telephony.quality (E-model MOS, PCR, ratings)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netmodel.metrics import PathMetrics
from repro.telephony.codec import G711, G729, SILK_WB
from repro.telephony.quality import (
    QualityModel,
    mos_from_network,
    mos_from_r_factor,
    poor_call_probability,
    r_factor,
    sample_rating,
)

GOOD = PathMetrics(rtt_ms=50.0, loss_rate=0.001, jitter_ms=2.0)
BAD = PathMetrics(rtt_ms=800.0, loss_rate=0.15, jitter_ms=60.0)


class TestRFactor:
    def test_perfect_network_near_max(self):
        r = r_factor(0.0, 0.0, 0.0)
        assert 90.0 < r <= 94.2

    def test_monotone_decreasing_in_rtt(self):
        values = [r_factor(rtt, 0.01, 5.0) for rtt in (50, 150, 320, 600)]
        assert values == sorted(values, reverse=True)

    def test_monotone_decreasing_in_loss(self):
        values = [r_factor(100.0, loss, 5.0) for loss in (0.0, 0.005, 0.02, 0.1)]
        assert values == sorted(values, reverse=True)

    def test_monotone_decreasing_in_jitter(self):
        values = [r_factor(100.0, 0.01, j) for j in (1.0, 8.0, 20.0, 50.0)]
        assert values == sorted(values, reverse=True)

    def test_delay_knee_penalises_long_paths_harder(self):
        # Beyond the 177.3 ms one-way knee the Id slope steepens.
        short = r_factor(100.0, 0.0, 0.0) - r_factor(140.0, 0.0, 0.0)
        long = r_factor(500.0, 0.0, 0.0) - r_factor(540.0, 0.0, 0.0)
        assert long > short

    def test_codec_loss_robustness_ordering(self):
        # At 5% loss, G.729 (fragile) should be worse than SILK.
        assert r_factor(100.0, 0.05, 5.0, G729) < r_factor(100.0, 0.05, 5.0, SILK_WB)

    def test_rejects_invalid_metrics(self):
        with pytest.raises(ValueError):
            r_factor(-1.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            r_factor(0.0, 1.5, 0.0)
        with pytest.raises(ValueError):
            r_factor(0.0, 0.0, -1.0)


class TestMos:
    def test_bounds(self):
        assert mos_from_r_factor(-50.0) == 1.0
        assert mos_from_r_factor(150.0) == 4.5
        for r in np.linspace(0, 100, 21):
            assert 1.0 <= mos_from_r_factor(float(r)) <= 4.5

    def test_known_point_r70(self):
        # R=70 is the classic "toll quality" boundary, MOS ~3.6.
        assert mos_from_r_factor(70.0) == pytest.approx(3.6, abs=0.1)

    def test_monotone_in_r(self):
        rs = np.linspace(0, 100, 50)
        mos = [mos_from_r_factor(float(r)) for r in rs]
        assert all(b >= a - 1e-12 for a, b in zip(mos, mos[1:]))

    def test_good_network_high_mos(self):
        assert mos_from_network(GOOD) > 3.8

    def test_bad_network_low_mos(self):
        assert mos_from_network(BAD) < 2.0

    @given(
        st.floats(min_value=0, max_value=2000),
        st.floats(min_value=0, max_value=0.5),
        st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=100)
    def test_mos_always_in_range(self, rtt, loss, jitter):
        mos = mos_from_network(PathMetrics(rtt_ms=rtt, loss_rate=loss, jitter_ms=jitter))
        assert 1.0 <= mos <= 4.5


class TestPoorCallProbability:
    def test_in_unit_interval(self):
        for m in (GOOD, BAD):
            assert 0.0 <= poor_call_probability(m) <= 1.0

    def test_baseline_floor_on_perfect_network(self):
        p = poor_call_probability(PathMetrics(rtt_ms=10.0, loss_rate=0.0, jitter_ms=0.5))
        assert 0.01 <= p <= 0.10

    def test_bad_network_is_usually_poor(self):
        assert poor_call_probability(BAD) > 0.8

    def test_monotone_in_each_metric(self):
        base = dict(rtt_ms=100.0, loss_rate=0.005, jitter_ms=5.0)
        for field, values in (
            ("rtt_ms", (50.0, 200.0, 400.0, 800.0)),
            ("loss_rate", (0.001, 0.01, 0.05, 0.2)),
            ("jitter_ms", (2.0, 10.0, 25.0, 60.0)),
        ):
            probs = [
                poor_call_probability(PathMetrics(**{**base, field: v})) for v in values
            ]
            assert probs == sorted(probs), field


class TestSampleRating:
    def test_in_range(self, rng):
        for _ in range(100):
            assert 1 <= sample_rating(GOOD, rng) <= 5

    def test_good_network_rarely_poor(self):
        rng = np.random.default_rng(0)
        ratings = [sample_rating(GOOD, rng) for _ in range(2000)]
        assert np.mean(np.asarray(ratings) <= 2) < 0.15

    def test_bad_network_mostly_poor(self):
        rng = np.random.default_rng(0)
        ratings = [sample_rating(BAD, rng) for _ in range(2000)]
        assert np.mean(np.asarray(ratings) <= 2) > 0.7


class TestQualityModel:
    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            QualityModel(rating_fraction=1.5)

    def test_maybe_rate_fraction(self):
        model = QualityModel(rating_fraction=0.25)
        rng = np.random.default_rng(1)
        rated = sum(model.maybe_rate(GOOD, rng) is not None for _ in range(4000))
        assert rated == pytest.approx(1000, rel=0.15)

    def test_zero_fraction_never_rates(self, rng):
        model = QualityModel(rating_fraction=0.0)
        assert all(model.maybe_rate(GOOD, rng) is None for _ in range(50))

    def test_mos_shortcut_matches_function(self):
        model = QualityModel()
        assert model.mos(GOOD) == mos_from_network(GOOD, model.codec)

    def test_g711_reference_values(self):
        # Cole-Rosenbluth G.711: Ie = 30 ln(1 + 15 e).
        assert G711.ie_at_loss(0.0) == 0.0
        assert G711.ie_at_loss(0.02) == pytest.approx(30 * np.log1p(0.3), rel=1e-9)
