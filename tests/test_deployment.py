"""Integration tests for the asyncio controller, client and testbed (§5.5)."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.policy import ViaConfig
from repro.deployment import ViaController, run_testbed
from repro.deployment import TestbedClient as AgentClient
from repro.deployment import TestbedConfig as DeploymentConfig
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import RelayOption


def run(coro):
    return asyncio.run(coro)


OPTIONS = [RelayOption.bounce(0), RelayOption.bounce(1), RelayOption.transit(0, 1)]


class TestControllerClient:
    def test_request_returns_offered_option(self):
        async def scenario():
            async with ViaController(ViaConfig(seed=1)) as controller:
                async with AgentClient(0, "US", "127.0.0.1", controller.port) as client:
                    choice = await client.request_assignment(1, OPTIONS, t_hours=0.5)
                    assert choice in OPTIONS
                    assert controller.n_requests == 1

        run(scenario())

    def test_measurements_reach_policy_history(self):
        async def scenario():
            async with ViaController(ViaConfig(seed=1)) as controller:
                async with AgentClient(0, "US", "127.0.0.1", controller.port) as client:
                    metrics = PathMetrics(rtt_ms=120.0, loss_rate=0.01, jitter_ms=4.0)
                    for i in range(5):
                        await client.report_measurement(1, OPTIONS[0], metrics, 0.1 * (i + 1))
                    # Measurements are fire-and-forget; a request round-trip
                    # fences them before we inspect controller state.
                    await client.request_assignment(1, OPTIONS, t_hours=0.9)
                assert controller.n_measurements == 5
                stat = controller.policy.history.stats((0, 1), OPTIONS[0], 0)
                assert stat is not None and stat.count == 5

        run(scenario())

    def test_hello_registers_site(self):
        async def scenario():
            async with ViaController() as controller:
                async with AgentClient(7, "LK", "127.0.0.1", controller.port) as _client:
                    await _client.request_assignment(1, OPTIONS, t_hours=0.1)
                    # Live while connected...
                    assert controller.client_sites[7] == "LK"
                # ...and the label stays sticky for call records after bye.
                assert controller.site_labels[7] == "LK"

        run(scenario())

    def test_controller_learns_to_avoid_bad_relay(self):
        async def scenario():
            config = ViaConfig(seed=2, epsilon=0.0, min_direct_samples=2,
                               use_tomography=False)
            async with ViaController(config) as controller:
                async with AgentClient(0, "US", "127.0.0.1", controller.port) as client:
                    good = PathMetrics(rtt_ms=60.0, loss_rate=0.001, jitter_ms=2.0)
                    bad = PathMetrics(rtt_ms=500.0, loss_rate=0.05, jitter_ms=20.0)
                    # Day 0: measurements establish the ranking.
                    for i in range(6):
                        await client.report_measurement(1, OPTIONS[0], good, 0.1 * i)
                        await client.report_measurement(1, OPTIONS[1], bad, 0.1 * i)
                    # Day 1: selections should strongly favour the good relay.
                    picks = []
                    for i in range(12):
                        choice = await client.request_assignment(
                            1, OPTIONS[:2], t_hours=24.1 + 0.01 * i
                        )
                        picks.append(choice)
                        outcome = good if choice == OPTIONS[0] else bad
                        await client.report_measurement(1, choice, outcome, 24.1 + 0.01 * i)
                    assert picks.count(OPTIONS[0]) > picks.count(OPTIONS[1])

        run(scenario())

    def test_malformed_line_does_not_kill_connection(self):
        async def scenario():
            async with ViaController() as controller:
                reader, writer = await asyncio.open_connection("127.0.0.1", controller.port)
                writer.write(b"garbage that is not json\n")
                await writer.drain()
                # The connection should survive; a valid request still works.
                client = AgentClient(1, "US", "127.0.0.1", controller.port)
                await client.connect()
                choice = await client.request_assignment(2, OPTIONS, t_hours=0.2)
                assert choice in OPTIONS
                await client.close()
                writer.close()
                await writer.wait_closed()

        run(scenario())

    def test_concurrent_clients(self):
        async def scenario():
            async with ViaController() as controller:
                clients = [
                    AgentClient(i, "US", "127.0.0.1", controller.port) for i in range(6)
                ]
                await asyncio.gather(*(c.connect() for c in clients))

                async def one(client: AgentClient):
                    return await client.request_assignment(99, OPTIONS, t_hours=0.3)

                choices = await asyncio.gather(*(one(c) for c in clients))
                assert all(c in OPTIONS for c in choices)
                assert controller.n_requests == 6
                await asyncio.gather(*(c.close() for c in clients))

        run(scenario())

    def test_port_property_requires_start(self):
        controller = ViaController()
        with pytest.raises(RuntimeError):
            _ = controller.port

    def test_client_requires_connection(self):
        # Sending while unconnected is a transport error (so resilient
        # callers route it into their retry/fallback machinery).
        client = AgentClient(0, "US", "127.0.0.1", 1)
        with pytest.raises(ConnectionError):
            run(client.report_measurement(1, OPTIONS[0], PathMetrics(1.0, 0.0, 0.0), 0.0))


class TestTestbed:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DeploymentConfig(n_clients=1)
        with pytest.raises(ValueError):
            DeploymentConfig(via_rounds=0)
        with pytest.raises(ValueError):
            DeploymentConfig(sites=())

    def test_small_run_produces_report(self):
        config = DeploymentConfig(
            n_clients=6, n_pairs=4, measurement_rounds=2, via_rounds=5, seed=5
        )
        report = run_testbed(config)
        assert report.n_pairs == 4
        assert report.n_calls == 4 * 5
        assert report.n_measurements >= report.n_calls  # phase 1 + phase 2 reports
        assert len(report.suboptimalities) == report.n_calls
        assert all(s >= -1e-9 for s in report.suboptimalities)
        assert 0.0 <= report.frac_exact_best <= 1.0
        assert report.frac_within(10.0) == 1.0 or report.frac_within(10.0) > 0.9

    def test_cdf_shape(self):
        config = DeploymentConfig(
            n_clients=6, n_pairs=3, measurement_rounds=2, via_rounds=4, seed=6
        )
        report = run_testbed(config)
        cdf = report.cdf(points=5)
        assert cdf
        xs = [x for x, _ in cdf]
        ys = [y for _, y in cdf]
        assert xs == sorted(xs)
        assert ys == sorted(ys)

    def test_deterministic_given_seed(self):
        config = DeploymentConfig(
            n_clients=6, n_pairs=3, measurement_rounds=2, via_rounds=4, seed=7
        )
        r1 = run_testbed(config)
        r2 = run_testbed(config)
        assert r1.suboptimalities == pytest.approx(r2.suboptimalities)


class TestMetricsReplyTruncation:
    """The exposition must fit the protocol's 64 KB line limit, and must be
    cut at an exact metric-line boundary when it doesn't."""

    def _bloated_controller(self, n_series: int) -> ViaController:
        controller = ViaController(ViaConfig(seed=1))
        big = controller.registry.counter(
            "via_test_bloat_total", "Filler series to overflow the wire limit.",
            ("key",),
        )
        for i in range(n_series):
            big.labels(key=f"series-{i:06d}-{'x' * 80}").inc()
        return controller

    def test_small_exposition_is_untruncated(self):
        controller = ViaController(ViaConfig(seed=1))
        reply = controller._metrics_reply()
        assert reply.text == controller.metrics_text()
        assert "TRUNCATED" not in reply.text

    def test_huge_exposition_truncates_and_fits_the_wire(self):
        from repro.deployment.protocol import (
            MAX_LINE_BYTES,
            decode_message,
            encode_message,
        )

        controller = self._bloated_controller(900)
        assert len(controller.metrics_text().encode()) > MAX_LINE_BYTES
        reply = controller._metrics_reply()
        wire = encode_message(reply)  # would raise ProtocolError if too big
        assert len(wire) <= MAX_LINE_BYTES
        decoded = decode_message(wire)
        assert decoded.text == reply.text
        assert reply.text.splitlines()[-1].startswith("# TRUNCATED")

    def test_truncation_cuts_at_a_line_boundary(self):
        controller = self._bloated_controller(900)
        full_lines = controller.metrics_text().splitlines()
        kept = controller._metrics_reply().text.splitlines()
        assert kept[-1].startswith("# TRUNCATED")
        body = kept[:-1]
        # Every kept line is a whole line of the original exposition, in
        # order from the top -- nothing was cut mid-line.
        assert body == full_lines[: len(body)]
        assert len(body) < len(full_lines)

    def test_truncation_boundary_is_exact(self):
        """Adding one more line would overflow the budget; the kept set is
        the longest prefix that fits."""
        from repro.deployment.protocol import MAX_LINE_BYTES

        budget = MAX_LINE_BYTES - 4096
        controller = self._bloated_controller(900)
        full_lines = controller.metrics_text().splitlines()
        body = controller._metrics_reply().text.splitlines()[:-1]

        def cost(lines):
            return sum(len(line.encode()) + 1 for line in lines)

        assert 2 * cost(body + [full_lines[len(body)]]) > budget

    def test_scrape_over_the_wire_despite_bloat(self):
        async def scenario():
            controller = self._bloated_controller(900)
            async with controller:
                async with AgentClient(0, "US", "127.0.0.1", controller.port) as client:
                    text = await client.fetch_metrics()
            assert "# TRUNCATED" in text
            assert "via_controller_messages_total" in text

        run(scenario())


class TestTestbedWithStore:
    def test_testbed_reports_wal_records(self, tmp_path):
        config = DeploymentConfig(
            n_clients=6, n_pairs=3, measurement_rounds=2, via_rounds=4, seed=5,
            store_dir=str(tmp_path / "store"),
        )
        report = run_testbed(config)
        # Every hello, measurement, and assignment request was logged.
        assert report.n_wal_records >= report.n_measurements + report.n_calls
        assert (tmp_path / "store" / "snapshot.json").exists()

    def test_testbed_without_store_reports_zero(self):
        config = DeploymentConfig(
            n_clients=6, n_pairs=3, measurement_rounds=2, via_rounds=4, seed=5
        )
        assert run_testbed(config).n_wal_records == 0
