"""Tests for NAT-blocked calls (§2.1 connectivity relaying)."""

from __future__ import annotations

import pytest

from repro.core.baselines import DefaultPolicy, OraclePolicy, make_via
from repro.netmodel.options import DIRECT, RelayOption
from repro.simulation import make_inter_relay_lookup
from repro.simulation.replay import replay
from repro.telephony.call import Call
from repro.workload import WorkloadConfig, generate_trace
from repro.workload.trace import TraceDataset


def blocked_call(call_id=0, t_hours=1.0) -> Call:
    return Call(
        call_id=call_id, t_hours=t_hours, src_asn=1001, dst_asn=1002,
        src_country="US", dst_country="IN", src_user=0, dst_user=1,
        direct_blocked=True,
    )


class TestCallFlag:
    def test_default_unblocked(self):
        call = blocked_call()
        assert call.direct_blocked
        unblocked = Call(call_id=1, t_hours=1.0, src_asn=1, dst_asn=2,
                         src_country="A", dst_country="B", src_user=0, dst_user=1)
        assert not unblocked.direct_blocked

    def test_serialisation_roundtrip(self):
        call = blocked_call()
        assert Call.from_dict(call.to_dict()).direct_blocked


class TestWorkloadGeneration:
    def test_fraction_controls_population(self, small_world):
        trace = generate_trace(
            small_world.topology,
            WorkloadConfig(n_calls=5_000, n_pairs=80, frac_direct_blocked=0.2, seed=41),
            n_days=5,
        )
        share = sum(c.direct_blocked for c in trace) / len(trace)
        assert share == pytest.approx(0.2, abs=0.03)

    def test_default_is_zero(self, small_trace):
        assert not any(c.direct_blocked for c in small_trace)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            WorkloadConfig(frac_direct_blocked=1.5)


class TestDefaultPolicyFallback:
    def test_blocked_call_gets_relay(self):
        policy = DefaultPolicy()
        options = [DIRECT, RelayOption.bounce(0), RelayOption.bounce(1)]
        assert policy.assign(blocked_call(), options) == RelayOption.bounce(0)

    def test_relay_only_option_list(self):
        policy = DefaultPolicy()
        options = [RelayOption.bounce(3)]
        assert policy.assign(blocked_call(), options) == RelayOption.bounce(3)


class TestReplayIntegration:
    @pytest.fixture()
    def blocked_trace(self, small_world):
        return generate_trace(
            small_world.topology,
            WorkloadConfig(n_calls=2_000, n_pairs=60, frac_direct_blocked=0.3, seed=43),
            n_days=5,
        )

    def test_blocked_calls_never_routed_direct(self, small_world, blocked_trace):
        for policy in (
            DefaultPolicy(),
            OraclePolicy(small_world, "rtt_ms"),
            make_via("rtt_ms", inter_relay=make_inter_relay_lookup(small_world)),
        ):
            result = replay(small_world, blocked_trace, policy, seed=44)
            for outcome in result.outcomes:
                if outcome.call.direct_blocked:
                    assert outcome.option.is_relayed, policy.name

    def test_unblocked_calls_still_use_direct_under_default(
        self, small_world, blocked_trace
    ):
        result = replay(small_world, blocked_trace, DefaultPolicy(), seed=44)
        unblocked = [o for o in result.outcomes if not o.call.direct_blocked]
        assert unblocked
        assert all(o.option is DIRECT for o in unblocked)
