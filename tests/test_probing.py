"""Unit tests for repro.core.probing (§7 active-measurement extension)."""

from __future__ import annotations

import pytest

from repro.core.policy import ViaConfig, ViaPolicy
from repro.core.probing import ActiveProber
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption
from repro.simulation import make_inter_relay_lookup
from repro.simulation.replay import replay
from repro.telephony.call import Call

OPTIONS = [DIRECT, RelayOption.bounce(0), RelayOption.bounce(1), RelayOption.transit(0, 1)]


def make_call(call_id=0, t_hours=1.0, src_asn=1001, dst_asn=1002) -> Call:
    return Call(
        call_id=call_id, t_hours=t_hours, src_asn=src_asn, dst_asn=dst_asn,
        src_country="US", dst_country="IN", src_user=0, dst_user=1,
    )


def metrics(rtt: float) -> PathMetrics:
    return PathMetrics(rtt_ms=rtt, loss_rate=0.01, jitter_ms=5.0)


class TestConstruction:
    def test_requires_as_granularity(self):
        policy = ViaPolicy(ViaConfig(granularity="country"))
        with pytest.raises(ValueError, match="AS granularity"):
            ActiveProber(policy)

    def test_rejects_bad_fraction(self):
        policy = ViaPolicy(ViaConfig())
        with pytest.raises(ValueError):
            ActiveProber(policy, probe_fraction=1.5)

    def test_rejects_bad_queue_limits(self):
        policy = ViaPolicy(ViaConfig())
        with pytest.raises(ValueError):
            ActiveProber(policy, probes_per_hole=0)


class TestProbeScheduling:
    def test_zero_fraction_never_probes(self):
        policy = ViaPolicy(ViaConfig(seed=1))
        prober = ActiveProber(policy, probe_fraction=0.0)
        for i in range(30):
            call = make_call(call_id=i, t_hours=0.5 + 0.01 * i)
            policy.assign(call, OPTIONS)
            assert prober.probes_after(call) == []

    def test_probes_target_coverage_holes(self):
        policy = ViaPolicy(ViaConfig(seed=2, epsilon=0.0))
        prober = ActiveProber(policy, probe_fraction=1.0, probes_per_hole=1)
        # Day 0: only direct observed, so day 1 has relay holes.
        for i in range(10):
            call = make_call(call_id=i, t_hours=0.5 + 0.01 * i)
            policy.assign(call, OPTIONS)
            policy.observe(call, DIRECT, metrics(100.0))
        call = make_call(call_id=99, t_hours=24.5)
        policy.assign(call, OPTIONS)
        requests = prober.probes_after(call)
        assert requests, "expected probes into unpredicted options"
        for src, dst, option in requests:
            assert (src, dst) == (1001, 1002)
            assert option.is_relayed  # direct had history; relays were holes

    def test_budget_paces_probes(self):
        policy = ViaPolicy(ViaConfig(seed=3, epsilon=0.0))
        prober = ActiveProber(policy, probe_fraction=0.25, probes_per_hole=4)
        for i in range(10):
            call = make_call(call_id=i, t_hours=0.5 + 0.01 * i)
            policy.assign(call, OPTIONS)
            policy.observe(call, DIRECT, metrics(100.0))
        issued = 0
        for i in range(40):
            call = make_call(call_id=100 + i, t_hours=24.5 + 0.01 * i)
            policy.assign(call, OPTIONS)
            issued += len(prober.probes_after(call))
        # 40 calls at 0.25 probes/call -> about 10 probes, never more.
        assert 1 <= issued <= 10

    def test_make_probe_call_carries_endpoints(self):
        policy = ViaPolicy(ViaConfig())
        prober = ActiveProber(policy)
        mock = prober.make_probe_call((7, 9, OPTIONS[1]), t_hours=3.0, call_id=-5)
        assert (mock.src_asn, mock.dst_asn) == (7, 9)
        assert mock.call_id == -5


class TestReplayIntegration:
    def test_probing_feeds_history_and_counts(self, small_world, small_trace):
        from repro.workload.trace import TraceDataset

        trace = TraceDataset(calls=small_trace.calls[:1500], n_days=small_trace.n_days)
        policy = ViaPolicy(
            ViaConfig(seed=4), inter_relay=make_inter_relay_lookup(small_world)
        )
        prober = ActiveProber(policy, probe_fraction=0.2)
        observed = []
        original_observe = policy.observe
        policy.observe = lambda call, option, metrics: (  # type: ignore[method-assign]
            observed.append(call.call_id),
            original_observe(call, option, metrics),
        )
        result = replay(small_world, trace, policy, seed=5, prober=prober)
        assert result.n_probes > 0
        assert result.n_probes == prober.n_probes_issued
        # Probes add measurements beyond the real calls (probe ids < 0).
        assert len(observed) == len(trace) + result.n_probes
        assert sum(1 for cid in observed if cid < 0) == result.n_probes

    def test_no_prober_counts_zero(self, small_world, small_trace):
        from repro.workload.trace import TraceDataset

        trace = TraceDataset(calls=small_trace.calls[:200], n_days=small_trace.n_days)
        policy = ViaPolicy(ViaConfig(seed=6))
        result = replay(small_world, trace, policy, seed=7)
        assert result.n_probes == 0
