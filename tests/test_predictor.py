"""Unit tests for repro.core.predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.history import CallHistory
from repro.core.predictor import Prediction, Predictor, metric_index
from repro.core.tomography import TomographyModel
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption


def metrics(rtt: float) -> PathMetrics:
    return PathMetrics(rtt_ms=rtt, loss_rate=0.01, jitter_ms=5.0)


PAIR = ("A", "B")


def history_with(option, rtts, window=0) -> CallHistory:
    history = CallHistory()
    for i, rtt in enumerate(rtts):
        history.add(PAIR, option, window * 24.0 + 0.1 * i, metrics(rtt))
    return history


class TestMetricIndex:
    def test_indices(self):
        assert metric_index("rtt_ms") == 0
        assert metric_index("loss_rate") == 1
        assert metric_index("jitter_ms") == 2

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            metric_index("mos")


class TestPrediction:
    def test_bounds_bracket_mean(self):
        p = Prediction(mean=np.array([100.0, 0.01, 5.0]), sem=np.array([10.0, 0.001, 0.5]),
                       n=10, source="history")
        assert p.lower(0) == pytest.approx(100.0 - 19.6)
        assert p.upper(0) == pytest.approx(100.0 + 19.6)
        assert p.lower(0) < p.value(0) < p.upper(0)


class TestPredictor:
    def test_direct_history_preferred(self):
        history = history_with(DIRECT, [100.0, 110.0, 90.0, 105.0])
        predictor = Predictor(history, 0, min_direct_samples=3)
        prediction = predictor.predict(PAIR, DIRECT)
        assert prediction is not None
        assert prediction.source == "history"
        assert prediction.value(0) == pytest.approx(101.25)
        assert prediction.n == 4

    def test_thin_history_widens_uncertainty(self):
        history = history_with(DIRECT, [100.0])
        predictor = Predictor(history, 0, min_direct_samples=3)
        prediction = predictor.predict(PAIR, DIRECT)
        assert prediction is not None
        assert prediction.source == "history-thin"
        assert prediction.sem[0] >= 0.5 * 100.0

    def test_no_data_returns_none(self):
        predictor = Predictor(CallHistory(), 0)
        assert predictor.predict(PAIR, DIRECT) is None

    def test_wrong_window_returns_none(self):
        history = history_with(DIRECT, [100.0] * 5, window=0)
        predictor = Predictor(history, 1)
        assert predictor.predict(PAIR, DIRECT) is None

    def test_sem_floor_applied(self):
        # Identical samples give zero SEM; the floor keeps CIs open.
        history = history_with(DIRECT, [100.0] * 10)
        predictor = Predictor(history, 0, sem_rel_floor=0.05)
        prediction = predictor.predict(PAIR, DIRECT)
        assert prediction is not None
        assert prediction.sem[0] >= 5.0

    def test_tomography_fallback_for_unseen_relay(self):
        bounce = RelayOption.bounce(0)
        obs_history = CallHistory()
        # Other pairs provide the segments; PAIR itself never used bounce(0).
        for i in range(10):
            obs_history.add(("A", "A"), bounce, 0.1 * i, metrics(60.0))
            obs_history.add(("B", "B"), bounce, 0.1 * i, metrics(100.0))
        inter = lambda r1, r2: PathMetrics(0.0, 0.0, 0.0)  # noqa: E731
        tomo = TomographyModel.fit(
            (((k[0][0], k[0][1]), k[1], s) for k, s in obs_history.window_items(0)),
            inter,
        )
        predictor = Predictor(obs_history, 0, tomography=tomo)
        prediction = predictor.predict(PAIR, bounce)
        assert prediction is not None
        assert prediction.source == "tomography"
        assert prediction.value(0) == pytest.approx(80.0, rel=0.05)

    def test_direct_history_beats_tomography_when_dense(self):
        bounce = RelayOption.bounce(0)
        history = history_with(bounce, [70.0] * 10)
        for i in range(10):
            history.add(("A", "A"), bounce, 0.1 * i, metrics(60.0))
            history.add(("B", "B"), bounce, 0.1 * i, metrics(100.0))
        inter = lambda r1, r2: PathMetrics(0.0, 0.0, 0.0)  # noqa: E731
        tomo = TomographyModel.fit(
            (((k[0][0], k[0][1]), k[1], s) for k, s in history.window_items(0)), inter
        )
        predictor = Predictor(history, 0, tomography=tomo)
        prediction = predictor.predict(PAIR, bounce)
        assert prediction is not None
        assert prediction.source == "history"
        assert prediction.value(0) == pytest.approx(70.0, rel=0.05)

    def test_cache_returns_same_object(self):
        history = history_with(DIRECT, [100.0] * 5)
        predictor = Predictor(history, 0)
        assert predictor.predict(PAIR, DIRECT) is predictor.predict(PAIR, DIRECT)

    def test_predict_all_filters_none(self):
        history = history_with(DIRECT, [100.0] * 5)
        predictor = Predictor(history, 0)
        result = predictor.predict_all(PAIR, [DIRECT, RelayOption.bounce(0)])
        assert set(result) == {DIRECT}

    def test_rejects_bad_min_samples(self):
        with pytest.raises(ValueError):
            Predictor(CallHistory(), 0, min_direct_samples=0)
