"""Unit tests for the durable storage plane: WAL, compaction, facade, CLI."""

from __future__ import annotations

import json
import struct
import zlib

import pytest

from repro.cli import main
from repro.core.history import CallHistory, history_to_dict, option_to_dict
from repro.core.keys import PairKeyer
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import RelayOption
from repro.obs.metrics import MetricsRegistry
from repro.store import (
    COMPACTED_FORMAT,
    MAX_RECORD_BYTES,
    SEGMENT_MAGIC,
    Compactor,
    Store,
    StoreConfig,
    WriteAheadLog,
    atomic_write_bytes,
    encode_frame,
    read_segment,
    read_wal,
)
from repro.telephony.call import Call

pytestmark = pytest.mark.store

HEADER = struct.Struct("<II")


def measurement_record(i: int, *, src: int = 1, dst: int = 2) -> dict:
    return {
        "kind": "measurement",
        "src_id": src,
        "dst_id": dst,
        "t_hours": 0.1 + i * 0.01,
        "option": option_to_dict(RelayOption.bounce(3)),
        "rtt_ms": 100.0 + i,
        "loss_rate": 0.01,
        "jitter_ms": 5.0,
        "src_site": "US",
        "dst_site": "GB",
    }


class FakeSource:
    """A SnapshotSource whose state is one counter."""

    def __init__(self, n: int = 0) -> None:
        self.n = n

    def snapshot_dict(self) -> dict:
        return {"n": self.n}


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


class TestFraming:
    def test_frame_roundtrip(self, tmp_path):
        path = tmp_path / "wal-00000001.seg"
        records = [dict(measurement_record(i), seq=i + 1) for i in range(5)]
        path.write_bytes(SEGMENT_MAGIC + b"".join(encode_frame(r) for r in records))
        result = read_segment(path)
        assert result.records == records
        assert result.n_corrupt == 0
        assert not result.torn

    def test_frame_header_is_length_then_crc(self):
        record = {"kind": "hello", "seq": 1}
        frame = encode_frame(record)
        length, crc = HEADER.unpack_from(frame)
        payload = frame[HEADER.size :]
        assert length == len(payload)
        assert crc == zlib.crc32(payload)
        assert json.loads(payload) == record

    def test_oversized_record_rejected(self):
        with pytest.raises(ValueError):
            encode_frame({"kind": "blob", "seq": 1, "x": "a" * (MAX_RECORD_BYTES + 1)})

    def test_missing_magic_is_one_corruption(self, tmp_path):
        path = tmp_path / "wal-00000001.seg"
        path.write_bytes(b"not a segment at all")
        result = read_segment(path)
        assert result.records == []
        assert result.n_corrupt == 1

    def test_empty_file_is_clean(self, tmp_path):
        path = tmp_path / "wal-00000001.seg"
        path.write_bytes(b"")
        result = read_segment(path)
        assert result.records == [] and result.n_corrupt == 0 and not result.torn


class TestDamageTolerance:
    def _write_segment(self, path, records):
        path.write_bytes(SEGMENT_MAGIC + b"".join(encode_frame(r) for r in records))

    def test_torn_final_frame_dropped(self, tmp_path):
        path = tmp_path / "wal-00000001.seg"
        records = [dict(measurement_record(i), seq=i + 1) for i in range(4)]
        self._write_segment(path, records)
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # crash mid-append: final frame incomplete
        result = read_segment(path)
        assert result.torn
        assert [r["seq"] for r in result.records] == [1, 2, 3]
        assert result.n_corrupt == 0

    def test_torn_header_only_tail(self, tmp_path):
        path = tmp_path / "wal-00000001.seg"
        self._write_segment(path, [{"kind": "hello", "seq": 1}])
        with open(path, "ab") as fh:
            fh.write(b"\x05")  # 1 byte of a next header
        result = read_segment(path)
        assert result.torn and [r["seq"] for r in result.records] == [1]

    def test_mid_segment_crc_mismatch_skipped(self, tmp_path):
        path = tmp_path / "wal-00000001.seg"
        records = [dict(measurement_record(i), seq=i + 1) for i in range(3)]
        self._write_segment(path, records)
        data = bytearray(path.read_bytes())
        # Flip a payload byte of the *middle* frame without touching framing.
        offset = len(SEGMENT_MAGIC) + len(encode_frame(records[0])) + HEADER.size + 4
        data[offset] ^= 0xFF
        path.write_bytes(bytes(data))
        result = read_segment(path)
        assert result.n_corrupt == 1
        assert [r["seq"] for r in result.records] == [1, 3]
        assert not result.torn

    def test_implausible_length_abandons_segment(self, tmp_path):
        path = tmp_path / "wal-00000001.seg"
        self._write_segment(path, [{"kind": "hello", "seq": 1}])
        with open(path, "ab") as fh:
            fh.write(HEADER.pack(MAX_RECORD_BYTES + 1, 0) + b"garbage")
        result = read_segment(path)
        assert result.n_corrupt == 1
        assert [r["seq"] for r in result.records] == [1]

    def test_payload_without_seq_or_kind_counted(self, tmp_path):
        path = tmp_path / "wal-00000001.seg"
        self._write_segment(path, [{"kind": "hello"}, {"seq": 2}, [1, 2, 3]])
        result = read_segment(path)
        assert result.records == []
        assert result.n_corrupt == 3


# ----------------------------------------------------------------------
# WriteAheadLog
# ----------------------------------------------------------------------


class TestWriteAheadLog:
    def test_append_stamps_monotone_seq_without_mutating_caller(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        record = {"kind": "hello", "client_id": 1, "site": "US"}
        assert wal.append(record) == 1
        assert wal.append(record) == 2
        assert "seq" not in record
        wal.close()
        result = read_wal(tmp_path)
        assert [r["seq"] for r in result.records] == [1, 2]

    def test_rotation_by_record_count(self, tmp_path):
        wal = WriteAheadLog(tmp_path, max_segment_records=3)
        for i in range(7):
            wal.append(measurement_record(i))
        assert len(wal.sealed_segments()) == 2
        assert [s.n_records for s in wal.sealed_segments()] == [3, 3]
        wal.close()
        assert len(wal.sealed_segments()) == 3

    def test_rotation_by_size(self, tmp_path):
        frame_len = len(encode_frame(dict(measurement_record(0), seq=1)))
        wal = WriteAheadLog(tmp_path, max_segment_bytes=2 * frame_len)
        for i in range(6):
            wal.append(measurement_record(i))
        wal.close()
        assert len(wal.sealed_segments()) >= 3

    def test_rotation_by_age_with_injected_clock(self, tmp_path):
        now = [0.0]
        wal = WriteAheadLog(tmp_path, max_segment_age_s=10.0, clock=lambda: now[0])
        wal.append({"kind": "hello"})
        wal.append({"kind": "hello"})
        assert len(wal.sealed_segments()) == 0
        now[0] = 11.0
        wal.append({"kind": "hello"})  # age check runs after this append
        assert len(wal.sealed_segments()) == 1
        wal.close()

    def test_reopen_resumes_seq_and_never_appends_to_old_files(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for i in range(5):
            wal.append(measurement_record(i))
        wal.close()
        first_paths = set(p.name for p in tmp_path.glob("wal-*.seg"))

        wal2 = WriteAheadLog(tmp_path)
        assert wal2.last_seq == 5
        assert wal2.append({"kind": "hello"}) == 6
        wal2.close()
        new_paths = set(p.name for p in tmp_path.glob("wal-*.seg")) - first_paths
        assert len(new_paths) == 1  # a fresh segment, old ones untouched
        result = read_wal(tmp_path)
        assert [r["seq"] for r in result.records] == [1, 2, 3, 4, 5, 6]

    def test_reopen_after_torn_tail_keeps_writing(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for i in range(3):
            wal.append(measurement_record(i))
        wal.close()
        seg = wal.sealed_segments()[0].path
        seg.write_bytes(seg.read_bytes()[:-5])

        wal2 = WriteAheadLog(tmp_path)
        assert wal2.last_seq == 2  # record 3 was torn away
        assert wal2.append({"kind": "hello"}) == 3
        wal2.close()

    def test_fsync_always_counts_one_per_append(self, tmp_path):
        registry = MetricsRegistry()
        wal = WriteAheadLog(tmp_path, fsync="always", registry=registry)
        for i in range(5):
            wal.append({"kind": "hello"})
        assert registry.get("via_store_fsyncs_total").value == 5
        wal.close()

    def test_fsync_batch_counts_every_n(self, tmp_path):
        registry = MetricsRegistry()
        wal = WriteAheadLog(tmp_path, fsync="batch", batch_every=4, registry=registry)
        for i in range(9):
            wal.append({"kind": "hello"})
        assert registry.get("via_store_fsyncs_total").value == 2
        wal.close()  # flushes the final pending record
        assert registry.get("via_store_fsyncs_total").value == 3

    def test_fsync_off_never_syncs(self, tmp_path):
        registry = MetricsRegistry()
        wal = WriteAheadLog(tmp_path, fsync="off", registry=registry)
        for i in range(10):
            wal.append({"kind": "hello"})
        wal.close()
        assert registry.get("via_store_fsyncs_total").value == 0
        # Unbuffered writes mean the records are still readable.
        assert len(read_wal(tmp_path).records) == 10

    def test_rejects_unknown_fsync_policy(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path, fsync="sometimes")

    def test_rotate_empty_active_leaves_no_file(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append({"kind": "hello"})
        wal.rotate()
        wal.rotate()  # nothing appended since: no new file should appear
        wal.close()
        assert len(list(tmp_path.glob("wal-*.seg"))) == 1

    def test_truncate_through_deletes_only_covered_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, max_segment_records=2)
        for i in range(7):  # segments: [1,2] [3,4] [5,6] + active [7]
            wal.append(measurement_record(i))
        assert wal.truncate_through(4) == 2
        wal.close()
        result = read_wal(tmp_path)
        assert [r["seq"] for r in result.records] == [5, 6, 7]

    def test_metrics_appends_and_segments(self, tmp_path):
        registry = MetricsRegistry()
        wal = WriteAheadLog(tmp_path, max_segment_records=2, registry=registry)
        for i in range(4):
            wal.append(measurement_record(i))
        wal.append({"kind": "hello"})
        appended = registry.get("via_store_records_appended_total")
        assert appended.value_for(kind="measurement") == 4
        assert appended.value_for(kind="hello") == 1
        assert registry.get("via_store_segments").value == 3  # 2 sealed + active
        assert registry.get("via_store_bytes_appended_total").value > 0
        wal.close()

    def test_read_wal_after_seq(self, tmp_path):
        wal = WriteAheadLog(tmp_path, max_segment_records=2)
        for i in range(6):
            wal.append(measurement_record(i))
        wal.close()
        result = read_wal(tmp_path, after_seq=4)
        assert [r["seq"] for r in result.records] == [5, 6]
        assert result.n_segments == 3


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------


class TestCompaction:
    def test_fold_matches_live_history(self, tmp_path):
        """Archive aggregates equal a CallHistory fed the same calls."""
        wal = WriteAheadLog(tmp_path / "wal", max_segment_records=5)
        expected = CallHistory(window_hours=24.0)
        keyer = PairKeyer("as")
        for i in range(20):
            record = measurement_record(i, src=1 + i % 3, dst=10)
            wal.append(record)
            call = Call(
                call_id=0, t_hours=record["t_hours"],
                src_asn=record["src_id"], dst_asn=record["dst_id"],
                src_country=record["src_site"], dst_country=record["dst_site"],
                src_user=record["src_id"], dst_user=record["dst_id"],
            )
            view = keyer.view(call)
            expected.add(
                view.pair_key,
                view.normalize(RelayOption.bounce(3)),
                record["t_hours"],
                PathMetrics(
                    rtt_ms=record["rtt_ms"],
                    loss_rate=record["loss_rate"],
                    jitter_ms=record["jitter_ms"],
                ),
            )
        wal.rotate()

        compactor = Compactor(tmp_path)
        result = compactor.compact(wal)
        wal.close()
        assert result.n_measurements == 20
        assert result.n_corrupt == 0
        assert history_to_dict(compactor.load_history()) == history_to_dict(expected)

    def test_compaction_is_cumulative_across_passes(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        for i in range(4):
            wal.append(measurement_record(i))
        wal.rotate()
        compactor = Compactor(tmp_path)
        compactor.compact(wal)
        for i in range(4, 7):
            wal.append(measurement_record(i))
        wal.rotate()
        result = compactor.compact(wal)
        wal.close()
        assert result.n_measurements == 3
        assert compactor.load_history().total_calls() == 7

    def test_only_cover_seq_segments_folded(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", max_segment_records=2)
        for i in range(6):  # sealed: [1,2] [3,4] [5,6]
            wal.append(measurement_record(i))
        wal.rotate()
        compactor = Compactor(tmp_path)
        result = compactor.compact(wal, cover_seq=4)
        assert result.n_segments == 2
        assert result.n_measurements == 4
        # Uncovered records survive on disk for recovery.
        remaining = read_wal(tmp_path / "wal")
        assert [r["seq"] for r in remaining.records] == [5, 6]
        wal.close()

    def test_retention_prunes_old_windows(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        for day in range(6):
            record = measurement_record(0)
            record["t_hours"] = day * 24.0 + 1.0
            wal.append(record)
        wal.rotate()
        compactor = Compactor(tmp_path, retention_windows=2)
        result = compactor.compact(wal)
        wal.close()
        assert result.n_windows_pruned == 4
        assert compactor.load_history().windows() == [4, 5]

    def test_non_measurement_records_skipped_not_corrupt(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append({"kind": "hello", "client_id": 1, "site": "US"})
        wal.append({"kind": "request", "src_id": 1, "dst_id": 2, "t_hours": 0.1,
                    "options": []})
        wal.append(measurement_record(0))
        wal.rotate()
        result = Compactor(tmp_path).compact(wal)
        wal.close()
        assert result.n_skipped == 2
        assert result.n_measurements == 1
        assert result.n_corrupt == 0

    def test_unparseable_measurement_counted_corrupt(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        bad = measurement_record(0)
        bad["option"] = {"kind": "warp-drive"}
        wal.append(bad)
        wal.rotate()
        registry = MetricsRegistry()
        result = Compactor(tmp_path, registry=registry).compact(wal)
        wal.close()
        assert result.n_corrupt == 1
        errors = registry.get("via_store_read_errors_total")
        assert errors.value_for(reader="compaction") == 1

    def test_corrupt_archive_raises(self, tmp_path):
        compactor = Compactor(tmp_path)
        compactor.compacted_path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            compactor.load_history()

    def test_archive_format_field(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append(measurement_record(0))
        wal.rotate()
        Compactor(tmp_path).compact(wal)
        wal.close()
        payload = json.loads((tmp_path / "compacted.json").read_text())
        assert payload["format"] == COMPACTED_FORMAT
        assert payload["n_calls"] == 1


# ----------------------------------------------------------------------
# Store facade
# ----------------------------------------------------------------------


class TestStoreConfig:
    def test_defaults_valid(self):
        StoreConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fsync": "never"},
            {"snapshot_every_records": -1},
            {"window_hours": 0.0},
            {"retention_windows": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            StoreConfig(**kwargs)


class TestStore:
    def test_layout_under_one_root(self, tmp_path):
        store = Store(tmp_path / "s")
        store.log_hello(1, "US")
        store.snapshot(FakeSource(1))
        store.close()
        assert (tmp_path / "s" / "wal").is_dir()
        assert (tmp_path / "s" / "snapshot.json").exists()
        assert (tmp_path / "s" / "compacted.json").exists()

    def test_snapshot_truncates_covered_log(self, tmp_path):
        store = Store(tmp_path, StoreConfig(max_segment_records=4))
        for i in range(10):
            store.log_measurement(1, 2, 0.1 + i * 0.01,
                                  option_to_dict(RelayOption.bounce(3)),
                                  100.0, 0.01, 5.0)
        store.snapshot(FakeSource(10))
        assert store.records_after(store.snapshot_seq()).records == []
        store.log_hello(5, "IN")
        tail = store.records_after(store.snapshot_seq())
        assert [r["seq"] for r in tail.records] == [11]
        assert store.compactor.load_history().total_calls() == 10
        store.close()

    def test_snapshot_roundtrip_payload(self, tmp_path):
        store = Store(tmp_path)
        store.log_hello(1, "US")
        store.snapshot(FakeSource(42))
        payload, seq = store.read_snapshot()
        assert payload["controller"] == {"n": 42}
        assert seq == 1
        store.close()

    def test_corrupt_snapshot_raises_on_read_and_zero_seq(self, tmp_path):
        store = Store(tmp_path)
        store.snapshot_path.write_text("{ not json")
        with pytest.raises(json.JSONDecodeError):
            store.read_snapshot()
        assert store.snapshot_seq() == 0
        store.close()

    def test_should_snapshot_threshold(self, tmp_path):
        store = Store(tmp_path, StoreConfig(snapshot_every_records=3))
        assert not store.should_snapshot()
        for _ in range(3):
            store.log_hello(1, "US")
        assert store.should_snapshot()
        store.snapshot(FakeSource())
        assert not store.should_snapshot()
        store.close()

    def test_reopen_after_full_compaction_resumes_seq_past_snapshot(self, tmp_path):
        """A clean shutdown folds every segment away; the reopened store
        must keep numbering past the snapshot's seq, or new records would
        hide below the recovery horizon."""
        store = Store(tmp_path)
        for _ in range(5):
            store.log_hello(1, "US")
        store.snapshot(FakeSource())  # covers seq 5, deletes all segments
        store.close()
        assert list((tmp_path / "wal").glob("wal-*.seg")) == []

        reopened = Store(tmp_path)
        assert reopened.wal.last_seq == 5
        seq = reopened.log_hello(2, "GB")
        assert seq == 6
        tail = reopened.records_after(reopened.snapshot_seq())
        assert [r["seq"] for r in tail.records] == [6]
        reopened.close()

    def test_reopen_counts_unsnapshotted_backlog(self, tmp_path):
        store = Store(tmp_path, StoreConfig(snapshot_every_records=3))
        for _ in range(5):
            store.log_hello(1, "US")
        store.close()
        reopened = Store(tmp_path, StoreConfig(snapshot_every_records=3))
        assert reopened.should_snapshot()
        reopened.close()

    def test_compact_without_snapshot_is_noop(self, tmp_path):
        store = Store(tmp_path, StoreConfig(max_segment_records=2))
        for i in range(6):
            store.log_hello(1, "US")
        result = store.compact()
        assert result.n_segments == 0
        assert len(store.records_after(0).records) == 6
        store.close()

    def test_snapshot_metric(self, tmp_path):
        registry = MetricsRegistry()
        store = Store(tmp_path, registry=registry)
        store.log_hello(1, "US")
        store.snapshot(FakeSource())
        assert registry.get("via_store_snapshots_total").value == 1
        store.close()


class TestAtomicWrite:
    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old")
        atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"new"
        assert list(tmp_path.iterdir()) == [target]  # no tmp file left behind


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestStoreCli:
    def _build_store(self, root, n=10):
        store = Store(root, StoreConfig(max_segment_records=4))
        for i in range(n):
            store.log_measurement(1, 2, 0.1 + i * 0.01,
                                  option_to_dict(RelayOption.bounce(3)),
                                  100.0, 0.01, 5.0, src_site="US", dst_site="GB")
        store.close()
        return store

    def test_inspect(self, tmp_path, capsys):
        self._build_store(tmp_path)
        assert main(["store", "inspect", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "wal-00000001.seg" in out
        assert "snapshot" in out

    def test_verify_clean_store(self, tmp_path, capsys):
        self._build_store(tmp_path)
        assert main(["store", "verify", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_verify_flags_corruption(self, tmp_path, capsys):
        self._build_store(tmp_path)
        seg = sorted((tmp_path / "wal").glob("wal-*.seg"))[0]
        data = bytearray(seg.read_bytes())
        data[len(SEGMENT_MAGIC) + HEADER.size + 4] ^= 0xFF
        seg.write_bytes(bytes(data))
        assert main(["store", "verify", str(tmp_path)]) == 1
        assert "DAMAGED" in capsys.readouterr().out

    def test_verify_flags_corrupt_snapshot(self, tmp_path, capsys):
        self._build_store(tmp_path)
        (tmp_path / "snapshot.json").write_text("{ nope")
        assert main(["store", "verify", str(tmp_path)]) == 1

    def test_compact_subcommand(self, tmp_path, capsys):
        store = Store(tmp_path, StoreConfig(max_segment_records=4))
        for i in range(10):
            store.log_measurement(1, 2, 0.1 + i * 0.01,
                                  option_to_dict(RelayOption.bounce(3)),
                                  100.0, 0.01, 5.0)
        # Snapshot but keep segments: bypass the facade's auto-compaction
        # by writing the snapshot file directly, so the CLI has work to do.
        from repro.store import SNAPSHOT_FORMAT

        (tmp_path / "snapshot.json").write_text(json.dumps({
            "format": SNAPSHOT_FORMAT,
            "last_seq": store.wal.last_seq,
            "controller": {},
        }))
        store.close()
        assert main(["store", "compact", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "segments folded" in out
        archive = json.loads((tmp_path / "compacted.json").read_text())
        assert archive["n_calls"] == 10

    def test_missing_dir_is_usage_error(self, tmp_path, capsys):
        assert main(["store", "inspect", str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Rotation-boundary properties (hypothesis)
# ----------------------------------------------------------------------

from hypothesis import given, strategies as st  # noqa: E402


def _frame_size(record: dict) -> int:
    """On-disk bytes one record costs (header + compact JSON).

    ``record`` must carry its real ``seq`` (as records read back via
    ``read_wal`` do): the seq's digit count changes the payload length.
    """
    assert "seq" in record
    return len(encode_frame(dict(record)))


class TestRotationBoundaryProperties:
    """Segments must roll at *exactly* the configured limits.

    A sloppy boundary check (``>`` for ``>=``, counting before the append
    instead of after) passes fixed-size unit tests and then over- or
    under-fills segments in production, so these pin the exact contract
    under arbitrary record sizes: (a) no sealed segment violates the
    limit's invariant, (b) each sealed segment was *minimal* -- without
    its final record it would not have rotated -- and (c) the
    damage-tolerant reader sees every record, in order, no matter where
    the boundaries fell.
    """

    @given(
        n_records=st.integers(min_value=1, max_value=60),
        limit=st.integers(min_value=1, max_value=7),
    )
    def test_record_count_limit_is_exact(self, n_records, limit, tmp_path_factory):
        root = tmp_path_factory.mktemp("count")
        wal = WriteAheadLog(root, fsync="off", max_segment_records=limit,
                            max_segment_bytes=1 << 30)
        for i in range(n_records):
            wal.append({"kind": "pad", "i": i})
        wal.close()
        sealed = wal.sealed_segments()
        assert sum(s.n_records for s in sealed) == n_records
        # Every rotation-sealed segment holds exactly `limit` records; only
        # the close()-sealed remainder may hold fewer.
        for info in sealed[:-1]:
            assert info.n_records == limit
        assert 1 <= sealed[-1].n_records <= limit
        expected_full, remainder = divmod(n_records, limit)
        assert len(sealed) == expected_full + (1 if remainder else 0)
        result = read_wal(root)
        assert [r["seq"] for r in result.records] == list(range(1, n_records + 1))
        assert result.n_corrupt == 0 and result.n_torn_segments == 0

    @given(
        pads=st.lists(st.integers(min_value=0, max_value=300),
                      min_size=1, max_size=40),
        limit=st.integers(min_value=64, max_value=700),
    )
    def test_size_limit_rolls_at_exact_boundary(self, pads, limit, tmp_path_factory):
        root = tmp_path_factory.mktemp("size")
        wal = WriteAheadLog(root, fsync="off", max_segment_bytes=limit)
        records = [{"kind": "pad", "i": i, "d": "x" * n} for i, n in enumerate(pads)]
        for record in records:
            wal.append(record)
        wal.close()
        sealed = wal.sealed_segments()
        by_seq = {r["seq"]: r for r in read_wal(root).records}
        assert sorted(by_seq) == list(range(1, len(records) + 1))
        for pos, info in enumerate(sealed):
            assert info.size_bytes == info.path.stat().st_size
            last_frame = _frame_size(by_seq[info.last_seq])
            if pos < len(sealed) - 1:
                # Rotation-sealed: at or past the limit, and minimally so --
                # one record earlier it was still under it.
                assert info.size_bytes >= limit
                assert info.size_bytes - last_frame < limit
            else:
                # The final segment is either rotation-sealed like the
                # others or an under-limit remainder sealed by close().
                assert (info.size_bytes >= limit
                        and info.size_bytes - last_frame < limit) or (
                    info.size_bytes < limit
                )
        # A record larger than the whole limit still lands (its own
        # oversized segment) rather than wedging the log.
        for info in sealed:
            assert info.n_records >= 1

    @given(
        quiet_appends=st.integers(min_value=1, max_value=10),
        age_s=st.floats(min_value=0.5, max_value=60.0,
                        allow_nan=False, allow_infinity=False),
    )
    def test_age_limit_with_injected_clock(self, quiet_appends, age_s,
                                           tmp_path_factory):
        root = tmp_path_factory.mktemp("age")
        # The clock starts at 0.0 so `now - opened_at` is exact float
        # arithmetic: the boundary really is crossed *at* age_s, not an
        # ulp under it.
        now = [0.0]
        wal = WriteAheadLog(root, fsync="off", max_segment_age_s=age_s,
                            max_segment_bytes=1 << 30, clock=lambda: now[0])
        for i in range(quiet_appends):
            wal.append({"kind": "pad", "i": i})
        assert wal.sealed_segments() == [], "no rotation before the age limit"
        # Cross the age boundary exactly: the *next* append seals.
        now[0] = age_s
        wal.append({"kind": "pad", "i": quiet_appends})
        sealed = wal.sealed_segments()
        assert len(sealed) == 1
        assert sealed[0].n_records == quiet_appends + 1
        assert wal.active_path is None, "age rotation leaves no active file"
        # The next append starts a fresh segment whose age clock restarts.
        wal.append({"kind": "pad", "i": quiet_appends + 1})
        assert len(wal.sealed_segments()) == 1
        assert wal.active_path is not None
        wal.close()
        result = read_wal(root)
        assert [r["seq"] for r in result.records] == list(
            range(1, quiet_appends + 3)
        )

    @given(
        pads=st.lists(st.integers(min_value=0, max_value=200),
                      min_size=2, max_size=30),
        cut=st.integers(min_value=1, max_value=11),
    )
    def test_reader_survives_torn_tail_across_rotation(self, pads, cut,
                                                       tmp_path_factory):
        root = tmp_path_factory.mktemp("torn")
        wal = WriteAheadLog(root, fsync="off", max_segment_bytes=256)
        for i, n in enumerate(pads):
            wal.append({"kind": "pad", "i": i, "d": "x" * n})
        wal.close()
        # Damage the newest segment: chop mid-frame, as a crash would.
        newest = wal.sealed_segments()[-1].path
        data = newest.read_bytes()
        keep = max(len(SEGMENT_MAGIC), len(data) - cut)
        newest.write_bytes(data[:keep])
        result = read_wal(root)
        # Every fully-framed record survives, in order, with no gaps; only
        # a suffix of the damaged segment may be gone.
        seqs = [r["seq"] for r in result.records]
        assert seqs == list(range(1, len(seqs) + 1))
        assert len(pads) - len(seqs) <= (
            sum(1 for r in read_segment(newest).records) + 1 + cut // 1
        )
        assert result.n_corrupt == 0
