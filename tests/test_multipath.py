"""Multipath relaying: path sets, combined rewards, bandit, chaos replay.

The reward-model bounds are pinned as hypothesis properties:

* duplication is elementwise **at least as good as the best** constituent
  path (min RTT/jitter, product loss);
* splitting lies **between the best and worst** constituent path
  (packet-weighted blend).

The chaos tests drive a :class:`~repro.deployment.faults.FaultPlan`
relay outage through replay and check the paper-level claims: a
duplicated call survives a single-path outage, a split call degrades by
exactly the lost path's share, and the engine's dead/degraded accounting
distinguishes losing one path from losing both.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.multipath import (
    MultipathBanditPolicy,
    PathSet,
    RandomPathSetPolicy,
    combine_duplicate,
    combine_split,
    combined_metrics,
)
from repro.core.registry import build_policy
from repro.deployment.faults import FaultPlan
from repro.netmodel import TopologyConfig, WorldConfig, build_world
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption
from repro.netmodel.world import RelayOutage
from repro.simulation import PolicySpec, ReplayTask, run_grid
from repro.simulation.replay import replay
from repro.telephony.call import Call
from repro.workload import WorkloadConfig, generate_trace

pytestmark = pytest.mark.multipath

metrics_triples = st.builds(
    PathMetrics,
    rtt_ms=st.floats(min_value=1.0, max_value=3000.0),
    loss_rate=st.floats(min_value=0.0, max_value=1.0),
    jitter_ms=st.floats(min_value=0.0, max_value=60.0),
)


def _call(call_id=1, t_hours=0.5, src=100, dst=200, blocked=False):
    return Call(
        call_id=call_id,
        t_hours=t_hours,
        src_asn=src,
        dst_asn=dst,
        src_country="US",
        dst_country="DE",
        src_user=1,
        dst_user=2,
        direct_blocked=blocked,
    )


class TestPathSet:
    def test_distinct_paths_required(self):
        with pytest.raises(ValueError, match="distinct"):
            PathSet(DIRECT, DIRECT)

    def test_mode_validated(self):
        with pytest.raises(ValueError, match="unknown PathSet mode"):
            PathSet(DIRECT, RelayOption.bounce(0), mode="mirror")

    def test_split_weight_validated(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="split_weight"):
                PathSet(DIRECT, RelayOption.bounce(0), split_weight=bad)

    def test_relay_ids_distinct_ordered(self):
        ps = PathSet(RelayOption.transit(3, 1), RelayOption.bounce(1))
        assert ps.relay_ids() == (3, 1)

    def test_reversed_round_trips(self):
        ps = PathSet(
            RelayOption.transit(3, 1), RelayOption.bounce(2), mode="split",
            split_weight=0.7,
        )
        back = ps.reversed().reversed()
        assert back == ps
        assert ps.reversed().primary == RelayOption.transit(1, 3)

    def test_str_forms(self):
        dup = PathSet(DIRECT, RelayOption.bounce(0))
        assert str(dup).startswith("dup(")
        split = PathSet(DIRECT, RelayOption.bounce(0), mode="split")
        assert str(split).startswith("split[0.5](")


class TestCombinedRewardBounds:
    @given(primary=metrics_triples, secondary=metrics_triples)
    def test_duplicate_bounded_by_best_path(self, primary, secondary):
        combined = combine_duplicate(primary, secondary)
        assert combined.rtt_ms == min(primary.rtt_ms, secondary.rtt_ms)
        assert combined.jitter_ms == min(primary.jitter_ms, secondary.jitter_ms)
        # Independent-loss product: never worse than the better path.
        assert combined.loss_rate <= min(primary.loss_rate, secondary.loss_rate)

    @given(
        primary=metrics_triples,
        secondary=metrics_triples,
        weight=st.floats(min_value=0.01, max_value=0.99),
    )
    def test_split_bounded_by_constituents(self, primary, secondary, weight):
        combined = combine_split(primary, secondary, weight)
        for attr in ("rtt_ms", "loss_rate", "jitter_ms"):
            lo = min(getattr(primary, attr), getattr(secondary, attr))
            hi = max(getattr(primary, attr), getattr(secondary, attr))
            value = getattr(combined, attr)
            assert lo - 1e-9 <= value <= hi + 1e-9

    @given(primary=metrics_triples, secondary=metrics_triples)
    def test_dispatch_matches_mode(self, primary, secondary):
        a, b = DIRECT, RelayOption.bounce(0)
        dup = combined_metrics(PathSet(a, b), primary, secondary)
        assert dup == combine_duplicate(primary, secondary)
        split = combined_metrics(
            PathSet(a, b, mode="split", split_weight=0.25), primary, secondary
        )
        assert split == combine_split(primary, secondary, 0.25)

    def test_split_weight_validated(self):
        m = PathMetrics(100.0, 0.01, 5.0)
        with pytest.raises(ValueError, match="weight"):
            combine_split(m, m, 0.0)


class TestBanditPolicy:
    OPTIONS = [DIRECT, RelayOption.bounce(0), RelayOption.bounce(1)]

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="mode"):
            MultipathBanditPolicy(mode="mirror")
        with pytest.raises(ValueError, match="max_singles"):
            MultipathBanditPolicy(max_singles=1)
        with pytest.raises(ValueError, match="epsilon"):
            MultipathBanditPolicy(epsilon=1.5)

    def test_needs_two_distinct_options(self):
        policy = MultipathBanditPolicy(epsilon=0.0)
        with pytest.raises(ValueError, match=">= 2 distinct options"):
            policy.assign_paths(_call(), [DIRECT])

    def test_converges_to_cheapest_pair(self):
        policy = MultipathBanditPolicy(epsilon=0.0, seed=1)
        cheap = PathSet(DIRECT, RelayOption.bounce(0))
        good = PathMetrics(30.0, 0.0, 1.0)
        bad = PathMetrics(400.0, 0.05, 20.0)
        for i in range(30):
            call = _call(call_id=i)
            choice = policy.assign_paths(call, self.OPTIONS)
            per_path = good if choice == cheap else bad
            policy.observe_paths(
                call, choice, per_path, per_path,
                combined_metrics(choice, per_path, per_path),
            )
        final = [
            policy.assign_paths(_call(call_id=100 + i), self.OPTIONS)
            for i in range(5)
        ]
        assert all(c == cheap for c in final)

    def test_outage_repick_avoids_down_relay(self):
        policy = MultipathBanditPolicy(epsilon=0.0, seed=1)
        policy.assign_paths(_call(), self.OPTIONS)  # build the arm space
        policy.set_down_relays({0})
        for i in range(10):
            choice = policy.assign_paths(_call(call_id=i + 2), self.OPTIONS)
            assert 0 not in choice.relay_ids()
        assert policy.n_outage_repicks > 0
        policy.set_down_relays(())
        assert policy.down_relays == frozenset()

    def test_all_arms_down_keeps_choice(self):
        policy = MultipathBanditPolicy(epsilon=0.0, seed=1, max_singles=2)
        policy.assign_paths(_call(), [RelayOption.bounce(0), RelayOption.bounce(1)])
        policy.set_down_relays({0, 1})
        choice = policy.assign_paths(
            _call(call_id=2), [RelayOption.bounce(0), RelayOption.bounce(1)]
        )
        assert set(choice.relay_ids()) <= {0, 1}

    def test_checkpoint_round_trip(self, small_world, small_trace):
        policy = build_policy("multipath-ucb", seed=21)
        replay(small_world, small_trace, policy, seed=3)
        state = policy.state_dict()
        twin = build_policy("multipath-ucb", seed=21)
        twin.load_state_dict(state)
        assert twin.state_dict() == state
        # The restored twin continues identically.
        probe_calls = list(small_trace)[:50]
        for call in probe_calls:
            options = small_world.options_for_pair(call.src_asn, call.dst_asn)
            if call.direct_blocked:
                options = [o for o in options if o.is_relayed]
            assert policy.assign_paths(call, options) == twin.assign_paths(
                call, options
            )

    def test_checkpoint_rejects_wrong_metric(self):
        policy = MultipathBanditPolicy("rtt_ms")
        other = MultipathBanditPolicy("loss_rate")
        with pytest.raises(ValueError, match="optimises"):
            other.load_state_dict(policy.state_dict())

    def test_flipped_pair_shares_state(self):
        policy = MultipathBanditPolicy(epsilon=0.0, seed=1)
        forward = _call(call_id=1, src=100, dst=200)
        backward = _call(call_id=2, src=200, dst=100)
        policy.assign_paths(forward, self.OPTIONS)
        policy.assign_paths(backward, self.OPTIONS)
        assert len(policy._bandits) == 1


class _FixedPathPolicy:
    """Test stub: always the same path set, never learns."""

    def __init__(self, path_set: PathSet) -> None:
        self.name = f"fixed[{path_set}]"
        self.path_set = path_set

    def assign_paths(self, call, options):
        return self.path_set

    def observe_paths(self, call, path_set, primary, secondary, combined):
        return None


def _chaos_world(n_days: int = 2):
    """A tiny world where relay 0 is down for all of day 1."""
    world = build_world(
        WorldConfig(
            topology=TopologyConfig(n_countries=5, n_relays=3, seed=2),
            n_days=n_days,
            seed=4,
        )
    )
    plan = FaultPlan(
        relay_outages=(
            RelayOutage(relay_id=0, start_hours=24.0, end_hours=48.0),
        )
    )
    for outage in plan.relay_outages:
        world.add_outage(outage)
    return world


def _chaos_trace(world, n_calls: int = 400):
    return generate_trace(
        world.topology,
        WorkloadConfig(n_calls=n_calls, n_pairs=12, seed=8),
        n_days=2,
    )


@pytest.mark.faults
class TestMultipathUnderChaos:
    def test_duplicated_call_survives_single_path_outage(self):
        world = _chaos_world()
        trace = _chaos_trace(world)
        stub = _FixedPathPolicy(
            PathSet(RelayOption.bounce(0), RelayOption.bounce(1))
        )
        result = replay(world, trace, stub, seed=5)
        n_outage = sum(result.outage_flags)
        assert n_outage > 0
        # Exactly one path down: every outage call degraded, none dead.
        assert result.n_degraded_assignments == n_outage
        assert result.n_dead_assignments == 0
        # Survival: the delivered stream never blackholes (loss product
        # keeps the live path's loss; best-of RTT keeps the live RTT).
        for outcome, flagged in zip(result.outcomes, result.outage_flags):
            if flagged:
                assert outcome.metrics.loss_rate < 1.0
                assert outcome.metrics.rtt_ms < 3000.0

    def test_split_call_degrades_by_lost_share(self):
        world = _chaos_world()
        trace = _chaos_trace(world)
        weight = 0.6
        stub = _FixedPathPolicy(
            PathSet(
                RelayOption.bounce(1), RelayOption.bounce(0), mode="split",
                split_weight=weight,
            )
        )
        result = replay(world, trace, stub, seed=5)
        assert result.n_degraded_assignments == sum(result.outage_flags)
        for outcome, flagged in zip(result.outcomes, result.outage_flags):
            if flagged:
                # The dead secondary carries (1 - weight) of the stream.
                assert outcome.metrics.loss_rate >= (1.0 - weight) - 1e-9
                assert outcome.metrics.loss_rate < 1.0

    def test_both_paths_down_is_dead(self):
        world = _chaos_world()
        trace = _chaos_trace(world)
        stub = _FixedPathPolicy(
            PathSet(RelayOption.bounce(0), RelayOption.transit(0, 1))
        )
        result = replay(world, trace, stub, seed=5)
        n_outage = sum(result.outage_flags)
        assert n_outage > 0
        assert result.n_dead_assignments == n_outage
        assert result.n_degraded_assignments == 0

    def test_bandit_routes_around_outage(self):
        world = _chaos_world()
        trace = _chaos_trace(world, n_calls=600)
        policy = build_policy("multipath-ucb", seed=11)
        result = replay(world, trace, policy, seed=5)
        # set_down_relays sync means the bandit repicks live arms.
        assert result.n_dead_assignments == 0
        assert policy.n_outage_repicks >= 0
        assert len(result.outcomes) == len(trace)


class TestReplayIntegration:
    def test_replay_scores_combined_stream(self, small_world, small_trace):
        policy = build_policy("multipath-ucb", seed=13)
        result = replay(small_world, small_trace, policy, seed=2)
        assert len(result.outcomes) == len(small_trace)
        assert result.policy_name == policy.name
        # Without outages the degraded/dead counters stay zero.
        assert result.n_degraded_assignments == 0
        assert result.n_dead_assignments == 0

    def test_multipath_branch_preempts_batch_path(self, small_world, small_trace):
        serial = replay(
            small_world, small_trace, build_policy("multipath-ucb", seed=13),
            seed=2,
        )
        batched = replay(
            small_world, small_trace, build_policy("multipath-ucb", seed=13),
            seed=2, batch_calls=64,
        )
        assert [o.metrics for o in serial.outcomes] == [
            o.metrics for o in batched.outcomes
        ]

    def test_run_grid_accepts_multipath_specs(self, small_world, small_trace):
        tasks = [
            ReplayTask(policy=PolicySpec.multipath("rtt_ms", seed=42), label="mp"),
            ReplayTask(
                policy=PolicySpec(kind="multipath-random", seed=42), label="rand"
            ),
        ]
        results = run_grid(tasks, world=small_world, trace=small_trace)
        assert [r.task.label for r in results] == ["mp", "rand"]
        for r in results:
            assert len(r.result.outcomes) == len(small_trace)

    def test_random_policy_is_seeded(self, small_world, small_trace):
        a = replay(
            small_world, small_trace, RandomPathSetPolicy(seed=6), seed=2
        )
        b = replay(
            small_world, small_trace, RandomPathSetPolicy(seed=6), seed=2
        )
        assert [o.metrics for o in a.outcomes] == [o.metrics for o in b.outcomes]
