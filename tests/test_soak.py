"""Chaos soak harness tests (:mod:`repro.soak`).

Everything here runs on sharply reduced budgets -- enough ticks for each
lifecycle leg and the watchdog window to fire at least once, small
enough for the tier-1 loop.  The real endurance run is ``repro soak``
(smoke in CI, ``--budget full`` for hours).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.soak import (
    DEFAULT_INVARIANTS,
    LeakyPolicy,
    SoakBudget,
    SoakReport,
    TrendWatchdog,
    derive_fault_plan,
    run_soak,
)
from repro.soak.watchdog import InvariantSpec

pytestmark = pytest.mark.soak


def mini_budget(seed: int = 3, **overrides) -> SoakBudget:
    """A seconds-scale budget where every lifecycle leg still fires."""
    base = dict(
        ticks=120,
        calls_per_tick=4,
        snapshot_every_ticks=20,
        compact_every_ticks=30,
        kill_every_ticks=40,
        sample_every_ticks=2,
        window_samples=12,
        seed=seed,
    )
    base.update(overrides)
    return SoakBudget(**base)


# ----------------------------------------------------------------------
# Budgets
# ----------------------------------------------------------------------


def test_budget_presets_validate():
    for preset in (SoakBudget.smoke(seed=1), SoakBudget.full(seed=1)):
        assert preset.ticks >= 1
        assert preset.horizon_hours > 0
    assert SoakBudget.full().ticks > SoakBudget.smoke().ticks


@pytest.mark.parametrize(
    "overrides",
    [
        {"ticks": 0},
        {"n_clients": 1},
        {"window_samples": 3},
        {"hours_per_tick": 0.0},
        {"raced_kill_every": 0},
        {"n_shards": -1},
        {"time_budget_s": 0.0},
    ],
)
def test_budget_rejects_bad_knobs(overrides):
    with pytest.raises(ValueError):
        mini_budget(**overrides)


def test_fault_plan_is_pure_function_of_seed():
    a = derive_fault_plan(9, 100.0)
    b = derive_fault_plan(9, 100.0)
    assert a == b
    assert a != derive_fault_plan(10, 100.0)
    assert a.relay_outages, "a 100h horizon must schedule outages"
    assert all(o.end_hours <= 100.0 + 6.0 for o in a.relay_outages)


# ----------------------------------------------------------------------
# Watchdog
# ----------------------------------------------------------------------


def test_watchdog_needs_minimum_samples():
    dog = TrendWatchdog(specs=DEFAULT_INVARIANTS, window_samples=8)
    for value in (100.0, 200.0, 300.0):
        dog.record("rss_kb", value)
    (verdict,) = [v for v in dog.evaluate() if v["invariant"] == "rss_kb"]
    assert verdict["enough_data"] is False
    assert verdict["violated"] is False


def test_watchdog_flags_monotonic_growth_but_not_noise():
    spec = InvariantSpec(
        name="x", help="", max_slope_per_sample=10.0, min_growth=100.0
    )
    grower = TrendWatchdog(specs=(spec,), window_samples=10)
    noisy = TrendWatchdog(specs=(spec,), window_samples=10)
    for i in range(10):
        grower.record("x", 1000.0 + 50.0 * i)  # slope 50, growth 450
        noisy.record("x", 1000.0 + (i % 2) * 120.0)  # oscillates, no trend
    assert grower.evaluate()[0]["violated"] is True
    assert noisy.evaluate()[0]["violated"] is False


def test_watchdog_absolute_floor_suppresses_tiny_slopes():
    # Steady +2/sample violates the slope knob but never amounts to
    # anything: the absolute growth floor keeps it quiet.
    spec = InvariantSpec(
        name="x", help="", max_slope_per_sample=1.0, min_growth=1000.0
    )
    dog = TrendWatchdog(specs=(spec,), window_samples=10)
    for i in range(10):
        dog.record("x", 100.0 + 2.0 * i)
    assert dog.evaluate()[0]["violated"] is False


def test_watchdog_ignores_unavailable_sampler():
    dog = TrendWatchdog(specs=DEFAULT_INVARIANTS, window_samples=8)
    for _ in range(8):
        dog.record("open_fds", -1.0)  # sampler unavailable on this platform
    (verdict,) = [v for v in dog.evaluate() if v["invariant"] == "open_fds"]
    assert verdict["enough_data"] is False


# ----------------------------------------------------------------------
# End-to-end soaks
# ----------------------------------------------------------------------


def test_single_controller_soak_passes(tmp_path):
    report = run_soak(
        mini_budget(), workdir=tmp_path / "w", artifacts_dir=tmp_path / "art"
    )
    assert report.ok, report.summary()
    assert report.n_ticks == 120
    assert report.n_snapshots == 6
    assert report.n_restores == 3
    assert report.n_raced_restores >= 1, "the raced-restore leg must run"
    assert report.n_scrapes == 120
    assert report.n_samples == 60
    assert report.workload_fingerprint
    assert not report.truncated
    assert not (tmp_path / "art").exists(), "no artifact on a green run"


def test_soak_is_deterministic_given_seed(tmp_path):
    a = run_soak(mini_budget(seed=11), artifacts_dir=tmp_path / "a")
    b = run_soak(mini_budget(seed=11), artifacts_dir=tmp_path / "b")
    assert a.ok and b.ok
    assert a.workload_fingerprint == b.workload_fingerprint
    assert (a.n_calls, a.n_measurements, a.n_blackholed) == (
        b.n_calls,
        b.n_measurements,
        b.n_blackholed,
    )
    c = run_soak(mini_budget(seed=12), artifacts_dir=tmp_path / "c")
    assert c.workload_fingerprint != a.workload_fingerprint


def test_sharded_soak_restarts_shards(tmp_path):
    budget = mini_budget(
        ticks=60,
        calls_per_tick=3,
        n_shards=2,
        kill_every_ticks=0,
        shard_kill_every_ticks=12,
        gossip_every_ticks=6,
        window_samples=10,
    )
    report = run_soak(
        budget, workdir=tmp_path / "w", artifacts_dir=tmp_path / "art"
    )
    assert report.ok, report.summary()
    assert report.n_shard_restarts == 5
    assert report.n_gossip_rounds == 10
    assert report.n_restores == 0, "single-controller kills are off"


@pytest.mark.parametrize(
    ("plant", "invariant"),
    [("objects", "gc_objects"), ("fds", "open_fds"), ("series", "metric_series")],
)
def test_planted_leak_trips_matching_invariant(tmp_path, plant, invariant):
    report = run_soak(
        mini_budget(), artifacts_dir=tmp_path / "art", plant=plant
    )
    assert not report.ok, f"planted {plant} leak must fail the soak"
    assert report.stopped_early, "a tripped watchdog must stop the run"
    named = {f["invariant"] for f in report.failures}
    assert invariant in named
    # The artifact names the offending invariant, reproducibly.
    assert report.artifact_path is not None and report.artifact_path.exists()
    payload = json.loads(report.artifact_path.read_text())
    assert invariant in {f["invariant"] for f in payload["failures"]}
    assert payload["seed"] == report.seed


def test_planted_leak_leaves_no_residue(tmp_path):
    run_soak(mini_budget(), artifacts_dir=tmp_path / "art", plant="objects")
    assert LeakyPolicy.hoard == [], "the hoard must be torn down after a run"


def test_unknown_plant_rejected():
    with pytest.raises(ValueError, match="unknown plant"):
        run_soak(mini_budget(), plant="sockets")


def test_time_budget_truncates(tmp_path):
    budget = mini_budget(ticks=100_000, time_budget_s=0.5, kill_every_ticks=0)
    report = run_soak(budget, artifacts_dir=tmp_path / "art")
    assert report.truncated
    assert report.n_ticks < budget.ticks
    assert report.ok, "truncation is reported, never a failure"


def test_soak_metrics_land_on_registry(tmp_path):
    registry = MetricsRegistry()
    run_soak(mini_budget(), registry=registry, artifacts_dir=tmp_path / "art")
    text = registry.render_text()
    assert "via_soak_ticks_total 120" in text
    assert 'via_soak_restores_total{kind="clean"}' in text
    assert 'via_soak_restores_total{kind="raced"}' in text
    assert "via_soak_last_duration_seconds" in text


# ----------------------------------------------------------------------
# Report round-trip and CLI
# ----------------------------------------------------------------------


def test_report_round_trips_through_dict(tmp_path):
    report = run_soak(mini_budget(), artifacts_dir=tmp_path / "art")
    clone = SoakReport.from_dict(json.loads(json.dumps(report.to_dict())))
    assert clone.to_dict() == report.to_dict()
    assert clone.budget == report.budget
    assert clone.ok is report.ok


def test_report_summary_names_failures():
    report = SoakReport(seed=5, budget=mini_budget(seed=5))
    report.failures.append(
        {"leg": "watchdog", "invariant": "rss_kb", "tick": 7, "violated": True}
    )
    text = report.summary()
    assert "FAIL" in text and "rss_kb" in text
    assert "repro soak --seed 5" in text


def test_cli_soak_exit_codes(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    args = ["soak", "--ticks", "120", "--artifacts-dir", str(tmp_path / "art")]
    assert main(args + ["--out", str(tmp_path / "r.json")]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out and "120/360 ticks" not in out
    saved = json.loads((tmp_path / "r.json").read_text())
    assert saved["n_ticks"] == 120

    assert main(args + ["--plant-leak", "fds"]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "open_fds" in out


def test_one_shard_budget_soaks_a_single_controller(tmp_path):
    budget = mini_budget(ticks=40, n_shards=1, kill_every_ticks=10)
    report = run_soak(budget, artifacts_dir=tmp_path / "art")
    assert report.ok, report.summary()
    assert report.n_shard_restarts == 0
    assert report.n_restores == 4
