"""Stateful lifecycle fuzzing, run under pytest's collection.

``make test-verify`` runs a bigger budget of the same machine through
``repro verify``; this keeps a small always-on slice in the normal suite
so a lifecycle regression fails ``pytest`` directly with hypothesis's
shrunk falsifying rule sequence.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import settings  # noqa: E402

from repro.verify.statemachine import build_controller_machine  # noqa: E402

pytestmark = [pytest.mark.verify, pytest.mark.slow]

Machine = build_controller_machine()


class TestControllerLifecycle(Machine.TestCase):
    settings = settings(
        max_examples=10,
        stateful_step_count=25,
        deadline=None,
        database=None,
    )
