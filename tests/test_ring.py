"""Tests for the sharded controller ring (repro.deployment.ring).

In-process ring tests cover routing, redirects, gossip and snapshots
deterministically; the multiprocess tests prove the two acceptance
properties end to end -- WAL-backed failover loses no acknowledged
measurement, and a restarted shard catches up via gossip.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.history import history_from_dict, history_to_dict
from repro.core.policy import ViaConfig
from repro.core.sharding import stable_shard_of
from repro.deployment.client import AsyncViaClient, RedirectError
from repro.deployment.controller import ViaController
from repro.deployment.protocol import (
    SyncMessage,
    SyncRequestMessage,
    decode_message,
    encode_message,
)
from repro.deployment.ring import (
    ControllerRing,
    InProcessRing,
    ShardController,
    ShardedViaClient,
    ShardMap,
    ring_pair_key,
)
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption

pytestmark = pytest.mark.shard

OPTIONS = [DIRECT, RelayOption.bounce(0), RelayOption.bounce(1)]
METRICS = PathMetrics(rtt_ms=90.0, loss_rate=0.01, jitter_ms=4.0)


def run(coro):
    return asyncio.run(coro)


def owned_dsts(shard_map: ShardMap, src: int, *, per_shard: int = 1) -> dict[int, list[int]]:
    """For each shard, destinations whose (src, dst) pair it owns."""
    owned: dict[int, list[int]] = {s: [] for s in range(shard_map.n_shards)}
    dst = src + 1
    while any(len(v) < per_shard for v in owned.values()):
        shard = shard_map.shard_of(src, dst)
        if len(owned[shard]) < per_shard:
            owned[shard].append(dst)
        dst += 1
    return owned


async def fetch_history(port: int, scope: str = "local"):
    """Pull one shard's history over the sync protocol (no hello)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(encode_message(SyncRequestMessage(scope=scope)))
        await writer.drain()
        history = None
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            assert line, "shard closed mid-sync"
            message = decode_message(line)
            assert isinstance(message, SyncMessage), message
            chunk = history_from_dict(message.history)
            history = chunk if history is None else history.merge(chunk)
            if message.last:
                return history
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def fingerprint(history) -> dict:
    """Order-independent content digest of a CallHistory."""
    payload = history_to_dict(history)
    return {
        "window_hours": payload["window_hours"],
        "windows": {
            w: sorted(entries, key=lambda e: json.dumps(e, sort_keys=True))
            for w, entries in payload["windows"].items()
            if entries
        },
    }


class TestShardMap:
    def test_round_trip(self):
        m = ShardMap(version=3, shards=(("127.0.0.1", 4001), ("127.0.0.1", 4002)))
        assert ShardMap.from_dict(m.to_dict()) == m

    def test_routing_matches_stable_hash(self):
        m = ShardMap(version=1, shards=(("h", 1), ("h", 2), ("h", 3)))
        for src, dst in [(1, 2), (9, 4), (7, 7)]:
            assert m.shard_of(src, dst) == stable_shard_of(ring_pair_key(src, dst), 3)
            assert m.shard_of(src, dst) == m.shard_of(dst, src)

    def test_rejects_empty_and_bad_versions(self):
        with pytest.raises(ValueError):
            ShardMap(version=1, shards=())
        with pytest.raises(ValueError):
            ShardMap(version=0, shards=(("h", 1),))
        with pytest.raises(ValueError):
            ShardMap.from_dict({"version": 1})

    def test_pair_key_is_unordered(self):
        assert ring_pair_key(9, 2) == ring_pair_key(2, 9) == (2, 9)


class TestInProcessRouting:
    def test_hello_carries_map_and_client_routes(self, poll_until):
        async def scenario():
            async with InProcessRing(2, ViaConfig(seed=1)) as ring:
                owned = owned_dsts(ring.shard_map, 1)
                client = ShardedViaClient(1, "US", "127.0.0.1", ring.shards[0].port)
                await client.connect()
                assert client.shard_map == ring.shard_map
                for shard, dsts in owned.items():
                    result = await client.assign(dsts[0], OPTIONS, 0.1)
                    assert result.option in OPTIONS
                    await client.report_measurement(dsts[0], result.option, METRICS, 0.1)
                # Each measurement must land on (exactly) its owning shard.
                await poll_until(
                    lambda: all(s.n_measurements == 1 for s in ring.shards)
                )
                assert [s.n_measurements for s in ring.shards] == [1, 1]
                assert [s.local_history.total_calls() for s in ring.shards] == [1, 1]
                # Zero redirects: a fresh map routes every pair correctly.
                assert all(
                    s._obs_redirects.value == 0 for s in ring.shards
                )
                await client.close()

        run(scenario())

    def test_wrong_shard_redirects_without_serving(self, poll_until):
        async def scenario():
            async with InProcessRing(2, ViaConfig(seed=1)) as ring:
                owned = owned_dsts(ring.shard_map, 1)
                dst = owned[0][0]
                wrong = 1  # shard 1 does not own (1, dst)
                raw = AsyncViaClient(1, "US", "127.0.0.1", ring.shards[wrong].port)
                await raw.connect()
                with pytest.raises(RedirectError) as excinfo:
                    await raw.assign(dst, OPTIONS, 0.1)
                err = excinfo.value
                assert err.shard == 0
                assert (err.host, err.port) == ring.shard_map.address_of(0)
                assert ShardMap.from_dict(err.shard_map) == ring.shard_map
                # The redirect consumed no policy state on the wrong
                # shard: no call built, no RNG drawn, nothing cached.
                assert ring.shards[wrong]._call_counter == 0
                assert not ring.shards[wrong]._assign_cache
                assert ring.shards[wrong]._obs_redirects.value == 1
                await raw.close()

        run(scenario())

    def test_sharded_client_repairs_stale_map(self):
        async def scenario():
            async with InProcessRing(2, ViaConfig(seed=1)) as ring:
                owned = owned_dsts(ring.shard_map, 1)
                ring.publish_map()  # fleet map is now v2
                client = ShardedViaClient(1, "US", "127.0.0.1", ring.shards[0].port)
                await client.connect()
                # Sabotage: a v1 map with the shard addresses swapped, so
                # the client's first try lands on the wrong shard.
                client.shard_map = ShardMap(
                    version=1, shards=tuple(reversed(client.shard_map.shards))
                )
                result = await client.assign(owned[0][0], OPTIONS, 0.1)
                assert result.option in OPTIONS
                # The redirect's map (v2) was adopted.
                assert client.shard_map.version == 2
                assert client.shard_map == ring.shard_map
                await client.close()

        run(scenario())

    def test_seed_without_map_degrades_to_single_shard(self):
        async def scenario():
            async with ViaController(ViaConfig(seed=1)) as controller:
                client = ShardedViaClient(1, "US", "127.0.0.1", controller.port)
                await client.connect()
                assert client.shard_map.n_shards == 1
                result = await client.assign(2, OPTIONS, 0.1)
                assert result.option in OPTIONS
                await client.close()

        run(scenario())

    def test_single_shard_ring_never_redirects(self):
        async def scenario():
            async with InProcessRing(1, ViaConfig(seed=1)) as ring:
                client = AsyncViaClient(1, "US", "127.0.0.1", ring.shards[0].port)
                await client.connect()
                for dst in range(2, 8):
                    result = await client.assign(dst, OPTIONS, 0.1)
                    assert result.option in OPTIONS
                assert ring.shards[0]._obs_redirects.value == 0
                await client.close()

        run(scenario())


class TestGossip:
    async def _seed_measurements(self, ring, poll_until, n_per_shard=3):
        owned = owned_dsts(ring.shard_map, 1, per_shard=n_per_shard)
        client = ShardedViaClient(1, "US", "127.0.0.1", ring.shards[0].port)
        await client.connect()
        total = 0
        for dsts in owned.values():
            for i, dst in enumerate(dsts):
                await client.report_measurement(
                    dst, OPTIONS[i % len(OPTIONS)], METRICS, 0.1 + 0.01 * i
                )
                total += 1
        await poll_until(
            lambda: sum(s.n_measurements for s in ring.shards) >= total
        )
        await client.close()
        return total

    def test_round_folds_every_peer_and_is_idempotent(self, poll_until):
        async def scenario():
            async with InProcessRing(3, ViaConfig(seed=1)) as ring:
                total = await self._seed_measurements(ring, poll_until)
                # Before gossip each shard only knows its own pairs.
                assert all(
                    s.policy.history.total_calls() < total for s in ring.shards
                )
                await ring.gossip_round()
                assert [s.policy.history.total_calls() for s in ring.shards] == [
                    total
                ] * 3
                # Anti-entropy is idempotent: another round changes nothing.
                await ring.gossip_round()
                assert [s.policy.history.total_calls() for s in ring.shards] == [
                    total
                ] * 3
                merged = [fingerprint(s.policy.history) for s in ring.shards]
                assert merged[0] == merged[1] == merged[2]
                for shard in ring.shards:
                    assert shard._obs_gossip_rounds.value == 2
                    assert shard._obs_gossip_exchanges.value_for(outcome="ok") == 4

        run(scenario())

    def test_local_scope_stays_local(self, poll_until):
        async def scenario():
            async with InProcessRing(2, ViaConfig(seed=1)) as ring:
                total = await self._seed_measurements(ring, poll_until)
                await ring.gossip_round()
                for shard in ring.shards:
                    local = await fetch_history(shard.port, scope="local")
                    merged = await fetch_history(shard.port, scope="merged")
                    # Gossip must not leak peers' entries back into the
                    # local mirror (that would double count next round).
                    assert local.total_calls() == shard.local_history.total_calls()
                    assert merged.total_calls() == total

        run(scenario())

    def test_dead_peer_is_counted_not_fatal(self, poll_until):
        async def scenario():
            ring = InProcessRing(2, ViaConfig(seed=1))
            await ring.start()
            try:
                await self._seed_measurements(ring, poll_until)
                survivor, casualty = ring.shards
                own = survivor.local_history.total_calls()
                await casualty.stop()
                folded = await survivor.gossip_now()
                assert folded == 0
                assert survivor._obs_gossip_exchanges.value_for(outcome="error") == 1
                # The round still completed with what it had.
                assert survivor.policy.history.total_calls() == own
            finally:
                await ring.shards[0].stop()

        run(scenario())

    def test_sync_chunks_large_histories(self, poll_until):
        async def scenario():
            async with InProcessRing(
                2, ViaConfig(seed=1), sync_chunk_entries=5
            ) as ring:
                shard = ring.shards[0]
                client = AsyncViaClient(1, "US", "127.0.0.1", shard.port)
                await client.connect()
                for dst in range(2, 30):
                    if ring.shard_map.shard_of(1, dst) == 0:
                        await client.report_measurement(dst, DIRECT, METRICS, 0.1)
                await poll_until(lambda: shard.n_measurements > 5)
                history = await fetch_history(shard.port, scope="local")
                assert fingerprint(history) == fingerprint(shard.local_history)
                await client.close()

        run(scenario())


class TestShardSnapshots:
    def test_snapshot_round_trips_local_mirror(self):
        shard = ShardController(ViaConfig(seed=1), shard_index=0, n_shards=2)
        from repro.deployment.protocol import MeasurementMessage, encode_option

        shard._on_measurement(
            MeasurementMessage(
                src_id=1, dst_id=4, t_hours=0.2,
                option=encode_option(DIRECT),
                rtt_ms=80.0, loss_rate=0.0, jitter_ms=2.0,
            ),
            log=False,
        )
        payload = shard.snapshot_dict()
        assert "local_history" in payload

        clone = ShardController(ViaConfig(seed=1), shard_index=0, n_shards=2)
        clone.restore_dict(payload)
        assert fingerprint(clone.local_history) == fingerprint(shard.local_history)

    def test_map_updates_are_version_gated(self):
        from repro.deployment.protocol import ShardMapMessage

        shard = ShardController(
            ViaConfig(seed=1), shard_index=0, n_shards=2, gossip_on_map_update=False
        )
        v2 = ShardMap(version=2, shards=(("h", 1), ("h", 2)))
        shard._on_shard_map(ShardMapMessage(shard_map=v2.to_dict()))
        assert shard.shard_map == v2
        # Older, same-version, and wrong-topology maps are all rejected.
        v1 = ShardMap(version=1, shards=(("old", 9), ("old", 8)))
        shard._on_shard_map(ShardMapMessage(shard_map=v1.to_dict()))
        assert shard.shard_map == v2
        v3_wrong = ShardMap(version=3, shards=(("h", 1),))
        shard._on_shard_map(ShardMapMessage(shard_map=v3_wrong.to_dict()))
        assert shard.shard_map == v2

    def test_rejects_bad_shard_index(self):
        with pytest.raises(ValueError):
            ShardController(ViaConfig(), shard_index=2, n_shards=2)


@pytest.mark.slow
class TestMultiprocessFleet:
    """The acceptance properties, against real shard processes."""

    def test_failover_loses_no_acknowledged_measurement(self, tmp_path, poll_until):
        ring = ControllerRing(2, ViaConfig(seed=1), store_root=tmp_path)
        shard_map = ring.start()
        try:
            n_sent = {0: 0, 1: 0}

            async def send_traffic():
                owned = owned_dsts(shard_map, 1, per_shard=4)
                client = ShardedViaClient(
                    1, "US", shard_map.shards[0][0], shard_map.shards[0][1]
                )
                await client.connect()
                for shard, dsts in owned.items():
                    for i, dst in enumerate(dsts):
                        await client.assign(dst, OPTIONS, 0.1 + 0.01 * i)
                        await client.report_measurement(
                            dst, OPTIONS[i % len(OPTIONS)], METRICS, 0.1 + 0.01 * i
                        )
                        n_sent[shard] += 1
                # Acknowledge: poll each shard's counter until every sent
                # measurement is acted on (and therefore WAL-appended --
                # the controller logs before it acts).
                stats = await client.fetch_stats()
                assert len(stats) == 2

                async def counts():
                    s = await client.fetch_stats()
                    return [m.n_measurements for m in s]

                got = await poll_until(
                    counts, lambda c: c == [n_sent[0], n_sent[1]], timeout_s=10.0
                )
                assert got == [n_sent[0], n_sent[1]]
                pre = await fetch_history(shard_map.shards[0][1], scope="local")
                await client.close()
                return pre

            pre_kill = run(send_traffic())
            assert pre_kill.total_calls() == n_sent[0]

            # SIGKILL shard 0 mid-flight, then bring it back on its port.
            ring.kill_shard(0)
            ring.restart_shard(0)

            async def verify():
                # Every acknowledged measurement survived the crash: the
                # recovered local history is content-identical.
                post = await fetch_history(shard_map.shards[0][1], scope="local")
                assert fingerprint(post) == fingerprint(pre_kill)
                # ...and the map re-publish triggered catch-up gossip, so
                # the restarted shard's merged view covers the fleet.
                async def merged_total():
                    merged = await fetch_history(shard_map.shards[0][1], scope="merged")
                    return merged.total_calls()

                total = await poll_until(
                    merged_total,
                    lambda t: t == n_sent[0] + n_sent[1],
                    timeout_s=10.0,
                )
                assert total == n_sent[0] + n_sent[1]

            run(verify())
        finally:
            ring.stop()

    def test_per_shard_store_layout(self, tmp_path):
        ring = ControllerRing(2, ViaConfig(seed=1), store_root=tmp_path)
        ring.start()
        try:
            assert (tmp_path / "shard-0").is_dir()
            assert (tmp_path / "shard-1").is_dir()
        finally:
            ring.stop()
