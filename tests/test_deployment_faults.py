"""Fault-injection and operational tests for the deployment layer."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.policy import ViaConfig
from repro.deployment import ViaController
from repro.deployment import TestbedClient as AgentClient
from repro.deployment.protocol import StatsMessage, encode_message, HelloMessage
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import RelayOption

OPTIONS = [RelayOption.bounce(0), RelayOption.bounce(1)]
METRICS = PathMetrics(rtt_ms=100.0, loss_rate=0.01, jitter_ms=5.0)


def run(coro):
    return asyncio.run(coro)


class TestStatsEndpoint:
    def test_counters_reflect_traffic(self):
        async def scenario():
            async with ViaController(ViaConfig(seed=1)) as controller:
                async with AgentClient(0, "US", "127.0.0.1", controller.port) as client:
                    await client.report_measurement(1, OPTIONS[0], METRICS, 0.1)
                    await client.request_assignment(1, OPTIONS, 0.2)
                    stats = await client.fetch_stats()
                assert isinstance(stats, StatsMessage)
                assert stats.n_measurements == 1
                assert stats.n_requests == 1
                assert stats.n_clients == 1
                assert stats.n_refreshes >= 1

        run(scenario())

    def test_stats_visible_across_clients(self):
        async def scenario():
            async with ViaController() as controller:
                async with AgentClient(0, "US", "127.0.0.1", controller.port) as a:
                    async with AgentClient(1, "IN", "127.0.0.1", controller.port) as b:
                        await a.request_assignment(1, OPTIONS, 0.1)
                        stats = await b.fetch_stats()
                        assert stats.n_clients == 2
                        assert stats.n_requests == 1

        run(scenario())


class TestFaultInjection:
    def test_abrupt_disconnect_leaves_controller_serving(self):
        async def scenario():
            async with ViaController() as controller:
                # Client 1 vanishes without bye, mid-session.
                reader, writer = await asyncio.open_connection("127.0.0.1", controller.port)
                writer.write(encode_message(HelloMessage(client_id=9, site="X")))
                await writer.drain()
                writer.close()
                # Another client still gets served.
                async with AgentClient(1, "US", "127.0.0.1", controller.port) as client:
                    choice = await client.request_assignment(2, OPTIONS, 0.1)
                    assert choice in OPTIONS

        run(scenario())

    def test_partial_line_then_disconnect(self):
        async def scenario():
            async with ViaController() as controller:
                reader, writer = await asyncio.open_connection("127.0.0.1", controller.port)
                writer.write(b'{"type": "request", "src_id"')  # unterminated
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                async with AgentClient(1, "US", "127.0.0.1", controller.port) as client:
                    assert await client.request_assignment(2, OPTIONS, 0.1) in OPTIONS

        run(scenario())

    def test_measurement_flood_from_many_clients(self):
        async def scenario():
            async with ViaController() as controller:
                clients = [
                    AgentClient(i, "US", "127.0.0.1", controller.port) for i in range(8)
                ]
                await asyncio.gather(*(c.connect() for c in clients))

                async def flood(client: AgentClient):
                    for i in range(25):
                        await client.report_measurement(
                            99, OPTIONS[i % 2], METRICS, 0.1 + 0.001 * i
                        )

                await asyncio.gather(*(flood(c) for c in clients))
                stats = await clients[0].fetch_stats()
                assert stats.n_measurements == 8 * 25
                await asyncio.gather(*(c.close() for c in clients))

        run(scenario())

    def test_controller_restart_rebinds(self):
        async def scenario():
            controller = ViaController()
            await controller.start()
            port1 = controller.port
            await controller.stop()
            # A stopped controller refuses connections...
            with pytest.raises((ConnectionError, OSError)):
                await asyncio.open_connection("127.0.0.1", port1)
            # ...and can be started again.
            await controller.start()
            try:
                async with AgentClient(0, "US", "127.0.0.1", controller.port) as client:
                    assert await client.request_assignment(1, OPTIONS, 0.1) in OPTIONS
            finally:
                await controller.stop()

        run(scenario())

    def test_double_start_rejected(self):
        async def scenario():
            async with ViaController() as controller:
                with pytest.raises(RuntimeError):
                    await controller.start()

        run(scenario())
