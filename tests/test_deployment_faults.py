"""Fault-injection and operational tests for the deployment layer."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.policy import ViaConfig
from repro.deployment import (
    FaultPlan,
    RelayOutage,
    RetryPolicy,
    ViaController,
    run_testbed,
)
from repro.deployment import TestbedConfig as DeploymentConfig
from repro.deployment import TestbedClient as AgentClient
from repro.deployment.protocol import StatsMessage, encode_message, HelloMessage
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import RelayOption

pytestmark = pytest.mark.faults

OPTIONS = [RelayOption.bounce(0), RelayOption.bounce(1)]
METRICS = PathMetrics(rtt_ms=100.0, loss_rate=0.01, jitter_ms=5.0)


def run(coro):
    return asyncio.run(coro)


class TestStatsEndpoint:
    def test_counters_reflect_traffic(self):
        async def scenario():
            async with ViaController(ViaConfig(seed=1)) as controller:
                async with AgentClient(0, "US", "127.0.0.1", controller.port) as client:
                    await client.report_measurement(1, OPTIONS[0], METRICS, 0.1)
                    await client.request_assignment(1, OPTIONS, 0.2)
                    stats = await client.fetch_stats()
                assert isinstance(stats, StatsMessage)
                assert stats.n_measurements == 1
                assert stats.n_requests == 1
                assert stats.n_clients == 1
                assert stats.n_refreshes >= 1

        run(scenario())

    def test_stats_visible_across_clients(self):
        async def scenario():
            async with ViaController() as controller:
                async with AgentClient(0, "US", "127.0.0.1", controller.port) as a:
                    async with AgentClient(1, "IN", "127.0.0.1", controller.port) as b:
                        await a.request_assignment(1, OPTIONS, 0.1)
                        stats = await b.fetch_stats()
                        assert stats.n_clients == 2
                        assert stats.n_requests == 1

        run(scenario())


class TestFaultInjection:
    def test_abrupt_disconnect_leaves_controller_serving(self):
        async def scenario():
            async with ViaController() as controller:
                # Client 1 vanishes without bye, mid-session.
                reader, writer = await asyncio.open_connection("127.0.0.1", controller.port)
                writer.write(encode_message(HelloMessage(client_id=9, site="X")))
                await writer.drain()
                writer.close()
                # Another client still gets served.
                async with AgentClient(1, "US", "127.0.0.1", controller.port) as client:
                    choice = await client.request_assignment(2, OPTIONS, 0.1)
                    assert choice in OPTIONS

        run(scenario())

    def test_partial_line_then_disconnect(self):
        async def scenario():
            async with ViaController() as controller:
                reader, writer = await asyncio.open_connection("127.0.0.1", controller.port)
                writer.write(b'{"type": "request", "src_id"')  # unterminated
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                async with AgentClient(1, "US", "127.0.0.1", controller.port) as client:
                    assert await client.request_assignment(2, OPTIONS, 0.1) in OPTIONS

        run(scenario())

    def test_measurement_flood_from_many_clients(self, poll_until):
        async def scenario():
            async with ViaController() as controller:
                clients = [
                    AgentClient(i, "US", "127.0.0.1", controller.port) for i in range(8)
                ]
                await asyncio.gather(*(c.connect() for c in clients))

                async def flood(client: AgentClient):
                    for i in range(25):
                        await client.report_measurement(
                            99, OPTIONS[i % 2], METRICS, 0.1 + 0.001 * i
                        )

                await asyncio.gather(*(flood(c) for c in clients))
                # Measurements are fire-and-forget: the gather above only
                # proves the bytes were written, not that the server has
                # drained every connection's queue.  Poll until the counter
                # converges, then assert the exact total (nothing lost).
                stats = await poll_until(
                    clients[0].fetch_stats,
                    lambda s: s.n_measurements >= 8 * 25,
                )
                assert stats.n_measurements == 8 * 25
                await asyncio.gather(*(c.close() for c in clients))

        run(scenario())

    def test_controller_restart_rebinds(self):
        async def scenario():
            controller = ViaController()
            await controller.start()
            port1 = controller.port
            await controller.stop()
            # A stopped controller refuses connections...
            with pytest.raises((ConnectionError, OSError)):
                await asyncio.open_connection("127.0.0.1", port1)
            # ...and can be started again.
            await controller.start()
            try:
                async with AgentClient(0, "US", "127.0.0.1", controller.port) as client:
                    assert await client.request_assignment(1, OPTIONS, 0.1) in OPTIONS
            finally:
                await controller.stop()

        run(scenario())

    def test_double_start_rejected(self):
        async def scenario():
            async with ViaController() as controller:
                with pytest.raises(RuntimeError):
                    await controller.start()

        run(scenario())

    def test_disconnect_prunes_live_client_set(self, poll_until):
        async def scenario():
            async with ViaController() as controller:
                a = AgentClient(0, "US", "127.0.0.1", controller.port)
                b = AgentClient(1, "IN", "127.0.0.1", controller.port)
                await a.connect()
                await b.connect()
                stats = await a.fetch_stats()
                assert stats.n_clients == 2
                await b.close()
                # The disconnect is observed asynchronously; poll stats.
                stats = await poll_until(a.fetch_stats, lambda s: s.n_clients == 1)
                assert stats.n_clients == 1
                # The site label stays sticky for call records.
                assert controller.site_labels[1] == "IN"
                await a.close()

        run(scenario())


class TestPolicyErrorIsolation:
    def test_assign_failure_yields_default_reply(self):
        async def scenario():
            async with ViaController() as controller:
                def boom(call, options):
                    raise RuntimeError("policy blew up")

                controller.policy.assign = boom
                async with AgentClient(0, "US", "127.0.0.1", controller.port) as client:
                    choice = await client.request_assignment(1, OPTIONS, 0.1)
                    # Best-effort server-side fallback: the first candidate
                    # (no direct path was offered).
                    assert choice == OPTIONS[0]
                    assert controller.n_policy_errors == 1
                    # The connection survived: another request still works.
                    assert await client.request_assignment(1, OPTIONS, 0.2) == OPTIONS[0]

        run(scenario())

    def test_observe_failure_does_not_kill_connection(self):
        async def scenario():
            async with ViaController() as controller:
                def boom(call, option, metrics):
                    raise RuntimeError("observe blew up")

                controller.policy.observe = boom
                async with AgentClient(0, "US", "127.0.0.1", controller.port) as client:
                    await client.report_measurement(1, OPTIONS[0], METRICS, 0.1)
                    # A request round-trip fences the fire-and-forget send.
                    assert await client.request_assignment(1, OPTIONS, 0.2) in OPTIONS
                    assert controller.n_policy_errors == 1
                    assert controller.n_measurements == 1

        run(scenario())

    def test_stats_carry_resilience_counters(self):
        async def scenario():
            async with ViaController() as controller:
                async with AgentClient(0, "US", "127.0.0.1", controller.port) as client:
                    await client.request_assignment(1, OPTIONS, 0.1)
                    stats = await client.fetch_stats()
                # A clean run: the counters exist and are all zero.
                assert stats.n_fallbacks == 0
                assert stats.n_retries == 0
                assert stats.n_reconnects == 0
                assert stats.n_policy_errors == 0
                assert stats.n_faults_injected == 0

        run(scenario())


class TestChaosMode:
    def test_chaos_run_completes_with_degradation_counters(self):
        """The acceptance scenario: connection drops + a blackhole window +
        one relay outage; the experiment completes and the resilience
        machinery visibly absorbed the faults."""
        chaos = FaultPlan(
            seed=3,
            drop_connection_rate=0.05,
            blackhole_windows=((24.05, 24.10),),
            relay_outages=(RelayOutage(relay_id=0, start_hours=24.0, end_hours=24.3),),
        )
        config = DeploymentConfig(
            n_clients=6,
            n_pairs=4,
            measurement_rounds=2,
            via_rounds=6,
            seed=5,
            chaos=chaos,
            retry=RetryPolicy(
                max_attempts=2,
                request_timeout_s=0.05,
                base_delay_s=0.01,
                max_delay_s=0.02,
                deadline_s=0.5,
            ),
        )
        report = run_testbed(config)
        assert report.n_calls == 4 * 6
        assert len(report.suboptimalities) == report.n_calls
        # Blackholed requests timed out, were retried, then fell back.
        assert report.n_retries > 0
        assert report.n_fallbacks > 0
        assert report.n_timeouts > 0
        assert report.n_faults_injected > 0
        # Every VIA-phase call ran inside the relay-0 outage window.
        assert report.n_outage_calls == report.n_calls

    def test_clean_run_reports_zero_fault_counters(self):
        config = DeploymentConfig(
            n_clients=6, n_pairs=3, measurement_rounds=2, via_rounds=4, seed=6
        )
        report = run_testbed(config)
        assert report.n_fallbacks == 0
        assert report.n_retries == 0
        assert report.n_reconnects == 0
        assert report.n_faults_injected == 0
        assert report.n_outage_calls == 0
        assert report.n_dead_assignments == 0
