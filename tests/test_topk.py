"""Unit tests for repro.core.topk (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.predictor import Prediction
from repro.core.topk import dynamic_top_k, fixed_top_k
from repro.netmodel.options import RelayOption


def prediction(mean: float, sem: float) -> Prediction:
    return Prediction(
        mean=np.array([mean, 0.01, 5.0]),
        sem=np.array([sem, 0.001, 0.5]),
        n=10,
        source="history",
    )


def options(n: int) -> list[RelayOption]:
    return [RelayOption.bounce(i) for i in range(n)]


class TestDynamicTopK:
    def test_empty_predictions(self):
        assert dynamic_top_k({}, 0) == []

    def test_single_option(self):
        opts = options(1)
        result = dynamic_top_k({opts[0]: prediction(100.0, 5.0)}, 0)
        assert result == opts

    def test_clearly_separated_keeps_only_best(self):
        opts = options(3)
        preds = {
            opts[0]: prediction(100.0, 1.0),
            opts[1]: prediction(200.0, 1.0),
            opts[2]: prediction(300.0, 1.0),
        }
        assert dynamic_top_k(preds, 0) == [opts[0]]

    def test_overlapping_intervals_all_kept(self):
        opts = options(3)
        preds = {o: prediction(100.0 + i, 50.0) for i, o in enumerate(opts)}
        assert set(dynamic_top_k(preds, 0)) == set(opts)

    def test_partial_overlap_chain(self):
        opts = options(4)
        preds = {
            opts[0]: prediction(100.0, 10.0),   # CI [80.4, 119.6]
            opts[1]: prediction(110.0, 10.0),   # CI [90.4, 129.6]  overlaps 0
            opts[2]: prediction(135.0, 2.0),    # CI [131.1, 138.9] overlaps 1's upper? lower 131 > 129.6
            opts[3]: prediction(500.0, 2.0),
        }
        result = dynamic_top_k(preds, 0)
        assert set(result) == {opts[0], opts[1]}

    def test_result_sorted_by_predicted_mean(self):
        opts = options(3)
        preds = {
            opts[2]: prediction(100.0, 40.0),
            opts[0]: prediction(120.0, 40.0),
            opts[1]: prediction(110.0, 40.0),
        }
        result = dynamic_top_k(preds, 0)
        means = [preds[o].value(0) for o in result]
        assert means == sorted(means)

    def test_max_k_caps_size(self):
        opts = options(10)
        preds = {o: prediction(100.0, 100.0) for o in opts}
        assert len(dynamic_top_k(preds, 0, max_k=4)) == 4

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=1000.0),
                st.floats(min_value=0.1, max_value=200.0),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=100)
    def test_separation_invariant(self, params):
        """Every excluded option's lower bound exceeds every kept option's
        upper bound -- the defining property of Algorithm 2."""
        opts = options(len(params))
        preds = {o: prediction(m, s) for o, (m, s) in zip(opts, params)}
        kept = dynamic_top_k(preds, 0)
        assert kept, "top-k never empty for non-empty predictions"
        kept_set = set(kept)
        max_upper = max(preds[o].upper(0) for o in kept)
        for option in opts:
            if option not in kept_set:
                assert preds[option].lower(0) > max_upper

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=1000.0),
                st.floats(min_value=0.1, max_value=200.0),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=100)
    def test_contains_best_predicted(self, params):
        opts = options(len(params))
        preds = {o: prediction(m, s) for o, (m, s) in zip(opts, params)}
        kept = dynamic_top_k(preds, 0)
        best = min(preds, key=lambda o: preds[o].value(0))
        # The best *lower-bound* option is always kept; the best mean is
        # kept whenever its interval isn't dominated, which holds by
        # construction of the sweep.
        assert best in kept


class TestFixedTopK:
    def test_picks_best_means(self):
        opts = options(5)
        preds = {o: prediction(100.0 + 10 * i, 1.0) for i, o in enumerate(opts)}
        assert fixed_top_k(preds, 0, 2) == [opts[0], opts[1]]

    def test_k_larger_than_population(self):
        opts = options(2)
        preds = {o: prediction(100.0, 1.0) for o in opts}
        assert len(fixed_top_k(preds, 0, 10)) == 2

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            fixed_top_k({}, 0, 0)
