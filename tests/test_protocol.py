"""Unit tests for repro.deployment.protocol (wire format)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.deployment.protocol import (
    AssignMessage,
    ByeMessage,
    HelloMessage,
    MeasurementMessage,
    ProtocolError,
    RequestMessage,
    decode_message,
    decode_option,
    encode_message,
    encode_option,
)
from repro.netmodel.options import DIRECT, RelayOption


class TestOptionCodec:
    @pytest.mark.parametrize(
        "option", [DIRECT, RelayOption.bounce(3), RelayOption.transit(1, 7)]
    )
    def test_roundtrip(self, option):
        assert decode_option(encode_option(option)) == option

    def test_decode_rejects_unknown_kind(self):
        with pytest.raises(ProtocolError):
            decode_option({"kind": "teleport", "ingress": None, "egress": None})

    def test_decode_rejects_inconsistent_ids(self):
        with pytest.raises(ProtocolError):
            decode_option({"kind": "bounce", "ingress": 1, "egress": 2})

    def test_decode_rejects_missing_kind(self):
        with pytest.raises(ProtocolError):
            decode_option({"ingress": 1})


class TestMessageCodec:
    def test_hello_roundtrip(self):
        msg = HelloMessage(client_id=3, site="SG")
        assert decode_message(encode_message(msg)) == msg

    def test_bye_roundtrip(self):
        msg = ByeMessage(client_id=5)
        assert decode_message(encode_message(msg)) == msg

    def test_assign_roundtrip(self):
        msg = AssignMessage(option=encode_option(RelayOption.bounce(2)))
        assert decode_message(encode_message(msg)) == msg

    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    )
    @settings(max_examples=50)
    def test_measurement_roundtrip(self, src, dst, t, rtt, loss, jitter):
        msg = MeasurementMessage(
            src_id=src, dst_id=dst, t_hours=t,
            option=encode_option(RelayOption.transit(0, 1)),
            rtt_ms=rtt, loss_rate=loss, jitter_ms=jitter,
        )
        decoded = decode_message(encode_message(msg))
        assert decoded == msg
        assert decoded.metrics().rtt_ms == pytest.approx(rtt)

    def test_request_roundtrip(self):
        msg = RequestMessage(
            src_id=1, dst_id=2, t_hours=3.5,
            options=[encode_option(o) for o in (DIRECT, RelayOption.bounce(0))],
        )
        assert decode_message(encode_message(msg)) == msg

    def test_line_terminated(self):
        assert encode_message(ByeMessage(client_id=1)).endswith(b"\n")

    def test_decode_accepts_str(self):
        line = encode_message(HelloMessage(client_id=1, site="US")).decode()
        assert isinstance(decode_message(line), HelloMessage)


class TestMalformedInput:
    def test_rejects_invalid_json(self):
        with pytest.raises(ProtocolError, match="JSON"):
            decode_message(b"not json\n")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_message(b"[1, 2, 3]\n")

    def test_rejects_unknown_type(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_message(json.dumps({"type": "ping"}).encode())

    def test_rejects_missing_fields(self):
        with pytest.raises(ProtocolError, match="bad fields"):
            decode_message(json.dumps({"type": "hello"}).encode())

    def test_rejects_extra_fields(self):
        payload = {"type": "bye", "client_id": 1, "extra": True}
        with pytest.raises(ProtocolError):
            decode_message(json.dumps(payload).encode())

    def test_rejects_oversized_line(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_message(b"x" * (64 * 1024 + 1))
