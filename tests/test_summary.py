"""Unit tests for repro.analysis.summary (whole-experiment reporting)."""

from __future__ import annotations

import pytest

from repro.analysis import experiment_report
from repro.core.baselines import DefaultPolicy, OraclePolicy
from repro.simulation import ExperimentPlan


@pytest.fixture(scope="module")
def evaluated(small_world, small_trace):
    plan = ExperimentPlan(world=small_world, trace=small_trace,
                          warmup_days=1, min_pair_calls=30)
    results = plan.run(
        {"default": DefaultPolicy(), "oracle": OraclePolicy(small_world, "rtt_ms")},
        seed=55,
    )
    return results, {name: plan.evaluate(r) for name, r in results.items()}


class TestExperimentReport:
    def test_contains_all_strategies(self, evaluated):
        results, outcomes = evaluated
        report = experiment_report(outcomes, metric="rtt_ms", results=results)
        assert "default" in report and "oracle" in report

    def test_sections_present(self, evaluated):
        results, outcomes = evaluated
        report = experiment_report(outcomes, metric="rtt_ms", results=results)
        assert "PNR by strategy" in report
        assert "Percentile improvements" in report
        assert "International vs domestic" in report
        assert "Relay mix" in report

    def test_error_bars_rendered(self, evaluated):
        _results, outcomes = evaluated
        report = experiment_report(outcomes, metric="rtt_ms")
        assert "±" in report

    def test_any_metric_mode(self, evaluated):
        _results, outcomes = evaluated
        report = experiment_report(outcomes, metric="mos")  # not a raw metric
        assert "PNR by strategy" in report
        # No percentile table for composite objectives.
        assert "Percentile improvements" not in report

    def test_missing_baseline_rejected(self, evaluated):
        _results, outcomes = evaluated
        with pytest.raises(KeyError):
            experiment_report(outcomes, baseline="nonexistent")
