"""Unit tests for repro.netmodel.dynamics (regime switching, diurnal)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netmodel.dynamics import (
    ACCESS_REGIME,
    PUBLIC_WAN_REGIME,
    STABLE_REGIME,
    RegimeConfig,
    RegimeProcess,
    diurnal_factor,
)


class TestRegimeConfig:
    @pytest.mark.parametrize("config", [STABLE_REGIME, PUBLIC_WAN_REGIME, ACCESS_REGIME])
    def test_builtin_configs_valid(self, config):
        for row in config.transition:
            assert sum(row) == pytest.approx(1.0)

    def test_rejects_bad_row_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            RegimeConfig(
                transition=((0.5, 0.4, 0.2), (1, 0, 0), (1, 0, 0)),
                rtt_multipliers=(1, 1, 1),
                loss_multipliers=(1, 1, 1),
                jitter_multipliers=(1, 1, 1),
            )

    def test_rejects_negative_probability(self):
        with pytest.raises(ValueError):
            RegimeConfig(
                transition=((1.2, -0.2, 0.0), (1, 0, 0), (1, 0, 0)),
                rtt_multipliers=(1, 1, 1),
                loss_multipliers=(1, 1, 1),
                jitter_multipliers=(1, 1, 1),
            )

    def test_rejects_non_positive_multiplier(self):
        with pytest.raises(ValueError):
            RegimeConfig(
                transition=((1, 0, 0), (1, 0, 0), (1, 0, 0)),
                rtt_multipliers=(1, 0, 1),
                loss_multipliers=(1, 1, 1),
                jitter_multipliers=(1, 1, 1),
            )

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            RegimeConfig(
                transition=((1, 0), (1, 0), (0, 1)),  # type: ignore[arg-type]
                rtt_multipliers=(1, 1, 1),
                loss_multipliers=(1, 1, 1),
                jitter_multipliers=(1, 1, 1),
            )

    @pytest.mark.parametrize("config", [STABLE_REGIME, PUBLIC_WAN_REGIME, ACCESS_REGIME])
    def test_stationary_distribution_sums_to_one(self, config):
        pi = config.stationary_distribution()
        assert pi.sum() == pytest.approx(1.0)
        assert (pi >= 0).all()

    def test_stationary_is_fixed_point(self):
        pi = PUBLIC_WAN_REGIME.stationary_distribution()
        matrix = np.asarray(PUBLIC_WAN_REGIME.transition)
        assert np.allclose(pi @ matrix, pi, atol=1e-9)

    def test_good_state_dominates_stable_regime(self):
        pi = STABLE_REGIME.stationary_distribution()
        assert pi[0] > 0.9


class TestRegimeProcess:
    def test_sample_length(self, rng):
        proc = RegimeProcess.sample(PUBLIC_WAN_REGIME, 30, rng)
        assert proc.n_days == 30

    def test_rejects_zero_days(self, rng):
        with pytest.raises(ValueError):
            RegimeProcess.sample(PUBLIC_WAN_REGIME, 0, rng)

    def test_states_in_range(self, rng):
        proc = RegimeProcess.sample(ACCESS_REGIME, 100, rng)
        assert set(np.unique(proc.states)) <= {0, 1, 2}

    def test_deterministic_given_generator(self):
        p1 = RegimeProcess.sample(PUBLIC_WAN_REGIME, 50, np.random.default_rng(5))
        p2 = RegimeProcess.sample(PUBLIC_WAN_REGIME, 50, np.random.default_rng(5))
        assert (p1.states == p2.states).all()

    def test_state_on_clamps_beyond_horizon(self, rng):
        proc = RegimeProcess.sample(STABLE_REGIME, 5, rng)
        assert proc.state_on(100) == proc.state_on(4)

    def test_state_on_rejects_negative_day(self, rng):
        proc = RegimeProcess.sample(STABLE_REGIME, 5, rng)
        with pytest.raises(ValueError):
            proc.state_on(-1)

    def test_multipliers_match_state(self, rng):
        proc = RegimeProcess.sample(PUBLIC_WAN_REGIME, 20, rng)
        for day in range(20):
            state = proc.state_on(day)
            mults = proc.multipliers_on(day)
            assert mults == (
                PUBLIC_WAN_REGIME.rtt_multipliers[state],
                PUBLIC_WAN_REGIME.loss_multipliers[state],
                PUBLIC_WAN_REGIME.jitter_multipliers[state],
            )

    def test_long_run_occupancy_near_stationary(self):
        proc = RegimeProcess.sample(
            PUBLIC_WAN_REGIME, 5000, np.random.default_rng(7)
        )
        pi = PUBLIC_WAN_REGIME.stationary_distribution()
        occupancy = np.bincount(proc.states, minlength=3) / proc.n_days
        assert np.allclose(occupancy, pi, atol=0.05)


class TestDiurnal:
    def test_averages_to_one_over_a_day(self):
        values = [diurnal_factor(t / 10.0) for t in range(240)]
        assert np.mean(values) == pytest.approx(1.0, abs=1e-3)

    def test_peaks_at_peak_hour(self):
        peak = diurnal_factor(20.0, amplitude=0.1, peak_hour=20.0)
        trough = diurnal_factor(8.0, amplitude=0.1, peak_hour=20.0)
        assert peak == pytest.approx(1.1)
        assert trough == pytest.approx(0.9)

    def test_period_is_24_hours(self):
        assert diurnal_factor(5.0) == pytest.approx(diurnal_factor(29.0))
        assert diurnal_factor(5.0) == pytest.approx(diurnal_factor(24 * 100 + 5.0))

    def test_zero_amplitude_is_flat(self):
        assert diurnal_factor(13.7, amplitude=0.0) == 1.0

    @pytest.mark.parametrize("amplitude", [-0.1, 1.0, 2.0])
    def test_rejects_bad_amplitude(self, amplitude):
        with pytest.raises(ValueError):
            diurnal_factor(0.0, amplitude=amplitude)
