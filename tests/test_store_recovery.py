"""Crash-recovery equivalence: snapshot + WAL replay rebuilds the controller.

The contract under test: a controller recovered from its durable store
holds *exactly* the state an uninterrupted controller would -- identical
:class:`~repro.core.history.CallHistory`, identical policy RNG position,
and therefore identical future assignments.  Damage (torn tails, CRC
corruption, an unreadable snapshot) is counted, never raised.
"""

from __future__ import annotations

import asyncio
import json
import struct

import numpy as np

from repro.core.history import history_to_dict
from repro.core.policy import ViaConfig
from repro.deployment.controller import ViaController
from repro.deployment.protocol import (
    MeasurementMessage,
    RequestMessage,
    encode_option,
)
from repro.netmodel.options import RelayOption
from repro.store import SEGMENT_MAGIC, Store, recover

import pytest

pytestmark = [pytest.mark.store, pytest.mark.slow]

_HEADER = struct.Struct("<II")

SITES = {0: "US", 1: "GB", 2: "IN", 3: "SG"}
OPTIONS = [RelayOption.bounce(1), RelayOption.bounce(2), RelayOption.transit(1, 2)]


def make_controller(store_dir=None) -> ViaController:
    """A controller with a deterministic, exploration-heavy policy."""
    config = ViaConfig(metric="rtt_ms", epsilon=0.25, min_direct_samples=1, seed=42)
    return ViaController(config, store=store_dir)


def drive(controller: ViaController, n_rounds: int, *, seed: int = 7) -> list[dict]:
    """Feed a deterministic workload through the live message handlers.

    Interleaves measurements and assignment requests across client pairs,
    exactly as the wire path would (minus the sockets).  Returns the
    assignment choices made, for equivalence comparison.
    """
    rng = np.random.default_rng(seed)
    for cid, site in SITES.items():
        controller._count_message("hello")  # the connection loop counts first
        controller._on_hello(cid, site)
    choices: list[dict] = []
    encoded = [encode_option(o) for o in OPTIONS]
    for i in range(n_rounds):
        src, dst = int(rng.integers(0, 4)), int(rng.integers(0, 4))
        if src == dst:
            dst = (dst + 1) % 4
        t_hours = 0.1 + i * 0.02
        option = OPTIONS[int(rng.integers(0, len(OPTIONS)))]
        controller._count_message("measurement")
        controller._on_measurement(MeasurementMessage(
            src_id=src, dst_id=dst, t_hours=t_hours,
            option=encode_option(option),
            rtt_ms=float(80 + rng.integers(0, 100)),
            loss_rate=float(rng.uniform(0, 0.05)),
            jitter_ms=float(rng.uniform(0, 20)),
        ))
        controller._count_message("request")
        reply = controller._on_request(RequestMessage(
            src_id=src, dst_id=dst, t_hours=t_hours, options=list(encoded),
        ))
        choices.append(reply.option)
    return choices


def future_choices(controller: ViaController, n: int = 40) -> list[dict]:
    """Post-recovery assignments: the sharpest equivalence probe, because
    they depend on the history, the bandit counts, *and* the RNG stream."""
    encoded = [encode_option(o) for o in OPTIONS]
    return [
        controller._on_request(RequestMessage(
            src_id=i % 3, dst_id=3, t_hours=5.0 + i * 0.01, options=list(encoded),
        ), log=False).option
        for i in range(n)
    ]


def assert_equivalent(recovered: ViaController, twin: ViaController) -> None:
    assert history_to_dict(recovered.policy.history) == history_to_dict(twin.policy.history)
    assert recovered.site_labels == twin.site_labels
    assert recovered.n_measurements == twin.n_measurements
    assert recovered.n_requests == twin.n_requests
    assert future_choices(recovered) == future_choices(twin)


class TestCrashRecoveryEquivalence:
    def test_kill_without_snapshot_full_replay(self, tmp_path):
        """Kill after N messages with no snapshot ever taken: the WAL alone
        must rebuild the exact state."""
        live = make_controller(tmp_path / "store")
        drive(live, 100)
        # Crash: no stop(), no snapshot, no close -- appends are unbuffered,
        # so everything acknowledged is already in the active segment file.
        twin = make_controller()
        drive(twin, 100)

        recovered = make_controller()
        report = recover(Store(tmp_path / "store"), recovered)
        assert report.snapshot_outcome == "missing"
        assert report.n_replayed == 100 * 2 + len(SITES)
        assert report.replayed_by_kind == {
            "hello": len(SITES), "measurement": 100, "request": 100,
        }
        assert report.clean
        assert_equivalent(recovered, twin)

    def test_kill_after_snapshot_replays_only_tail(self, tmp_path):
        live = make_controller(tmp_path / "store")
        drive(live, 60, seed=7)
        live.save_store_snapshot()
        snap_seq = live.store.snapshot_seq()
        drive(live, 40, seed=8)  # crash after 40 more rounds

        twin = make_controller()
        drive(twin, 60, seed=7)
        drive(twin, 40, seed=8)

        recovered = make_controller()
        report = recover(Store(tmp_path / "store"), recovered)
        assert report.snapshot_outcome == "ok"
        assert report.snapshot_seq == snap_seq > 0
        # Tail only: 40 rounds x (measurement + request) + the re-hellos.
        assert report.n_replayed == 40 * 2 + len(SITES)
        assert_equivalent(recovered, twin)

    def test_corrupt_snapshot_downgrades_to_full_replay(self, tmp_path):
        live = make_controller(tmp_path / "store")
        drive(live, 50)
        (tmp_path / "store" / "snapshot.json").write_text("{ definitely not json")

        twin = make_controller()
        drive(twin, 50)

        recovered = make_controller()
        report = recover(Store(tmp_path / "store"), recovered)
        assert report.snapshot_outcome == "corrupt"
        assert report.snapshot_seq == 0
        assert report.n_replayed == 50 * 2 + len(SITES)
        assert not report.clean
        assert_equivalent(recovered, twin)  # the full log was still there

    def test_wrong_format_snapshot_is_corrupt_not_fatal(self, tmp_path):
        live = make_controller(tmp_path / "store")
        drive(live, 10)
        (tmp_path / "store" / "snapshot.json").write_text(
            json.dumps({"format": "something-else", "last_seq": 3})
        )
        recovered = make_controller()
        report = recover(Store(tmp_path / "store"), recovered)
        assert report.snapshot_outcome == "corrupt"
        assert report.n_replayed == 10 * 2 + len(SITES)


class TestDamagedLogRecovery:
    def _segments(self, tmp_path):
        return sorted((tmp_path / "store" / "wal").glob("wal-*.seg"))

    def test_torn_final_record_is_skipped_not_fatal(self, tmp_path):
        live = make_controller(tmp_path / "store")
        drive(live, 30)
        seg = self._segments(tmp_path)[-1]
        seg.write_bytes(seg.read_bytes()[:-9])  # crash mid-append

        recovered = make_controller()
        report = recover(Store(tmp_path / "store"), recovered)
        assert report.n_torn_segments == 1
        assert report.n_corrupt == 0
        assert report.n_replayed == 30 * 2 + len(SITES) - 1

    def test_mid_segment_crc_corruption_counted_and_skipped(self, tmp_path):
        live = make_controller(tmp_path / "store")
        drive(live, 30)
        seg = self._segments(tmp_path)[0]
        data = bytearray(seg.read_bytes())
        # Flip one payload byte in the middle of the file.
        data[len(data) // 2] ^= 0xFF
        seg.write_bytes(bytes(data))

        recovered = make_controller()
        report = recover(Store(tmp_path / "store"), recovered)
        assert report.n_corrupt >= 1
        assert report.n_replayed < 30 * 2 + len(SITES)
        errors = recovered.registry.get("via_store_read_errors_total")
        assert errors is not None and errors.value_for(reader="recovery") >= 1
        # Recovery proceeds: later records still landed in the history.
        assert recovered.policy.history.total_calls() > 0

    def test_everything_damaged_still_never_raises(self, tmp_path):
        live = make_controller(tmp_path / "store")
        drive(live, 10)
        (tmp_path / "store" / "snapshot.json").write_text("garbage")
        for seg in self._segments(tmp_path):
            seg.write_bytes(SEGMENT_MAGIC + b"\xff" * 64)
        recovered = make_controller()
        report = recover(Store(tmp_path / "store"), recovered)
        assert report.snapshot_outcome == "corrupt"
        assert report.n_replayed == 0
        assert not report.clean


class TestControllerLifecycleWithStore:
    def test_stop_snapshots_and_restart_recovers(self, tmp_path):
        """The full asyncio lifecycle: run, stop (clean snapshot + folded
        log), start again (recovery), with the restore counter recording it."""

        async def first_run():
            async with make_controller(tmp_path / "store") as controller:
                drive(controller, 25)
                return (
                    history_to_dict(controller.policy.history),
                    controller.n_measurements,
                )

        history, n_meas = asyncio.run(first_run())
        assert (tmp_path / "store" / "snapshot.json").exists()

        async def second_run():
            controller = make_controller(tmp_path / "store")
            async with controller:
                restores = controller.registry.get(
                    "via_controller_snapshot_restores_total"
                )
                return (
                    history_to_dict(controller.policy.history),
                    controller.n_measurements,
                    restores.value_for(outcome="ok"),
                )

        history2, n_meas2, ok_restores = asyncio.run(second_run())
        assert history2 == history
        assert n_meas2 == n_meas
        assert ok_restores == 1

    def test_auto_snapshot_threshold_fires_on_the_wire_path(self, tmp_path):
        """Crossing snapshot_every_records while serving real messages
        snapshots mid-run, before any stop()."""
        from repro.deployment.client import TestbedClient
        from repro.netmodel.metrics import PathMetrics
        from repro.store import StoreConfig

        store = Store(tmp_path / "store", StoreConfig(snapshot_every_records=20))
        controller = ViaController(
            ViaConfig(metric="rtt_ms", epsilon=0.25, min_direct_samples=1, seed=42),
            store=store,
        )

        async def run():
            async with controller:
                client = TestbedClient(
                    client_id=0, site="US", host="127.0.0.1", port=controller.port
                )
                await client.connect()
                try:
                    for i in range(30):
                        await client.report_measurement(
                            1, OPTIONS[0],
                            PathMetrics(rtt_ms=100.0, loss_rate=0.01, jitter_ms=5.0),
                            0.1 + i * 0.01,
                        )
                    # Measurements are fire-and-forget; a request/reply
                    # round-trip guarantees they were all handled.
                    await client.fetch_metrics()
                finally:
                    await client.close()
                # Mid-run: the threshold fired at least once already.  The
                # pre-built Store keeps its own registry.
                return store.registry.get("via_store_snapshots_total").value

        mid_run_snapshots = asyncio.run(run())
        assert mid_run_snapshots >= 1
        # stop() added the final fold-down snapshot on top.
        assert store.registry.get("via_store_snapshots_total").value >= 2


class TestRestartThenCrash:
    def test_records_after_clean_restart_survive_a_crash(self, tmp_path):
        """run -> clean stop (snapshot + full compaction) -> run more ->
        crash: the post-restart records must replay on recovery."""

        async def first_run():
            async with make_controller(tmp_path / "store") as controller:
                drive(controller, 20, seed=7)

        asyncio.run(first_run())

        # Second incarnation: crashes (no stop) after 10 more rounds.
        second = make_controller(tmp_path / "store")
        report1 = recover(second.store, second)
        assert report1.snapshot_outcome == "ok"
        drive(second, 10, seed=8)

        twin = make_controller()
        drive(twin, 20, seed=7)
        drive(twin, 10, seed=8)

        recovered = make_controller()
        report2 = recover(Store(tmp_path / "store"), recovered)
        assert report2.snapshot_outcome == "ok"
        # The crash-lost tail: 10 rounds x 2 + the second run's hellos.
        assert report2.n_replayed == 10 * 2 + len(SITES)
        assert history_to_dict(recovered.policy.history) == history_to_dict(
            twin.policy.history
        )
        assert future_choices(recovered) == future_choices(twin)


class TestSnapshotPathRestoreOutcomes:
    """Satellite: the legacy snapshot_path auto-restore is observable."""

    def _controller(self, path) -> ViaController:
        return ViaController(ViaConfig(seed=1), snapshot_path=path)

    def _outcome(self, controller, outcome) -> float:
        return controller.registry.get(
            "via_controller_snapshot_restores_total"
        ).value_for(outcome=outcome)

    def test_missing(self, tmp_path):
        controller = self._controller(tmp_path / "none.json")

        async def run():
            async with controller:
                pass

        asyncio.run(run())
        assert self._outcome(controller, "missing") == 1

    def test_corrupt(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("{ nope")
        controller = self._controller(path)

        async def run():
            async with controller:
                pass

        asyncio.run(run())
        assert self._outcome(controller, "corrupt") == 1
        assert self._outcome(controller, "ok") == 0

    def test_ok(self, tmp_path):
        path = tmp_path / "snap.json"

        async def write_run():
            async with self._controller(None) as controller:
                drive(controller, 5)
                controller.save_snapshot(path)

        asyncio.run(write_run())

        controller = self._controller(path)

        async def run():
            async with controller:
                pass

        asyncio.run(run())
        assert self._outcome(controller, "ok") == 1

    def test_save_snapshot_leaves_no_tmp_litter(self, tmp_path):
        async def run():
            async with self._controller(None) as controller:
                drive(controller, 3)
                controller.save_snapshot(tmp_path / "snap.json")

        asyncio.run(run())
        assert sorted(p.name for p in tmp_path.iterdir()) == ["snap.json"]
