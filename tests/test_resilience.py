"""Resilience tests: retries, fallback-to-direct, outages, crash recovery.

Covers the §7 graceful-degradation story end to end: the client-side
retry/breaker machinery, fallback when the controller is unreachable or
silent, reconnect after a controller restart, relay-outage repicking in
the policy and the world model, and controller snapshot/restore.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.policy import ViaConfig, ViaPolicy
from repro.deployment import (
    CircuitBreaker,
    RelayOutage,
    RetryPolicy,
    ViaController,
)
from repro.deployment import TestbedClient as AgentClient
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption
from repro.netmodel.topology import TopologyConfig
from repro.netmodel.world import WorldConfig, build_world
from repro.telephony.call import Call

pytestmark = pytest.mark.faults


def run(coro):
    return asyncio.run(coro)


OPTIONS = [RelayOption.bounce(0), RelayOption.bounce(1)]

#: Tight budget so unreachable/silent-controller tests finish quickly.
FAST_RETRY = RetryPolicy(
    max_attempts=2,
    request_timeout_s=0.05,
    base_delay_s=0.01,
    max_delay_s=0.02,
    deadline_s=0.5,
)


def make_call(call_id=0, t_hours=1.0) -> Call:
    return Call(
        call_id=call_id, t_hours=t_hours, src_asn=1001, dst_asn=1002,
        src_country="US", dst_country="IN", src_user=0, dst_user=1,
    )


def metrics(rtt: float) -> PathMetrics:
    return PathMetrics(rtt_ms=rtt, loss_rate=0.01, jitter_ms=5.0)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(request_timeout_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=0.5, max_delay_s=0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=-1.0)

    def test_no_jitter_schedule_is_exact_capped_exponential(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.1, max_delay_s=0.5,
            backoff_factor=2.0, jitter=0.0,
        )
        assert policy.delays() == pytest.approx([0.1, 0.2, 0.4, 0.5])

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=4, jitter=0.25, seed=7)
        again = RetryPolicy(max_attempts=4, jitter=0.25, seed=7)
        assert policy.delays() == again.delays()
        for attempt in range(1, policy.max_attempts):
            raw = RetryPolicy(max_attempts=4, jitter=0.0).delay_for(attempt)
            assert raw * 0.75 <= policy.delay_for(attempt) <= raw * 1.25

    def test_different_seed_changes_jitter(self):
        a = RetryPolicy(max_attempts=4, seed=1).delays()
        b = RetryPolicy(max_attempts=4, seed=2).delays()
        assert a != b

    def test_full_jitter_is_deterministic_and_spans_zero_to_raw(self):
        policy = RetryPolicy(max_attempts=6, jitter=0.5, jitter_mode="full", seed=7)
        again = RetryPolicy(max_attempts=6, jitter=0.5, jitter_mode="full", seed=7)
        assert policy.delays() == again.delays()
        for attempt in range(1, policy.max_attempts):
            raw = RetryPolicy(max_attempts=6, jitter=0.0).delay_for(attempt)
            # AWS full jitter: uniform over [0, raw) -- below the raw
            # delay, possibly near zero (decorrelating the herd).
            assert 0.0 <= policy.delay_for(attempt) < raw

    def test_full_jitter_zero_jitter_disables(self):
        exact = RetryPolicy(
            max_attempts=4, base_delay_s=0.1, max_delay_s=0.4,
            backoff_factor=2.0, jitter=0.0, jitter_mode="full",
        )
        assert exact.delays() == pytest.approx([0.1, 0.2, 0.4])

    def test_jitter_mode_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter_mode="thundering-herd")

    def test_delay_for_rejects_bad_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_for(0)


class TestCircuitBreaker:
    def make(self, threshold=3, reset=10.0):
        clock = {"t": 0.0}
        breaker = CircuitBreaker(threshold, reset, clock=lambda: clock["t"])
        return breaker, clock

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after_s=0.0)

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _clock = self.make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.n_opens == 1 and breaker.n_rejections == 1

    def test_success_resets_failure_streak(self):
        breaker, _clock = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_after_cooldown(self):
        breaker, clock = self.make(threshold=1, reset=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock["t"] = 10.0
        assert breaker.allow()  # the single trial call
        assert breaker.state == "half-open"
        assert not breaker.allow()  # concurrent callers still fail fast

    def test_half_open_success_closes(self):
        breaker, clock = self.make(threshold=1, reset=5.0)
        breaker.record_failure()
        clock["t"] = 5.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_half_open_failure_reopens(self):
        breaker, clock = self.make(threshold=1, reset=5.0)
        breaker.record_failure()
        clock["t"] = 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.n_opens == 2


class TestClientFallback:
    def test_unreachable_controller_falls_back_to_direct(self):
        async def scenario():
            # Grab a port nobody is listening on.
            server = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            client = AgentClient(0, "US", "127.0.0.1", port, retry=FAST_RETRY)
            choice = await client.request_assignment(
                1, [DIRECT, *OPTIONS], t_hours=0.1
            )
            assert choice is DIRECT
            assert client.stats.n_fallbacks == 1
            await client.close()

        run(scenario())

    def test_silent_controller_times_out_then_falls_back(self):
        async def scenario():
            async def never_reply(reader, writer):
                while await reader.readline():
                    pass  # accept everything, answer nothing

            server = await asyncio.start_server(never_reply, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                async with AgentClient(
                    0, "US", "127.0.0.1", port, retry=FAST_RETRY
                ) as client:
                    choice = await client.request_assignment(1, OPTIONS, t_hours=0.1)
                    # No direct path offered: fall back to the first candidate.
                    assert choice == OPTIONS[0]
                    assert client.stats.n_timeouts >= 1
                    assert client.stats.n_retries >= 1
                    assert client.stats.n_fallbacks == 1
            finally:
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_open_breaker_fails_fast_to_fallback(self):
        async def scenario():
            breaker = CircuitBreaker(failure_threshold=1, reset_after_s=60.0)
            breaker.record_failure()  # pre-open: controller known dead
            client = AgentClient(
                0, "US", "127.0.0.1", 1, retry=FAST_RETRY, breaker=breaker
            )
            choice = await client.request_assignment(
                1, [DIRECT, *OPTIONS], t_hours=0.1
            )
            assert choice is DIRECT
            assert client.stats.n_breaker_fastfails == 1
            assert client.stats.n_timeouts == 0  # never even tried

        run(scenario())

    def test_default_option_prefers_direct(self):
        assert AgentClient.default_option([DIRECT, *OPTIONS]) is DIRECT
        assert AgentClient.default_option(OPTIONS) == OPTIONS[0]
        with pytest.raises(ValueError):
            AgentClient.default_option([])


class TestReconnect:
    def test_client_survives_controller_restart(self):
        async def scenario():
            controller = ViaController(ViaConfig(seed=1))
            await controller.start()
            port = controller.port
            client = AgentClient(
                0, "US", "127.0.0.1", port, retry=RetryPolicy(
                    max_attempts=4, request_timeout_s=0.25,
                    base_delay_s=0.05, max_delay_s=0.1, deadline_s=5.0,
                )
            )
            await client.connect()
            assert await client.request_assignment(1, OPTIONS, 0.1) in OPTIONS

            # Crash the controller; in-budget requests degrade to fallback.
            await controller.stop()
            choice = await client.request_assignment(1, OPTIONS, 0.2)
            assert choice == OPTIONS[0]
            assert client.stats.n_fallbacks == 1

            # A new controller process binds the same port; the client's
            # next request reconnects transparently and is served again.
            revived = ViaController(ViaConfig(seed=1), port=port)
            await revived.start()
            try:
                assert await client.request_assignment(1, OPTIONS, 0.3) in OPTIONS
                assert client.stats.n_reconnects >= 1
                assert revived.n_requests == 1
            finally:
                await client.close()
                await revived.stop()

        run(scenario())

    def test_measurement_retries_over_fresh_connection(self):
        async def scenario():
            async with ViaController() as controller:
                client = AgentClient(
                    0, "US", "127.0.0.1", controller.port, retry=FAST_RETRY
                )
                await client.connect()
                # Sever the transport behind the client's back.
                client._writer.close()
                client._writer = None
                client._reader = None
                await client.report_measurement(1, OPTIONS[0], metrics(100.0), 0.1)
                # Fence the fire-and-forget send with a round-trip.
                await client.request_assignment(1, OPTIONS, 0.2)
                assert controller.n_measurements == 1
                assert client.stats.n_reconnects >= 1
                assert client.stats.n_dropped_measurements == 0
                await client.close()

        run(scenario())


class TestPolicyOutageRepick:
    def warmed_policy(self) -> ViaPolicy:
        policy = ViaPolicy(
            ViaConfig(seed=3, epsilon=0.0, min_direct_samples=2, use_tomography=False)
        )
        for i in range(8):
            call = make_call(call_id=i, t_hours=0.2 + 0.01 * i)
            policy.observe(call, OPTIONS[0], metrics(50.0))
            policy.observe(call, OPTIONS[1], metrics(300.0))
        return policy

    def test_assign_avoids_down_relay(self):
        policy = self.warmed_policy()
        call = make_call(call_id=100, t_hours=24.1)
        assert policy.assign(call, OPTIONS) == OPTIONS[0]  # best when healthy

        policy.set_down_relays({0})
        assert policy.down_relays == frozenset({0})
        choice = policy.assign(make_call(call_id=101, t_hours=24.2), OPTIONS)
        assert choice == OPTIONS[1]
        assert policy.n_outage_repicks >= 1

    def test_recovery_restores_best_choice(self):
        policy = self.warmed_policy()
        policy.set_down_relays({0})
        policy.assign(make_call(call_id=100, t_hours=24.1), OPTIONS)
        policy.set_down_relays(())
        assert policy.down_relays == frozenset()
        choice = policy.assign(make_call(call_id=101, t_hours=24.2), OPTIONS)
        assert choice == OPTIONS[0]

    def test_all_options_down_returns_original_choice(self):
        policy = self.warmed_policy()
        policy.set_down_relays({0, 1})
        choice = policy.assign(make_call(call_id=100, t_hours=24.1), OPTIONS)
        assert choice in OPTIONS  # nothing alive: degrade, don't crash


class TestWorldOutages:
    @pytest.fixture(scope="class")
    def outage_world(self):
        world = build_world(
            WorldConfig(
                topology=TopologyConfig(n_countries=6, n_relays=4, seed=5),
                n_days=2,
                seed=5,
            )
        )
        world.add_outage(RelayOutage(relay_id=0, start_hours=6.0, end_hours=12.0))
        return world

    @pytest.fixture(scope="class")
    def pair(self, outage_world):
        asns = outage_world.topology.asns
        a = asns[0]
        b = next(x for x in asns if outage_world.topology.is_international(a, x))
        return a, b

    def test_add_outage_validates_relay_id(self, outage_world):
        with pytest.raises(ValueError):
            outage_world.add_outage(RelayOutage(relay_id=99, start_hours=0.0, end_hours=1.0))

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            RelayOutage(relay_id=0, start_hours=5.0, end_hours=5.0)

    def test_relays_down_at_window_semantics(self, outage_world):
        assert outage_world.relays_down_at(5.9) == frozenset()
        assert outage_world.relays_down_at(6.0) == frozenset({0})
        assert outage_world.relays_down_at(11.99) == frozenset({0})
        assert outage_world.relays_down_at(12.0) == frozenset()

    def test_option_availability(self, outage_world):
        dead = RelayOption.bounce(0)
        assert not outage_world.option_available(dead, 8.0)
        assert outage_world.option_available(dead, 13.0)
        assert outage_world.option_available(DIRECT, 8.0)  # direct never dies
        assert not outage_world.option_available(RelayOption.transit(0, 1), 8.0)
        assert outage_world.option_available(RelayOption.bounce(1), 8.0)

    def test_sample_call_through_dead_relay_blackholes(self, outage_world, pair, rng):
        a, b = pair
        sample = outage_world.sample_call(a, b, RelayOption.bounce(0), 8.0, rng)
        cfg = outage_world.config
        assert sample.rtt_ms == cfg.outage_rtt_ms
        assert sample.loss_rate == cfg.outage_loss_rate
        healthy = outage_world.sample_call(a, b, RelayOption.bounce(0), 13.0, rng)
        assert healthy.rtt_ms < cfg.outage_rtt_ms

    def test_live_options_exclude_dead_relays(self, outage_world, pair):
        a, b = pair
        all_options = outage_world.options_for_pair(a, b)
        live = outage_world.live_options_for_pair(a, b, 8.0)
        assert set(live) <= set(all_options)
        assert all(outage_world.option_available(o, 8.0) for o in live)
        assert len(live) < len(all_options)  # relay 0 options are gone

    def test_clear_outages(self):
        world = build_world(
            WorldConfig(
                topology=TopologyConfig(n_countries=4, n_relays=3, seed=2),
                n_days=1,
                seed=2,
            )
        )
        world.add_outage(RelayOutage(relay_id=1, start_hours=0.0, end_hours=24.0))
        assert world.outages
        world.clear_outages()
        assert world.relays_down_at(1.0) == frozenset()


class TestReplayWithOutage:
    def test_replay_reports_outage_degradation(self, small_trace):
        from repro.core.baselines import make_via
        from repro.simulation import replay
        from repro.workload.trace import TraceDataset

        world = build_world(
            WorldConfig(
                topology=TopologyConfig(n_countries=8, n_relays=6, seed=11),
                n_days=8,
                seed=13,
            )
        )
        # Day 1, hours 26-34: relays 0 and 1 go dark.
        world.add_outage(RelayOutage(relay_id=0, start_hours=26.0, end_hours=34.0))
        world.add_outage(RelayOutage(relay_id=1, start_hours=26.0, end_hours=34.0))
        trace = TraceDataset(calls=small_trace.calls[:1200], n_days=small_trace.n_days)
        policy = make_via(seed=4)

        result = replay(world, trace, policy, seed=4)
        assert len(result.outage_flags) == len(trace)
        assert 0 < result.n_outage_calls < len(trace)
        degradation = result.outage_degradation("rtt_ms")
        assert degradation is not None
        assert set(degradation) == {"during", "outside", "ratio"}
        assert degradation["ratio"] > 0.0
        # The policy's down-relay set was synced from the schedule and the
        # trace ends after the window, so it finishes clear.
        assert policy.down_relays == frozenset()

    def test_no_outages_means_no_flags(self, small_world, small_trace):
        from repro.core.baselines import DefaultPolicy
        from repro.simulation import replay
        from repro.workload.trace import TraceDataset

        trace = TraceDataset(calls=small_trace.calls[:200], n_days=small_trace.n_days)
        result = replay(small_world, trace, DefaultPolicy(), seed=1)
        assert result.outage_flags == []
        assert result.n_outage_calls == 0
        assert result.outage_degradation("rtt_ms") is None


class TestPolicyCheckpoint:
    def warmed_policy(self) -> ViaPolicy:
        policy = ViaPolicy(
            ViaConfig(seed=9, epsilon=0.0, min_direct_samples=2, use_tomography=False)
        )
        for i in range(10):
            call = make_call(call_id=i, t_hours=0.2 + 0.01 * i)
            policy.observe(call, OPTIONS[0], metrics(60.0 + i))
            policy.observe(call, OPTIONS[1], metrics(250.0 + i))
        # Cross the refresh boundary so per-pair bandit state exists.
        policy.assign(make_call(call_id=50, t_hours=24.1), OPTIONS)
        return policy

    def test_v2_roundtrip_is_lossless(self):
        original = self.warmed_policy()
        payload = original.state_dict()
        assert payload["format"] == "via-policy-state-v2"

        restored = ViaPolicy(
            ViaConfig(seed=9, epsilon=0.0, min_direct_samples=2, use_tomography=False)
        )
        restored.load_state_dict(payload)
        assert restored.state_dict() == payload
        assert restored.n_refreshes == original.n_refreshes

    def test_restored_policy_assigns_identically(self):
        original = self.warmed_policy()
        restored = ViaPolicy(
            ViaConfig(seed=9, epsilon=0.0, min_direct_samples=2, use_tomography=False)
        )
        restored.load_state_dict(original.state_dict())
        for i in range(6):
            call = make_call(call_id=200 + i, t_hours=24.2 + 0.01 * i)
            assert restored.assign(call, OPTIONS) == original.assign(call, OPTIONS)

    def test_save_load_file_roundtrip(self, tmp_path):
        original = self.warmed_policy()
        path = tmp_path / "policy.json"
        original.save_state(path)
        restored = ViaPolicy(
            ViaConfig(seed=9, epsilon=0.0, min_direct_samples=2, use_tomography=False)
        )
        restored.load_state(path)
        assert restored.state_dict() == original.state_dict()


class TestControllerSnapshot:
    def test_crash_restart_restores_learned_state(self, tmp_path):
        snapshot = tmp_path / "controller.json"
        config = ViaConfig(seed=2, epsilon=0.0, min_direct_samples=2,
                           use_tomography=False)
        good, bad = metrics(60.0), metrics(400.0)

        async def scenario():
            # --- Life before the crash: learn, then checkpoint. ---
            async with ViaController(config, snapshot_path=snapshot) as controller:
                async with AgentClient(
                    0, "US", "127.0.0.1", controller.port
                ) as client:
                    for i in range(6):
                        await client.report_measurement(1, OPTIONS[0], good, 0.1 * i)
                        await client.report_measurement(1, OPTIONS[1], bad, 0.1 * i)
                    pre_crash = await client.request_assignment(1, OPTIONS, 24.1)
                pre_measurements = controller.n_measurements
                controller.save_snapshot()

            # --- Restart: a fresh controller auto-loads the snapshot. ---
            async with ViaController(config, snapshot_path=snapshot) as revived:
                assert revived.n_measurements == pre_measurements
                stat = revived.policy.history.stats((0, 1), OPTIONS[0], 0)
                assert stat is not None and stat.count == 6
                async with AgentClient(
                    0, "US", "127.0.0.1", revived.port
                ) as client:
                    post_crash = await client.request_assignment(1, OPTIONS, 24.2)
            assert post_crash == pre_crash == OPTIONS[0]

        run(scenario())

    def test_corrupt_snapshot_does_not_prevent_start(self, tmp_path):
        snapshot = tmp_path / "corrupt.json"
        snapshot.write_text("{not json", encoding="utf-8")

        async def scenario():
            # A crash mid-write must not brick the restart: the controller
            # logs and starts fresh instead of raising.
            async with ViaController(snapshot_path=snapshot) as controller:
                assert controller.n_measurements == 0
                async with AgentClient(0, "US", "127.0.0.1", controller.port) as client:
                    assert await client.request_assignment(1, OPTIONS, 0.1) in OPTIONS

        run(scenario())

    def test_snapshot_requires_path(self):
        controller = ViaController()
        with pytest.raises(ValueError):
            controller.save_snapshot()

    def test_unrecognised_snapshot_format_rejected(self):
        controller = ViaController()
        with pytest.raises(ValueError):
            controller.restore_dict({"format": "not-a-snapshot"})
