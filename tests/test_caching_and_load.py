"""Unit tests for decision caching and per-relay load caps (extensions)."""

from __future__ import annotations

import pytest

from repro.core.budget import RelayLoadTracker
from repro.core.caching import CachedAssignmentPolicy
from repro.core.policy import ViaConfig, ViaPolicy
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption
from repro.telephony.call import Call

OPTIONS = [DIRECT, RelayOption.bounce(0), RelayOption.bounce(1), RelayOption.transit(0, 1)]


def make_call(call_id=0, t_hours=1.0, src_asn=1001, dst_asn=1002) -> Call:
    return Call(
        call_id=call_id, t_hours=t_hours, src_asn=src_asn, dst_asn=dst_asn,
        src_country="US", dst_country="IN", src_user=0, dst_user=1,
    )


def metrics(rtt: float = 100.0) -> PathMetrics:
    return PathMetrics(rtt_ms=rtt, loss_rate=0.01, jitter_ms=5.0)


class _FixedPolicy:
    """Test double: always returns a fixed option, counts queries."""

    name = "fixed"

    def __init__(self, option: RelayOption) -> None:
        self.option = option
        self.assign_calls = 0
        self.observe_calls = 0

    def assign(self, call, options):
        self.assign_calls += 1
        return self.option

    def observe(self, call, option, metrics):
        self.observe_calls += 1


class TestCachedAssignmentPolicy:
    def test_rejects_negative_ttl(self):
        with pytest.raises(ValueError):
            CachedAssignmentPolicy(_FixedPolicy(DIRECT), ttl_hours=-1.0)

    def test_cache_hit_skips_controller(self):
        inner = _FixedPolicy(RelayOption.bounce(0))
        cached = CachedAssignmentPolicy(inner, ttl_hours=2.0)
        for i in range(10):
            choice = cached.assign(make_call(call_id=i, t_hours=0.5 + 0.01 * i), OPTIONS)
            assert choice == RelayOption.bounce(0)
        assert inner.assign_calls == 1
        assert cached.n_controller_queries == 1
        assert cached.query_fraction == pytest.approx(0.1)

    def test_expiry_requeries(self):
        inner = _FixedPolicy(RelayOption.bounce(0))
        cached = CachedAssignmentPolicy(inner, ttl_hours=1.0)
        cached.assign(make_call(call_id=0, t_hours=0.0), OPTIONS)
        cached.assign(make_call(call_id=1, t_hours=0.5), OPTIONS)  # hit
        cached.assign(make_call(call_id=2, t_hours=1.5), OPTIONS)  # expired
        assert inner.assign_calls == 2

    def test_zero_ttl_disables_cache(self):
        inner = _FixedPolicy(DIRECT)
        cached = CachedAssignmentPolicy(inner, ttl_hours=0.0)
        for i in range(5):
            cached.assign(make_call(call_id=i), OPTIONS)
        assert inner.assign_calls == 5

    def test_reverse_direction_shares_entry(self):
        inner = _FixedPolicy(RelayOption.transit(0, 1))
        cached = CachedAssignmentPolicy(inner, ttl_hours=5.0)
        fwd = cached.assign(make_call(call_id=0, src_asn=1001, dst_asn=1002), OPTIONS)
        rev_options = [o.reversed() for o in OPTIONS]
        rev = cached.assign(
            make_call(call_id=1, src_asn=1002, dst_asn=1001, t_hours=1.1), rev_options
        )
        assert inner.assign_calls == 1
        assert rev == fwd.reversed()

    def test_stale_option_not_offered_triggers_requery(self):
        inner = _FixedPolicy(RelayOption.bounce(0))
        cached = CachedAssignmentPolicy(inner, ttl_hours=5.0)
        cached.assign(make_call(call_id=0), OPTIONS)
        inner.option = DIRECT  # controller would now pick something else
        shrunk = [DIRECT, RelayOption.bounce(1)]  # bounce(0) decommissioned
        choice = cached.assign(make_call(call_id=1, t_hours=1.2), shrunk)
        assert choice is DIRECT
        assert inner.assign_calls == 2

    def test_observe_passthrough(self):
        inner = _FixedPolicy(DIRECT)
        cached = CachedAssignmentPolicy(inner, ttl_hours=1.0)
        cached.observe(make_call(), DIRECT, metrics())
        assert inner.observe_calls == 1

    def test_invalidate(self):
        inner = _FixedPolicy(DIRECT)
        cached = CachedAssignmentPolicy(inner, ttl_hours=10.0)
        cached.assign(make_call(call_id=0), OPTIONS)
        cached.invalidate()
        cached.assign(make_call(call_id=1, t_hours=1.1), OPTIONS)
        assert inner.assign_calls == 2


class TestCacheEviction:
    """Regression: expired/over-cap entries must leave the cache dict.

    Before the fix an expired entry stayed resident forever (only its
    *value* was replaced on re-query for the same pair), so a long replay
    touching many pairs grew the cache without bound.
    """

    def test_expired_entry_deleted_on_hit(self):
        inner = _FixedPolicy(RelayOption.bounce(0))
        cached = CachedAssignmentPolicy(inner, ttl_hours=1.0)
        cached.assign(make_call(call_id=0, t_hours=0.0), OPTIONS)
        assert len(cached) == 1
        # Expired hit: the dead entry is evicted, then re-cached fresh.
        cached.assign(make_call(call_id=1, t_hours=2.0), OPTIONS)
        assert len(cached) == 1
        assert cached.n_evicted == 1

    def test_evict_expired_sweep(self):
        inner = _FixedPolicy(RelayOption.bounce(0))
        cached = CachedAssignmentPolicy(inner, ttl_hours=1.0)
        for i, (src, dst) in enumerate([(1, 2), (3, 4), (5, 6)]):
            cached.assign(
                make_call(call_id=i, t_hours=0.2 * i, src_asn=src, dst_asn=dst),
                OPTIONS,
            )
        assert len(cached) == 3
        # At t=1.3 the entries cached at t=0.0 and t=0.2 (expiries 1.0 and
        # 1.2) are dead; the t=0.4 entry lives until 1.4.
        assert cached.evict_expired(1.3) == 2
        assert len(cached) == 1
        assert cached.n_evicted == 2
        assert cached.evict_expired(1.3) == 0

    def test_max_entries_caps_cache_size(self):
        inner = _FixedPolicy(RelayOption.bounce(0))
        cached = CachedAssignmentPolicy(inner, ttl_hours=10.0, max_entries=2)
        for i, (src, dst) in enumerate([(1, 2), (3, 4), (5, 6), (7, 8)]):
            cached.assign(
                make_call(call_id=i, t_hours=0.1 * i, src_asn=src, dst_asn=dst),
                OPTIONS,
            )
        assert len(cached) == 2
        assert cached.n_evicted == 2

    def test_cap_evicts_soonest_expiry_first(self):
        inner = _FixedPolicy(RelayOption.bounce(0))
        cached = CachedAssignmentPolicy(inner, ttl_hours=10.0, max_entries=2)
        cached.assign(make_call(call_id=0, t_hours=0.0, src_asn=1, dst_asn=2), OPTIONS)
        cached.assign(make_call(call_id=1, t_hours=5.0, src_asn=3, dst_asn=4), OPTIONS)
        cached.assign(make_call(call_id=2, t_hours=6.0, src_asn=5, dst_asn=6), OPTIONS)
        # The (1, 2) entry expired-soonest and must be the victim: a fresh
        # call on that pair misses and re-queries the controller.
        inner.assign_calls = 0
        cached.assign(make_call(call_id=3, t_hours=6.5, src_asn=1, dst_asn=2), OPTIONS)
        assert inner.assign_calls == 1

    def test_cap_prefers_sweeping_expired_entries(self):
        inner = _FixedPolicy(RelayOption.bounce(0))
        cached = CachedAssignmentPolicy(inner, ttl_hours=1.0, max_entries=2)
        cached.assign(make_call(call_id=0, t_hours=0.0, src_asn=1, dst_asn=2), OPTIONS)
        cached.assign(make_call(call_id=1, t_hours=4.8, src_asn=3, dst_asn=4), OPTIONS)
        # (1, 2) is long expired at t=5.0; the cap should reclaim it and
        # keep the still-live (3, 4) decision cached.
        cached.assign(make_call(call_id=2, t_hours=5.0, src_asn=5, dst_asn=6), OPTIONS)
        inner.assign_calls = 0
        cached.assign(make_call(call_id=3, t_hours=5.2, src_asn=3, dst_asn=4), OPTIONS)
        assert inner.assign_calls == 0  # still a cache hit

    def test_rejects_bad_max_entries(self):
        with pytest.raises(ValueError):
            CachedAssignmentPolicy(_FixedPolicy(DIRECT), max_entries=0)


class TestRelayLoadTracker:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RelayLoadTracker(0.0)
        with pytest.raises(ValueError):
            RelayLoadTracker(0.5, window=5)

    def test_load_accounting(self):
        tracker = RelayLoadTracker(0.5, window=100)
        for _ in range(4):
            tracker.record(RelayOption.bounce(3))
        for _ in range(6):
            tracker.record(DIRECT)
        assert tracker.load(3) == pytest.approx(0.4)
        assert tracker.load(9) == 0.0
        assert len(tracker) == 10

    def test_transit_counts_both_relays(self):
        tracker = RelayLoadTracker(0.5, window=100)
        tracker.record(RelayOption.transit(1, 2))
        tracker.record(DIRECT)
        assert tracker.load(1) == pytest.approx(0.5)
        assert tracker.load(2) == pytest.approx(0.5)

    def test_window_eviction(self):
        tracker = RelayLoadTracker(0.5, window=10)
        for _ in range(10):
            tracker.record(RelayOption.bounce(1))
        for _ in range(10):
            tracker.record(DIRECT)
        assert tracker.load(1) == 0.0
        assert len(tracker) == 10

    def test_would_exceed_warms_up_gracefully(self):
        tracker = RelayLoadTracker(0.1, window=100)
        # Below warm-up threshold nothing is capped.
        assert not tracker.would_exceed(RelayOption.bounce(1))
        for _ in range(50):
            tracker.record(RelayOption.bounce(1))
        assert tracker.would_exceed(RelayOption.bounce(1))
        assert not tracker.would_exceed(RelayOption.bounce(2))

    def test_loads_snapshot(self):
        tracker = RelayLoadTracker(0.5)
        tracker.record(RelayOption.bounce(1))
        tracker.record(RelayOption.transit(1, 2))
        loads = tracker.loads()
        assert loads[1] == pytest.approx(1.0)
        assert loads[2] == pytest.approx(0.5)


class TestPerRelayCapPolicy:
    def test_cap_limits_single_relay_share(self):
        policy = ViaPolicy(ViaConfig(seed=5, per_relay_cap=0.3, epsilon=0.0, per_relay_window=200))
        # Make bounce(0) look clearly best so the uncapped policy would
        # send everything there.
        for day in range(3):
            for i in range(120):
                call = make_call(call_id=day * 1000 + i, t_hours=day * 24.0 + 0.2 + i * 0.01)
                option = policy.assign(call, OPTIONS)
                rtt = {OPTIONS[0]: 300.0, OPTIONS[1]: 50.0,
                       OPTIONS[2]: 200.0, OPTIONS[3]: 220.0}[option]
                policy.observe(call, option, metrics(rtt))
        tracker = policy._load_tracker
        assert tracker is not None
        assert all(load <= 0.45 for load in tracker.loads().values())

    def test_no_cap_by_default(self):
        assert ViaPolicy(ViaConfig()) ._load_tracker is None
