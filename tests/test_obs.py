"""Unit + integration tests for the observability plane (repro.obs)."""

from __future__ import annotations

import pytest

from repro.core.policy import ViaConfig, make_policy
from repro.obs import (
    REGISTRY,
    TRACER,
    MetricsRegistry,
    Tracer,
    enabled_scope,
    runtime,
    timed,
    trace,
)
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS
from repro.obs.tracing import _NOOP_SPAN
from repro.simulation import replay
from repro.workload.trace import TraceDataset


@pytest.fixture()
def reg():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, reg):
        c = reg.counter("t_total", "Total.")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self, reg):
        c = reg.counter("t_total")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_labelled_series_are_independent(self, reg):
        c = reg.counter("t_total", "Total.", ("kind",))
        c.labels(kind="a").inc()
        c.labels(kind="a").inc()
        c.labels(kind="b").inc()
        assert c.value_for(kind="a") == 2
        assert c.value_for(kind="b") == 1
        assert c.value == 3  # sums over series

    def test_label_name_mismatch_rejected(self, reg):
        c = reg.counter("t_total", "Total.", ("kind",))
        with pytest.raises(ValueError, match="expected labels"):
            c.labels(type="a")

    def test_unlabelled_use_of_labelled_metric_rejected(self, reg):
        c = reg.counter("t_total", "Total.", ("kind",))
        with pytest.raises(ValueError, match="use .labels"):
            c.inc()

    def test_cardinality_cap_absorbs_new_series(self, reg):
        c = reg.counter("t_total", "Total.", ("kind",))
        c.max_series = 10
        for i in range(10):
            c.labels(kind=str(i)).inc()
        # Past the cap, new combinations are absorbed (no exception on a
        # hot path) and the loss is counted.
        c.labels(kind="overflow").inc()
        assert c.n_series == 10
        assert c.n_dropped == 1
        # Existing series stay usable after the cap trips.
        c.labels(kind="3").inc()
        assert c.value_for(kind="3") == 2


class TestGauge:
    def test_set_inc_dec(self, reg):
        g = reg.gauge("t_up", "Up.")
        g.set(5)
        g.inc(2)
        g.dec(4)
        assert g.value == pytest.approx(3.0)

    def test_unset_gauge_reads_zero(self, reg):
        assert reg.gauge("t_up").value == 0.0


class TestHistogram:
    def test_bucket_placement_is_cumulative_le(self, reg):
        h = reg.histogram("t_seconds", "Lat.", buckets=(0.1, 1.0, 5.0))
        for v in (0.05, 0.1, 0.5, 2.0, 50.0):
            h.observe(v)
        (series,) = h.snapshot()["series"]
        # le is inclusive: the 0.1 observation lands in the 0.1 bucket.
        assert series["buckets"] == {"0.1": 2, "1": 3, "5": 4, "+Inf": 5}
        assert series["count"] == 5
        assert series["sum"] == pytest.approx(52.65)
        assert h.count == 5

    def test_bad_buckets_rejected(self, reg):
        with pytest.raises(ValueError, match="sorted"):
            reg.histogram("t_seconds", buckets=(1.0, 0.5))
        with pytest.raises(ValueError, match="sorted"):
            reg.histogram("t_dup_seconds", buckets=(1.0, 1.0))

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 1e-4
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 5.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestRegistry:
    def test_reregistration_is_idempotent(self, reg):
        a = reg.counter("t_total", "Total.", ("kind",))
        b = reg.counter("t_total", "Total.", ("kind",))
        assert a is b

    def test_type_mismatch_rejected(self, reg):
        reg.counter("t_thing")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("t_thing")

    def test_label_mismatch_rejected(self, reg):
        reg.counter("t_total", labelnames=("kind",))
        with pytest.raises(ValueError, match="labels"):
            reg.counter("t_total", labelnames=("type",))

    def test_bucket_mismatch_rejected(self, reg):
        reg.histogram("t_seconds", buckets=(0.1, 1.0))
        with pytest.raises(ValueError, match="different buckets"):
            reg.histogram("t_seconds", buckets=(0.2, 1.0))

    def test_reset_keeps_registrations_zeroes_series(self, reg):
        c = reg.counter("t_total", "Total.", ("kind",))
        c.labels(kind="a").inc()
        reg.reset()
        assert "t_total" in reg
        assert reg.counter("t_total", "Total.", ("kind",)) is c
        assert c.value == 0

    def test_exposition_golden(self, reg):
        events = reg.counter("t_events_total", "Events.", ("kind",))
        events.labels(kind="a").inc(2)
        events.labels(kind="b").inc()
        lat = reg.histogram("t_latency_seconds", "Latency.", buckets=(0.3, 1.0))
        for v in (0.25, 0.5, 4.0):
            lat.observe(v)
        reg.gauge("t_up", "Up.").set(1)
        assert reg.render_text() == (
            "# HELP t_events_total Events.\n"
            "# TYPE t_events_total counter\n"
            't_events_total{kind="a"} 2\n'
            't_events_total{kind="b"} 1\n'
            "# HELP t_latency_seconds Latency.\n"
            "# TYPE t_latency_seconds histogram\n"
            't_latency_seconds_bucket{le="0.3"} 1\n'
            't_latency_seconds_bucket{le="1"} 2\n'
            't_latency_seconds_bucket{le="+Inf"} 3\n'
            "t_latency_seconds_sum 4.75\n"
            "t_latency_seconds_count 3\n"
            "# HELP t_up Up.\n"
            "# TYPE t_up gauge\n"
            "t_up 1\n"
        )

    def test_exposition_escapes_label_values(self, reg):
        c = reg.counter("t_total", "Total.", ("kind",))
        c.labels(kind='we"ird\\lab\nel').inc()
        line = reg.render_text().splitlines()[2]
        assert line == 't_total{kind="we\\"ird\\\\lab\\nel"} 1'

    def test_snapshot_shape(self, reg):
        reg.counter("t_total", "Total.", ("kind",)).labels(kind="a").inc()
        snap = reg.snapshot()
        assert snap["t_total"]["type"] == "counter"
        assert snap["t_total"]["series"] == [{"labels": {"kind": "a"}, "value": 1.0}]


class TestCardinalityCap:
    """The cap must bound memory under label churn, not just reject once."""

    def test_total_series_bounded_under_sustained_label_churn(self, reg):
        c = reg.counter("t_total", "Total.", ("session",))
        c.max_series = 25
        # A connection-churn workload: every "session" is a fresh label
        # value, 40x past the cap.
        for i in range(1000):
            c.labels(session=f"s{i}").inc()
        assert c.n_series == 25
        assert c.n_dropped == 975
        # Registry-wide accounting stays bounded too: the capped metric
        # plus the drop counter's per-metric series.
        assert reg.total_series == 25 + 1
        for i in range(1000):
            c.labels(session=f"late-{i}").inc()
        assert reg.total_series == 25 + 1, "churn after the cap adds nothing"

    def test_drop_counter_records_loss_per_metric(self, reg):
        a = reg.counter("t_a_total", "A.", ("k",))
        b = reg.counter("t_b_total", "B.", ("k",))
        a.max_series = 2
        b.max_series = 2
        for i in range(5):
            a.labels(k=str(i)).inc()
        for i in range(3):
            b.labels(k=str(i)).inc()
        drops = reg.get("via_metrics_dropped_series_total")
        assert drops is not None
        assert drops.value_for(metric="t_a_total") == 3
        assert drops.value_for(metric="t_b_total") == 1
        assert 'via_metrics_dropped_series_total{metric="t_a_total"} 3' in (
            reg.render_text()
        )

    def test_drop_counter_never_recurses_at_its_own_cap(self, reg):
        # Force the pathological case: the drop counter itself is full,
        # then another metric overflows.  Recording that drop must not
        # recurse into the drop counter's own on_drop hook.
        drops = reg.counter(
            "via_metrics_dropped_series_total",
            "Label series rejected at a metric's cardinality cap, by metric.",
            ("metric",),
        )
        drops.max_series = 1
        drops.labels(metric="occupant").inc()
        c = reg.counter("t_total", "Total.", ("k",))
        c.max_series = 1
        c.labels(k="a").inc()
        c.labels(k="b").inc()  # overflows t_total -> drop recorded at full drops
        assert c.n_dropped == 1
        assert drops.n_dropped == 1, "the loss of the loss-record is counted"
        assert drops.n_series == 1

    def test_overflow_series_never_rendered(self, reg):
        c = reg.counter("t_total", "Total.", ("k",))
        c.max_series = 1
        c.labels(k="a").inc()
        c.labels(k="ghost").inc(99)
        text = reg.render_text()
        assert "ghost" not in text
        assert "99" not in text
        snap = c.snapshot()
        assert [s["labels"] for s in snap["series"]] == [{"k": "a"}]


class TestTracer:
    def test_disabled_trace_is_shared_noop(self):
        assert not runtime.enabled
        span = trace("assign", metric="rtt_ms")
        assert span is _NOOP_SPAN
        with span as s:
            assert s.tag(x=1) is s  # chainable, records nothing

    def test_nesting_depth_and_parent(self):
        tracer = Tracer(capacity=16, feed_histogram=False)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.depth == 1
        assert outer.parent_id is None
        assert outer.depth == 0
        # Children finish first, so the ring is child-then-parent.
        assert [s.name for s in tracer.finished()] == ["inner", "outer"]
        assert outer.duration_s >= inner.duration_s >= 0.0

    def test_ring_buffer_caps_memory_not_counts(self):
        tracer = Tracer(capacity=4, feed_histogram=False)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert tracer.n_finished == 10
        assert [s.name for s in tracer.finished()] == ["s6", "s7", "s8", "s9"]

    def test_render_text_indents_by_depth(self):
        tracer = Tracer(capacity=16, feed_histogram=False)
        with tracer.span("outer"):
            with tracer.span("inner", k=3):
                pass
        text = tracer.render_text()
        assert "\n" in text
        inner_line, outer_line = text.splitlines()
        assert inner_line.startswith("  inner")
        assert "[k=3]" in inner_line
        assert outer_line.startswith("outer")

    def test_enabled_trace_feeds_global_tracer_and_histogram(self):
        hist = REGISTRY.get("via_span_duration_seconds")
        before_finished = TRACER.n_finished
        before_count = hist.count
        with enabled_scope():
            with trace("obs_unit_test_span") as span:
                pass
        assert TRACER.n_finished == before_finished + 1
        assert span.duration_s >= 0.0
        assert hist.count == before_count + 1
        assert hist.series_for(span="obs_unit_test_span").count >= 1


class TestTimedAndRuntime:
    def test_enabled_scope_restores_prior_state(self):
        assert not runtime.enabled
        with enabled_scope():
            assert runtime.enabled
            with enabled_scope(False):
                assert not runtime.enabled
            assert runtime.enabled
        assert not runtime.enabled

    def test_timed_observes_only_when_enabled(self, reg):
        @timed("unit.timed_fn", registry=reg)
        def fn(x):
            return x + 1

        hist = reg.get("via_timed_seconds")
        assert hist is not None  # registered at decoration time
        assert fn(1) == 2
        assert hist.count == 0
        with enabled_scope():
            assert fn(2) == 3
        assert hist.series_for(func="unit.timed_fn").count == 1


class TestReplayIntegration:
    def test_assign_path_metrics_and_spans(self, small_world, small_trace):
        tiny = TraceDataset(calls=small_trace.calls[:600], n_days=small_trace.n_days)
        reg = MetricsRegistry()
        policy = make_policy(ViaConfig(metric="rtt_ms"), registry=reg)
        TRACER.clear()
        with enabled_scope():
            result = replay(small_world, tiny, policy, seed=3)

        assert len(result) == 600
        # One assign-latency observation per replayed call, on the
        # policy's own registry, labelled by the optimised metric.
        assign = reg.get("via_assign_duration_seconds")
        assert assign.count == 600
        assert assign.sum > 0.0
        assert assign.series_for(metric="rtt_ms").count == 600
        assert reg.get("via_observe_duration_seconds").count == 600
        assert reg.get("via_refreshes_total").value >= 1

        # Replay progress instruments live on the default registry.
        assert REGISTRY.get("via_replay_progress_fraction").value == 1.0
        calls_total = REGISTRY.get("via_replay_calls_total")
        assert calls_total.value_for(policy=policy.name) >= 600

        # The span tree covers the assign path.
        names = {s.name for s in TRACER.finished()}
        assert {"assign", "predict", "prune"} <= names
        assign_spans = [s for s in TRACER.finished() if s.name == "assign"]
        assert all(s.tags.get("metric") == "rtt_ms" for s in assign_spans)
        assert any("option" in s.tags for s in assign_spans)

        # And the whole thing renders as a scrape.
        text = reg.render_text()
        assert 'via_assign_duration_seconds_bucket{metric="rtt_ms",le="+Inf"} 600' in text
        assert "via_assign_duration_seconds_count" in text

    def test_disabled_replay_records_nothing(self, small_world, small_trace):
        tiny = TraceDataset(calls=small_trace.calls[:200], n_days=small_trace.n_days)
        reg = MetricsRegistry()
        policy = make_policy(ViaConfig(metric="rtt_ms"), registry=reg)
        assert not runtime.enabled
        replay(small_world, tiny, policy, seed=3)
        assert reg.get("via_assign_duration_seconds").count == 0
