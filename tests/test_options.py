"""Unit tests for repro.netmodel.options."""

from __future__ import annotations

import pytest

from repro.netmodel.options import DIRECT, OptionKind, RelayOption


class TestConstruction:
    def test_direct_singleton(self):
        assert RelayOption.direct() is DIRECT
        assert DIRECT.kind is OptionKind.DIRECT

    def test_bounce(self):
        o = RelayOption.bounce(7)
        assert o.kind is OptionKind.BOUNCE
        assert o.ingress == o.egress == 7

    def test_transit(self):
        o = RelayOption.transit(1, 2)
        assert o.kind is OptionKind.TRANSIT
        assert (o.ingress, o.egress) == (1, 2)

    def test_direct_rejects_relay_ids(self):
        with pytest.raises(ValueError):
            RelayOption(OptionKind.DIRECT, ingress=1)

    def test_bounce_requires_equal_ids(self):
        with pytest.raises(ValueError):
            RelayOption(OptionKind.BOUNCE, ingress=1, egress=2)
        with pytest.raises(ValueError):
            RelayOption(OptionKind.BOUNCE)

    def test_transit_requires_distinct_ids(self):
        with pytest.raises(ValueError):
            RelayOption(OptionKind.TRANSIT, ingress=3, egress=3)
        with pytest.raises(ValueError):
            RelayOption(OptionKind.TRANSIT, ingress=3)


class TestBehaviour:
    def test_is_relayed(self):
        assert not DIRECT.is_relayed
        assert RelayOption.bounce(0).is_relayed
        assert RelayOption.transit(0, 1).is_relayed

    def test_relay_ids(self):
        assert DIRECT.relay_ids() == ()
        assert RelayOption.bounce(4).relay_ids() == (4,)
        assert RelayOption.transit(4, 9).relay_ids() == (4, 9)

    def test_reversed_transit_swaps(self):
        o = RelayOption.transit(1, 2)
        assert o.reversed() == RelayOption.transit(2, 1)
        assert o.reversed().reversed() == o

    def test_reversed_identity_for_direct_and_bounce(self):
        assert DIRECT.reversed() is DIRECT
        b = RelayOption.bounce(3)
        assert b.reversed() == b

    def test_hashable_and_equal(self):
        assert RelayOption.bounce(5) == RelayOption.bounce(5)
        assert len({RelayOption.bounce(5), RelayOption.bounce(5), DIRECT}) == 2

    def test_str_forms(self):
        assert str(DIRECT) == "direct"
        assert str(RelayOption.bounce(3)) == "bounce(3)"
        assert str(RelayOption.transit(3, 4)) == "transit(3->4)"
