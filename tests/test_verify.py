"""The conformance verification plane: oracles, differential, crash sweep.

These are the plane's own tests: the oracles must agree with production
decision-for-decision on randomized inputs, the differential harness must
both pass on the real policy and *detect* a planted bug, and the crash
sweep must pass on a real log and flag a tampered expectation.  The
heavyweight acceptance run lives behind ``make test-verify``
(``repro verify --budget full``); everything here stays fast.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.bandit import UCB1Explorer
from repro.core.costs import make_cost_model
from repro.core.history import CallHistory
from repro.core.policy import ViaConfig, ViaPolicy
from repro.core.predictor import Prediction
from repro.core.tomography import TomographyModel
from repro.core.topk import dynamic_top_k_cost
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption
from repro.obs.metrics import MetricsRegistry
from repro.verify import (
    DivergenceError,
    OracleBandit,
    OracleViaPolicy,
    RecordedLog,
    VerifyBudget,
    crash_point_sweep,
    oracle_dynamic_top_k,
    oracle_stitch,
    oracle_topk_normalizer,
    random_config,
    record_workload,
    run_differential,
    run_verify,
)

pytestmark = pytest.mark.verify

OPTION_POOL = [DIRECT] + [RelayOption.bounce(r) for r in range(5)] + [
    RelayOption.transit(0, 1),
    RelayOption.transit(2, 3),
]


def _random_predictions(rng, n: int) -> dict[RelayOption, Prediction]:
    picks = rng.choice(len(OPTION_POOL), size=n, replace=False)
    return {
        OPTION_POOL[int(i)]: Prediction(
            mean=np.array([
                float(rng.uniform(10, 300)),
                float(rng.uniform(0, 0.05)),
                float(rng.uniform(0, 30)),
            ]),
            sem=np.array([
                float(rng.uniform(0.1, 40)),
                float(rng.uniform(0, 0.01)),
                float(rng.uniform(0, 5)),
            ]),
            n=int(rng.integers(0, 40)),
            source="history",
        )
        for i in picks
    }


class TestDynamicTopKOracle:
    """Production's single-pass walk == the oracle's quantified minimum."""

    @pytest.mark.parametrize(
        "metric, seed",
        [("rtt_ms", 1), ("loss_rate", 2), ("jitter_ms", 3), ("mos", 4)],
    )
    def test_matches_production_on_random_inputs(self, metric, seed):
        cost = make_cost_model(metric)
        rng = np.random.default_rng(seed)
        for trial in range(300):
            n = int(rng.integers(1, len(OPTION_POOL) + 1))
            predictions = _random_predictions(rng, n)
            max_k = [None, 2, 3, 6][int(rng.integers(4))]
            produced = dynamic_top_k_cost(predictions, cost, max_k=max_k)
            expected = oracle_dynamic_top_k(predictions, cost, max_k=max_k)
            assert produced == expected, (
                f"trial {trial}: production {produced} != oracle {expected}"
            )

    def test_empty_predictions(self):
        cost = make_cost_model("rtt_ms")
        assert oracle_dynamic_top_k({}, cost) == []
        assert dynamic_top_k_cost({}, cost) == []

    def test_overlapping_intervals_keep_everything(self):
        """All confidence intervals overlap: nothing is excludable."""
        cost = make_cost_model("rtt_ms")
        predictions = {
            RelayOption.bounce(r): Prediction(
                mean=np.array([100.0 + r, 0.0, 0.0]),
                sem=np.array([50.0, 0.0, 0.0]),
                n=5,
                source="history",
            )
            for r in range(4)
        }
        kept = oracle_dynamic_top_k(predictions, cost)
        assert len(kept) == 4
        assert kept == dynamic_top_k_cost(predictions, cost)

    def test_separated_intervals_keep_only_best(self):
        cost = make_cost_model("rtt_ms")
        predictions = {
            RelayOption.bounce(r): Prediction(
                mean=np.array([100.0 * (r + 1), 0.0, 0.0]),
                sem=np.array([1.0, 0.0, 0.0]),
                n=30,
                source="history",
            )
            for r in range(4)
        }
        kept = oracle_dynamic_top_k(predictions, cost)
        assert kept == [RelayOption.bounce(0)]
        assert kept == dynamic_top_k_cost(predictions, cost)


class TestBanditOracle:
    """UCB1Explorer == OracleBandit, arm-for-arm, in both modes."""

    @pytest.mark.parametrize("mode", ["via", "classic"])
    def test_lockstep_choices(self, mode):
        rng = np.random.default_rng(99 if mode == "via" else 100)
        for _trial in range(50):
            n_arms = int(rng.integers(1, 6))
            arms = [OPTION_POOL[i] for i in range(n_arms)]
            normalizer = float(rng.uniform(10, 200))
            coef = float(rng.choice([0.01, 0.1, 1.0]))
            production = UCB1Explorer(
                arms, normalizer=normalizer, exploration_coef=coef, mode=mode
            )
            oracle = OracleBandit(
                arms, normalizer=normalizer, exploration_coef=coef, mode=mode
            )
            for step in range(40):
                choice = production.choose()
                assert choice == oracle.choose(), f"diverged at play {step}"
                cost = float(rng.uniform(1, 300))
                production.update(choice, cost)
                oracle.update(choice, cost)
            assert production.total_plays == oracle.total_plays
            assert production.max_seen_cost == oracle.max_seen_cost

    def test_normalizer_matches_from_cost_model(self):
        cost = make_cost_model("rtt_ms")
        rng = np.random.default_rng(5)
        for _ in range(50):
            predictions = _random_predictions(rng, int(rng.integers(1, 7)))
            arms = list(predictions)[: int(rng.integers(1, len(predictions) + 1))]
            production = UCB1Explorer.from_cost_model(arms, predictions, cost)
            assert production._normalizer == pytest.approx(
                oracle_topk_normalizer(arms, predictions, cost)
            )

    def test_normalizer_without_predictions_is_one(self):
        cost = make_cost_model("rtt_ms")
        assert oracle_topk_normalizer([RelayOption.bounce(0)], {}, cost) == 1.0


class TestStitchingOracle:
    """TomographyModel.predict == the Figure-11 restatement."""

    def _fitted_model(self):
        history = CallHistory(window_hours=24.0)
        rng = np.random.default_rng(21)
        sides = ["US", "GB", "IN"]
        options = [RelayOption.bounce(0), RelayOption.bounce(1), RelayOption.transit(0, 1)]
        for _ in range(300):
            s, d = rng.choice(3, size=2, replace=False)
            option = options[int(rng.integers(len(options)))]
            history.add(
                (sides[int(s)], sides[int(d)]),
                option,
                float(rng.uniform(0, 20)),
                PathMetrics(
                    rtt_ms=float(rng.uniform(20, 200)),
                    loss_rate=float(rng.uniform(0, 0.02)),
                    jitter_ms=float(rng.uniform(0, 10)),
                ),
            )

        def inter_relay(r1, r2):
            return PathMetrics(rtt_ms=8.0, loss_rate=0.001, jitter_ms=1.0)

        model = TomographyModel.fit(
            (
                ((key[0][0], key[0][1]), key[1], stat)
                for key, stat in history.window_items(0)
            ),
            inter_relay,
        )
        return model, inter_relay, sides

    def test_predict_matches_oracle_everywhere(self):
        model, inter_relay, sides = self._fitted_model()
        probes = [DIRECT] + [RelayOption.bounce(r) for r in range(3)] + [
            RelayOption.transit(0, 1),
            RelayOption.transit(1, 0),
            RelayOption.transit(0, 2),
        ]
        n_compared = 0
        for side_s in sides:
            for side_d in sides:
                for option in probes:
                    produced = model.predict(side_s, side_d, option)
                    expected = oracle_stitch(
                        model._estimates, model._sems, inter_relay,
                        side_s, side_d, option,
                    )
                    assert (produced is None) == (expected is None)
                    if produced is None:
                        continue
                    n_compared += 1
                    np.testing.assert_allclose(produced[0], expected[0], rtol=1e-9)
                    np.testing.assert_allclose(produced[1], expected[1], rtol=1e-9)
        assert n_compared > 10  # the fit actually produced estimates

    def test_direct_is_never_stitched(self):
        model, inter_relay, _sides = self._fitted_model()
        assert oracle_stitch(
            model._estimates, model._sems, inter_relay, "US", "GB", DIRECT
        ) is None


class _TruncatedPruneBug(ViaPolicy):
    """A planted Algorithm 2 bug: silently keeps only the best candidate."""

    def _prune(self, predictions, norm_options):
        topk = super()._prune(predictions, norm_options)
        return topk[:1] if len(topk) > 1 else topk


class TestDifferentialHarness:
    def test_200_randomized_steps_zero_divergence(self):
        """The acceptance criterion, at unit-test scale: several full
        randomized streams with no oracle/production disagreement."""
        for seed in range(4):
            report = run_differential(n_steps=200, seed=seed)
            assert report.n_steps == 200
            assert report.n_assigns == 200
            assert report.n_observes == 200

    def test_detects_planted_pruning_bug(self):
        config = ViaConfig(
            metric="rtt_ms",
            topk_mode="dynamic",
            epsilon=0.0,
            refresh_hours=6.0,
            min_direct_samples=1,
            seed=3,
        )
        with pytest.raises(DivergenceError) as excinfo:
            run_differential(
                config, n_steps=400, seed=5, production_factory=_TruncatedPruneBug
            )
        context = excinfo.value.context
        assert context["seed"] == 5
        assert "production_choice" in context and "oracle_choice" in context
        assert context["production_choice"] != context["oracle_choice"]
        # The context is artifact-ready: a JSON round-trip must survive.
        json.dumps(context, default=repr)

    def test_oracle_rejects_out_of_scope_knobs(self):
        with pytest.raises(ValueError):
            OracleViaPolicy(ViaConfig(budget=0.5))
        with pytest.raises(ValueError):
            OracleViaPolicy(ViaConfig(per_relay_cap=0.3))
        with pytest.raises(ValueError):
            OracleViaPolicy(ViaConfig(use_coordinates=True))

    def test_random_config_stays_in_oracle_scope(self, rng):
        for _ in range(30):
            config = random_config(rng)
            OracleViaPolicy(config)  # must not raise

    def test_epsilon_draws_stay_in_lockstep(self):
        """High epsilon exercises the RNG short-circuit order on every call."""
        config = ViaConfig(
            metric="rtt_ms", epsilon=0.5, refresh_hours=6.0,
            min_direct_samples=1, seed=11,
        )
        report = run_differential(config, n_steps=200, seed=12)
        assert report.n_epsilon > 20  # the coin actually flipped


class TestCrashPointSweep:
    @pytest.fixture(scope="class")
    def small_sweep(self, tmp_path_factory):
        workdir = tmp_path_factory.mktemp("sweep")
        recorded = record_workload(workdir / "recorded", n_rounds=4, seed=7)
        report = crash_point_sweep(
            workdir, n_rounds=4, seed=7, corrupt_samples=16, recorded=recorded
        )
        return recorded, report

    def test_sweep_covers_every_byte_and_passes(self, small_sweep):
        recorded, report = small_sweep
        assert report.ok, report.failures[:3]
        assert report.n_truncations == len(recorded.data) + 1
        assert report.n_boundary_equivalence_checks == recorded.n_records + 1
        assert report.n_corruptions == 16

    def test_recorded_log_layout(self, small_sweep):
        recorded, _report = small_sweep
        # 4 hellos + 4 rounds x (measurement + request).
        assert recorded.n_records == 4 + 2 * 4
        assert recorded.boundaries[0] == 8  # the magic prefix
        assert recorded.boundaries[-1] == len(recorded.data)
        assert recorded.boundaries == sorted(set(recorded.boundaries))
        kinds = [r["kind"] for r in recorded.records]
        assert kinds[:4] == ["hello"] * 4
        assert kinds[4:] == ["measurement", "request"] * 4

    def test_expected_prefix_semantics(self, small_sweep):
        recorded, _report = small_sweep
        assert recorded.expected_prefix(0) == 0
        assert recorded.expected_prefix(7) == 0  # inside the magic
        assert recorded.expected_prefix(recorded.boundaries[1]) == 1
        assert recorded.expected_prefix(recorded.boundaries[1] + 1) == 1
        assert recorded.expected_prefix(len(recorded.data)) == recorded.n_records

    def test_sweep_detects_tampered_expectation(self, tmp_path, small_sweep):
        """Drop the last record from the expectation: salvage now finds one
        record 'too many' at the full-length offset, and the sweep must say
        so rather than pass vacuously."""
        recorded, _report = small_sweep
        tampered = RecordedLog(
            data=recorded.data,
            records=recorded.records[:-1],
            boundaries=recorded.boundaries[:-1],
        )
        report = crash_point_sweep(
            tmp_path, n_rounds=4, seed=7, corrupt_samples=0, recorded=tampered
        )
        assert not report.ok
        assert any(f["check"] == "truncation" for f in report.failures)


class TestRunner:
    TINY = VerifyBudget(
        differential_streams=1,
        differential_steps=60,
        crash_rounds=2,
        corrupt_samples=4,
        statemachine_examples=2,
        statemachine_steps=8,
        seed=0,
    )

    def test_small_run_passes_with_metrics(self, tmp_path):
        registry = MetricsRegistry()
        report = run_verify(
            self.TINY, workdir=tmp_path, registry=registry,
            artifacts_dir=tmp_path / "artifacts",
        )
        assert report.ok, report.failures[:3]
        assert not report.truncated
        assert len(report.legs) == 3
        assert report.artifact_path is None
        text = registry.render_text()
        # One stream x two candidates (scalar ViaPolicy + VectorizedViaPolicy).
        assert 'via_verify_checks_total{leg="differential"} 2' in text
        assert 'via_verify_checks_total{leg="crashpoints"}' in text
        assert "via_verify_last_duration_seconds" in text
        assert "seed=0" in report.summary() and "PASS" in report.summary()

    def test_time_budget_truncates_cleanly(self, tmp_path):
        import dataclasses

        budget = dataclasses.replace(self.TINY, time_budget_s=0.0)
        report = run_verify(
            budget, workdir=tmp_path, registry=MetricsRegistry(),
            artifacts_dir=tmp_path / "artifacts",
        )
        assert report.truncated
        assert report.ok  # skipped is not failed
        assert "TIME BUDGET EXHAUSTED" in report.summary()

    def test_failure_writes_seed_reproducible_artifact(self, tmp_path, monkeypatch):
        import repro.verify.runner as runner_module

        def planted(n_steps, seed, **kwargs):
            raise DivergenceError("planted divergence", {"seed": seed})

        monkeypatch.setattr(runner_module, "run_differential", planted)
        registry = MetricsRegistry()
        report = run_verify(
            self.TINY, workdir=tmp_path, registry=registry,
            artifacts_dir=tmp_path / "artifacts",
        )
        assert not report.ok
        assert report.artifact_path is not None and report.artifact_path.exists()
        payload = json.loads(report.artifact_path.read_text(encoding="utf-8"))
        assert payload["seed"] == 0
        assert payload["failures"][0]["leg"] == "differential"
        # The planted bug diverges for both candidates (scalar + vector).
        assert 'via_verify_failures_total{leg="differential"} 2' in registry.render_text()
        assert "reproduce with: repro verify --seed 0" in report.summary()


class TestVerifyCli:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["verify"])
        assert args.budget == "small"
        assert args.seed == 0
        assert args.artifacts_dir == ".verify-failures"

    def test_small_cli_run_exits_zero(self, tmp_path, capsys):
        code = main([
            "verify", "--seed", "1", "--streams", "1", "--steps", "60",
            "--crash-rounds", "2", "--artifacts-dir", str(tmp_path / "artifacts"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out and "seed=1" in out
