"""Unit tests for repro.core.tomography (segment estimation + stitching)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.history import RunningStat
from repro.core.tomography import TomographyModel
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption


def stat_of(rtt: float, loss: float = 0.01, jitter: float = 2.0, count: int = 10) -> RunningStat:
    stat = RunningStat()
    for _ in range(count):
        stat.push(PathMetrics(rtt_ms=rtt, loss_rate=loss, jitter_ms=jitter))
    return stat


ZERO_INTER = lambda r1, r2: PathMetrics(rtt_ms=0.0, loss_rate=0.0, jitter_ms=0.0)  # noqa: E731


def make_observations(segments: dict[tuple[str, int], float], pairs, inter=None):
    """Noiseless bounce/transit observations from known segment RTTs."""
    observations = []
    for (s, d, option) in pairs:
        if option.kind.value == "bounce":
            rtt = segments[(s, option.ingress)] + segments[(d, option.ingress)]
        else:
            base = inter(option.ingress, option.egress).rtt_ms if inter else 0.0
            rtt = segments[(s, option.ingress)] + segments[(d, option.egress)] + base
        observations.append(((s, d), option, stat_of(rtt)))
    return observations


class TestFitRecovery:
    def test_recovers_segments_from_bounce_observations(self):
        segments = {("A", 0): 30.0, ("B", 0): 50.0, ("C", 0): 70.0}
        pairs = [
            ("A", "B", RelayOption.bounce(0)),
            ("B", "C", RelayOption.bounce(0)),
            ("A", "C", RelayOption.bounce(0)),
        ]
        model = TomographyModel.fit(
            make_observations(segments, pairs), ZERO_INTER
        )
        for key, expected in segments.items():
            estimate = model.segment_estimate(*key)
            assert estimate is not None
            assert estimate[0] == pytest.approx(expected, rel=0.02)

    def test_prediction_stitches_unseen_path(self):
        # Observe A-B and B-C via relay 0; predict the never-seen A-C.
        segments = {("A", 0): 30.0, ("B", 0): 50.0, ("C", 0): 70.0}
        pairs = [
            ("A", "B", RelayOption.bounce(0)),
            ("B", "C", RelayOption.bounce(0)),
            ("A", "C", RelayOption.bounce(0)),
        ]
        model = TomographyModel.fit(make_observations(segments, pairs), ZERO_INTER)
        prediction = model.predict("A", "C", RelayOption.bounce(0))
        assert prediction is not None
        mean, sem = prediction
        assert mean[0] == pytest.approx(100.0, rel=0.03)
        assert (sem >= 0).all()

    def test_transit_subtracts_known_backbone(self):
        inter = lambda r1, r2: PathMetrics(rtt_ms=40.0, loss_rate=0.0, jitter_ms=0.1)  # noqa: E731
        segments = {("A", 0): 30.0, ("B", 1): 60.0, ("A", 1): 35.0, ("B", 0): 55.0}
        pairs = [
            ("A", "B", RelayOption.transit(0, 1)),
            ("A", "B", RelayOption.transit(1, 0)),
            ("A", "B", RelayOption.bounce(0)),
            ("A", "B", RelayOption.bounce(1)),
        ]
        model = TomographyModel.fit(
            make_observations(segments, pairs, inter), inter
        )
        prediction = model.predict("A", "B", RelayOption.transit(0, 1))
        assert prediction is not None
        assert prediction[0][0] == pytest.approx(30.0 + 60.0 + 40.0, rel=0.03)

    def test_figure_11_path_stitching_identity(self):
        # The paper's example: RTT(3<->4) = RTT(1<->4) + RTT(2<->3) - RTT(1<->2)
        # expressed through a shared relay RN (id 0).
        segments = {("AS1", 0): 20.0, ("AS2", 0): 30.0, ("AS3", 0): 25.0, ("AS4", 0): 45.0}
        pairs = [
            ("AS1", "AS4", RelayOption.bounce(0)),
            ("AS2", "AS3", RelayOption.bounce(0)),
            ("AS1", "AS2", RelayOption.bounce(0)),
        ]
        model = TomographyModel.fit(make_observations(segments, pairs), ZERO_INTER)
        got = model.predict("AS3", "AS4", RelayOption.bounce(0))
        assert got is not None
        # (20+45) + (30+25) - (20+30) = 70
        assert got[0][0] == pytest.approx(70.0, rel=0.05)

    def test_intra_as_bounce_uses_double_coefficient(self):
        # A call within one AS observes 2 * x[(A, 0)].
        observations = [(("A", "A"), RelayOption.bounce(0), stat_of(60.0))]
        model = TomographyModel.fit(observations, ZERO_INTER)
        estimate = model.segment_estimate("A", 0)
        assert estimate is not None
        assert estimate[0] == pytest.approx(30.0, rel=0.05)

    def test_loss_solved_in_linear_domain(self):
        # Segment losses 1% and 2% compose to ~2.98%, not 3%.
        stat = stat_of(100.0, loss=1 - (1 - 0.01) * (1 - 0.02))
        observations = [
            (("A", "B"), RelayOption.bounce(0), stat),
            (("A", "A"), RelayOption.bounce(0), stat_of(100.0, loss=1 - (1 - 0.01) ** 2)),
        ]
        model = TomographyModel.fit(observations, ZERO_INTER)
        prediction = model.predict("A", "B", RelayOption.bounce(0))
        assert prediction is not None
        assert prediction[0][1] == pytest.approx(1 - (1 - 0.01) * (1 - 0.02), rel=0.05)


class TestFitEdgeCases:
    def test_direct_observations_ignored(self):
        observations = [(("A", "B"), DIRECT, stat_of(100.0))]
        model = TomographyModel.fit(observations, ZERO_INTER)
        assert model.n_segments == 0

    def test_min_count_filters_thin_observations(self):
        observations = [(("A", "B"), RelayOption.bounce(0), stat_of(100.0, count=2))]
        model = TomographyModel.fit(observations, ZERO_INTER, min_count=5)
        assert model.n_segments == 0

    def test_empty_observations(self):
        model = TomographyModel.fit([], ZERO_INTER)
        assert model.n_segments == 0
        assert model.predict("A", "B", RelayOption.bounce(0)) is None

    def test_predict_direct_returns_none(self):
        observations = [(("A", "B"), RelayOption.bounce(0), stat_of(100.0))]
        model = TomographyModel.fit(observations, ZERO_INTER)
        assert model.predict("A", "B", DIRECT) is None

    def test_predict_missing_segment_returns_none(self):
        observations = [(("A", "B"), RelayOption.bounce(0), stat_of(100.0))]
        model = TomographyModel.fit(observations, ZERO_INTER)
        assert model.predict("A", "Z", RelayOption.bounce(0)) is None
        assert model.predict("A", "B", RelayOption.bounce(9)) is None

    def test_estimates_respect_floors(self):
        # Wildly inconsistent observations can push LSQR negative; the
        # published estimates must stay at or above the physical floors.
        observations = [
            (("A", "B"), RelayOption.bounce(0), stat_of(10.0)),
            (("A", "A"), RelayOption.bounce(0), stat_of(100.0)),
            (("B", "B"), RelayOption.bounce(0), stat_of(100.0)),
        ]
        model = TomographyModel.fit(observations, ZERO_INTER)
        for side in ("A", "B"):
            estimate = model.segment_estimate(side, 0)
            assert estimate is not None
            assert estimate[0] >= 0.5
            assert estimate[1] >= 0.0


class TestWorldIntegration:
    def test_accuracy_on_world_generated_observations(self, small_world, rng):
        """Tomography should land near ground truth for linear relay paths."""
        world = small_world
        asns = world.topology.asns[:10]
        day = 2
        observations = []
        for i, a in enumerate(asns):
            for b in asns[i + 1:]:
                for option in world.options_for_pair(a, b)[1:6]:
                    stat = RunningStat()
                    for _ in range(30):
                        stat.push(world.sample_path(a, b, option, day * 24.0 + 1.0, rng))
                    observations.append((((a, b)), option, stat))
        inter = lambda r1, r2: world.inter_segment(r1, r2).mean_on_day(day)  # noqa: E731
        model = TomographyModel.fit(observations, inter)
        errors = []
        for (pair, option, _stat) in observations:
            prediction = model.predict(pair[0], pair[1], option)
            assert prediction is not None
            truth = world.true_mean(pair[0], pair[1], option, day).rtt_ms
            errors.append(abs(prediction[0][0] - truth) / truth)
        # Most predictions land close; residuals put a floor on accuracy
        # (that is the paper's §5.3 story: ~71% within 20%).
        assert np.mean(np.asarray(errors) <= 0.2) > 0.5
        assert np.median(errors) < 0.2


class TestRandomSystemRecovery:
    """Property-based check: any consistent linear system is recovered."""

    from hypothesis import given, settings, strategies as st

    @given(
        st.integers(min_value=2, max_value=5),   # number of sides
        st.integers(min_value=1, max_value=3),   # number of relays
        st.integers(min_value=0, max_value=1000),  # seed for values
    )
    @settings(max_examples=40, deadline=None)
    def test_consistent_bounce_systems_recovered(self, n_sides, n_relays, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        sides = [f"S{i}" for i in range(n_sides)]
        true = {
            (s, r): float(rng.uniform(5.0, 120.0))
            for s in sides
            for r in range(n_relays)
        }
        observations = []
        for i, a in enumerate(sides):
            for b in sides[i:]:
                for r in range(n_relays):
                    rtt = true[(a, r)] + true[(b, r)]
                    observations.append(((a, b), RelayOption.bounce(r), stat_of(rtt)))
        model = TomographyModel.fit(observations, ZERO_INTER)
        # Every end-to-end prediction matches the generating system.
        for i, a in enumerate(sides):
            for b in sides[i:]:
                for r in range(n_relays):
                    predicted = model.predict(a, b, RelayOption.bounce(r))
                    assert predicted is not None
                    expected = true[(a, r)] + true[(b, r)]
                    assert predicted[0][0] == pytest.approx(expected, rel=0.05)
