"""Unit tests for repro.core.keys (pair keying and orientation)."""

from __future__ import annotations

import pytest

from repro.core.keys import PairKeyer
from repro.netmodel.options import DIRECT, RelayOption
from repro.telephony.call import Call


def make_call(src_asn=1001, dst_asn=1002, src_prefix=0, dst_prefix=0,
              src_country="US", dst_country="IN") -> Call:
    return Call(
        call_id=0, t_hours=1.0, src_asn=src_asn, dst_asn=dst_asn,
        src_country=src_country, dst_country=dst_country,
        src_user=0, dst_user=1, src_prefix=src_prefix, dst_prefix=dst_prefix,
    )


class TestPairKeyer:
    def test_rejects_unknown_granularity(self):
        with pytest.raises(ValueError):
            PairKeyer("continent")  # type: ignore[arg-type]

    def test_as_granularity_keys(self):
        view = PairKeyer("as").view(make_call(src_asn=7, dst_asn=3))
        assert view.pair_key == (3, 7)
        assert view.flipped

    def test_unflipped_when_already_sorted(self):
        view = PairKeyer("as").view(make_call(src_asn=3, dst_asn=7))
        assert view.pair_key == (3, 7)
        assert not view.flipped

    def test_country_granularity_pools_ases(self):
        keyer = PairKeyer("country")
        v1 = keyer.view(make_call(src_asn=1, dst_asn=2))
        v2 = keyer.view(make_call(src_asn=99, dst_asn=98))
        assert v1.pair_key == v2.pair_key == ("IN", "US")

    def test_prefix_granularity_distinguishes_prefixes(self):
        keyer = PairKeyer("prefix")
        v1 = keyer.view(make_call(src_prefix=0))
        v2 = keyer.view(make_call(src_prefix=1))
        assert v1.pair_key != v2.pair_key

    def test_both_directions_share_pair_key(self):
        keyer = PairKeyer("as")
        fwd = keyer.view(make_call(src_asn=10, dst_asn=20))
        rev = keyer.view(make_call(src_asn=20, dst_asn=10))
        assert fwd.pair_key == rev.pair_key
        assert fwd.flipped != rev.flipped


class TestPairView:
    def test_normalize_reverses_transit_when_flipped(self):
        view = PairKeyer("as").view(make_call(src_asn=9, dst_asn=1))
        assert view.flipped
        transit = RelayOption.transit(4, 5)
        assert view.normalize(transit) == RelayOption.transit(5, 4)

    def test_normalize_is_identity_when_not_flipped(self):
        view = PairKeyer("as").view(make_call(src_asn=1, dst_asn=9))
        transit = RelayOption.transit(4, 5)
        assert view.normalize(transit) == transit

    def test_denormalize_inverts_normalize(self):
        for src, dst in ((1, 9), (9, 1)):
            view = PairKeyer("as").view(make_call(src_asn=src, dst_asn=dst))
            for option in (DIRECT, RelayOption.bounce(2), RelayOption.transit(0, 3)):
                assert view.denormalize(view.normalize(option)) == option

    def test_bounce_and_direct_unaffected_by_flip(self):
        view = PairKeyer("as").view(make_call(src_asn=9, dst_asn=1))
        assert view.normalize(DIRECT) is DIRECT
        assert view.normalize(RelayOption.bounce(3)) == RelayOption.bounce(3)
