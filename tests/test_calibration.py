"""Calibration guard: the synthetic world stays inside the paper's bands.

These tests protect the Figure 1/2/4/8 shapes from silent drift when
world constants change.  They use a medium world (bigger than the shared
``small_world``) because the §2 population statistics need geographic
diversity to be meaningful.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import DEFAULT_THRESHOLDS, pnr_breakdown, split_international
from repro.core.baselines import DefaultPolicy, OraclePolicy
from repro.netmodel import TopologyConfig, WorldConfig, build_world
from repro.simulation import ExperimentPlan
from repro.workload import WorkloadConfig, generate_trace


@pytest.fixture(scope="module")
def medium_run():
    world = build_world(
        WorldConfig(topology=TopologyConfig(n_countries=25, n_relays=12, seed=5), n_days=12, seed=5)
    )
    trace = generate_trace(
        world.topology, WorkloadConfig(n_calls=15_000, n_pairs=250, seed=5), n_days=12
    )
    plan = ExperimentPlan(world=world, trace=trace, warmup_days=1, min_pair_calls=60)
    results = plan.run(
        {"default": DefaultPolicy(), "oracle": OraclePolicy(world, "rtt_ms")}, seed=5
    )
    return plan, results


class TestPopulationBands:
    def test_direct_pnr_bands(self, medium_run):
        """Figure 2: a significant but minority share of calls is poor."""
        plan, results = medium_run
        breakdown = pnr_breakdown(results["default"].outcomes)
        for metric in ("rtt_ms", "loss_rate", "jitter_ms"):
            assert 0.05 <= breakdown[metric] <= 0.40, (metric, breakdown[metric])
        assert 0.15 <= breakdown["any"] <= 0.60

    def test_direct_metric_medians_plausible(self, medium_run):
        _plan, results = medium_run
        outcomes = results["default"].outcomes
        rtt = float(np.median([o.metrics.rtt_ms for o in outcomes]))
        loss = float(np.median([o.metrics.loss_rate for o in outcomes]))
        jitter = float(np.median([o.metrics.jitter_ms for o in outcomes]))
        assert 50.0 <= rtt <= 300.0
        assert 0.0005 <= loss <= DEFAULT_THRESHOLDS.loss_rate
        assert 2.0 <= jitter <= DEFAULT_THRESHOLDS.jitter_ms

    def test_international_penalty_band(self, medium_run):
        """Figure 4: international calls are substantially worse combined."""
        _plan, results = medium_run
        intl, dom = split_international(results["default"].outcomes)
        ratio = pnr_breakdown(intl)["any"] / max(pnr_breakdown(dom)["any"], 1e-9)
        assert 1.3 <= ratio <= 10.0

    def test_oracle_headroom_band(self, medium_run):
        """Figure 8: the oracle removes a large share of poor-RTT calls
        but not all of them (the unfixable last-mile population)."""
        plan, results = medium_run
        base = pnr_breakdown(plan.evaluate(results["default"]))["rtt_ms"]
        oracle = pnr_breakdown(plan.evaluate(results["oracle"]))["rtt_ms"]
        assert oracle < 0.6 * base
        assert oracle > 0.0  # some poor calls must survive foresight
