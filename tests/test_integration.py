"""End-to-end integration tests: the paper's headline shapes on a small world.

These replay real traces through real policies and assert the *directional*
results of the evaluation section: oracle beats VIA beats default, budget
caps hold, tomography expands coverage, and the quality models tie network
metrics to ratings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import pnr_breakdown, relative_improvement
from repro.core.baselines import DefaultPolicy, OraclePolicy, make_via
from repro.simulation import ExperimentPlan, make_inter_relay_lookup, standard_policies
from repro.telephony.quality import QualityModel


@pytest.fixture(scope="module")
def plan(small_world, small_trace):
    return ExperimentPlan(
        world=small_world, trace=small_trace, warmup_days=2, min_pair_calls=40
    )


@pytest.fixture(scope="module")
def results(plan, small_world):
    return plan.run(standard_policies(small_world, "rtt_ms"), seed=21)


class TestHeadlineOrdering:
    def test_oracle_beats_default(self, plan, results):
        base = pnr_breakdown(plan.evaluate(results["default"]))
        oracle = pnr_breakdown(plan.evaluate(results["oracle"]))
        assert oracle["rtt_ms"] < base["rtt_ms"]
        assert oracle["any"] < base["any"]

    def test_via_beats_default_substantially(self, plan, results):
        base = pnr_breakdown(plan.evaluate(results["default"]))
        via = pnr_breakdown(plan.evaluate(results["via"]))
        assert relative_improvement(base["rtt_ms"], via["rtt_ms"]) > 25.0

    def test_oracle_bounds_via(self, plan, results):
        oracle = pnr_breakdown(plan.evaluate(results["oracle"]))
        via = pnr_breakdown(plan.evaluate(results["via"]))
        # The oracle has strict foresight; VIA cannot beat it materially
        # (sampling noise allows small inversions on tiny populations).
        assert via["rtt_ms"] >= oracle["rtt_ms"] - 0.02

    def test_via_beats_pure_exploration(self, plan, results):
        via = pnr_breakdown(plan.evaluate(results["via"]))
        s2 = pnr_breakdown(plan.evaluate(results["strawman-exploration"]))
        assert via["rtt_ms"] <= s2["rtt_ms"] + 0.01

    def test_relay_mix_mostly_relayed(self, results):
        mix = results["via"].option_mix()
        relayed = mix.get("bounce", 0.0) + mix.get("transit", 0.0)
        assert relayed > 0.5


class TestBudgetIntegration:
    def test_budget_cap_respected_end_to_end(self, plan, small_world):
        policy = make_via(
            "rtt_ms",
            inter_relay=make_inter_relay_lookup(small_world),
            budget=0.3,
            budget_aware=True,
        )
        result = plan.run({"budgeted": policy}, seed=22)["budgeted"]
        assert result.relayed_fraction <= 0.35

    def test_budgeted_still_improves(self, plan, small_world):
        policies = {
            "default": DefaultPolicy(),
            "budgeted": make_via(
                "rtt_ms",
                inter_relay=make_inter_relay_lookup(small_world),
                budget=0.3,
            ),
        }
        results = plan.run(policies, seed=23)
        base = pnr_breakdown(plan.evaluate(results["default"]))
        budgeted = pnr_breakdown(plan.evaluate(results["budgeted"]))
        assert budgeted["rtt_ms"] < base["rtt_ms"]


class TestMetricSpecificOptimisation:
    def test_oracle_improves_its_own_metric_most(self, plan, small_world, small_trace):
        results = plan.run(
            {
                "default": DefaultPolicy(),
                "oracle-loss": OraclePolicy(small_world, "loss_rate"),
            },
            seed=24,
        )
        base = pnr_breakdown(plan.evaluate(results["default"]))
        oracle = pnr_breakdown(plan.evaluate(results["oracle-loss"]))
        assert oracle["loss_rate"] < base["loss_rate"]


class TestRatingsIntegration:
    def test_poor_network_calls_get_worse_ratings(self, plan, small_world, small_trace):
        results = plan.run(
            {"default": DefaultPolicy()},
            seed=25,
            quality=QualityModel(rating_fraction=1.0),
        )
        outcomes = results["default"].outcomes
        poor_network = [o for o in outcomes if o.metrics.rtt_ms >= 320.0]
        good_network = [o for o in outcomes if o.metrics.rtt_ms < 150.0]
        assert len(poor_network) > 50 and len(good_network) > 50
        pcr_poor = np.mean([o.poor_rating for o in poor_network])
        pcr_good = np.mean([o.poor_rating for o in good_network])
        assert pcr_poor > 2.0 * pcr_good


class TestGranularitySweep:
    def test_all_granularities_run(self, plan, small_world):
        inter = make_inter_relay_lookup(small_world)
        policies = {
            g: make_via("rtt_ms", inter_relay=inter, granularity=g)
            for g in ("country", "as", "prefix")
        }
        results = plan.run(policies, seed=26)
        base = None
        for granularity, result in results.items():
            breakdown = pnr_breakdown(plan.evaluate(result))
            assert 0.0 <= breakdown["rtt_ms"] <= 1.0, granularity
            base = breakdown
        assert base is not None
