"""The policy registry: one namespace for every selection strategy.

Pins the registry's contracts:

* every registered entry builds by name, on a world, as its declared
  ``policy_class``;
* ``PolicySpec`` resolution through the registry is **bit-identical** to
  direct factory construction (same replay outcomes, draw for draw);
* unknown names fail with a did-you-mean listing; unknown config
  overrides fail with the valid-field listing;
* the differential harness accepts registry-name production factories;
* the ``repro policies`` CLI lists and details entries (exit-code
  tested like ``repro store``).
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.baselines import (
    DefaultPolicy,
    OraclePolicy,
    make_strawman_exploration,
    make_strawman_prediction,
    make_via,
)
from repro.core.caching import CachedAssignmentPolicy
from repro.core.multipath import MultipathBanditPolicy
from repro.core.policy import ViaPolicy, VectorizedViaPolicy
from repro.core.registry import (
    REGISTRY,
    UnknownPolicyError,
    build_policy,
    policy_names,
    world_inter_relay,
)
from repro.core.sharding import ShardedPolicy
from repro.simulation import PolicySpec, standard_policies
from repro.simulation.replay import replay
from repro.verify import run_differential
from repro.verify.differential import DivergenceError


def _outcome_key(result):
    return [(o.option, o.metrics, o.rating) for o in result.outcomes]


class TestRegistryBasics:
    def test_all_names_build(self, small_world):
        for name in policy_names():
            policy = build_policy(name, small_world)
            assert policy.name, name
            entry = REGISTRY.get(name)
            if entry.policy_class is not None:
                assert isinstance(policy, entry.policy_class)

    def test_expected_entries_present(self):
        names = set(policy_names())
        assert {
            "default", "oracle", "via", "via-vector", "strawman-prediction",
            "strawman-exploration", "hybrid-reactive", "cached-via",
            "sharded-via", "multipath-ucb", "multipath-random",
        } <= names

    def test_unknown_name_suggests(self):
        with pytest.raises(UnknownPolicyError) as excinfo:
            build_policy("via-vectr")
        assert "did you mean" in str(excinfo.value)
        assert "via-vector" in excinfo.value.suggestions
        # Back-compat: callers that caught ValueError keep working.
        assert isinstance(excinfo.value, ValueError)

    def test_unknown_override_lists_valid_fields(self, small_world):
        with pytest.raises(ValueError, match="unknown config override"):
            build_policy("via", small_world, no_such_knob=3)
        with pytest.raises(ValueError, match="epsilon"):
            # The message lists the valid fields.
            build_policy("via", small_world, no_such_knob=3)

    def test_needs_world_enforced(self):
        with pytest.raises(ValueError, match="needs a world"):
            build_policy("via")
        # World-free entries build without one.
        assert build_policy("default").name == "default"
        assert build_policy("multipath-ucb").name.startswith("multipath-ucb")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            REGISTRY.register("via", description="dup")(lambda *a, **k: None)

    def test_capability_flags(self):
        via = REGISTRY.get("via")
        assert via.supports_batch and via.supports_checkpoint
        assert not via.supports_multipath
        multipath = REGISTRY.get("multipath-ucb")
        assert multipath.supports_multipath and multipath.supports_checkpoint
        assert not multipath.supports_batch

    def test_schema_carries_defaults(self):
        entry = REGISTRY.get("via")
        fields = {f.name: f.default for f in entry.schema}
        assert fields["epsilon"] == 0.03
        assert "metric" not in fields and "seed" not in fields

    def test_composite_overrides_split(self, small_world):
        cached = build_policy(
            "cached-via", small_world, ttl_hours=3.0, epsilon=0.1
        )
        assert isinstance(cached, CachedAssignmentPolicy)
        assert cached.inner.config.epsilon == 0.1
        assert "ttl=3h" in cached.name
        sharded = build_policy("sharded-via", small_world, n_shards=2)
        assert isinstance(sharded, ShardedPolicy)
        assert len(sharded.shards) == 2


class TestSpecBitIdentity:
    """Registry-name specs reproduce direct construction exactly."""

    def test_via_spec_matches_direct(self, small_world, small_trace):
        direct = make_via(
            "rtt_ms", inter_relay=world_inter_relay(small_world), seed=42
        )
        via_spec = PolicySpec.via("rtt_ms", seed=42).build(small_world)
        a = replay(small_world, small_trace, direct, seed=7)
        b = replay(small_world, small_trace, via_spec, seed=7)
        assert _outcome_key(a) == _outcome_key(b)

    def test_strawmen_and_baselines_match_direct(self, small_world, small_trace):
        inter_relay = world_inter_relay(small_world)
        directs = {
            "default": DefaultPolicy(),
            "oracle": OraclePolicy(small_world, "rtt_ms"),
            "strawman-prediction": make_strawman_prediction(
                "rtt_ms", inter_relay=inter_relay, seed=43
            ),
            "strawman-exploration": make_strawman_exploration("rtt_ms", seed=44),
        }
        specs = {
            "default": PolicySpec.default(),
            "oracle": PolicySpec.oracle("rtt_ms"),
            "strawman-prediction": PolicySpec.strawman_prediction("rtt_ms"),
            "strawman-exploration": PolicySpec.strawman_exploration("rtt_ms"),
        }
        for kind, direct in directs.items():
            spec_built = specs[kind].build(small_world)
            a = replay(small_world, small_trace, direct, seed=5)
            b = replay(small_world, small_trace, spec_built, seed=5)
            assert _outcome_key(a) == _outcome_key(b), kind

    def test_standard_policies_routes_registry(self, small_world):
        policies = standard_policies(small_world, "rtt_ms", seed=42)
        assert set(policies) == {
            "default", "oracle", "via", "strawman-prediction",
            "strawman-exploration",
        }
        assert isinstance(policies["via"], ViaPolicy)
        # Strawman seed convention survives the registry routing.
        assert policies["strawman-prediction"].config.seed == 43
        assert policies["strawman-exploration"].config.seed == 44

    def test_spec_rejects_unknown_kind_with_suggestions(self, small_world):
        with pytest.raises(ValueError, match="unknown policy spec kind"):
            PolicySpec(kind="viaa").build(small_world)

    def test_multipath_spec_builds(self, small_world):
        policy = PolicySpec.multipath("rtt_ms", seed=9, mode="split").build(
            small_world
        )
        assert isinstance(policy, MultipathBanditPolicy)
        assert policy.mode == "split"


class TestDifferentialRegistryNames:
    def test_string_factory_resolves(self):
        report = run_differential(n_steps=60, seed=3, production_factory="via-vector")
        assert report.n_assigns == 60

    def test_string_factory_rejects_non_via(self):
        with pytest.raises((ValueError, DivergenceError), match="not a ViaPolicy"):
            run_differential(n_steps=10, seed=3, production_factory="default")

    def test_string_factory_unknown_name(self):
        with pytest.raises(UnknownPolicyError):
            run_differential(n_steps=10, seed=3, production_factory="via-vectr")


class TestPoliciesCli:
    def test_listing_exits_zero(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in policy_names():
            assert name in out

    def test_detail_exits_zero(self, capsys):
        assert main(["policies", "--name", "multipath-ucb"]) == 0
        out = capsys.readouterr().out
        assert "split_weight" in out
        assert "multipath (assign_paths)" in out

    def test_unknown_name_exits_two(self, capsys):
        assert main(["policies", "--name", "via-vectr"]) == 2
        err = capsys.readouterr().err
        assert "error" in err and "did you mean" in err


class TestControllerPolicyField:
    def test_testbed_rejects_unknown_policy(self):
        from repro.deployment import TestbedConfig

        with pytest.raises(UnknownPolicyError, match="did you mean"):
            TestbedConfig(policy="via-vectr")

    def test_testbed_rejects_non_via_policy(self):
        from repro.deployment import TestbedConfig

        with pytest.raises(ValueError, match="not a ViaPolicy variant"):
            TestbedConfig(policy="multipath-ucb")

    def test_testbed_accepts_vector_variant(self):
        from repro.deployment import TestbedConfig
        from repro.deployment.testbed import _testbed_policy_class

        config = TestbedConfig(policy="via-vector")
        assert _testbed_policy_class(config.policy) is VectorizedViaPolicy
