"""Unit tests for repro.core.history (Welford aggregates, windowed store)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.history import (
    CallHistory,
    RunningStat,
    confidence_bounds,
    history_from_dict,
    history_to_dict,
    sem_floor,
)
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption


def metrics(rtt: float, loss: float = 0.01, jitter: float = 5.0) -> PathMetrics:
    return PathMetrics(rtt_ms=rtt, loss_rate=loss, jitter_ms=jitter)


class TestRunningStat:
    def test_empty(self):
        stat = RunningStat()
        assert stat.count == 0
        assert (stat.mean == 0).all()
        assert (stat.sem() == 0).all()

    def test_single_sample_mean(self):
        stat = RunningStat()
        stat.push(metrics(100.0, 0.02, 7.0))
        assert stat.mean == pytest.approx([100.0, 0.02, 7.0])
        assert (stat.variance() == 0).all()

    @given(st.lists(st.floats(min_value=0.1, max_value=1000.0), min_size=2, max_size=50))
    @settings(max_examples=50)
    def test_matches_numpy(self, rtts):
        stat = RunningStat()
        for rtt in rtts:
            stat.push(metrics(rtt))
        assert stat.mean[0] == pytest.approx(np.mean(rtts), rel=1e-9)
        assert stat.variance()[0] == pytest.approx(np.var(rtts, ddof=1), rel=1e-6, abs=1e-9)
        assert stat.sem()[0] == pytest.approx(
            np.std(rtts, ddof=1) / np.sqrt(len(rtts)), rel=1e-6, abs=1e-9
        )

    def test_mean_metrics_roundtrip(self):
        stat = RunningStat()
        stat.push(metrics(10.0, 0.5, 2.0))
        stat.push(metrics(20.0, 0.3, 4.0))
        m = stat.mean_metrics()
        assert m.rtt_ms == pytest.approx(15.0)
        assert m.loss_rate == pytest.approx(0.4)
        assert m.jitter_ms == pytest.approx(3.0)

    def test_mean_is_copy(self):
        stat = RunningStat()
        stat.push(metrics(10.0))
        stat.mean[0] = 999.0
        assert stat.mean[0] == pytest.approx(10.0)


class TestCallHistory:
    def test_window_of(self):
        history = CallHistory(window_hours=24.0)
        assert history.window_of(0.0) == 0
        assert history.window_of(23.99) == 0
        assert history.window_of(24.0) == 1
        assert history.window_of(100.0) == 4

    def test_window_of_custom_width(self):
        history = CallHistory(window_hours=6.0)
        assert history.window_of(13.0) == 2

    def test_window_of_rejects_negative(self):
        with pytest.raises(ValueError):
            CallHistory().window_of(-0.1)

    def test_rejects_bad_window_width(self):
        with pytest.raises(ValueError):
            CallHistory(window_hours=0.0)

    def test_add_and_stats(self):
        history = CallHistory()
        history.add(("a", "b"), DIRECT, 5.0, metrics(100.0))
        history.add(("a", "b"), DIRECT, 6.0, metrics(200.0))
        stat = history.stats(("a", "b"), DIRECT, 0)
        assert stat is not None
        assert stat.count == 2
        assert stat.mean[0] == pytest.approx(150.0)

    def test_stats_separate_windows(self):
        history = CallHistory()
        history.add(("a", "b"), DIRECT, 5.0, metrics(100.0))
        history.add(("a", "b"), DIRECT, 30.0, metrics(300.0))
        assert history.stats(("a", "b"), DIRECT, 0).mean[0] == pytest.approx(100.0)
        assert history.stats(("a", "b"), DIRECT, 1).mean[0] == pytest.approx(300.0)

    def test_stats_missing_returns_none(self):
        history = CallHistory()
        assert history.stats(("a", "b"), DIRECT, 0) is None
        history.add(("a", "b"), DIRECT, 5.0, metrics(100.0))
        assert history.stats(("a", "b"), RelayOption.bounce(1), 0) is None
        assert history.stats(("x", "y"), DIRECT, 0) is None

    def test_window_items(self):
        history = CallHistory()
        history.add(("a", "b"), DIRECT, 1.0, metrics(100.0))
        history.add(("a", "b"), RelayOption.bounce(0), 2.0, metrics(80.0))
        items = dict(history.window_items(0))
        assert len(items) == 2
        assert list(history.window_items(5)) == []

    def test_pair_options(self):
        history = CallHistory()
        history.add(("a", "b"), DIRECT, 1.0, metrics(100.0))
        history.add(("a", "b"), RelayOption.bounce(2), 1.5, metrics(90.0))
        history.add(("x", "y"), RelayOption.bounce(4), 1.5, metrics(90.0))
        options = history.pair_options(("a", "b"), 0)
        assert set(options) == {DIRECT, RelayOption.bounce(2)}

    def test_prune_before(self):
        history = CallHistory()
        for day in range(5):
            history.add(("a", "b"), DIRECT, day * 24.0 + 1.0, metrics(100.0))
        assert history.windows() == [0, 1, 2, 3, 4]
        dropped = history.prune_before(3)
        assert dropped == 3
        assert history.windows() == [3, 4]
        assert 2 not in history
        assert 3 in history

    def test_contains_rejects_non_int(self):
        with pytest.raises(TypeError):
            ("a", "b") in CallHistory()  # noqa: B015

    def test_total_calls(self):
        history = CallHistory()
        for i in range(7):
            history.add(("a", "b"), DIRECT, float(i * 10), metrics(100.0))
        assert history.total_calls() == 7


class TestHelpers:
    def test_sem_floor_relative(self):
        assert sem_floor(100.0) == pytest.approx(5.0)

    def test_sem_floor_absolute_for_tiny_means(self):
        assert sem_floor(0.0) == pytest.approx(1e-6)

    def test_confidence_bounds(self):
        lower, upper = confidence_bounds(10.0, 1.0)
        assert lower == pytest.approx(10.0 - 1.96)
        assert upper == pytest.approx(10.0 + 1.96)

    def test_confidence_bounds_rejects_negative_sem(self):
        with pytest.raises(ValueError):
            confidence_bounds(10.0, -1.0)


class TestCheckpointValidation:
    """Regression: ``history_from_dict`` used to trust checkpoints blindly;
    corrupt entries (negative counts, NaNs, truncated vectors) silently
    poisoned every downstream mean/SEM instead of failing the load."""

    def _checkpoint(self) -> dict:
        history = CallHistory()
        history.add(("a", "b"), DIRECT, 1.0, metrics(100.0))
        history.add(("a", "b"), DIRECT, 1.5, metrics(120.0))
        history.add(("a", "b"), RelayOption.bounce(1), 2.0, metrics(80.0))
        return history_to_dict(history)

    def test_valid_roundtrip_still_loads(self):
        restored = history_from_dict(self._checkpoint())
        assert restored.total_calls() == 3
        stat = restored.stats(("a", "b"), DIRECT, 0)
        assert stat.count == 2
        assert stat.mean[0] == pytest.approx(110.0)

    def test_negative_count_rejected(self):
        data = self._checkpoint()
        data["windows"]["0"][0]["count"] = -3
        with pytest.raises(ValueError, match="count"):
            history_from_dict(data)

    def test_non_integer_count_rejected(self):
        data = self._checkpoint()
        data["windows"]["0"][0]["count"] = "2"
        with pytest.raises(ValueError, match="count"):
            history_from_dict(data)

    def test_nan_mean_rejected(self):
        data = self._checkpoint()
        data["windows"]["0"][0]["mean"][1] = float("nan")
        with pytest.raises(ValueError, match="non-finite"):
            history_from_dict(data)

    def test_infinite_m2_rejected(self):
        data = self._checkpoint()
        data["windows"]["0"][0]["m2"][2] = float("inf")
        with pytest.raises(ValueError, match="non-finite"):
            history_from_dict(data)

    def test_negative_m2_rejected(self):
        data = self._checkpoint()
        data["windows"]["0"][0]["m2"][0] = -1.0
        with pytest.raises(ValueError, match="negative m2"):
            history_from_dict(data)

    def test_truncated_mean_vector_rejected(self):
        # A checkpoint cut off mid-write: the mean list lost an element.
        data = self._checkpoint()
        data["windows"]["0"][0]["mean"] = data["windows"]["0"][0]["mean"][:2]
        with pytest.raises(ValueError, match="3 values"):
            history_from_dict(data)

    def test_mismatched_m2_length_rejected(self):
        data = self._checkpoint()
        data["windows"]["0"][0]["m2"] = data["windows"]["0"][0]["m2"] + [0.0]
        with pytest.raises(ValueError, match="3 values"):
            history_from_dict(data)

    def test_missing_entry_field_rejected(self):
        data = self._checkpoint()
        del data["windows"]["0"][0]["m2"]
        with pytest.raises(ValueError, match="corrupt history entry"):
            history_from_dict(data)

    def test_bad_window_index_rejected(self):
        data = self._checkpoint()
        data["windows"]["not-a-window"] = data["windows"].pop("0")
        with pytest.raises(ValueError, match="window index"):
            history_from_dict(data)

    def test_error_names_the_offending_entry(self):
        data = self._checkpoint()
        data["windows"]["0"][1]["count"] = -1
        with pytest.raises(ValueError, match="window 0, entry 1"):
            history_from_dict(data)
