"""Synthetic call-trace generator.

Builds a pair population with gravity-model weights (big markets call big
markets; a controlled international share) and Zipf-skewed per-pair call
volumes, then scatters calls over the simulation horizon with a diurnal
arrival profile.  The resulting trace has the density *skew* that §4.2 of
the paper identifies as the reason pure prediction and pure exploration
both fail: a few AS pairs carry thousands of calls, most carry a handful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netmodel.topology import Topology
from repro.telephony.call import Call
from repro.workload.trace import TraceDataset

__all__ = ["WorkloadConfig", "generate_trace"]


@dataclass(frozen=True, slots=True)
class WorkloadConfig:
    """Knobs of the synthetic workload.

    The default mix targets the paper's Table 1 shares: ~46.6% of calls
    international and ~80.7% inter-AS (so ~19.3% intra-AS, and the
    remaining ~34% domestic but across ASes).
    """

    n_calls: int = 100_000
    n_pairs: int = 1_500
    #: Zipf-like exponent for per-pair call volume (1.0 = classic Zipf).
    volume_zipf_s: float = 1.05
    frac_intra_as: float = 0.193
    frac_international: float = 0.466
    #: Mean users per AS at unit call volume; scales the user population.
    users_per_as: int = 400
    #: Fraction of calls whose endpoints cannot connect directly
    #: (symmetric NATs / firewalls) and must use a relay -- the population
    #: today's relays serve for connectivity (§2.1).  Defaults to 0 so the
    #: evaluation populations match the paper's default-routable focus;
    #: turn it on for connectivity studies.
    frac_direct_blocked: float = 0.0
    #: Lognormal call duration parameters (seconds).
    duration_log_mean: float = 5.1  # exp(5.1) ~ 164 s median
    duration_log_sigma: float = 1.0
    min_duration_s: float = 10.0
    seed: int = 2016

    def __post_init__(self) -> None:
        if self.n_calls < 1 or self.n_pairs < 1:
            raise ValueError("n_calls and n_pairs must be positive")
        if not 0.0 <= self.frac_intra_as <= 1.0:
            raise ValueError("frac_intra_as must be in [0, 1]")
        if not 0.0 <= self.frac_international <= 1.0:
            raise ValueError("frac_international must be in [0, 1]")
        if self.frac_intra_as + self.frac_international > 1.0:
            raise ValueError("intra-AS and international fractions exceed 1")
        if self.volume_zipf_s <= 0.0:
            raise ValueError("volume_zipf_s must be > 0")
        if not 0.0 <= self.frac_direct_blocked <= 1.0:
            raise ValueError("frac_direct_blocked must be in [0, 1]")


#: Hourly arrival weights (local-time-free simplification): calls ramp up
#: through the day and peak in the evening.
_HOURLY_WEIGHTS = np.array(
    [2, 1, 1, 1, 1, 2, 3, 5, 7, 8, 9, 9, 9, 9, 9, 9, 10, 11, 12, 13, 13, 11, 7, 4],
    dtype=float,
)

#: Day-of-week arrival weights (day 0 = Monday): personal calling peaks on
#: the weekend, consistent with consumer VoIP traffic patterns.
_WEEKDAY_WEIGHTS = np.array([0.95, 0.93, 0.94, 0.97, 1.02, 1.12, 1.07])


def _pick_weighted_as(rng: np.random.Generator, asns: np.ndarray, weights: np.ndarray) -> int:
    return int(asns[rng.choice(len(asns), p=weights)])


def _build_pair_population(
    topology: Topology, config: WorkloadConfig, rng: np.random.Generator
) -> tuple[list[tuple[int, int]], np.ndarray]:
    """Sample the AS-pair population and its per-pair volume weights."""
    asns = np.array(topology.asns)
    country_weight = np.array(
        [topology.countries[topology.ases[a].country].call_weight for a in asns]
    )
    as_weights = country_weight / country_weight.sum()

    by_country: dict[str, np.ndarray] = {}
    for code, members in topology.country_ases.items():
        if members:
            by_country[code] = np.array(members)

    # Sample each category (intra-AS / international / domestic inter-AS)
    # to its target count separately, so deduplication inside the small
    # domestic pools cannot skew the mix towards international pairs.
    n_intra = int(round(config.frac_intra_as * config.n_pairs))
    n_international = int(round(config.frac_international * config.n_pairs))
    n_domestic = max(0, config.n_pairs - n_intra - n_international)

    pairs: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()

    def try_add(src: int, dst: int) -> bool:
        key = (min(src, dst), max(src, dst))
        if key in seen:
            return False
        seen.add(key)
        pairs.append((src, dst))
        return True

    def fill(target: int, sampler) -> None:
        added = 0
        attempts = 0
        max_attempts = max(100, target * 100)
        while added < target and attempts < max_attempts:
            attempts += 1
            pair = sampler()
            if pair is not None and try_add(*pair):
                added += 1

    def sample_intra() -> tuple[int, int] | None:
        src = _pick_weighted_as(rng, asns, as_weights)
        return (src, src)

    def sample_international() -> tuple[int, int] | None:
        src = _pick_weighted_as(rng, asns, as_weights)
        for _ in range(20):
            dst = _pick_weighted_as(rng, asns, as_weights)
            if topology.ases[dst].country != topology.ases[src].country:
                return (src, dst)
        return None

    def sample_domestic() -> tuple[int, int] | None:
        src = _pick_weighted_as(rng, asns, as_weights)
        members = by_country[topology.ases[src].country]
        if len(members) < 2:
            return None
        dst = src
        while dst == src:
            dst = int(members[rng.integers(len(members))])
        return (src, dst)

    fill(n_intra, sample_intra)
    fill(n_international, sample_international)
    fill(n_domestic, sample_domestic)

    # Zipf-like volumes assigned in random order across pairs so the mix
    # fractions are preserved among heavy and light pairs alike.
    ranks = np.arange(1, len(pairs) + 1, dtype=float)
    weights = ranks ** (-config.volume_zipf_s)
    rng.shuffle(weights)
    weights /= weights.sum()

    # Rescale volume mass per category so the *call*-level mix hits the
    # configured fractions even when a category's distinct-pair pool
    # saturates (e.g. intra-AS pairs are capped by the number of ASes).
    def category(pair: tuple[int, int]) -> str:
        src, dst = pair
        if src == dst:
            return "intra"
        if topology.ases[src].country == topology.ases[dst].country:
            return "domestic"
        return "international"

    targets = {
        "intra": config.frac_intra_as,
        "international": config.frac_international,
        "domestic": max(0.0, 1.0 - config.frac_intra_as - config.frac_international),
    }
    masses = {"intra": 0.0, "international": 0.0, "domestic": 0.0}
    categories = [category(p) for p in pairs]
    for cat, weight in zip(categories, weights):
        masses[cat] += weight
    present = {cat for cat, mass in masses.items() if mass > 0.0}
    target_total = sum(targets[cat] for cat in present)
    if target_total > 0.0:
        for i, cat in enumerate(categories):
            weights[i] *= (targets[cat] / target_total) / masses[cat]
        weights /= weights.sum()
    return pairs, weights


def generate_trace(
    topology: Topology,
    config: WorkloadConfig | None = None,
    *,
    n_days: int = 60,
) -> TraceDataset:
    """Generate a chronologically sorted call trace over ``n_days``."""
    config = config or WorkloadConfig()
    rng = np.random.default_rng(config.seed)
    pairs, pair_weights = _build_pair_population(topology, config, rng)
    if not pairs:
        raise ValueError("pair population came out empty; topology too small?")

    # Per-AS user pools sized by how much traffic the AS carries.
    as_volume: dict[int, float] = {}
    for (a, b), weight in zip(pairs, pair_weights):
        as_volume[a] = as_volume.get(a, 0.0) + weight / 2.0
        as_volume[b] = as_volume.get(b, 0.0) + weight / 2.0
    total_volume = sum(as_volume.values())
    user_pool: dict[int, int] = {
        asn: max(10, int(config.users_per_as * len(as_volume) * vol / total_volume))
        for asn, vol in as_volume.items()
    }
    user_base: dict[int, int] = {}
    next_user = 0
    for asn in sorted(user_pool):
        user_base[asn] = next_user
        next_user += user_pool[asn]

    hourly = _HOURLY_WEIGHTS / _HOURLY_WEIGHTS.sum()
    day_weights = _WEEKDAY_WEIGHTS[np.arange(n_days) % 7]
    day_weights = day_weights / day_weights.sum()
    pair_idx = rng.choice(len(pairs), size=config.n_calls, p=pair_weights)
    days = rng.choice(n_days, size=config.n_calls, p=day_weights)
    hours = rng.choice(24, size=config.n_calls, p=hourly)
    minutes = rng.random(config.n_calls)
    flip = rng.random(config.n_calls) < 0.5
    durations = np.maximum(
        config.min_duration_s,
        rng.lognormal(config.duration_log_mean, config.duration_log_sigma, config.n_calls),
    )

    t_hours = days * 24.0 + hours + minutes
    order = np.argsort(t_hours, kind="stable")

    ases = topology.ases
    calls: list[Call] = []
    for call_id, i in enumerate(order):
        a, b = pairs[pair_idx[i]]
        src, dst = (b, a) if flip[i] else (a, b)
        src_as = ases[src]
        dst_as = ases[dst]
        src_user = user_base[src] + int(rng.integers(user_pool[src]))
        dst_user = user_base[dst] + int(rng.integers(user_pool[dst]))
        calls.append(
            Call(
                call_id=call_id,
                t_hours=float(t_hours[i]),
                src_asn=src,
                dst_asn=dst,
                src_country=src_as.country,
                dst_country=dst_as.country,
                src_user=src_user,
                dst_user=dst_user,
                duration_s=float(durations[i]),
                src_prefix=int(rng.integers(src_as.n_prefixes)),
                dst_prefix=int(rng.integers(dst_as.n_prefixes)),
                src_wireless=bool(rng.random() < src_as.wireless_fraction),
                dst_wireless=bool(rng.random() < dst_as.wireless_fraction),
                direct_blocked=bool(rng.random() < config.frac_direct_blocked),
            )
        )
    return TraceDataset(calls=calls, n_days=n_days, config=config)
