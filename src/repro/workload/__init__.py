"""Call-trace generation: the synthetic stand-in for the Skype dataset.

Produces chronologically ordered call intents with the population shapes
Table 1 and §2.1 of the paper report: heavy-tailed per-pair volumes,
a large international (46.6%) and inter-AS (80.7%) share, and a mostly
wireless (83%) client base.
"""

from repro.workload.generator import WorkloadConfig, generate_trace
from repro.workload.trace import TraceDataset, TraceSummary

__all__ = ["WorkloadConfig", "generate_trace", "TraceDataset", "TraceSummary"]
