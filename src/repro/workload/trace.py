"""Trace containers: the dataset object experiments consume.

A :class:`TraceDataset` is an immutable, chronologically sorted list of
:class:`~repro.telephony.call.Call` intents plus the workload metadata.
It knows how to summarise itself (for the Table 1 reproduction), filter,
group by day, and round-trip through JSON lines.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator

from repro.telephony.call import Call

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.workload.generator import WorkloadConfig

__all__ = ["TraceSummary", "TraceDataset"]


@dataclass(frozen=True, slots=True)
class TraceSummary:
    """Aggregate facts about a trace (the rows of Table 1)."""

    n_calls: int
    n_users: int
    n_ases: int
    n_countries: int
    n_as_pairs: int
    n_days: int
    frac_international: float
    frac_inter_as: float
    frac_wireless: float

    def rows(self) -> list[tuple[str, str]]:
        """Render as (label, value) rows matching the paper's Table 1."""
        return [
            ("Days", str(self.n_days)),
            ("Calls", f"{self.n_calls:,}"),
            ("Users", f"{self.n_users:,}"),
            ("ASes", f"{self.n_ases:,}"),
            ("Countries/regions", str(self.n_countries)),
            ("AS pairs", f"{self.n_as_pairs:,}"),
            ("International calls", f"{100.0 * self.frac_international:.1f}%"),
            ("Inter-AS calls", f"{100.0 * self.frac_inter_as:.1f}%"),
            ("Wireless calls", f"{100.0 * self.frac_wireless:.1f}%"),
        ]


@dataclass(frozen=True)
class TraceDataset:
    """A chronologically sorted call trace."""

    calls: list[Call]
    n_days: int
    config: "WorkloadConfig | None" = None

    def __post_init__(self) -> None:
        if self.n_days < 1:
            raise ValueError("n_days must be >= 1")
        for earlier, later in zip(self.calls, self.calls[1:]):
            if later.t_hours < earlier.t_hours:
                raise ValueError("trace must be chronologically sorted")

    def __len__(self) -> int:
        return len(self.calls)

    def __iter__(self) -> Iterator[Call]:
        return iter(self.calls)

    @property
    def horizon_hours(self) -> float:
        return self.n_days * 24.0

    def summary(self) -> TraceSummary:
        users: set[int] = set()
        ases: set[int] = set()
        countries: set[str] = set()
        pairs: set[tuple[int, int]] = set()
        n_international = 0
        n_inter_as = 0
        n_wireless = 0
        for call in self.calls:
            users.add(call.src_user)
            users.add(call.dst_user)
            ases.add(call.src_asn)
            ases.add(call.dst_asn)
            countries.add(call.src_country)
            countries.add(call.dst_country)
            pairs.add(call.as_pair)
            n_international += call.international
            n_inter_as += call.inter_as
            n_wireless += call.any_wireless
        n = max(1, len(self.calls))
        return TraceSummary(
            n_calls=len(self.calls),
            n_users=len(users),
            n_ases=len(ases),
            n_countries=len(countries),
            n_as_pairs=len(pairs),
            n_days=self.n_days,
            frac_international=n_international / n,
            frac_inter_as=n_inter_as / n,
            frac_wireless=n_wireless / n,
        )

    def filter(self, predicate: Callable[[Call], bool]) -> "TraceDataset":
        """A new dataset keeping only calls where ``predicate`` holds."""
        return TraceDataset(
            calls=[c for c in self.calls if predicate(c)],
            n_days=self.n_days,
            config=self.config,
        )

    def pair_counts(self) -> Counter[tuple[int, int]]:
        """Calls per unordered AS pair (the skew §4.2 talks about)."""
        return Counter(call.as_pair for call in self.calls)

    def calls_on_day(self, day: int) -> list[Call]:
        return [c for c in self.calls if c.day == day]

    def split_by_day(self) -> dict[int, list[Call]]:
        by_day: dict[int, list[Call]] = {}
        for call in self.calls:
            by_day.setdefault(call.day, []).append(call)
        return by_day

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save_jsonl(self, path: str | Path) -> None:
        """Write the trace as JSON lines (one call per line)."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            header = {"n_days": self.n_days, "n_calls": len(self.calls)}
            handle.write(json.dumps({"__trace_header__": header}) + "\n")
            for call in self.calls:
                handle.write(json.dumps(call.to_dict()) + "\n")

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "TraceDataset":
        """Read a trace written by :meth:`save_jsonl`."""
        path = Path(path)
        calls: list[Call] = []
        n_days: int | None = None
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if "__trace_header__" in record:
                    n_days = int(record["__trace_header__"]["n_days"])
                    continue
                if n_days is None:
                    raise ValueError(f"{path} is missing the trace header line")
                calls.append(Call.from_dict(record))
        if n_days is None:
            raise ValueError(f"{path} is missing the trace header line")
        return cls(calls=calls, n_days=n_days)
