"""The three network performance metrics the paper studies, and their algebra.

Every call in the dataset carries an (RTT, loss rate, jitter) triple averaged
over the call's duration (Section 2.1 of the paper).  :class:`PathMetrics`
is the value type used everywhere: ground-truth path means, per-call
samples, predictor outputs, and analysis aggregates.

Composition rules (used when stitching path segments together, both by the
ground-truth world and by the tomography module):

* **RTT** composes additively.
* **Loss rate** composes as ``1 - prod(1 - l_i)`` assuming independent
  segments; equivalently ``-log(1 - l)`` is additive.  The paper linearises
  loss the same way (Section 4.4, citing Castro et al.).
* **Jitter** is treated as additive, a standard linearisation for
  independent segment delay-variation contributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "Metric",
    "METRICS",
    "PathMetrics",
    "loss_to_linear",
    "linear_to_loss",
    "compose_loss",
]

#: Metric names, in the order the paper always lists them.
METRICS: tuple[str, ...] = ("rtt_ms", "loss_rate", "jitter_ms")

#: Alias used in type annotations for readability.
Metric = str

_MAX_LOSS = 0.999999


def loss_to_linear(loss_rate: float) -> float:
    """Map a loss rate in ``[0, 1)`` to its additive (log-survival) form."""
    if loss_rate < 0.0:
        raise ValueError(f"loss rate must be non-negative: {loss_rate}")
    return -math.log1p(-min(loss_rate, _MAX_LOSS))


def linear_to_loss(linear: float) -> float:
    """Inverse of :func:`loss_to_linear`."""
    if linear < 0.0:
        raise ValueError(f"linearised loss must be non-negative: {linear}")
    return -math.expm1(-linear)


def compose_loss(loss_rates: Iterable[float]) -> float:
    """Compose independent per-segment loss rates into an end-to-end rate."""
    survival = 1.0
    for loss in loss_rates:
        if not 0.0 <= loss <= 1.0:
            raise ValueError(f"loss rate out of range: {loss}")
        survival *= 1.0 - loss
    return 1.0 - survival


@dataclass(frozen=True, slots=True)
class PathMetrics:
    """An (RTT, loss, jitter) triple for one path or one call.

    Units match the paper: milliseconds for RTT and jitter, a fraction in
    ``[0, 1]`` for loss rate.
    """

    rtt_ms: float
    loss_rate: float
    jitter_ms: float

    def __post_init__(self) -> None:
        if self.rtt_ms < 0.0:
            raise ValueError(f"rtt_ms must be non-negative: {self.rtt_ms}")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1]: {self.loss_rate}")
        if self.jitter_ms < 0.0:
            raise ValueError(f"jitter_ms must be non-negative: {self.jitter_ms}")

    def get(self, metric: Metric) -> float:
        """Return the value of one named metric (``rtt_ms`` etc.)."""
        if metric not in METRICS:
            raise KeyError(f"unknown metric {metric!r}; expected one of {METRICS}")
        return getattr(self, metric)

    def as_dict(self) -> dict[str, float]:
        return {"rtt_ms": self.rtt_ms, "loss_rate": self.loss_rate, "jitter_ms": self.jitter_ms}

    def scaled(self, rtt: float = 1.0, loss: float = 1.0, jitter: float = 1.0) -> "PathMetrics":
        """Return a copy with each metric scaled by the given factor.

        Loss is scaled in its linearised form so the result stays in
        ``[0, 1]`` for any non-negative factor.
        """
        return PathMetrics(
            rtt_ms=self.rtt_ms * rtt,
            loss_rate=linear_to_loss(loss_to_linear(self.loss_rate) * loss),
            jitter_ms=self.jitter_ms * jitter,
        )

    @staticmethod
    def compose(segments: Iterable["PathMetrics"]) -> "PathMetrics":
        """Stitch per-segment metrics into an end-to-end path metric."""
        rtt = 0.0
        jitter = 0.0
        survival = 1.0
        empty = True
        for seg in segments:
            empty = False
            rtt += seg.rtt_ms
            jitter += seg.jitter_ms
            survival *= 1.0 - seg.loss_rate
        if empty:
            raise ValueError("cannot compose an empty sequence of segments")
        return PathMetrics(rtt_ms=rtt, loss_rate=1.0 - survival, jitter_ms=jitter)
