"""Relaying options: the action space of the relay-selection problem.

A call between a caller and a callee can take one of three kinds of path
(Figure 7 of the paper):

* ``DIRECT`` -- the default BGP-derived Internet path,
* ``BOUNCE`` -- caller -> relay -> callee, "bouncing off" one datacenter,
* ``TRANSIT`` -- caller -> ingress relay -> (private backbone) -> egress
  relay -> callee.

:class:`RelayOption` instances are hashable value objects used as dictionary
keys throughout the history store, predictor and bandit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["OptionKind", "RelayOption", "DIRECT"]


class OptionKind(enum.Enum):
    """The three path kinds available to a call."""

    DIRECT = "direct"
    BOUNCE = "bounce"
    TRANSIT = "transit"


@dataclass(frozen=True, slots=True)
class RelayOption:
    """One relaying option.

    ``ingress`` / ``egress`` are relay identifiers (integers assigned by the
    topology).  For ``DIRECT`` both are ``None``; for ``BOUNCE`` they are
    equal; for ``TRANSIT`` they differ.
    """

    kind: OptionKind
    ingress: int | None = None
    egress: int | None = None

    def __post_init__(self) -> None:
        if self.kind is OptionKind.DIRECT:
            if self.ingress is not None or self.egress is not None:
                raise ValueError("DIRECT options carry no relay identifiers")
        elif self.kind is OptionKind.BOUNCE:
            if self.ingress is None or self.ingress != self.egress:
                raise ValueError("BOUNCE options need ingress == egress relay id")
        elif self.kind is OptionKind.TRANSIT:
            if self.ingress is None or self.egress is None or self.ingress == self.egress:
                raise ValueError("TRANSIT options need two distinct relay ids")

    @staticmethod
    def direct() -> "RelayOption":
        return DIRECT

    @staticmethod
    def bounce(relay_id: int) -> "RelayOption":
        return RelayOption(OptionKind.BOUNCE, ingress=relay_id, egress=relay_id)

    @staticmethod
    def transit(ingress: int, egress: int) -> "RelayOption":
        return RelayOption(OptionKind.TRANSIT, ingress=ingress, egress=egress)

    @property
    def is_relayed(self) -> bool:
        """True for bounce and transit options (anything using the overlay)."""
        return self.kind is not OptionKind.DIRECT

    def relay_ids(self) -> tuple[int, ...]:
        """The distinct relay ids this option uses, in path order."""
        if self.kind is OptionKind.DIRECT:
            return ()
        if self.kind is OptionKind.BOUNCE:
            assert self.ingress is not None
            return (self.ingress,)
        assert self.ingress is not None and self.egress is not None
        return (self.ingress, self.egress)

    def reversed(self) -> "RelayOption":
        """The same option seen from the callee's side (transit swaps ends)."""
        if self.kind is OptionKind.TRANSIT:
            assert self.ingress is not None and self.egress is not None
            return RelayOption.transit(self.egress, self.ingress)
        return self

    def __str__(self) -> str:
        if self.kind is OptionKind.DIRECT:
            return "direct"
        if self.kind is OptionKind.BOUNCE:
            return f"bounce({self.ingress})"
        return f"transit({self.ingress}->{self.egress})"


#: The singleton default-path option.
DIRECT = RelayOption(OptionKind.DIRECT)
