"""Overlay graph analysis: the relay fleet as a networkx graph.

The paper's related work notes that Google Hangouts routes streams
through *multiple* cloud relays ("streams traverse the cloud backbone
from one relay to another"); VIA itself stops at two (transit).  This
module exposes the overlay as a weighted graph so that generalised
multi-hop routes can be analysed:

* :func:`backbone_graph` -- relays + private-WAN edges,
* :func:`overlay_graph` -- the backbone plus two AS endpoints and their
  public on-ramp edges,
* :func:`best_multihop_route` -- the RTT-shortest relay route between two
  ASes with up to ``max_relays`` hops (Dijkstra over the overlay graph).

Used to check how much headroom lies beyond two-relay transit
(``tests/test_graph.py``): in a well-provisioned backbone the answer is
"very little", which is the engineering justification for VIA's
bounce/transit-only action space.
"""

from __future__ import annotations

import networkx as nx

from repro.netmodel.world import World

__all__ = ["backbone_graph", "overlay_graph", "best_multihop_route"]

#: Node key for AS endpoints in the overlay graph (relays use plain ints).
_AS = "as"


def backbone_graph(world: World, day: int = 0) -> "nx.Graph":
    """The private inter-relay backbone as a weighted graph.

    Edge weights are the backbone segments' true mean RTT on ``day``.
    """
    graph = nx.Graph()
    relay_ids = world.topology.relay_ids
    graph.add_nodes_from(relay_ids)
    for i, r1 in enumerate(relay_ids):
        for r2 in relay_ids[i + 1:]:
            rtt = world.inter_segment(r1, r2).mean_on_day(day).rtt_ms
            graph.add_edge(r1, r2, rtt_ms=rtt)
    return graph


def overlay_graph(world: World, src_asn: int, dst_asn: int, day: int = 0) -> "nx.Graph":
    """Backbone plus the two endpoints' public on-ramp edges."""
    graph = backbone_graph(world, day)
    for asn in (src_asn, dst_asn):
        node = (_AS, asn)
        graph.add_node(node)
        for relay_id in world.topology.relay_ids:
            rtt = world.wan_segment(asn, relay_id).mean_on_day(day).rtt_ms
            graph.add_edge(node, relay_id, rtt_ms=rtt)
    return graph


def best_multihop_route(
    world: World,
    src_asn: int,
    dst_asn: int,
    *,
    day: int = 0,
    max_relays: int | None = None,
) -> tuple[list[int], float]:
    """(relay sequence, WAN RTT) of the best relay route between two ASes.

    The returned RTT covers on-ramps + backbone hops (access segments are
    common to all routes and excluded).  ``max_relays`` caps the number of
    relay hops; ``None`` allows arbitrarily long backbone routes.  A
    one-relay result corresponds to VIA's *bounce*, two relays to
    *transit*, and more to the Hangouts-style generalisation.
    """
    if src_asn == dst_asn:
        raise ValueError("multi-hop routing needs two distinct ASes")
    graph = overlay_graph(world, src_asn, dst_asn, day)
    source, target = (_AS, src_asn), (_AS, dst_asn)
    if max_relays is None:
        path = nx.shortest_path(graph, source, target, weight="rtt_ms")
        relays = [node for node in path if not isinstance(node, tuple)]
        cost = nx.path_weight(graph, path, weight="rtt_ms")
        return relays, float(cost)
    best: tuple[list[int], float] | None = None
    # Bounded search: enumerate simple paths with at most max_relays
    # intermediate relay nodes (cutoff counts edges: relays + 1).
    for path in nx.all_simple_paths(graph, source, target, cutoff=max_relays + 1):
        relays = [node for node in path if not isinstance(node, tuple)]
        if not 1 <= len(relays) <= max_relays:
            continue
        cost = float(nx.path_weight(graph, path, weight="rtt_ms"))
        if best is None or cost < best[1]:
            best = (relays, cost)
    if best is None:
        raise ValueError("no relay route found within the hop bound")
    return best
