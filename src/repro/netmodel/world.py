"""The ``World``: ground-truth network performance for every relaying option.

This is the substitute for the Internet underneath the 430M-call Skype
trace.  It answers three questions, deterministically given a seed:

1. *What can a call do?*  ``options_for_pair`` enumerates the direct path,
   bounce relays and transit relay pairs available to an AS pair
   (geographically plausible candidates, 10-25 per pair, matching the
   9-20 options per pair of the paper's testbed).
2. *What is truly best?*  ``true_mean`` gives the ground-truth mean
   performance of an option on a day -- this is what the oracle of §3.2
   sees and what tomography accuracy is measured against.
3. *What does one call experience?*  ``sample_call`` draws a fresh
   realisation for a call assigned to an option, implementing the §5.1
   replay semantics (same pair + option + day => same distribution).

Paths compose from segments (see :mod:`repro.netmodel.segments`); per-call
client effects (wireless last hop, per-prefix offsets) are layered on top
and affect *all* options equally -- relaying cannot fix a bad last mile,
which is why domestic improvement saturates in Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netmodel.dynamics import (
    ACCESS_REGIME,
    PUBLIC_WAN_REGIME,
    STABLE_REGIME,
    RegimeProcess,
)
from repro.netmodel.geo import GeoPoint, propagation_rtt_ms
from repro.netmodel.metrics import PathMetrics, linear_to_loss, loss_to_linear
from repro.netmodel.options import DIRECT, OptionKind, RelayOption
from repro.netmodel.segments import (
    NoiseConfig,
    SegmentModel,
    heavy_tailed_inflation,
)
from repro.netmodel.topology import Topology, TopologyConfig, build_topology

__all__ = [
    "WorldConfig",
    "RelayOutage",
    "World",
    "OptionFilteredWorld",
    "restrict_relays",
    "without_transit",
    "build_world",
]

# Integer tags mixing segment kind into per-segment RNG seeds.
_KIND_ACCESS = 1
_KIND_WAN = 2
_KIND_INTER = 3
_KIND_DIRECT = 4
_KIND_PREFIX = 5
_KIND_RESIDUAL = 6
_KIND_REGIME_OFFSET = 100


@dataclass(frozen=True, slots=True)
class WorldConfig:
    """All knobs of the synthetic world.

    The RTT/loss/jitter constants below were calibrated so that the
    direct-path population reproduces Figure 2 of the paper: roughly 15%
    of calls beyond each poor-performance threshold (320 ms / 1.2% / 12 ms)
    with medians in a plausible range.
    """

    topology: TopologyConfig = field(default_factory=TopologyConfig)
    n_days: int = 60
    seed: int = 7

    # --- candidate relaying options per pair ---
    n_bounce_near: int = 3  # nearest relays to each endpoint offered as bounce
    n_bounce_mid: int = 2  # plus relays nearest the pair midpoint
    n_transit_near: int = 3  # transit = (near-src relays) x (near-dst relays)

    # --- direct (BGP default) path model ---
    direct_inflation_median_domestic: float = 2.00
    direct_inflation_median_intl: float = 1.95
    direct_inflation_sigma_domestic: float = 0.30
    direct_inflation_sigma_intl: float = 0.28
    #: Probability that a default route is pathological (circuitous
    #: detours, overloaded transit); multiplies inflation by 2.5-6x.
    direct_pathological_prob: float = 0.05
    direct_base_rtt_ms: float = 16.0  # fixed per-path processing/serialisation
    direct_loss_scale: float = 0.0008  # exponential mean of base loss
    direct_loss_factor_intl: tuple[float, float] = (2.2, 3.5)  # (base, per-poorness)
    direct_loss_factor_domestic: tuple[float, float] = (0.8, 1.2)
    direct_jitter_base_ms: float = 1.0
    direct_jitter_per_rtt: float = 0.013

    # --- AS <-> relay public WAN segments (well-peered cloud on-ramps) ---
    wan_inflation_median: float = 1.10
    #: Extra inflation per 20,000 km of great-circle distance: long public
    #: paths to a far relay degrade, which is what makes transit-through-
    #: the-backbone beat bouncing for long-haul pairs (§5.2).
    wan_inflation_distance: float = 0.80
    wan_inflation_sigma: float = 0.16
    wan_pathological_prob: float = 0.01
    wan_base_rtt_ms: float = 1.0
    wan_loss_scale: float = 0.0004
    wan_jitter_base_ms: float = 0.5
    wan_jitter_per_rtt: float = 0.006

    # --- private inter-relay backbone ---
    inter_inflation: float = 1.05
    inter_base_rtt_ms: float = 0.5
    inter_loss_rate: float = 0.0001
    inter_jitter_ms: float = 0.3

    # --- access (last mile) ---
    access_rtt_base_ms: float = 3.0
    access_rtt_quality_ms: float = 12.0  # extra at access_quality = 0
    access_loss_base: float = 0.00015
    access_loss_quality: float = 0.0010
    access_jitter_base_ms: float = 0.4
    access_jitter_quality_ms: float = 2.0

    # --- per-call client effects ---
    wireless_rtt_ms_mean: float = 6.0
    wireless_loss_mean: float = 0.0006
    wireless_jitter_ms_mean: float = 1.2
    #: Bufferbloat episodes on the wireless last hop: with this per-leg
    #: probability a call suffers a large self-congestion delay/loss/jitter
    #: penalty that NO relaying choice can remove.  This is the paper's
    #: "in cases of a poor last-hop network, no relaying strategy can
    #: help" population (Section 2.2), sized so the oracle removes roughly
    #: half of poor calls (Figure 8b's up-to-53%), not all of them.
    wireless_spike_prob: float = 0.10
    wireless_spike_rtt_ms: float = 200.0
    wireless_spike_loss: float = 0.010
    wireless_spike_jitter_ms: float = 8.0
    prefix_sigma: float = 0.10  # per-prefix static offset (lognormal sigma)
    #: Static per-(pair, relayed-option) path residuals: real relay paths
    #: are not exactly the sum of their client<->relay segments (peering
    #: points, intra-provider routing, asymmetric last-AS hops).  These
    #: lognormal factors break the linearity tomography assumes, giving it
    #: the error profile of the paper's Section 5.3 (most predictions within
    #: ~20%, a tail off by 50%+), and make per-pair observation genuinely
    #: more informative than stitching.
    residual_rtt_sigma: float = 0.13
    residual_loss_sigma: float = 0.55
    residual_jitter_sigma: float = 0.35

    # --- relay outages (robustness experiments) ---
    #: Metrics experienced by a call assigned to an option whose relay is
    #: down: the media session effectively blackholes (total loss, a long
    #: timeout-like delay) until the client gives up.
    outage_rtt_ms: float = 3000.0
    outage_loss_rate: float = 1.0
    outage_jitter_ms: float = 60.0

    def __post_init__(self) -> None:
        if self.n_days < 1:
            raise ValueError(f"n_days must be >= 1: {self.n_days}")
        if self.n_bounce_near < 1 or self.n_transit_near < 0 or self.n_bounce_mid < 0:
            raise ValueError("candidate counts must be positive")


@dataclass(frozen=True, slots=True)
class RelayOutage:
    """One relay being down for a half-open time window ``[start, end)``."""

    relay_id: int
    start_hours: float
    end_hours: float

    def __post_init__(self) -> None:
        if self.end_hours <= self.start_hours:
            raise ValueError(
                f"outage window must be non-empty: [{self.start_hours}, {self.end_hours})"
            )

    def active_at(self, t_hours: float) -> bool:
        return self.start_hours <= t_hours < self.end_hours


class World:
    """Ground-truth network performance oracle for the synthetic Internet.

    Segments are created lazily but deterministically: each segment's
    parameters and regime trajectory derive from an RNG seeded by the
    world seed and the segment's identity, so access order never changes
    the world.
    """

    def __init__(self, config: WorldConfig, topology: Topology) -> None:
        self.config = config
        self.topology = topology
        self._access: dict[int, SegmentModel] = {}
        self._wan: dict[tuple[int, int], SegmentModel] = {}
        self._inter: dict[tuple[int, int], SegmentModel] = {}
        self._direct: dict[tuple[int, int], SegmentModel] = {}
        self._options_cache: dict[tuple[int, int], list[RelayOption]] = {}
        self._prefix_cache: dict[tuple[int, int], tuple[float, float, float]] = {}
        self._residual_cache: dict[tuple, tuple[float, float, float]] = {}
        self._default_noise = NoiseConfig()
        self._inter_noise = NoiseConfig(rtt_sigma=0.05, loss_sigma=0.3, jitter_sigma=0.15)
        self._outages: list[RelayOutage] = []

    # ------------------------------------------------------------------
    # Relay outages (robustness experiments)
    # ------------------------------------------------------------------

    @property
    def outages(self) -> tuple[RelayOutage, ...]:
        """The scheduled relay outages, in insertion order."""
        return tuple(self._outages)

    def add_outage(self, outage: RelayOutage) -> None:
        """Schedule ``outage``; its relay must exist in the topology."""
        if outage.relay_id not in set(self.topology.relay_ids):
            raise ValueError(f"unknown relay id: {outage.relay_id}")
        self._outages.append(outage)

    def clear_outages(self) -> None:
        self._outages.clear()

    def relays_down_at(self, t_hours: float) -> frozenset[int]:
        """Relay ids with an active outage at ``t_hours``."""
        return frozenset(
            o.relay_id for o in self._outages if o.active_at(t_hours)
        )

    def option_available(self, option: RelayOption, t_hours: float) -> bool:
        """False when any relay the option uses is down at ``t_hours``."""
        if not self._outages or not option.is_relayed:
            return True
        down = self.relays_down_at(t_hours)
        if not down:
            return True
        return not any(rid in down for rid in option.relay_ids())

    def live_options_for_pair(
        self, src_asn: int, dst_asn: int, t_hours: float
    ) -> list[RelayOption]:
        """``options_for_pair`` minus options riding a down relay."""
        return [
            o
            for o in self.options_for_pair(src_asn, dst_asn)
            if self.option_available(o, t_hours)
        ]

    def _outage_metrics(self) -> PathMetrics:
        cfg = self.config
        return PathMetrics(
            rtt_ms=cfg.outage_rtt_ms,
            loss_rate=cfg.outage_loss_rate,
            jitter_ms=cfg.outage_jitter_ms,
        )

    # ------------------------------------------------------------------
    # Segment construction (lazy, deterministic)
    # ------------------------------------------------------------------

    def _rng_for(self, kind: int, a: int, b: int = 0) -> np.random.Generator:
        return np.random.default_rng([self.config.seed, kind, a, b])

    def access_segment(self, asn: int) -> SegmentModel:
        """Last-mile segment of one AS (shared by every path of its calls)."""
        seg = self._access.get(asn)
        if seg is None:
            cfg = self.config
            asys = self.topology.as_of(asn)
            rng = self._rng_for(_KIND_ACCESS, asn)
            poorness = 1.0 - asys.access_quality
            base = PathMetrics(
                rtt_ms=cfg.access_rtt_base_ms
                + cfg.access_rtt_quality_ms * poorness * float(rng.uniform(0.6, 1.4)),
                loss_rate=cfg.access_loss_base
                + cfg.access_loss_quality * poorness * float(rng.uniform(0.4, 1.6)),
                jitter_ms=cfg.access_jitter_base_ms
                + cfg.access_jitter_quality_ms * poorness * float(rng.uniform(0.5, 1.5)),
            )
            regime = RegimeProcess.sample(ACCESS_REGIME, cfg.n_days, rng)
            seg = SegmentModel(
                name=f"access({asn})", base=base, regime=regime, noise=self._default_noise
            )
            self._access[asn] = seg
        return seg

    def wan_segment(self, asn: int, relay_id: int) -> SegmentModel:
        """Public-WAN segment between an AS and a managed relay."""
        key = (asn, relay_id)
        seg = self._wan.get(key)
        if seg is None:
            cfg = self.config
            asys = self.topology.as_of(asn)
            relay = self.topology.relay_of(relay_id)
            country = self.topology.countries[asys.country]
            rng = self._rng_for(_KIND_WAN, asn, relay_id)
            distance_km = asys.location.distance_km(relay.location)
            prop = propagation_rtt_ms(asys.location, relay.location)
            median = (
                cfg.wan_inflation_median
                + 0.30 * (1.0 - country.infra_quality)
                + cfg.wan_inflation_distance * distance_km / 20_000.0
            )
            inflation = heavy_tailed_inflation(rng, median, cfg.wan_inflation_sigma)
            if rng.random() < cfg.wan_pathological_prob:
                inflation *= float(rng.uniform(2.0, 4.0))
            rtt = cfg.wan_base_rtt_ms + prop * inflation
            loss = float(rng.exponential(cfg.wan_loss_scale)) * (
                1.0 + 1.5 * (1.0 - country.infra_quality)
            )
            jitter = cfg.wan_jitter_base_ms + cfg.wan_jitter_per_rtt * rtt * float(
                rng.uniform(0.5, 1.5)
            )
            base = PathMetrics(rtt_ms=rtt, loss_rate=min(loss, 0.5), jitter_ms=jitter)
            regime = RegimeProcess.sample(PUBLIC_WAN_REGIME, cfg.n_days, rng)
            seg = SegmentModel(
                name=f"wan({asn},{relay_id})",
                base=base,
                regime=regime,
                noise=self._default_noise,
            )
            self._wan[key] = seg
        return seg

    def inter_segment(self, r1: int, r2: int) -> SegmentModel:
        """Private backbone segment between two relays (symmetric)."""
        key = (min(r1, r2), max(r1, r2))
        if r1 == r2:
            raise ValueError("inter-relay segment needs two distinct relays")
        seg = self._inter.get(key)
        if seg is None:
            cfg = self.config
            loc1 = self.topology.relay_of(key[0]).location
            loc2 = self.topology.relay_of(key[1]).location
            rng = self._rng_for(_KIND_INTER, key[0], key[1])
            prop = propagation_rtt_ms(loc1, loc2)
            base = PathMetrics(
                rtt_ms=cfg.inter_base_rtt_ms + prop * cfg.inter_inflation,
                loss_rate=cfg.inter_loss_rate,
                jitter_ms=cfg.inter_jitter_ms,
            )
            regime = RegimeProcess.sample(STABLE_REGIME, cfg.n_days, rng)
            seg = SegmentModel(
                name=f"inter({key[0]},{key[1]})",
                base=base,
                regime=regime,
                noise=self._inter_noise,
                diurnal_amplitude=0.02,
            )
            self._inter[key] = seg
        return seg

    def direct_segment(self, src_asn: int, dst_asn: int) -> SegmentModel:
        """BGP default-path WAN segment between two ASes (symmetric)."""
        key = (min(src_asn, dst_asn), max(src_asn, dst_asn))
        seg = self._direct.get(key)
        if seg is None:
            cfg = self.config
            a1 = self.topology.as_of(key[0])
            a2 = self.topology.as_of(key[1])
            q1 = self.topology.countries[a1.country].infra_quality
            q2 = self.topology.countries[a2.country].infra_quality
            worst_quality = min(q1, q2)
            international = a1.country != a2.country
            rng = self._rng_for(_KIND_DIRECT, key[0], key[1])
            prop = propagation_rtt_ms(a1.location, a2.location)
            if international:
                median = cfg.direct_inflation_median_intl + 0.6 * (1.0 - worst_quality)
                sigma = cfg.direct_inflation_sigma_intl
                base_f, poor_f = cfg.direct_loss_factor_intl
            else:
                median = cfg.direct_inflation_median_domestic + 0.3 * (1.0 - worst_quality)
                sigma = cfg.direct_inflation_sigma_domestic
                base_f, poor_f = cfg.direct_loss_factor_domestic
            loss_factor = base_f + poor_f * (1.0 - worst_quality)
            inflation = heavy_tailed_inflation(rng, median, sigma)
            detour_ms = 0.0
            if rng.random() < cfg.direct_pathological_prob:
                # Pathological default route: a long absolute detour (e.g.
                # hairpinning through another continent) plus inflation.
                # Gives domestic pairs a real (if small) chance of poor
                # RTT too, as in Figure 4a.
                inflation *= float(rng.uniform(2.0, 4.0))
                detour_ms = float(rng.uniform(40.0, 250.0))
            rtt = cfg.direct_base_rtt_ms + prop * inflation + detour_ms
            loss = float(rng.exponential(cfg.direct_loss_scale)) * loss_factor
            jitter = cfg.direct_jitter_base_ms + cfg.direct_jitter_per_rtt * rtt * float(
                rng.uniform(0.5, 1.5)
            )
            base = PathMetrics(rtt_ms=rtt, loss_rate=min(loss, 0.5), jitter_ms=jitter)
            regime = RegimeProcess.sample(PUBLIC_WAN_REGIME, cfg.n_days, rng)
            seg = SegmentModel(
                name=f"direct({key[0]},{key[1]})",
                base=base,
                regime=regime,
                noise=self._default_noise,
            )
            self._direct[key] = seg
        return seg

    # ------------------------------------------------------------------
    # Relaying options and path composition
    # ------------------------------------------------------------------

    def options_for_pair(self, src_asn: int, dst_asn: int) -> list[RelayOption]:
        """Candidate relaying options for an (ordered) AS pair.

        Direct path first, then bounce relays near either endpoint or the
        pair midpoint, then transit pairs combining near-source ingress
        with near-destination egress relays.  The same physical option set
        is returned for both orderings of the pair (with transit options
        oriented source-side first).
        """
        key = (src_asn, dst_asn)
        cached = self._options_cache.get(key)
        if cached is not None:
            return cached
        topo = self.topology
        cfg = self.config
        src_loc = topo.as_of(src_asn).location
        dst_loc = topo.as_of(dst_asn).location
        near_src = topo.nearest_relays(src_loc, max(cfg.n_bounce_near, cfg.n_transit_near))
        near_dst = topo.nearest_relays(dst_loc, max(cfg.n_bounce_near, cfg.n_transit_near))
        midpoint = GeoPoint(
            (src_loc.lat + dst_loc.lat) / 2.0, _mid_longitude(src_loc.lon, dst_loc.lon)
        )
        near_mid = topo.nearest_relays(midpoint, cfg.n_bounce_mid)

        bounce_ids: list[int] = []
        for rid in (
            near_src[: cfg.n_bounce_near] + near_dst[: cfg.n_bounce_near] + near_mid
        ):
            if rid not in bounce_ids:
                bounce_ids.append(rid)

        options: list[RelayOption] = [DIRECT]
        options.extend(RelayOption.bounce(rid) for rid in bounce_ids)
        for r1 in near_src[: cfg.n_transit_near]:
            for r2 in near_dst[: cfg.n_transit_near]:
                if r1 != r2:
                    options.append(RelayOption.transit(r1, r2))
        self._options_cache[key] = options
        return options

    def path_segments(
        self, src_asn: int, dst_asn: int, option: RelayOption
    ) -> list[SegmentModel]:
        """The ordered chain of segments a call takes under ``option``."""
        access = [self.access_segment(src_asn)]
        if option.kind is OptionKind.DIRECT:
            access.append(self.direct_segment(src_asn, dst_asn))
        elif option.kind is OptionKind.BOUNCE:
            assert option.ingress is not None
            access.append(self.wan_segment(src_asn, option.ingress))
            access.append(self.wan_segment(dst_asn, option.ingress))
        else:
            assert option.ingress is not None and option.egress is not None
            access.append(self.wan_segment(src_asn, option.ingress))
            access.append(self.inter_segment(option.ingress, option.egress))
            access.append(self.wan_segment(dst_asn, option.egress))
        access.append(self.access_segment(dst_asn))
        return access

    def path_residual(
        self, src_asn: int, dst_asn: int, option: RelayOption
    ) -> tuple[float, float, float]:
        """Static (rtt, linear-loss, jitter) multipliers of one relay path.

        Captures everything about a concrete (pair, option) path that is
        NOT additive over its client<->relay segments.  Direct paths have
        no residual (their segment is already pair-specific).  Symmetric
        under pair reversal, like the underlying routes.
        """
        if not option.is_relayed:
            return (1.0, 1.0, 1.0)
        if src_asn > dst_asn:
            src_asn, dst_asn = dst_asn, src_asn
            option = option.reversed()
        key = (src_asn, dst_asn, option.kind.value, option.ingress, option.egress)
        factor = self._residual_cache.get(key)
        if factor is None:
            cfg = self.config
            rng = np.random.default_rng(
                [cfg.seed, _KIND_RESIDUAL, src_asn, dst_asn,
                 option.ingress or 0, option.egress or 0]
            )
            factor = (
                float(rng.lognormal(0.0, cfg.residual_rtt_sigma)),
                float(rng.lognormal(0.0, cfg.residual_loss_sigma)),
                float(rng.lognormal(0.0, cfg.residual_jitter_sigma)),
            )
            self._residual_cache[key] = factor
        return factor

    @staticmethod
    def _apply_residual(
        metrics: PathMetrics, factor: tuple[float, float, float]
    ) -> PathMetrics:
        if factor == (1.0, 1.0, 1.0):
            return metrics
        return PathMetrics(
            rtt_ms=metrics.rtt_ms * factor[0],
            loss_rate=linear_to_loss(loss_to_linear(metrics.loss_rate) * factor[1]),
            jitter_ms=metrics.jitter_ms * factor[2],
        )

    def true_mean(
        self, src_asn: int, dst_asn: int, option: RelayOption, day: int
    ) -> PathMetrics:
        """Ground-truth mean performance of ``option`` on ``day``.

        This is what the oracle of §3.2 ranks options by.  Client-level
        effects (wireless, prefix offsets) are excluded: they are common
        to all options of a call and cannot change the ranking.  Path
        residuals ARE included -- they are real properties of the path.
        """
        segments = self.path_segments(src_asn, dst_asn, option)
        composed = PathMetrics.compose(seg.mean_on_day(day) for seg in segments)
        return self._apply_residual(composed, self.path_residual(src_asn, dst_asn, option))

    def sample_path(
        self,
        src_asn: int,
        dst_asn: int,
        option: RelayOption,
        t_hours: float,
        rng: np.random.Generator,
    ) -> PathMetrics:
        """Draw one call's realised path performance (no client effects)."""
        segments = self.path_segments(src_asn, dst_asn, option)
        composed = PathMetrics.compose(seg.sample(t_hours, rng) for seg in segments)
        return self._apply_residual(composed, self.path_residual(src_asn, dst_asn, option))

    # ------------------------------------------------------------------
    # Client-level effects
    # ------------------------------------------------------------------

    def prefix_factor(self, asn: int, prefix: int) -> tuple[float, float, float]:
        """Static (rtt, linear-loss, jitter) multipliers for one prefix.

        Models sub-AS heterogeneity: different prefixes of an AS sit on
        slightly different infrastructure.  Used by the spatial-granularity
        study (Figure 17a).
        """
        key = (asn, prefix)
        factor = self._prefix_cache.get(key)
        if factor is None:
            rng = self._rng_for(_KIND_PREFIX, asn, prefix)
            sigma = self.config.prefix_sigma
            factor = (
                float(rng.lognormal(-0.5 * sigma * sigma, sigma)),
                float(rng.lognormal(-0.5 * sigma * sigma, 2.0 * sigma)),
                float(rng.lognormal(-0.5 * sigma * sigma, 1.5 * sigma)),
            )
            self._prefix_cache[key] = factor
        return factor

    def sample_wireless_extra(self, asn: int, rng: np.random.Generator) -> PathMetrics:
        """Extra last-hop degradation for a call leg on a wireless client.

        Applied identically to every relaying option of the call, so no
        relay choice can remove it (the paper's §2.2 caveat).
        """
        cfg = self.config
        quality = self.topology.as_of(asn).access_quality
        scale = 1.0 + 1.5 * (1.0 - quality)
        rtt = float(rng.exponential(cfg.wireless_rtt_ms_mean * scale))
        loss = float(rng.exponential(cfg.wireless_loss_mean * scale))
        jitter = float(rng.exponential(cfg.wireless_jitter_ms_mean * scale))
        if rng.random() < cfg.wireless_spike_prob * scale / 2.0:
            # Bufferbloat episode: large correlated delay/loss/jitter hit.
            rtt += float(rng.exponential(cfg.wireless_spike_rtt_ms))
            loss += float(rng.exponential(cfg.wireless_spike_loss))
            jitter += float(rng.exponential(cfg.wireless_spike_jitter_ms))
        return PathMetrics(rtt_ms=rtt, loss_rate=min(loss, 0.5), jitter_ms=jitter)

    def sample_call(
        self,
        src_asn: int,
        dst_asn: int,
        option: RelayOption,
        t_hours: float,
        rng: np.random.Generator,
        *,
        src_wireless: bool = False,
        dst_wireless: bool = False,
        src_prefix: int = 0,
        dst_prefix: int = 0,
    ) -> PathMetrics:
        """Full per-call sample: path + wireless extras + prefix offsets.

        A call assigned to an option whose relay is down experiences the
        configured outage metrics (a blackholed media session) -- no last
        mile or prefix effect can make it better or worse.
        """
        if not self.option_available(option, t_hours):
            return self._outage_metrics()
        path = self.sample_path(src_asn, dst_asn, option, t_hours, rng)
        extras = [path]
        if src_wireless:
            extras.append(self.sample_wireless_extra(src_asn, rng))
        if dst_wireless:
            extras.append(self.sample_wireless_extra(dst_asn, rng))
        combined = PathMetrics.compose(extras)
        f_src = self.prefix_factor(src_asn, src_prefix)
        f_dst = self.prefix_factor(dst_asn, dst_prefix)
        return PathMetrics(
            rtt_ms=combined.rtt_ms * f_src[0] * f_dst[0],
            loss_rate=linear_to_loss(
                loss_to_linear(combined.loss_rate) * f_src[1] * f_dst[1]
            ),
            jitter_ms=combined.jitter_ms * f_src[2] * f_dst[2],
        )

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------

    def best_option(
        self, src_asn: int, dst_asn: int, day: int, metric: str, options: list[RelayOption] | None = None
    ) -> RelayOption:
        """The oracle's pick: lowest true mean for ``metric`` on ``day``."""
        candidates = options if options is not None else self.options_for_pair(src_asn, dst_asn)
        if not candidates:
            raise ValueError("no candidate options")
        return min(
            candidates, key=lambda opt: self.true_mean(src_asn, dst_asn, opt, day).get(metric)
        )


class OptionFilteredWorld:
    """A view of a world offering only a subset of relaying options.

    The underlying ground truth is unchanged; ``options_for_pair`` filters
    the wrapped world's candidates through ``predicate``.  The direct path
    is always retained so every pair keeps at least one option.  Used by
    the relay-deployment study (Figure 17c) and the transit-vs-bounce
    comparison (§5.2).  Everything else delegates to the wrapped world.
    """

    def __init__(self, world: World, predicate) -> None:
        self._world = world
        self._predicate = predicate
        self._options_cache: dict[tuple[int, int], list[RelayOption]] = {}

    def options_for_pair(self, src_asn: int, dst_asn: int) -> list[RelayOption]:
        key = (src_asn, dst_asn)
        cached = self._options_cache.get(key)
        if cached is None:
            cached = [
                option
                for option in self._world.options_for_pair(src_asn, dst_asn)
                if option.kind is OptionKind.DIRECT or self._predicate(option)
            ]
            self._options_cache[key] = cached
        return cached

    def __getattr__(self, name: str):
        return getattr(self._world, name)


def restrict_relays(world: World, allowed_relays: set[int]) -> OptionFilteredWorld:
    """A world view where only ``allowed_relays`` are deployed (Fig 17c)."""
    unknown = set(allowed_relays) - set(world.topology.relay_ids)
    if unknown:
        raise ValueError(f"unknown relay ids: {sorted(unknown)}")
    allowed = frozenset(allowed_relays)
    return OptionFilteredWorld(
        world, lambda option: all(rid in allowed for rid in option.relay_ids())
    )


def without_transit(world: World) -> OptionFilteredWorld:
    """A world view with transit relaying disabled (§5.2 comparison)."""
    return OptionFilteredWorld(world, lambda option: option.kind is OptionKind.BOUNCE)


def _mid_longitude(lon1: float, lon2: float) -> float:
    """Midpoint longitude going the short way around the globe."""
    diff = (lon2 - lon1 + 180.0) % 360.0 - 180.0
    mid = lon1 + diff / 2.0
    return (mid + 180.0) % 360.0 - 180.0


def build_world(config: WorldConfig | None = None) -> World:
    """Build a :class:`World` (and its topology) from ``config``."""
    config = config or WorldConfig()
    topology = build_topology(config.topology)
    return World(config=config, topology=topology)
