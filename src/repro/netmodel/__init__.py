"""Synthetic Internet substrate for the VIA reproduction.

The paper's evaluation is driven by a proprietary trace of 430M Skype calls.
This package builds the substitute: a generative model of the Internet as
seen by a VoIP service -- countries, autonomous systems, clients, datacenter
relays, and per-segment network performance processes with realistic spatial
skew and day-scale temporal dynamics.

The central entry point is :class:`repro.netmodel.world.World`, which can

* enumerate relaying options for any AS pair (direct / bounce / transit),
* report the ground-truth mean performance of any option on any day
  (used by the oracle baseline), and
* draw per-call metric samples for any option at any time (used by the
  replay simulator, per the sampling semantics of Section 5.1 of the paper).
"""

from repro.netmodel.geo import GeoPoint, haversine_km, propagation_rtt_ms
from repro.netmodel.metrics import PathMetrics, Metric, METRICS
from repro.netmodel.options import RelayOption, OptionKind
from repro.netmodel.topology import (
    AutonomousSystem,
    Country,
    RelayNode,
    Topology,
    TopologyConfig,
    build_topology,
)
from repro.netmodel.dynamics import RegimeProcess, RegimeConfig, diurnal_factor
from repro.netmodel.graph import backbone_graph, best_multihop_route, overlay_graph
from repro.netmodel.segments import NoiseConfig, SegmentModel, heavy_tailed_inflation
from repro.netmodel.world import (
    OptionFilteredWorld,
    World,
    WorldConfig,
    build_world,
    restrict_relays,
    without_transit,
)

__all__ = [
    "GeoPoint",
    "haversine_km",
    "propagation_rtt_ms",
    "PathMetrics",
    "Metric",
    "METRICS",
    "RelayOption",
    "OptionKind",
    "AutonomousSystem",
    "Country",
    "RelayNode",
    "Topology",
    "TopologyConfig",
    "build_topology",
    "RegimeProcess",
    "RegimeConfig",
    "diurnal_factor",
    "NoiseConfig",
    "backbone_graph",
    "overlay_graph",
    "best_multihop_route",
    "SegmentModel",
    "heavy_tailed_inflation",
    "World",
    "WorldConfig",
    "OptionFilteredWorld",
    "restrict_relays",
    "without_transit",
    "build_world",
]
