"""Topology generation: countries, autonomous systems, clients and relays.

The synthetic topology mirrors the population the paper studies:

* ~126 countries in the Skype trace; we ship 40 real countries with real
  coordinates and skewed call-volume weights (configurable subset),
* ~1.9K ASes; each country hosts several eyeball ASes with heterogeneous
  access quality (some wired-dominant, some wireless-heavy),
* tens of relay sites at real datacenter metros, all inside one provider AS
  and interconnected by a private backbone (as with Skype's relays).

The topology is *static*; time-varying behaviour lives in
:mod:`repro.netmodel.dynamics` and :mod:`repro.netmodel.segments`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netmodel.geo import GeoPoint

__all__ = [
    "Country",
    "AutonomousSystem",
    "RelayNode",
    "TopologyConfig",
    "Topology",
    "build_topology",
    "COUNTRY_CATALOG",
    "RELAY_SITE_CATALOG",
]


@dataclass(frozen=True, slots=True)
class Country:
    """A country with a representative population-centre coordinate.

    ``call_weight`` skews how much call volume originates here;
    ``infra_quality`` in ``(0, 1]`` scales how good domestic networks are
    (1.0 = best).  Low-quality countries get higher BGP inflation, more
    loss, and more wireless clients -- the populations where the paper
    finds PNR up to 70%.
    """

    code: str
    name: str
    location: GeoPoint
    call_weight: float
    infra_quality: float


@dataclass(frozen=True, slots=True)
class AutonomousSystem:
    """An eyeball AS: the unit at which VIA makes relaying decisions."""

    asn: int
    country: str
    location: GeoPoint
    #: Fraction of this AS's clients on a wireless last hop.
    wireless_fraction: float
    #: Last-mile quality multiplier in (0, 1]; lower = worse access network.
    access_quality: float
    #: Number of /24-like prefixes (used for sub-AS granularity studies).
    n_prefixes: int


@dataclass(frozen=True, slots=True)
class RelayNode:
    """A managed relay hosted in a datacenter metro."""

    relay_id: int
    site: str
    location: GeoPoint


# (code, name, lat, lon, call_weight, infra_quality)
# Call weights are heavy-tailed; infra quality loosely tracks typical
# fixed-broadband health so that by-country PNR comes out skewed (Fig 4b).
COUNTRY_CATALOG: tuple[tuple[str, str, float, float, float, float], ...] = (
    ("US", "United States", 39.8, -98.6, 10.0, 0.92),
    ("IN", "India", 22.0, 79.0, 9.0, 0.55),
    ("GB", "United Kingdom", 52.5, -1.5, 4.5, 0.93),
    ("DE", "Germany", 51.0, 10.0, 4.0, 0.94),
    ("BR", "Brazil", -10.0, -52.0, 4.0, 0.60),
    ("RU", "Russia", 56.0, 38.0, 3.5, 0.68),
    ("CN", "China", 33.0, 109.0, 3.5, 0.70),
    ("FR", "France", 46.5, 2.5, 3.0, 0.93),
    ("PH", "Philippines", 13.0, 122.0, 3.0, 0.45),
    ("MX", "Mexico", 23.5, -102.0, 2.8, 0.58),
    ("ID", "Indonesia", -2.0, 118.0, 2.8, 0.48),
    ("PK", "Pakistan", 30.0, 70.0, 2.5, 0.42),
    ("NG", "Nigeria", 9.0, 8.0, 2.3, 0.35),
    ("BD", "Bangladesh", 24.0, 90.0, 2.2, 0.40),
    ("EG", "Egypt", 26.5, 30.0, 2.0, 0.50),
    ("VN", "Vietnam", 16.0, 107.5, 2.0, 0.52),
    ("TR", "Turkey", 39.0, 35.0, 2.0, 0.62),
    ("IT", "Italy", 42.5, 12.5, 2.0, 0.88),
    ("ES", "Spain", 40.0, -3.5, 2.0, 0.90),
    ("CA", "Canada", 56.0, -106.0, 1.8, 0.92),
    ("AU", "Australia", -25.0, 134.0, 1.8, 0.88),
    ("PL", "Poland", 52.0, 19.5, 1.7, 0.85),
    ("UA", "Ukraine", 49.0, 32.0, 1.6, 0.66),
    ("SA", "Saudi Arabia", 24.0, 45.0, 1.5, 0.64),
    ("AE", "UAE", 24.0, 54.0, 1.5, 0.75),
    ("KE", "Kenya", 0.5, 38.0, 1.3, 0.38),
    ("ZA", "South Africa", -29.0, 25.0, 1.3, 0.55),
    ("AR", "Argentina", -34.0, -64.0, 1.3, 0.62),
    ("CO", "Colombia", 4.0, -73.0, 1.2, 0.55),
    ("TH", "Thailand", 15.5, 101.0, 1.2, 0.60),
    ("JP", "Japan", 36.0, 138.0, 1.2, 0.95),
    ("KR", "South Korea", 36.5, 128.0, 1.0, 0.96),
    ("NL", "Netherlands", 52.2, 5.3, 1.0, 0.96),
    ("SE", "Sweden", 62.0, 15.0, 0.9, 0.95),
    ("SG", "Singapore", 1.35, 103.8, 0.9, 0.95),
    ("LK", "Sri Lanka", 7.5, 80.5, 0.8, 0.45),
    ("MA", "Morocco", 32.0, -6.0, 0.8, 0.48),
    ("PE", "Peru", -10.0, -76.0, 0.7, 0.50),
    ("RO", "Romania", 46.0, 25.0, 0.7, 0.80),
    ("ET", "Ethiopia", 9.0, 39.5, 0.6, 0.30),
)

# Datacenter metros hosting managed relays (site, lat, lon), modelled on
# the footprint of a large cloud provider.
RELAY_SITE_CATALOG: tuple[tuple[str, float, float], ...] = (
    ("us-east", 38.9, -77.0),
    ("us-west", 37.4, -122.1),
    ("us-central", 41.9, -93.6),
    ("brazil-south", -23.5, -46.6),
    ("europe-west", 52.4, 4.9),
    ("europe-north", 53.3, -6.3),
    ("uk-south", 51.5, -0.1),
    ("france-central", 48.9, 2.4),
    ("germany-central", 50.1, 8.7),
    ("uae-north", 25.3, 55.3),
    ("india-west", 19.1, 72.9),
    ("india-south", 13.1, 80.3),
    ("southeastasia", 1.35, 103.8),
    ("eastasia", 22.3, 114.2),
    ("japan-east", 35.7, 139.7),
    ("korea-central", 37.6, 127.0),
    ("australia-east", -33.9, 151.2),
    ("southafrica-north", -26.2, 28.0),
    ("canada-central", 43.7, -79.4),
    ("chile-central", -33.5, -70.7),
)


@dataclass(frozen=True, slots=True)
class TopologyConfig:
    """Knobs controlling topology size.

    The defaults give a medium world suitable for benchmarks; tests use
    much smaller values.
    """

    n_countries: int = 40
    #: Mean number of eyeball ASes per country (scaled by call weight).
    ases_per_country: float = 4.0
    n_relays: int = 20
    #: Mean number of /24-like prefixes per AS.
    prefixes_per_as: float = 6.0
    seed: int = 20160822  # SIGCOMM'16 started August 22, 2016.

    def __post_init__(self) -> None:
        if not 1 <= self.n_countries <= len(COUNTRY_CATALOG):
            raise ValueError(
                f"n_countries must be in [1, {len(COUNTRY_CATALOG)}]: {self.n_countries}"
            )
        if not 1 <= self.n_relays <= len(RELAY_SITE_CATALOG):
            raise ValueError(f"n_relays must be in [1, {len(RELAY_SITE_CATALOG)}]: {self.n_relays}")
        if self.ases_per_country < 1.0:
            raise ValueError("ases_per_country must be >= 1")
        if self.prefixes_per_as < 1.0:
            raise ValueError("prefixes_per_as must be >= 1")


@dataclass(slots=True)
class Topology:
    """The static entities of the synthetic world."""

    config: TopologyConfig
    countries: dict[str, Country]
    ases: dict[int, AutonomousSystem]
    relays: dict[int, RelayNode]
    #: ASNs grouped by country code, in insertion order.
    country_ases: dict[str, list[int]] = field(default_factory=dict)

    def as_of(self, asn: int) -> AutonomousSystem:
        return self.ases[asn]

    def relay_of(self, relay_id: int) -> RelayNode:
        return self.relays[relay_id]

    def country_of_as(self, asn: int) -> str:
        return self.ases[asn].country

    def is_international(self, src_asn: int, dst_asn: int) -> bool:
        return self.ases[src_asn].country != self.ases[dst_asn].country

    def nearest_relays(self, location: GeoPoint, n: int) -> list[int]:
        """Relay ids sorted by great-circle distance from ``location``."""
        ranked = sorted(
            self.relays.values(), key=lambda r: location.distance_km(r.location)
        )
        return [r.relay_id for r in ranked[:n]]

    @property
    def asns(self) -> list[int]:
        return list(self.ases)

    @property
    def relay_ids(self) -> list[int]:
        return list(self.relays)


def build_topology(config: TopologyConfig | None = None) -> Topology:
    """Build a deterministic topology from ``config``.

    Countries are taken in catalog order (largest call weights first), so a
    small ``n_countries`` still yields a geographically diverse world.  AS
    locations scatter around their country's centre; access quality mixes
    the country's infrastructure score with per-AS variation so that even
    good countries contain some weak ISPs (and vice versa).
    """
    config = config or TopologyConfig()
    rng = np.random.default_rng(config.seed)

    countries: dict[str, Country] = {}
    for code, name, lat, lon, weight, quality in COUNTRY_CATALOG[: config.n_countries]:
        countries[code] = Country(
            code=code,
            name=name,
            location=GeoPoint(lat, lon),
            call_weight=weight,
            infra_quality=quality,
        )

    ases: dict[int, AutonomousSystem] = {}
    country_ases: dict[str, list[int]] = {code: [] for code in countries}
    next_asn = 1000
    for country in countries.values():
        # Bigger markets host more ISPs.
        mean_ases = config.ases_per_country * (0.5 + 0.5 * country.call_weight / 10.0)
        n_ases = max(1, int(rng.poisson(mean_ases)))
        for _ in range(n_ases):
            lat = float(np.clip(country.location.lat + rng.normal(0.0, 3.0), -89.0, 89.0))
            lon = float(np.clip(country.location.lon + rng.normal(0.0, 3.0), -179.0, 179.0))
            # Per-AS quality: beta noise around the country score.
            access_quality = float(
                np.clip(country.infra_quality * rng.beta(8.0, 2.0) / 0.8, 0.1, 1.0)
            )
            # Wireless share is high overall (83% of calls in the paper) and
            # higher in low-infrastructure countries.
            wireless_fraction = float(
                np.clip(rng.beta(5.0, 3.0) * (1.1 - 0.35 * country.infra_quality), 0.1, 0.95)
            )
            n_prefixes = max(1, int(rng.poisson(config.prefixes_per_as)))
            ases[next_asn] = AutonomousSystem(
                asn=next_asn,
                country=country.code,
                location=GeoPoint(lat, lon),
                wireless_fraction=wireless_fraction,
                access_quality=access_quality,
                n_prefixes=n_prefixes,
            )
            country_ases[country.code].append(next_asn)
            next_asn += 1

    relays: dict[int, RelayNode] = {}
    for relay_id, (site, lat, lon) in enumerate(RELAY_SITE_CATALOG[: config.n_relays]):
        relays[relay_id] = RelayNode(relay_id=relay_id, site=site, location=GeoPoint(lat, lon))

    return Topology(
        config=config,
        countries=countries,
        ases=ases,
        relays=relays,
        country_ases=country_ases,
    )
