"""Geographic primitives: coordinates, great-circle distance, propagation delay.

Network round-trip time in the synthetic world is anchored to physics: the
floor for any path is the great-circle propagation delay of light in fiber.
Everything else (BGP path inflation, queueing, access links) is layered on
top of this floor by :mod:`repro.netmodel.segments`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "EARTH_RADIUS_KM",
    "FIBER_KM_PER_MS",
    "GeoPoint",
    "haversine_km",
    "propagation_rtt_ms",
]

EARTH_RADIUS_KM = 6371.0

#: Speed of light in fiber is ~2/3 of c: about 200 km per millisecond
#: (one way).  Used to convert great-circle distance into a lower bound
#: on round-trip time.
FIBER_KM_PER_MS = 200.0


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A point on the Earth's surface in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return haversine_km(self, other)


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in kilometres."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    # Clamp to guard against floating-point drift pushing h just above 1.
    h = min(1.0, max(0.0, h))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def propagation_rtt_ms(a: GeoPoint, b: GeoPoint) -> float:
    """Physical round-trip propagation delay between two points in ms.

    This is the *floor*: a perfectly straight fiber run with no queueing.
    Real paths are longer by an inflation factor modelled per segment.
    """
    one_way_ms = haversine_km(a, b) / FIBER_KM_PER_MS
    return 2.0 * one_way_ms
