"""Temporal dynamics: day-scale regime switching and diurnal load.

Section 2.4 of the paper shows that poor network performance is *temporally
spread*: 10-20% of AS pairs are always bad, but 60-70% are bad less than
30% of the time in stretches of at most a day.  Section 3.2 (Figure 9)
shows the oracle's best relaying option changes within 2 days for ~30% of
AS pairs.  Both shapes require network segments whose quality shifts on a
timescale of days.

We model each segment's quality as a three-state Markov chain sampled once
per day (GOOD / DEGRADED / BAD), with per-metric multipliers attached to
each state, plus a mild deterministic diurnal load curve within the day.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math

import numpy as np

__all__ = [
    "RegimeConfig",
    "RegimeProcess",
    "diurnal_factor",
    "STABLE_REGIME",
    "PUBLIC_WAN_REGIME",
    "ACCESS_REGIME",
]


@dataclass(frozen=True)
class RegimeConfig:
    """Parameters of a three-state daily quality Markov chain.

    ``transition[i][j]`` is the probability of moving from state ``i`` to
    state ``j`` between consecutive days.  The multiplier tuples give, for
    each state, the factor applied to the segment's base RTT, linearised
    loss, and jitter.
    """

    transition: tuple[tuple[float, float, float], ...]
    rtt_multipliers: tuple[float, float, float]
    loss_multipliers: tuple[float, float, float]
    jitter_multipliers: tuple[float, float, float]

    def __post_init__(self) -> None:
        if len(self.transition) != 3:
            raise ValueError("transition matrix must be 3x3")
        for row in self.transition:
            if len(row) != 3:
                raise ValueError("transition matrix must be 3x3")
            if abs(sum(row) - 1.0) > 1e-9:
                raise ValueError(f"transition row must sum to 1: {row}")
            if any(p < 0.0 for p in row):
                raise ValueError(f"transition probabilities must be >= 0: {row}")
        for mults in (self.rtt_multipliers, self.loss_multipliers, self.jitter_multipliers):
            if len(mults) != 3:
                raise ValueError("need one multiplier per state")
            if any(m <= 0.0 for m in mults):
                raise ValueError(f"multipliers must be positive: {mults}")

    def stationary_distribution(self) -> np.ndarray:
        """Stationary distribution of the chain (left eigenvector for 1)."""
        matrix = np.asarray(self.transition, dtype=float)
        values, vectors = np.linalg.eig(matrix.T)
        idx = int(np.argmin(np.abs(values - 1.0)))
        pi = np.real(vectors[:, idx])
        pi = np.abs(pi)
        return pi / pi.sum()


#: Private inter-datacenter backbone: almost always good, tiny penalties.
STABLE_REGIME = RegimeConfig(
    transition=(
        (0.98, 0.02, 0.00),
        (0.70, 0.28, 0.02),
        (0.60, 0.30, 0.10),
    ),
    rtt_multipliers=(1.0, 1.05, 1.15),
    loss_multipliers=(1.0, 1.5, 3.0),
    jitter_multipliers=(1.0, 1.2, 1.5),
)

#: Public wide-area segments: visits to DEGRADED/BAD are common and can
#: persist for a few days -- the source of the paper's temporal spread.
PUBLIC_WAN_REGIME = RegimeConfig(
    transition=(
        (0.75, 0.18, 0.07),
        (0.42, 0.42, 0.16),
        (0.28, 0.32, 0.40),
    ),
    rtt_multipliers=(1.0, 1.45, 2.6),
    loss_multipliers=(1.0, 3.0, 9.0),
    jitter_multipliers=(1.0, 1.8, 3.2),
)

#: Access networks: degradations are frequent but milder on RTT, strong on
#: loss/jitter (congested last mile).
ACCESS_REGIME = RegimeConfig(
    transition=(
        (0.85, 0.12, 0.03),
        (0.50, 0.40, 0.10),
        (0.35, 0.35, 0.30),
    ),
    rtt_multipliers=(1.0, 1.15, 1.4),
    loss_multipliers=(1.0, 2.5, 6.0),
    jitter_multipliers=(1.0, 1.3, 1.8),
)


@dataclass(slots=True)
class RegimeProcess:
    """A realised trajectory of a :class:`RegimeConfig` over ``n_days``.

    The trajectory is drawn once at construction (deterministic given the
    generator), so every query for the same day sees the same state --
    required for the §5.1 semantics where all calls on a (pair, option,
    day) share one underlying distribution.
    """

    config: RegimeConfig
    states: np.ndarray = field(repr=False)

    @classmethod
    def sample(
        cls, config: RegimeConfig, n_days: int, rng: np.random.Generator
    ) -> "RegimeProcess":
        if n_days < 1:
            raise ValueError(f"n_days must be >= 1: {n_days}")
        matrix = np.asarray(config.transition, dtype=float)
        states = np.empty(n_days, dtype=np.int8)
        # Start from the stationary distribution to avoid a burn-in bias.
        state = int(rng.choice(3, p=config.stationary_distribution()))
        for day in range(n_days):
            states[day] = state
            state = int(rng.choice(3, p=matrix[state]))
        return cls(config=config, states=states)

    @property
    def n_days(self) -> int:
        return len(self.states)

    def state_on(self, day: int) -> int:
        """State on ``day`` (clamped to the final day beyond the horizon)."""
        if day < 0:
            raise ValueError(f"day must be >= 0: {day}")
        return int(self.states[min(day, len(self.states) - 1)])

    def multipliers_on(self, day: int) -> tuple[float, float, float]:
        """(rtt, linear-loss, jitter) multipliers in effect on ``day``."""
        state = self.state_on(day)
        return (
            self.config.rtt_multipliers[state],
            self.config.loss_multipliers[state],
            self.config.jitter_multipliers[state],
        )


def diurnal_factor(t_hours: float, amplitude: float = 0.08, peak_hour: float = 20.0) -> float:
    """Mild within-day load multiplier peaking in the evening.

    ``t_hours`` is absolute simulation time in hours; only the time of day
    matters.  The factor averages ~1.0 over a day so it perturbs rather
    than shifts daily means.
    """
    if amplitude < 0.0 or amplitude >= 1.0:
        raise ValueError(f"amplitude must be in [0, 1): {amplitude}")
    hour_of_day = t_hours % 24.0
    phase = 2.0 * math.pi * (hour_of_day - peak_hour) / 24.0
    return 1.0 + amplitude * math.cos(phase)
