"""Per-segment ground-truth performance processes.

A path in the synthetic world is a chain of *segments*:

* ``ACCESS(asn)`` -- the last mile of one AS,
* ``WAN(asn, relay)`` -- the public-Internet path between an AS and a
  managed relay (well-peered, moderate inflation),
* ``INTER(r1, r2)`` -- the private backbone between two relays,
* ``DIRECT(as1, as2)`` -- the BGP default path between two ASes (the most
  variable: heavy-tailed inflation, strongest regime dynamics).

Each segment owns a static base :class:`~repro.netmodel.metrics.PathMetrics`
triple, a daily :class:`~repro.netmodel.dynamics.RegimeProcess`, and
per-call multiplicative noise.  Ground truth composes additively across
segments (loss in the linearised domain), which is exactly the structure
VIA's tomography assumes -- so tomography *can* be accurate here, and its
residual error comes from sampling noise and regime shifts, as in the paper
(§5.3: 71% of predictions within 20%, 14% off by >=50%).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.netmodel.dynamics import RegimeProcess, diurnal_factor
from repro.netmodel.metrics import PathMetrics, linear_to_loss, loss_to_linear

__all__ = ["NoiseConfig", "SegmentModel", "lognormal_unit_mean"]


def lognormal_unit_mean(rng: np.random.Generator, sigma: float) -> float:
    """Draw a lognormal factor with mean exactly 1.

    Using ``mu = -sigma^2 / 2`` keeps ``E[factor] = 1`` so that per-call
    noise does not bias daily means -- the oracle's "true mean" then equals
    the composition of segment day-means.
    """
    if sigma < 0.0:
        raise ValueError(f"sigma must be >= 0: {sigma}")
    if sigma == 0.0:
        return 1.0
    return float(rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))


@dataclass(frozen=True, slots=True)
class NoiseConfig:
    """Per-call multiplicative noise scales (lognormal sigma per metric).

    Loss noise applies in the linearised domain.  These are the "inherent
    variability" of §4.2 that makes pure prediction and pure exploration
    both fail; the replay's sampling semantics draw fresh noise per call.
    """

    rtt_sigma: float = 0.18
    loss_sigma: float = 0.65
    jitter_sigma: float = 0.40

    def __post_init__(self) -> None:
        for name in ("rtt_sigma", "loss_sigma", "jitter_sigma"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be >= 0")


@dataclass(slots=True)
class SegmentModel:
    """Ground truth for one network segment.

    ``base`` holds the long-run GOOD-state performance; the regime process
    modulates it day by day; ``noise`` adds per-call variation; the diurnal
    curve adds a mild time-of-day tilt.
    """

    name: str
    base: PathMetrics
    regime: RegimeProcess
    noise: NoiseConfig
    diurnal_amplitude: float = 0.08

    def mean_on_day(self, day: int) -> PathMetrics:
        """The true mean performance of this segment on ``day``."""
        rtt_mult, loss_mult, jitter_mult = self.regime.multipliers_on(day)
        return PathMetrics(
            rtt_ms=self.base.rtt_ms * rtt_mult,
            loss_rate=linear_to_loss(loss_to_linear(self.base.loss_rate) * loss_mult),
            jitter_ms=self.base.jitter_ms * jitter_mult,
        )

    def sample(self, t_hours: float, rng: np.random.Generator) -> PathMetrics:
        """Draw one call's realised performance over this segment.

        The sample is the day mean, tilted by the diurnal curve and
        perturbed by unit-mean lognormal noise.  RTT keeps a physical
        floor: noise cannot push it below the base (propagation) value
        by more than 20%.
        """
        day = int(t_hours // 24.0)
        mean = self.mean_on_day(day)
        load = diurnal_factor(t_hours, amplitude=self.diurnal_amplitude)
        rtt = mean.rtt_ms * load * lognormal_unit_mean(rng, self.noise.rtt_sigma)
        rtt = max(rtt, 0.8 * self.base.rtt_ms)
        loss_linear = (
            loss_to_linear(mean.loss_rate) * load * lognormal_unit_mean(rng, self.noise.loss_sigma)
        )
        jitter = mean.jitter_ms * load * lognormal_unit_mean(rng, self.noise.jitter_sigma)
        return PathMetrics(
            rtt_ms=rtt,
            loss_rate=linear_to_loss(loss_linear),
            jitter_ms=jitter,
        )

    def mean_over_days(self, start_day: int, end_day: int) -> PathMetrics:
        """Average true mean over ``[start_day, end_day)`` (for reporting)."""
        if end_day <= start_day:
            raise ValueError("end_day must be > start_day")
        days = range(start_day, end_day)
        rtt = 0.0
        loss_linear = 0.0
        jitter = 0.0
        for day in days:
            mean = self.mean_on_day(day)
            rtt += mean.rtt_ms
            loss_linear += loss_to_linear(mean.loss_rate)
            jitter += mean.jitter_ms
        n = float(len(days))
        return PathMetrics(
            rtt_ms=rtt / n,
            loss_rate=linear_to_loss(loss_linear / n),
            jitter_ms=jitter / n,
        )


def heavy_tailed_inflation(
    rng: np.random.Generator, median: float, sigma: float, floor: float = 1.02
) -> float:
    """Draw a BGP path-inflation factor (lognormal body, heavy right tail).

    ``median`` is the typical stretch over the great-circle propagation
    delay; ``sigma`` widens the tail.  A small fraction of pairs end up
    with 3-6x inflation -- the circuitous default routes that make
    relaying worthwhile (§2.3).
    """
    if median < 1.0:
        raise ValueError(f"median inflation must be >= 1: {median}")
    value = median * math.exp(float(rng.normal(0.0, sigma)))
    return max(floor, value)
