"""Append-only write-ahead log of controller records.

Every state-changing message the controller handles (hello, measurement,
assignment request) is framed and appended here *before* the policy acts
on it, so a crash loses at most the record currently in flight -- the
paper's controller learns from every call (§4), and without a log every
measurement since the last snapshot would vanish with the process.

On-disk format, one segment file at a time (``wal-00000001.seg``, ...):

* an 8-byte magic prefix (:data:`SEGMENT_MAGIC`);
* a sequence of frames ``[u32 length][u32 crc32][payload]``
  (little-endian header, JSON payload).  Each payload is one record dict
  carrying a global monotone ``seq`` plus a ``kind``.

Writers append through an unbuffered file handle, so a killed *process*
loses nothing that was appended; the :class:`WriteAheadLog` fsync policy
(``always`` / ``batch`` / ``off``) decides what a *power loss* can take.
Segments rotate by size, record count, or age; sealed segments are
immutable and become the unit of truncation and compaction.

The reader is deliberately paranoid: a torn final frame (the crash
happened mid-append) is silently dropped, a mid-segment CRC mismatch is
skipped with a counted error, and an implausible length field stops the
segment instead of seeking into garbage.  Recovery never raises on a
damaged log; it salvages everything salvageable and reports the rest.
"""

from __future__ import annotations

import json
import struct
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.obs.metrics import MetricsRegistry
from repro.store.io import fsync_dir, fsync_file

__all__ = [
    "SEGMENT_MAGIC",
    "MAX_RECORD_BYTES",
    "FSYNC_POLICIES",
    "SegmentInfo",
    "SegmentReadResult",
    "WalReadResult",
    "WriteAheadLog",
    "encode_frame",
    "read_segment",
    "read_wal",
]

#: First 8 bytes of every segment file.
SEGMENT_MAGIC = b"VIAWAL1\n"

#: Frame header: payload length then CRC32 of the payload.
_HEADER = struct.Struct("<II")

#: Upper bound on one record's payload; a length field above this is
#: treated as framing corruption (stop the segment) rather than trusted.
MAX_RECORD_BYTES = 1 << 24

#: Supported fsync policies, strongest first.
FSYNC_POLICIES = ("always", "batch", "off")

_SEGMENT_GLOB = "wal-*.seg"


def _segment_name(index: int) -> str:
    return f"wal-{index:08d}.seg"


def _segment_index(path: Path) -> int:
    return int(path.stem.split("-")[1])


def encode_frame(record: dict) -> bytes:
    """One record's on-disk frame: header + JSON payload."""
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_RECORD_BYTES:
        raise ValueError(f"record exceeds {MAX_RECORD_BYTES} bytes: {len(payload)}")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass(slots=True)
class SegmentInfo:
    """A sealed (immutable) segment and the seq range it covers."""

    path: Path
    first_seq: int
    last_seq: int
    n_records: int
    size_bytes: int


@dataclass(slots=True)
class SegmentReadResult:
    """Everything salvageable from one segment file."""

    records: list[dict] = field(default_factory=list)
    #: Frames skipped for a CRC mismatch, undecodable JSON, a missing
    #: seq/kind, or an implausible length field.
    n_corrupt: int = 0
    #: True when the file ends in an incomplete frame (crash mid-append).
    torn: bool = False


@dataclass(slots=True)
class WalReadResult:
    """A whole log directory's salvageable records, in seq order."""

    records: list[dict] = field(default_factory=list)
    n_corrupt: int = 0
    n_torn_segments: int = 0
    n_segments: int = 0


def read_segment(path: str | Path) -> SegmentReadResult:
    """Read one segment, tolerating torn tails and corrupt frames.

    Never raises on damaged *content*: CRC mismatches and undecodable
    payloads are skipped (counted in ``n_corrupt``), an incomplete final
    frame sets ``torn``, and a length field larger than
    :data:`MAX_RECORD_BYTES` (or pointing past a non-final position that
    still fails its CRC) abandons the rest of the segment as one counted
    error -- frame boundaries downstream of garbage cannot be trusted.
    """
    data = Path(path).read_bytes()
    result = SegmentReadResult()
    if not data.startswith(SEGMENT_MAGIC):
        # Not a segment (or the header itself is damaged): nothing inside
        # can be framed out reliably.
        if data:
            result.n_corrupt += 1
        return result
    offset = len(SEGMENT_MAGIC)
    end = len(data)
    while offset < end:
        if end - offset < _HEADER.size:
            result.torn = True
            break
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            result.n_corrupt += 1
            break
        start = offset + _HEADER.size
        if start + length > end:
            result.torn = True
            break
        payload = data[start : start + length]
        offset = start + length
        if zlib.crc32(payload) != crc:
            result.n_corrupt += 1
            continue
        try:
            record = json.loads(payload)
        except json.JSONDecodeError:
            result.n_corrupt += 1
            continue
        if (
            not isinstance(record, dict)
            or not isinstance(record.get("seq"), int)
            or not isinstance(record.get("kind"), str)
        ):
            result.n_corrupt += 1
            continue
        result.records.append(record)
    return result


def segment_paths(directory: str | Path) -> list[Path]:
    """All segment files under ``directory``, oldest first."""
    return sorted(Path(directory).glob(_SEGMENT_GLOB), key=_segment_index)


def read_wal(directory: str | Path, *, after_seq: int = 0) -> WalReadResult:
    """Read every segment in order, keeping records with ``seq > after_seq``.

    A segment that vanishes between the directory listing and the read
    (a concurrent compaction folded and deleted it) is skipped, not an
    error: compaction only ever deletes snapshot-covered segments, whose
    records a reader filtering on ``after_seq`` would discard anyway.
    """
    result = WalReadResult()
    for path in segment_paths(directory):
        try:
            seg = read_segment(path)
        except FileNotFoundError:
            continue
        result.n_segments += 1
        result.n_corrupt += seg.n_corrupt
        if seg.torn:
            result.n_torn_segments += 1
        result.records.extend(r for r in seg.records if r["seq"] > after_seq)
    return result


class WriteAheadLog:
    """Segmented append-only log with a global sequence number.

    ``fsync`` policy:

    * ``always`` -- fsync after every append (survives power loss at the
      cost of one disk flush per record);
    * ``batch``  -- fsync every ``batch_every`` appends and on
      seal/close/:meth:`sync` (bounded power-loss window);
    * ``off``    -- never fsync; the OS writeback decides (process kills
      are still safe because appends bypass userspace buffering).

    Rotation seals the active segment when it exceeds
    ``max_segment_bytes``, ``max_segment_records``, or
    ``max_segment_age_s`` (checked after each append).  Sealed segments
    are immutable; on re-opening a directory the log *never* appends to
    an existing file (its tail may be torn) -- it starts a fresh segment
    after scanning the old ones for the highest surviving ``seq``.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "batch",
        batch_every: int = 64,
        max_segment_bytes: int = 1 << 20,
        max_segment_records: int | None = None,
        max_segment_age_s: float | None = None,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync!r}; expected {FSYNC_POLICIES}")
        if batch_every < 1:
            raise ValueError("batch_every must be >= 1")
        if max_segment_bytes < len(SEGMENT_MAGIC) + _HEADER.size:
            raise ValueError("max_segment_bytes too small for a single frame")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.batch_every = batch_every
        self.max_segment_bytes = max_segment_bytes
        self.max_segment_records = max_segment_records
        self.max_segment_age_s = max_segment_age_s
        self._clock = clock
        self._registry = registry if registry is not None else MetricsRegistry()
        self._obs_appends = self._registry.counter(
            "via_store_records_appended_total",
            "WAL records appended, by record kind.",
            ("kind",),
        )
        self._obs_fsyncs = self._registry.counter(
            "via_store_fsyncs_total",
            "fsync calls issued by the write-ahead log.",
        )
        self._obs_segments = self._registry.gauge(
            "via_store_segments",
            "Segment files currently on disk (sealed + active).",
        )
        self._obs_bytes = self._registry.counter(
            "via_store_bytes_appended_total",
            "Frame bytes appended to the write-ahead log.",
        )

        self.last_seq = 0
        self._sealed: list[SegmentInfo] = []
        self._fh = None
        self._active_path: Path | None = None
        self._active_first_seq = 0
        self._active_records = 0
        self._active_bytes = 0
        self._active_opened_at = 0.0
        self._pending_sync = 0
        self._next_index = 1
        self._scan_existing()
        self._update_segment_gauge()

    # ------------------------------------------------------------------
    # Startup scan
    # ------------------------------------------------------------------

    def _scan_existing(self) -> None:
        """Index pre-existing segments and recover the highest seq.

        Damaged frames are ignored here (the recovery path counts them);
        the scan only needs seq bounds to resume numbering and to know
        which sealed files cover which records.
        """
        for path in segment_paths(self.directory):
            try:
                seg = read_segment(path)
                size_bytes = path.stat().st_size
            except FileNotFoundError:
                # Deleted under us by a compaction still finishing against
                # the previous (crashed) log instance: its records are
                # archive-covered, so the scan just moves on.
                continue
            seqs = [r["seq"] for r in seg.records]
            info = SegmentInfo(
                path=path,
                first_seq=min(seqs) if seqs else 0,
                last_seq=max(seqs) if seqs else 0,
                n_records=len(seg.records),
                size_bytes=size_bytes,
            )
            self._sealed.append(info)
            self.last_seq = max(self.last_seq, info.last_seq)
            self._next_index = max(self._next_index, _segment_index(path) + 1)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, record: dict) -> int:
        """Frame and append one record; returns its assigned ``seq``.

        The caller's dict is not mutated; ``seq`` is stamped into a copy.
        The frame reaches the OS before this method returns (unbuffered
        write); whether it reaches the *disk* is the fsync policy's call.
        """
        seq = self.last_seq + 1
        stamped = dict(record)
        stamped["seq"] = seq
        frame = encode_frame(stamped)
        fh = self._ensure_active(seq)
        fh.write(frame)
        self.last_seq = seq
        self._active_records += 1
        self._active_bytes += len(frame)
        self._pending_sync += 1
        self._obs_appends.labels(kind=str(stamped.get("kind", "?"))).inc()
        self._obs_bytes.inc(len(frame))
        if self.fsync == "always" or (
            self.fsync == "batch" and self._pending_sync >= self.batch_every
        ):
            self._fsync_active()
        if self._should_rotate():
            self.rotate()
        return seq

    def _ensure_active(self, first_seq: int):
        if self._fh is None:
            path = self.directory / _segment_name(self._next_index)
            self._next_index += 1
            # buffering=0: every write goes straight to the OS, so a
            # killed process never loses an acknowledged append.
            self._fh = open(path, "ab", buffering=0)
            self._fh.write(SEGMENT_MAGIC)
            self._active_path = path
            self._active_first_seq = first_seq
            self._active_records = 0
            self._active_bytes = len(SEGMENT_MAGIC)
            self._active_opened_at = self._clock()
            self._pending_sync = 0
            fsync_dir(self.directory)
            self._update_segment_gauge()
        return self._fh

    def _should_rotate(self) -> bool:
        if self._fh is None:
            return False
        if self._active_bytes >= self.max_segment_bytes:
            return True
        if (
            self.max_segment_records is not None
            and self._active_records >= self.max_segment_records
        ):
            return True
        if (
            self.max_segment_age_s is not None
            and self._clock() - self._active_opened_at >= self.max_segment_age_s
        ):
            return True
        return False

    def _fsync_active(self) -> None:
        if self._fh is not None and self._pending_sync > 0:
            fsync_file(self._fh.fileno())
            self._obs_fsyncs.inc()
            self._pending_sync = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def sync(self) -> None:
        """Explicitly flush the active segment to disk (any policy)."""
        if self._fh is not None and self._pending_sync > 0:
            fsync_file(self._fh.fileno())
            self._obs_fsyncs.inc()
            self._pending_sync = 0

    def rotate(self) -> SegmentInfo | None:
        """Seal the active segment (if it holds records) and start fresh.

        Returns the sealed :class:`SegmentInfo`, or None when there was
        nothing to seal.  An empty active segment file is removed rather
        than sealed, so snapshots taken back-to-back don't litter.
        """
        if self._fh is None:
            return None
        if self.fsync != "off":
            self._fsync_active()
        self._fh.close()
        self._fh = None
        assert self._active_path is not None
        if self._active_records == 0:
            self._active_path.unlink()
            fsync_dir(self.directory)
            self._active_path = None
            self._update_segment_gauge()
            return None
        info = SegmentInfo(
            path=self._active_path,
            first_seq=self._active_first_seq,
            last_seq=self.last_seq,
            n_records=self._active_records,
            size_bytes=self._active_bytes,
        )
        self._sealed.append(info)
        self._active_path = None
        self._update_segment_gauge()
        return info

    def close(self) -> None:
        """Seal the active segment and release the file handle."""
        self.rotate()

    # ------------------------------------------------------------------
    # Introspection and truncation
    # ------------------------------------------------------------------

    @property
    def active_path(self) -> Path | None:
        """The segment currently being appended to, if any."""
        return self._active_path

    def sealed_segments(self) -> list[SegmentInfo]:
        """Immutable sealed segments, oldest first."""
        return list(self._sealed)

    def all_paths(self) -> list[Path]:
        """Every segment path on disk, oldest first, active last."""
        paths = [s.path for s in self._sealed]
        if self._active_path is not None:
            paths.append(self._active_path)
        return paths

    def drop_segments(self, infos: Iterable[SegmentInfo]) -> int:
        """Delete sealed segments (after compaction folded them); returns
        the bytes reclaimed."""
        doomed = list(infos)
        reclaimed = 0
        for info in doomed:
            info.path.unlink(missing_ok=True)
            reclaimed += info.size_bytes
        doomed_paths = {info.path for info in doomed}
        self._sealed = [s for s in self._sealed if s.path not in doomed_paths]
        if doomed:
            fsync_dir(self.directory)
        self._update_segment_gauge()
        return reclaimed

    def truncate_through(self, seq: int) -> int:
        """Delete sealed segments entirely covered by ``seq`` (their every
        record has ``record_seq <= seq``); returns how many were deleted.

        This is the snapshot contract: once a snapshot covers seq N, the
        frames at or below N are redundant for recovery.
        """
        covered = [s for s in self._sealed if s.last_seq <= seq]
        self.drop_segments(covered)
        return len(covered)

    def _update_segment_gauge(self) -> None:
        count = len(self._sealed) + (1 if self._active_path is not None else 0)
        self._obs_segments.set(count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog(dir={str(self.directory)!r}, last_seq={self.last_seq}, "
            f"sealed={len(self._sealed)}, fsync={self.fsync!r})"
        )
