"""Crash-safe filesystem primitives shared by the storage plane.

Durability on POSIX is a three-step contract: the *data* must reach the
disk (``fsync`` on the file), the *name* must reach the disk (``fsync``
on the containing directory after a create/rename/unlink), and replacing
a file must be atomic (``os.replace``).  Skipping any step leaves a
window where a power loss produces a zero-length or half-written "good"
file -- exactly the failure mode the write-ahead log exists to prevent.
These helpers centralise the dance so every writer in :mod:`repro.store`
(and the controller's JSON snapshots) gets it right.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

__all__ = ["fsync_file", "fsync_dir", "atomic_write_bytes", "atomic_write_json"]


def fsync_file(fileno: int) -> None:
    """Flush one open file's data and metadata to stable storage."""
    os.fsync(fileno)


def fsync_dir(path: str | Path) -> None:
    """Persist directory entries (created/renamed/deleted names) to disk.

    Best-effort on platforms whose directories cannot be opened (the
    data-fsync already happened; only the *name* durability is weakened).
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX directory semantics
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. directories on some FS
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes, *, sync: bool = True) -> Path:
    """Write ``data`` to ``path`` atomically (tmp + fsync + rename + dir fsync).

    A reader (or a post-crash recovery) sees either the complete old file
    or the complete new file, never a prefix of either.  With
    ``sync=False`` the rename is still atomic but durability is left to
    the OS writeback (for tests and throwaway artifacts).
    """
    target = Path(path)
    tmp = target.with_suffix(target.suffix + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        if sync:
            fsync_file(fh.fileno())
    os.replace(tmp, target)
    if sync:
        fsync_dir(target.parent)
    return target


def atomic_write_json(path: str | Path, payload: Any, *, sync: bool = True) -> Path:
    """JSON-serialise ``payload`` and :func:`atomic_write_bytes` it."""
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return atomic_write_bytes(path, data, sync=sync)
