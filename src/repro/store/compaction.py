"""Segment compaction: fold sealed WAL segments into window aggregates.

Raw measurement records grow with call volume; the controller's learning
state only ever needs per-(pair, option, window) aggregates (§4: the
predictor reads one 24 h window of :class:`~repro.core.history.CallHistory`).
Compaction closes that gap: sealed segments already covered by a snapshot
are folded into a single on-disk :func:`~repro.core.history.history_to_dict`
archive (``compacted.json``) and then deleted, so disk use is bounded by
*windows retained*, never by calls handled.

The fold reuses the exact keying the live policy uses
(:class:`~repro.core.keys.PairKeyer` + option normalisation), so the
archive is :meth:`CallHistory.merge`-compatible with any policy history at
the same granularity -- the same map-reduce contract the parallel replay
engine relies on.  A retention horizon (``retention_windows``) prunes the
archive's oldest windows on every compaction, mirroring
:meth:`CallHistory.prune_before` in the live policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.history import (
    CallHistory,
    history_from_dict,
    history_to_dict,
    option_from_dict,
)
from repro.core.keys import Granularity, PairKeyer
from repro.netmodel.metrics import PathMetrics
from repro.obs.metrics import MetricsRegistry
from repro.store.io import atomic_write_json
from repro.store.wal import WriteAheadLog, read_segment
from repro.telephony.call import Call

__all__ = ["COMPACTED_FORMAT", "CompactionResult", "Compactor"]

COMPACTED_FORMAT = "via-store-compacted-v1"


@dataclass(frozen=True, slots=True)
class CompactionResult:
    """What one compaction pass did."""

    n_segments: int
    n_measurements: int
    #: Non-measurement records (hello, request) -- folded away, not archived.
    n_skipped: int
    n_corrupt: int
    n_windows_pruned: int
    bytes_reclaimed: int


class Compactor:
    """Folds sealed segments into the store's compacted history archive."""

    def __init__(
        self,
        root: str | Path,
        *,
        window_hours: float = 24.0,
        granularity: Granularity = "as",
        retention_windows: int = 8,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if retention_windows < 1:
            raise ValueError("retention_windows must be >= 1")
        self.root = Path(root)
        self.window_hours = window_hours
        self.retention_windows = retention_windows
        self._keyer = PairKeyer(granularity)
        self._registry = registry if registry is not None else MetricsRegistry()
        self._obs_compactions = self._registry.counter(
            "via_store_compactions_total",
            "Compaction passes that folded at least one segment.",
        )
        self._obs_folded = self._registry.counter(
            "via_store_compacted_records_total",
            "Measurement records folded into the window archive.",
        )
        self._obs_read_errors = self._registry.counter(
            "via_store_read_errors_total",
            "Damaged WAL records skipped while reading, by reader.",
            ("reader",),
        )

    @property
    def compacted_path(self) -> Path:
        return self.root / "compacted.json"

    # ------------------------------------------------------------------
    # Archive I/O
    # ------------------------------------------------------------------

    def load_history(self) -> CallHistory:
        """The archive's :class:`CallHistory` (empty when none exists yet).

        Raises :class:`ValueError` on an unrecognised or corrupt archive --
        silently merging garbage into the long-term aggregates would
        poison every later prediction, so the operator must decide.
        """
        if not self.compacted_path.exists():
            return CallHistory(window_hours=self.window_hours)
        import json

        payload = json.loads(self.compacted_path.read_text(encoding="utf-8"))
        if payload.get("format") != COMPACTED_FORMAT:
            raise ValueError(
                f"unrecognised compacted archive format: {payload.get('format')!r}"
            )
        return history_from_dict(payload["history"])

    def _write_history(self, history: CallHistory, last_seq: int) -> None:
        atomic_write_json(
            self.compacted_path,
            {
                "format": COMPACTED_FORMAT,
                "granularity": self._keyer.granularity,
                "last_seq": last_seq,
                "n_calls": history.total_calls(),
                "history": history_to_dict(history),
            },
        )

    # ------------------------------------------------------------------
    # The fold
    # ------------------------------------------------------------------

    def compact(self, wal: WriteAheadLog, *, cover_seq: int | None = None) -> CompactionResult:
        """Fold sealed segments into the archive, then delete them.

        Only segments whose every record is covered by ``cover_seq`` are
        touched (pass the latest snapshot's seq): compacting a segment
        that recovery still needs would trade exact crash recovery for
        disk space, which is never the right trade silently.
        """
        eligible = [
            s
            for s in wal.sealed_segments()
            if cover_seq is None or s.last_seq <= cover_seq
        ]
        if not eligible:
            return CompactionResult(0, 0, 0, 0, 0, 0)
        history = self.load_history()
        n_measurements = n_skipped = n_corrupt = 0
        max_seq = 0
        for info in eligible:
            seg = read_segment(info.path)
            n_corrupt += seg.n_corrupt
            for record in seg.records:
                max_seq = max(max_seq, record["seq"])
                if record.get("kind") != "measurement":
                    n_skipped += 1
                    continue
                try:
                    self._fold(record, history)
                except (KeyError, TypeError, ValueError):
                    n_corrupt += 1
                    continue
                n_measurements += 1
        n_pruned = 0
        windows = history.windows()
        if windows:
            n_pruned = history.prune_before(windows[-1] - self.retention_windows + 1)
        self._write_history(history, max_seq)
        bytes_reclaimed = wal.drop_segments(eligible)
        self._obs_compactions.inc()
        self._obs_folded.inc(n_measurements)
        if n_corrupt:
            self._obs_read_errors.labels(reader="compaction").inc(n_corrupt)
        return CompactionResult(
            n_segments=len(eligible),
            n_measurements=n_measurements,
            n_skipped=n_skipped,
            n_corrupt=n_corrupt,
            n_windows_pruned=n_pruned,
            bytes_reclaimed=bytes_reclaimed,
        )

    def _fold(self, record: dict, history: CallHistory) -> None:
        """Fold one measurement record exactly as the live policy keys it."""
        call = Call(
            call_id=0,
            t_hours=float(record["t_hours"]),
            src_asn=int(record["src_id"]),
            dst_asn=int(record["dst_id"]),
            src_country=str(record.get("src_site", "?")),
            dst_country=str(record.get("dst_site", "?")),
            src_user=int(record["src_id"]),
            dst_user=int(record["dst_id"]),
        )
        option = option_from_dict(record["option"])
        metrics = PathMetrics(
            rtt_ms=float(record["rtt_ms"]),
            loss_rate=float(record["loss_rate"]),
            jitter_ms=float(record["jitter_ms"]),
        )
        view = self._keyer.view(call)
        history.add(view.pair_key, view.normalize(option), call.t_hours, metrics)
