"""Crash recovery: restore a controller as snapshot + WAL-tail replay.

The recovery contract is *equivalence*: a controller recovered from its
store must hold exactly the in-memory state an uninterrupted controller
would -- the same :class:`~repro.core.history.CallHistory`, the same
bandit counts, the same RNG position, and therefore the same future
assignments.  That works because the WAL records every state-changing
input (hello, measurement, assignment request) in handling order, the
snapshot captures full state up to a seq, and replaying the tail through
the controller's own handlers is deterministic.

Damage tolerance: recovery never raises.  A corrupt snapshot downgrades
to a full-log replay (counted as ``outcome="corrupt"`` so operators can
alert on it); torn final frames and mid-segment CRC failures are skipped
with counted errors by the WAL reader; a record that blows up in the
policy is isolated exactly as the live path isolates it.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from typing import Protocol

from repro.obs.metrics import MetricsRegistry
from repro.store.facade import Store

__all__ = ["RecoveryTarget", "RecoveryReport", "recover"]

logger = logging.getLogger(__name__)


class RecoveryTarget(Protocol):
    """What recovery needs from a controller (duck-typed to avoid a
    dependency on :mod:`repro.deployment`)."""

    def restore_dict(self, payload: dict) -> None: ...

    def apply_record(self, record: dict) -> None: ...


@dataclass(slots=True)
class RecoveryReport:
    """What one recovery pass found and replayed."""

    #: Snapshot fate: ``ok`` (restored), ``missing`` (none on disk, full
    #: replay), or ``corrupt`` (unreadable/unloadable, full replay).
    snapshot_outcome: str = "missing"
    #: Seq the restored snapshot covered (0 for missing/corrupt).
    snapshot_seq: int = 0
    #: WAL records replayed through the target, by kind.
    n_replayed: int = 0
    replayed_by_kind: dict[str, int] = field(default_factory=dict)
    #: Damaged frames the reader skipped plus records the target rejected.
    n_corrupt: int = 0
    #: Segments that ended mid-frame (a crash during an append).
    n_torn_segments: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing on disk was damaged."""
        return self.snapshot_outcome != "corrupt" and self.n_corrupt == 0


def recover(
    store: Store,
    target: RecoveryTarget,
    *,
    registry: MetricsRegistry | None = None,
) -> RecoveryReport:
    """Restore ``target`` from ``store``; never raises.

    Order matters: the snapshot is applied first (or skipped, on damage),
    then every surviving WAL record *after* the covered seq is replayed
    through ``target.apply_record`` in seq order.
    """
    report = RecoveryReport()
    registry = registry if registry is not None else getattr(target, "registry", None)
    payload = None
    try:
        payload, seq = store.read_snapshot()
    except (ValueError, KeyError, OSError, json.JSONDecodeError):
        logger.exception("unreadable store snapshot %s; replaying full log", store.snapshot_path)
        report.snapshot_outcome = "corrupt"
    if payload is not None:
        try:
            target.restore_dict(payload["controller"])
            report.snapshot_outcome = "ok"
            report.snapshot_seq = seq
        except Exception:
            logger.exception(
                "store snapshot %s did not restore; replaying full log",
                store.snapshot_path,
            )
            report.snapshot_outcome = "corrupt"
            report.snapshot_seq = 0

    tail = store.records_after(report.snapshot_seq)
    report.n_corrupt += tail.n_corrupt
    report.n_torn_segments = tail.n_torn_segments
    for record in tail.records:
        try:
            target.apply_record(record)
        except Exception:
            # A record the handlers cannot even parse: count and move on,
            # recovery salvages everything salvageable.
            logger.exception("skipping unreplayable WAL record seq=%s", record.get("seq"))
            report.n_corrupt += 1
            continue
        report.n_replayed += 1
        kind = str(record.get("kind", "?"))
        report.replayed_by_kind[kind] = report.replayed_by_kind.get(kind, 0) + 1

    if registry is not None:
        registry.counter(
            "via_store_recovery_replayed_records_total",
            "WAL records replayed during crash recovery.",
        ).inc(report.n_replayed)
        if report.n_corrupt:
            registry.counter(
                "via_store_read_errors_total",
                "Damaged WAL records skipped while reading, by reader.",
                ("reader",),
            ).labels(reader="recovery").inc(report.n_corrupt)
    logger.info(
        "store recovery from %s: snapshot=%s (seq %d), replayed %d records "
        "(%d damaged, %d torn segments)",
        store.root,
        report.snapshot_outcome,
        report.snapshot_seq,
        report.n_replayed,
        report.n_corrupt,
        report.n_torn_segments,
    )
    return report
