"""Durable storage plane: WAL, segment compaction, snapshot + replay recovery.

The controller's learned state must survive crashes without ever
outgrowing disk (the paper's controller learns from *every* call, §4).
This package provides that as three cooperating layers:

* :mod:`repro.store.wal` -- an append-only write-ahead log of
  measurement/assignment records (length + CRC32 framing, segment
  rotation, ``always``/``batch``/``off`` fsync policies, a damage-
  tolerant reader);
* :mod:`repro.store.compaction` -- folds sealed segments into
  :class:`~repro.core.history.CallHistory` window aggregates with a
  retention horizon, bounding disk by windows instead of call volume;
* :mod:`repro.store.recovery` -- restores a controller as snapshot +
  WAL-tail replay, reproducing exactly the in-memory state an
  uninterrupted controller would hold.

:class:`~repro.store.facade.Store` ties them together under one
directory; ``python -m repro store inspect|verify|compact <dir>`` is the
operator tooling.
"""

from repro.store.compaction import COMPACTED_FORMAT, CompactionResult, Compactor
from repro.store.facade import SNAPSHOT_FORMAT, SnapshotSource, Store, StoreConfig
from repro.store.io import atomic_write_bytes, atomic_write_json, fsync_dir, fsync_file
from repro.store.recovery import RecoveryReport, RecoveryTarget, recover
from repro.store.wal import (
    FSYNC_POLICIES,
    MAX_RECORD_BYTES,
    SEGMENT_MAGIC,
    SegmentInfo,
    SegmentReadResult,
    WalReadResult,
    WriteAheadLog,
    encode_frame,
    read_segment,
    read_wal,
)

__all__ = [
    "Store",
    "StoreConfig",
    "SnapshotSource",
    "SNAPSHOT_FORMAT",
    "WriteAheadLog",
    "SegmentInfo",
    "SegmentReadResult",
    "WalReadResult",
    "encode_frame",
    "read_segment",
    "read_wal",
    "SEGMENT_MAGIC",
    "MAX_RECORD_BYTES",
    "FSYNC_POLICIES",
    "Compactor",
    "CompactionResult",
    "COMPACTED_FORMAT",
    "recover",
    "RecoveryReport",
    "RecoveryTarget",
    "atomic_write_bytes",
    "atomic_write_json",
    "fsync_file",
    "fsync_dir",
]
