"""The durable-store facade the controller talks to.

One :class:`Store` owns one on-disk layout::

    <root>/
      wal/wal-00000001.seg ...   append-only record log (repro.store.wal)
      snapshot.json              latest full snapshot + the seq it covers
      compacted.json             long-horizon window aggregates (compaction)

The write path is *log-before-act*: the controller appends a record for
every state-changing message before the policy sees it, so a crashed
controller is exactly reconstructible as snapshot + WAL-tail replay
(:mod:`repro.store.recovery`).  Snapshots fold the log down: taking one
rotates the active segment, compacts every now-covered sealed segment
into the window archive, and deletes them -- after which disk holds one
snapshot, one bounded archive, and only the records since.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Protocol

from repro.core.keys import Granularity
from repro.obs.metrics import MetricsRegistry
from repro.store.compaction import CompactionResult, Compactor
from repro.store.io import atomic_write_json
from repro.store.wal import FSYNC_POLICIES, WalReadResult, WriteAheadLog, read_wal

__all__ = ["SNAPSHOT_FORMAT", "StoreConfig", "Store", "SnapshotSource"]

SNAPSHOT_FORMAT = "via-store-snapshot-v1"


class SnapshotSource(Protocol):
    """Anything whose full state can be captured as a JSON dict."""

    def snapshot_dict(self) -> dict: ...


@dataclass(frozen=True, slots=True)
class StoreConfig:
    """Durability and retention knobs for one :class:`Store`."""

    #: WAL fsync policy: ``always`` / ``batch`` / ``off``.
    fsync: str = "batch"
    #: Appends between fsyncs under the ``batch`` policy.
    batch_every: int = 64
    #: Size-based segment rotation threshold.
    max_segment_bytes: int = 1 << 20
    #: Record-count rotation threshold (None = size/age only).
    max_segment_records: int | None = None
    #: Age-based rotation threshold in seconds (None = off).
    max_segment_age_s: float | None = None
    #: Auto-snapshot after this many appended records (0 = only on stop).
    snapshot_every_records: int = 0
    #: Window width of the compacted archive (match the policy's T).
    window_hours: float = 24.0
    #: Keying granularity of the compacted archive.
    granularity: Granularity = "as"
    #: Windows the compacted archive retains (older ones are pruned).
    retention_windows: int = 8

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {self.fsync!r}; expected {FSYNC_POLICIES}"
            )
        if self.snapshot_every_records < 0:
            raise ValueError("snapshot_every_records must be >= 0")
        if self.window_hours <= 0.0:
            raise ValueError("window_hours must be > 0")
        if self.retention_windows < 1:
            raise ValueError("retention_windows must be >= 1")


class Store:
    """Write-ahead log + snapshot + compacted archive under one root."""

    def __init__(
        self,
        root: str | Path,
        config: StoreConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.root = Path(root)
        self.config = config or StoreConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.wal = WriteAheadLog(
            self.root / "wal",
            fsync=self.config.fsync,
            batch_every=self.config.batch_every,
            max_segment_bytes=self.config.max_segment_bytes,
            max_segment_records=self.config.max_segment_records,
            max_segment_age_s=self.config.max_segment_age_s,
            registry=self.registry,
        )
        self.compactor = Compactor(
            self.root,
            window_hours=self.config.window_hours,
            granularity=self.config.granularity,
            retention_windows=self.config.retention_windows,
            registry=self.registry,
        )
        self._obs_snapshots = self.registry.counter(
            "via_store_snapshots_total",
            "Snapshots written into the store.",
        )
        # Seq numbering must survive compaction: after a clean shutdown
        # every segment is folded away, so a reopened WAL's directory scan
        # finds nothing and would restart at 0 -- while the snapshot still
        # covers a higher seq, hiding every new record from recovery.
        self.wal.last_seq = max(self.wal.last_seq, self.snapshot_seq())
        self._records_since_snapshot = max(0, self.wal.last_seq - self.snapshot_seq())

    @property
    def snapshot_path(self) -> Path:
        return self.root / "snapshot.json"

    # ------------------------------------------------------------------
    # Logging (the controller's log-before-act hooks)
    # ------------------------------------------------------------------

    def _append(self, record: dict) -> int:
        seq = self.wal.append(record)
        self._records_since_snapshot += 1
        return seq

    def log_hello(self, client_id: int, site: str) -> int:
        """Record a client introduction (site labels survive crashes)."""
        return self._append({"kind": "hello", "client_id": client_id, "site": site})

    def log_measurement(
        self,
        src_id: int,
        dst_id: int,
        t_hours: float,
        option: dict[str, Any],
        rtt_ms: float,
        loss_rate: float,
        jitter_ms: float,
        *,
        src_site: str = "?",
        dst_site: str = "?",
    ) -> int:
        """Record one completed call's measurement before the policy learns it."""
        return self._append(
            {
                "kind": "measurement",
                "src_id": src_id,
                "dst_id": dst_id,
                "t_hours": t_hours,
                "option": option,
                "rtt_ms": rtt_ms,
                "loss_rate": loss_rate,
                "jitter_ms": jitter_ms,
                "src_site": src_site,
                "dst_site": dst_site,
            }
        )

    def log_request(
        self,
        src_id: int,
        dst_id: int,
        t_hours: float,
        options: list[dict[str, Any]],
    ) -> int:
        """Record an assignment request before answering it.

        Requests must be logged too: assignment consumes the policy's RNG
        and builds per-pair bandit state, so replaying only measurements
        would leave a recovered controller making *different* choices
        than its uninterrupted twin.
        """
        return self._append(
            {
                "kind": "request",
                "src_id": src_id,
                "dst_id": dst_id,
                "t_hours": t_hours,
                "options": options,
            }
        )

    # ------------------------------------------------------------------
    # Snapshots and compaction
    # ------------------------------------------------------------------

    def should_snapshot(self) -> bool:
        """Is the auto-snapshot threshold reached?"""
        return (
            self.config.snapshot_every_records > 0
            and self._records_since_snapshot >= self.config.snapshot_every_records
        )

    def snapshot(self, source: SnapshotSource) -> Path:
        """Capture ``source`` and fold the now-covered log down.

        Writes the snapshot atomically (fsynced), rotates the active
        segment, compacts every sealed segment the snapshot covers into
        the window archive, and deletes them.
        """
        last_seq = self.wal.last_seq
        atomic_write_json(
            self.snapshot_path,
            {
                "format": SNAPSHOT_FORMAT,
                "last_seq": last_seq,
                "controller": source.snapshot_dict(),
            },
        )
        self._obs_snapshots.inc()
        self.wal.rotate()
        self.compactor.compact(self.wal, cover_seq=last_seq)
        self._records_since_snapshot = self.wal.last_seq - last_seq
        return self.snapshot_path

    def compact(self) -> CompactionResult:
        """Standalone compaction of snapshot-covered sealed segments.

        Without a snapshot nothing is eligible: every record would still
        be needed for exact recovery.
        """
        return self.compactor.compact(self.wal, cover_seq=self.snapshot_seq())

    # ------------------------------------------------------------------
    # Reading (recovery and tooling)
    # ------------------------------------------------------------------

    def read_snapshot(self) -> tuple[dict | None, int]:
        """(snapshot payload, covered seq); (None, 0) when none exists.

        Raises on a corrupt snapshot file -- recovery downgrades that to
        a counted outcome, tooling surfaces it.
        """
        if not self.snapshot_path.exists():
            return None, 0
        payload = json.loads(self.snapshot_path.read_text(encoding="utf-8"))
        if payload.get("format") != SNAPSHOT_FORMAT:
            raise ValueError(f"unrecognised snapshot format: {payload.get('format')!r}")
        return payload, int(payload["last_seq"])

    def snapshot_seq(self) -> int:
        """The seq covered by the latest snapshot (0 when none/corrupt)."""
        try:
            _payload, seq = self.read_snapshot()
        except (ValueError, KeyError, OSError, json.JSONDecodeError):
            return 0
        return seq

    def records_after(self, seq: int) -> WalReadResult:
        """Every salvageable WAL record with ``record_seq > seq``."""
        self.wal.sync()
        return read_wal(self.wal.directory, after_seq=seq)

    def close(self) -> None:
        """Seal the active segment and release file handles."""
        self.wal.close()
