"""Instrumented client agent: the modified-Skype-client stand-in.

A :class:`TestbedClient` opens one TCP connection to the controller,
introduces itself, and then (a) reports measurements after every call and
(b) asks the controller which relaying option an upcoming call should use
-- the same two interactions the paper added to the Skype client.

By default the client speaks **protocol v2**: the hello negotiates the
version, every request carries a correlation id, and replies are
demultiplexed by id -- so any number of requests may be in flight on the
one connection and complete out of order.  Constructed with
``protocol=1`` it speaks exactly the PR 1 wire dialect (no ids, strict
request-order replies), which is how the back-compat conformance tests
drive the server's v1 path.

Resilience (§7: "if the controller is unreachable, the client simply
falls back to the default path"): constructed with a
:class:`~repro.deployment.resilience.RetryPolicy`, the client bounds every
assignment round-trip with a timeout, retries with capped backoff over a
fresh connection, and -- once attempts or the deadline run out, or the
circuit breaker is open -- falls back to a client-side default option (the
direct path when offered, else the first candidate).  An explicit
:class:`~repro.deployment.protocol.ShedMessage` from an overloaded
controller short-circuits all of that: the client falls back *immediately*
(counted as a ``shed``), without burning its retry budget on a server that
just told it to go away.  A call is never blocked on the control plane.
Without a retry policy the client keeps the original fail-fast semantics
(used by protocol-level tests): a shed raises :class:`ShedError`, a
per-request error raises :class:`ServerError`.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Any

from repro.deployment.protocol import (
    LATEST_PROTOCOL,
    AssignMessage,
    ByeMessage,
    ErrorMessage,
    HelloAckMessage,
    HelloMessage,
    MeasurementMessage,
    MetricsMessage,
    MetricsRequestMessage,
    ProtocolError,
    RedirectMessage,
    RequestMessage,
    ResilienceMessage,
    ShedMessage,
    StatsMessage,
    StatsRequestMessage,
    decode_message,
    decode_option,
    encode_message,
    encode_option,
)
from repro.deployment.resilience import CircuitBreaker, ResilienceStats, RetryPolicy
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption

__all__ = [
    "TestbedClient",
    "AsyncViaClient",
    "AssignmentResult",
    "ServerError",
    "ShedError",
    "RedirectError",
]

logger = logging.getLogger(__name__)

#: Exceptions that mean "this attempt failed, the connection is suspect".
_TRANSPORT_ERRORS = (ConnectionError, OSError, asyncio.TimeoutError, ProtocolError)


class ServerError(Exception):
    """The controller answered this request with a per-request error
    (v2 :class:`~repro.deployment.protocol.ErrorMessage`): the request
    failed but the connection is still good."""

    def __init__(self, code: str, detail: str = "") -> None:
        super().__init__(f"{code}: {detail}" if detail else code)
        self.code = code
        self.detail = detail


class ShedError(Exception):
    """The controller explicitly shed this request (overload): the caller
    should use its default path now.  Raised only by fail-fast clients;
    resilient ones fall back internally."""

    def __init__(self, reason: str, retry_after_s: float = 0.0) -> None:
        super().__init__(f"request shed by controller: {reason}")
        self.reason = reason
        self.retry_after_s = retry_after_s


class RedirectError(Exception):
    """The shard answered "not mine": retry at the owning shard.

    Raised by fail-fast clients and by :meth:`AsyncViaClient.assign` so
    ring-aware callers (``repro.deployment.ring.ShardedViaClient``) can
    re-route; resilient :class:`TestbedClient` requests follow the
    redirect internally.  Carries the owning shard's address and the
    server's current shard map (when it sent one)."""

    def __init__(
        self,
        shard: int,
        host: str,
        port: int,
        shard_map: dict[str, Any] | None = None,
    ) -> None:
        super().__init__(f"pair owned by shard {shard} at {host}:{port}")
        self.shard = shard
        self.host = host
        self.port = port
        self.shard_map = shard_map


@dataclass(frozen=True, slots=True)
class AssignmentResult:
    """Outcome of one pipelined assignment request: the option the call
    should use, plus whether the controller shed the request (``option``
    is then the client-side default) and the shed reason."""

    option: RelayOption
    shed: bool = False
    reason: str = ""


class TestbedClient:
    """One instrumented client, identified by ``client_id`` and a site label."""

    def __init__(
        self,
        client_id: int,
        site: str,
        host: str,
        port: int,
        *,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        protocol: int = LATEST_PROTOCOL,
    ) -> None:
        if protocol < 1:
            raise ValueError(f"protocol must be >= 1: {protocol}")
        self.client_id = client_id
        self.site = site
        self._host = host
        self._port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._requested_protocol = protocol
        self.protocol = protocol
        self._retry = retry
        self._breaker = breaker
        self._ever_connected = False
        self.stats = ResilienceStats()
        self._last_reported_events = 0
        #: Raw shard map from the server's hello_ack (or a redirect) when
        #: it is one shard of a ring; None against a single controller.
        self.shard_map: dict[str, Any] | None = None
        self._hello_acked: asyncio.Event = asyncio.Event()
        # Reply demultiplexer state (rebuilt per connection): v2 replies
        # resolve by correlation id, v1 replies resolve strictly FIFO.
        self._corr = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._fifo: deque[asyncio.Future] = deque()
        self._reader_task: asyncio.Task | None = None
        # Concurrent callers share the connection: the lock serialises
        # reconnects (never requests), and the epoch lets a failed caller
        # tear down exactly the connection that failed it -- not a newer
        # one a concurrent caller already established.
        self._conn_lock = asyncio.Lock()
        self._conn_epoch = 0

    @property
    def resilient(self) -> bool:
        """True when a retry policy governs this client's requests."""
        return self._retry is not None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(self._host, self._port)
        self._conn_epoch += 1
        if self._ever_connected:
            self.stats.record("reconnect")
        self._ever_connected = True
        # Fresh demux state: replies to the old connection must never
        # resolve requests made on this one.
        pending: dict[int, asyncio.Future] = {}
        fifo: deque[asyncio.Future] = deque()
        self._pending = pending
        self._fifo = fifo
        self.protocol = self._requested_protocol
        self._hello_acked = asyncio.Event()
        self._reader_task = asyncio.ensure_future(
            self._reply_loop(self._reader, pending, fifo, self._conn_epoch)
        )
        # Negotiation never blocks the call path: the hello is sent
        # fire-and-forget and the server's hello_ack (v2) resolves out of
        # band in the reply loop.  A server that never acks just leaves
        # the client on its requested dialect -- requests then time out
        # and fall back like any other unresponsive-controller case.
        await self._send(
            HelloMessage(
                client_id=self.client_id,
                site=self.site,
                protocol=self._requested_protocol,
            )
        )

    async def close(self) -> None:
        if self._writer is not None:
            try:
                await self._report_resilience()
                await self._send(ByeMessage(client_id=self.client_id))
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
        self._drop_connection()

    async def __aenter__(self) -> "TestbedClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Protocol actions
    # ------------------------------------------------------------------

    async def report_measurement(
        self,
        dst_id: int,
        option: RelayOption,
        metrics: PathMetrics,
        t_hours: float,
    ) -> None:
        """Push one completed call's metrics to the controller.

        With a retry policy, a broken connection triggers one reconnect and
        resend; a measurement that still cannot be delivered is dropped
        (and counted) -- losing one sample must never block the next call.
        """
        message = MeasurementMessage(
            src_id=self.client_id,
            dst_id=dst_id,
            t_hours=t_hours,
            option=encode_option(option),
            rtt_ms=metrics.rtt_ms,
            loss_rate=metrics.loss_rate,
            jitter_ms=metrics.jitter_ms,
        )
        if self._retry is None:
            await self._send(message)
            return
        try:
            await self._ensure_connected()
            await self._send(message)
        except _TRANSPORT_ERRORS:
            self._drop_connection()
            try:
                await asyncio.wait_for(
                    self._ensure_connected(), timeout=self._retry.request_timeout_s
                )
                await self._send(message)
                self.stats.record("retry")
            except _TRANSPORT_ERRORS:
                self._drop_connection()
                self.stats.record("dropped_measurement")

    async def request_assignment(
        self, dst_id: int, options: list[RelayOption], t_hours: float
    ) -> RelayOption:
        """Ask the controller which option the next call should use.

        Without a retry policy this fails fast (original semantics; a
        shed raises :class:`ShedError`).  With one, the request is
        retried within the policy's attempt/deadline budget and then
        falls back to :meth:`default_option` -- the §7
        degrade-to-direct behaviour.  Requests may interleave freely on
        a v2 connection; v1 replies are matched strictly in order.
        """
        request = RequestMessage(
            src_id=self.client_id,
            dst_id=dst_id,
            t_hours=t_hours,
            options=[encode_option(o) for o in options],
        )
        if self._retry is None:
            return self._interpret_assignment(await self._rpc(request))
        return await self._request_assignment_resilient(request, options)

    async def fetch_stats(self) -> StatsMessage:
        """Query the controller's operational counters."""
        await self._ensure_connected()
        await self._send_resilience_report()
        timeout = self._retry.request_timeout_s if self._retry is not None else None
        reply = await self._rpc(StatsRequestMessage(), timeout=timeout)
        if not isinstance(reply, StatsMessage):
            raise ProtocolError(f"expected stats, got {type(reply).__name__}")
        return reply

    async def fetch_metrics(self) -> str:
        """Scrape the controller: its Prometheus text exposition.

        The returned text carries the controller's per-message-type
        counters and latency histograms, plus the policy's assign-path
        instruments when the controller runs with observability enabled.
        """
        await self._ensure_connected()
        timeout = self._retry.request_timeout_s if self._retry is not None else None
        reply = await self._rpc(MetricsRequestMessage(), timeout=timeout)
        if not isinstance(reply, MetricsMessage):
            raise ProtocolError(f"expected metrics, got {type(reply).__name__}")
        return reply.text

    async def wait_hello_ack(self, timeout: float | None = None) -> None:
        """Wait for the server's hello_ack (v2 only).

        Ring-aware callers use this to have :attr:`shard_map` populated
        before the first request; plain requests never need it (the hello
        is pipelined ahead of them on the same connection)."""
        await self._ensure_connected()
        if timeout is None:
            await self._hello_acked.wait()
        else:
            await asyncio.wait_for(self._hello_acked.wait(), timeout=timeout)

    @staticmethod
    def default_option(options: list[RelayOption]) -> RelayOption:
        """The client-side fallback: direct if offered, else first candidate."""
        if not options:
            raise ValueError("need at least one option to fall back to")
        if DIRECT in options:
            return DIRECT
        return options[0]

    # ------------------------------------------------------------------
    # Resilient request path
    # ------------------------------------------------------------------

    @staticmethod
    def _interpret_assignment(reply: Any) -> RelayOption:
        """Fail-fast interpretation of an assignment reply."""
        if isinstance(reply, AssignMessage):
            return decode_option(reply.option)
        if isinstance(reply, ShedMessage):
            raise ShedError(reply.reason, reply.retry_after_s)
        if isinstance(reply, RedirectMessage):
            raise RedirectError(reply.shard, reply.host, reply.port, reply.shard_map)
        if isinstance(reply, ErrorMessage):
            raise ServerError(reply.code, reply.detail)
        raise ProtocolError(f"expected assign, got {type(reply).__name__}")

    async def _request_assignment_resilient(
        self, request: RequestMessage, options: list[RelayOption]
    ) -> RelayOption:
        policy = self._retry
        assert policy is not None
        deadline = time.monotonic() + policy.deadline_s
        for attempt in range(1, policy.max_attempts + 1):
            if self._breaker is not None and not self._breaker.allow():
                self.stats.record("breaker_fastfail")
                break
            try:
                reply = await self._rpc(
                    request,
                    timeout=min(policy.request_timeout_s, deadline - time.monotonic()),
                )
            except _TRANSPORT_ERRORS as exc:
                if isinstance(exc, asyncio.TimeoutError):
                    self.stats.record("timeout")
                if self._breaker is not None:
                    self._breaker.record_failure()
                # _rpc already tore down the connection that failed us;
                # the next attempt reconnects.
                if await self._backoff(policy, attempt, deadline):
                    continue
                break
            if isinstance(reply, ShedMessage):
                # An explicit shed is a *healthy* control plane telling us
                # to back off: fall back immediately, don't retry into the
                # overload, and don't let it open the breaker.
                if self._breaker is not None:
                    self._breaker.record_success()
                self.stats.record("shed")
                self.stats.record("fallback")
                await self._maybe_report_resilience()
                return self.default_option(options)
            if isinstance(reply, RedirectMessage):
                # A healthy wrong-shard answer: move this client to the
                # owning shard and retry there immediately (no backoff --
                # the redirect names a live server).  The breaker is
                # untouched: nothing failed.
                if reply.shard_map is not None:
                    self.shard_map = reply.shard_map
                self._host, self._port = reply.host, int(reply.port)
                self._drop_connection()
                if attempt < policy.max_attempts and time.monotonic() < deadline:
                    self.stats.record("retry")
                    continue
                break
            if isinstance(reply, ErrorMessage):
                # Per-request failure: the connection is still good (v2
                # semantics), so retry without tearing it down.
                if self._breaker is not None:
                    self._breaker.record_failure()
                if await self._backoff(policy, attempt, deadline):
                    continue
                break
            try:
                if not isinstance(reply, AssignMessage):
                    raise ProtocolError(f"expected assign, got {type(reply).__name__}")
                choice = decode_option(reply.option)
            except ProtocolError:
                if self._breaker is not None:
                    self._breaker.record_failure()
                self._drop_connection()
                if await self._backoff(policy, attempt, deadline):
                    continue
                break
            if self._breaker is not None:
                self._breaker.record_success()
            await self._maybe_report_resilience()
            return choice
        self.stats.record("fallback")
        return self.default_option(options)

    async def _backoff(self, policy: RetryPolicy, attempt: int, deadline: float) -> bool:
        """Sleep the schedule's backoff; False when the budget is spent."""
        if attempt >= policy.max_attempts:
            return False
        delay = policy.delay_for(attempt)
        if time.monotonic() + delay >= deadline:
            return False
        self.stats.record("retry")
        await asyncio.sleep(delay)
        return True

    # ------------------------------------------------------------------
    # Reply demultiplexing
    # ------------------------------------------------------------------

    async def _rpc(self, message: Any, *, timeout: float | None = None) -> Any:
        """Send one request and await its reply.

        On v2 the request gets a fresh correlation id and resolves when
        the matching reply arrives -- concurrent callers interleave
        freely.  On v1 the reply is whatever the server sends next
        (strict FIFO), which is correct because a v1 server replies in
        request order.
        """
        await self._ensure_connected()
        epoch = self._conn_epoch
        loop = asyncio.get_event_loop()
        future: asyncio.Future = loop.create_future()
        corr_id: int | None = None
        if self.protocol >= 2:
            corr_id = next(self._corr)
            message = replace(message, corr_id=corr_id)
            self._pending[corr_id] = future
        else:
            self._fifo.append(future)
        try:
            await self._send(message)
            if timeout is not None:
                return await asyncio.wait_for(future, timeout=timeout)
            return await future
        except _TRANSPORT_ERRORS:
            # The connection that failed us is suspect (and on v1 the
            # stream may be out of sync): tear it down -- but only it.
            self._drop_connection(epoch)
            raise
        finally:
            if corr_id is not None:
                self._pending.pop(corr_id, None)
            else:
                try:
                    self._fifo.remove(future)
                except ValueError:
                    pass

    async def _reply_loop(
        self,
        reader: asyncio.StreamReader,
        pending: dict[int, asyncio.Future],
        fifo: deque[asyncio.Future],
        epoch: int,
    ) -> None:
        """One per connection: reads replies and resolves their futures.

        Owns *this* connection's demux maps (captured, not ``self.``), so
        a stale loop can never resolve or fail requests made on a newer
        connection after a reconnect.
        """
        try:
            while True:
                line = await reader.readline()
                if not line:
                    raise ConnectionError("controller closed the connection")
                message = decode_message(line)
                if isinstance(message, HelloAckMessage):
                    # Out-of-band negotiation result (see connect()).
                    if epoch == self._conn_epoch:
                        self.protocol = min(
                            message.protocol, self._requested_protocol
                        )
                        if message.shard_map is not None:
                            self.shard_map = message.shard_map
                        self._hello_acked.set()
                    continue
                corr_id = getattr(message, "corr_id", None)
                if corr_id is not None:
                    # v2 reply: resolves its request or nothing at all (a
                    # late reply to a request we already gave up on must
                    # never be mistaken for a FIFO v1 reply).
                    future = pending.pop(corr_id, None)
                    if future is not None and not future.done():
                        future.set_result(message)
                    else:
                        logger.debug("late %s reply from controller", message.type)
                elif fifo:
                    future = fifo.popleft()
                    if not future.done():
                        future.set_result(message)
                else:
                    # Unsolicited server message (e.g. an error for a line
                    # we no longer wait on): log, never crash the loop.
                    logger.debug("unsolicited %s from controller", message.type)
        except asyncio.CancelledError:
            self._fail_futures(pending, fifo, ConnectionError("connection closed"))
            raise
        except _TRANSPORT_ERRORS as exc:
            self._fail_futures(pending, fifo, exc)
            # Leave no zombie: the writer still points at this dead
            # connection unless a newer epoch already replaced it.
            self._drop_connection(epoch)

    @staticmethod
    def _fail_futures(
        pending: dict[int, asyncio.Future],
        fifo: deque[asyncio.Future],
        exc: Exception,
    ) -> None:
        """Fail every in-flight request on a dead connection."""
        waiters = list(pending.values()) + list(fifo)
        pending.clear()
        fifo.clear()
        for future in waiters:
            if not future.done():
                future.set_exception(exc)

    async def _ensure_connected(self) -> None:
        if self._writer is not None:
            return
        async with self._conn_lock:
            # Re-check under the lock: a concurrent caller may have
            # reconnected while we waited for it.
            if self._writer is None:
                await self.connect()

    def _drop_connection(self, epoch: int | None = None) -> None:
        """Abandon the current connection (the next use reconnects).

        With ``epoch``, drop only if that connection is still current --
        a no-op when a concurrent caller already replaced it."""
        if epoch is not None and epoch != self._conn_epoch:
            return
        self._conn_epoch += 1
        task = self._reader_task
        self._reader_task = None
        try:
            current = asyncio.current_task()
        except RuntimeError:  # called outside the event loop
            current = None
        if task is not None and task is not current:
            task.cancel()
        self._fail_futures(
            self._pending, self._fifo, ConnectionError("connection dropped")
        )
        if self._writer is not None:
            self._writer.close()
        self._writer = None
        self._reader = None

    # ------------------------------------------------------------------
    # Resilience telemetry
    # ------------------------------------------------------------------

    async def _maybe_report_resilience(self) -> None:
        """Push updated fault counters after a successful interaction."""
        if self.stats.total_events() == self._last_reported_events:
            return
        try:
            await self._report_resilience()
        except (ConnectionError, OSError):  # best-effort telemetry
            pass

    async def _report_resilience(self) -> None:
        if self._writer is None or self.stats.total_events() == 0:
            return
        await self._send_resilience_report()

    async def _send_resilience_report(self) -> None:
        if self._writer is None or self.stats.total_events() == self._last_reported_events:
            return
        await self._send(
            ResilienceMessage(
                client_id=self.client_id,
                n_retries=self.stats.n_retries,
                n_fallbacks=self.stats.n_fallbacks,
                n_reconnects=self.stats.n_reconnects,
                n_timeouts=self.stats.n_timeouts,
                n_sheds=self.stats.n_sheds,
            )
        )
        self._last_reported_events = self.stats.total_events()

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------

    async def _send(self, message: Any) -> None:
        writer = self._writer
        if writer is None:
            # Includes the race where the reply loop tore the connection
            # down between our connect and this send: a transport error,
            # so resilient callers retry instead of crashing.
            raise ConnectionError("client is not connected")
        writer.write(encode_message(message))
        await writer.drain()


class AsyncViaClient(TestbedClient):
    """Pipelined v2 client: many logical callers over one connection.

    Where :class:`TestbedClient` models one Skype client,
    ``AsyncViaClient`` is the load-generator shape: :meth:`assign` may be
    awaited concurrently any number of times (replies demultiplex by
    correlation id), each call may override ``src_id`` to impersonate a
    different logical client, and the result exposes the shed outcome
    instead of hiding it -- which is how the overload benchmark drives
    10k simulated clients through a handful of sockets and proves that
    every non-admitted request got an explicit answer.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        if self._requested_protocol < 2:
            raise ValueError("AsyncViaClient requires protocol >= 2 (pipelining)")

    async def assign(
        self,
        dst_id: int,
        options: list[RelayOption],
        t_hours: float,
        *,
        src_id: int | None = None,
        timeout: float | None = None,
    ) -> AssignmentResult:
        """One pipelined assignment round-trip, shed outcome exposed.

        A shed resolves to the client-side default option with
        ``shed=True`` (never an exception: the call proceeds on the
        default path, exactly the fallback contract).  A per-request
        server error raises :class:`ServerError`; the connection stays
        usable either way.
        """
        request = RequestMessage(
            src_id=src_id if src_id is not None else self.client_id,
            dst_id=dst_id,
            t_hours=t_hours,
            options=[encode_option(o) for o in options],
        )
        if timeout is None and self._retry is not None:
            timeout = self._retry.request_timeout_s
        reply = await self._rpc(request, timeout=timeout)
        if isinstance(reply, ShedMessage):
            self.stats.record("shed")
            self.stats.record("fallback")
            return AssignmentResult(
                self.default_option(options), shed=True, reason=reply.reason
            )
        if isinstance(reply, RedirectMessage):
            if reply.shard_map is not None:
                self.shard_map = reply.shard_map
            raise RedirectError(reply.shard, reply.host, reply.port, reply.shard_map)
        if isinstance(reply, ErrorMessage):
            raise ServerError(reply.code, reply.detail)
        if not isinstance(reply, AssignMessage):
            raise ProtocolError(f"expected assign, got {type(reply).__name__}")
        return AssignmentResult(decode_option(reply.option))
