"""Instrumented client agent: the modified-Skype-client stand-in.

A :class:`TestbedClient` opens one TCP connection to the controller,
introduces itself, and then (a) reports measurements after every call and
(b) asks the controller which relaying option an upcoming call should use
-- the same two interactions the paper added to the Skype client.

Resilience (§7: "if the controller is unreachable, the client simply
falls back to the default path"): constructed with a
:class:`~repro.deployment.resilience.RetryPolicy`, the client bounds every
assignment round-trip with a timeout, retries with capped backoff over a
fresh connection, and -- once attempts or the deadline run out, or the
circuit breaker is open -- falls back to a client-side default option (the
direct path when offered, else the first candidate).  A call is never
blocked on the control plane.  Without a retry policy the client keeps the
original fail-fast semantics (used by protocol-level tests).
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from repro.deployment.protocol import (
    AssignMessage,
    ByeMessage,
    HelloMessage,
    MeasurementMessage,
    MetricsMessage,
    MetricsRequestMessage,
    ProtocolError,
    RequestMessage,
    ResilienceMessage,
    StatsMessage,
    StatsRequestMessage,
    decode_message,
    decode_option,
    encode_message,
    encode_option,
)
from repro.deployment.resilience import CircuitBreaker, ResilienceStats, RetryPolicy
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption

__all__ = ["TestbedClient"]

#: Exceptions that mean "this attempt failed, the connection is suspect".
_TRANSPORT_ERRORS = (ConnectionError, OSError, asyncio.TimeoutError, ProtocolError)


class TestbedClient:
    """One instrumented client, identified by ``client_id`` and a site label."""

    def __init__(
        self,
        client_id: int,
        site: str,
        host: str,
        port: int,
        *,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.client_id = client_id
        self.site = site
        self._host = host
        self._port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        # One request in flight at a time per connection: replies carry no
        # correlation id, so request/response must not interleave.
        self._request_lock = asyncio.Lock()
        self._retry = retry
        self._breaker = breaker
        self._ever_connected = False
        self.stats = ResilienceStats()
        self._last_reported_events = 0

    @property
    def resilient(self) -> bool:
        """True when a retry policy governs this client's requests."""
        return self._retry is not None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(self._host, self._port)
        if self._ever_connected:
            self.stats.record("reconnect")
        self._ever_connected = True
        await self._send(HelloMessage(client_id=self.client_id, site=self.site))

    async def close(self) -> None:
        if self._writer is not None:
            try:
                await self._report_resilience()
                await self._send(ByeMessage(client_id=self.client_id))
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "TestbedClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Protocol actions
    # ------------------------------------------------------------------

    async def report_measurement(
        self,
        dst_id: int,
        option: RelayOption,
        metrics: PathMetrics,
        t_hours: float,
    ) -> None:
        """Push one completed call's metrics to the controller.

        With a retry policy, a broken connection triggers one reconnect and
        resend; a measurement that still cannot be delivered is dropped
        (and counted) -- losing one sample must never block the next call.
        """
        message = MeasurementMessage(
            src_id=self.client_id,
            dst_id=dst_id,
            t_hours=t_hours,
            option=encode_option(option),
            rtt_ms=metrics.rtt_ms,
            loss_rate=metrics.loss_rate,
            jitter_ms=metrics.jitter_ms,
        )
        if self._retry is None:
            await self._send(message)
            return
        try:
            await self._ensure_connected()
            await self._send(message)
        except _TRANSPORT_ERRORS:
            self._drop_connection()
            try:
                await asyncio.wait_for(
                    self._ensure_connected(), timeout=self._retry.request_timeout_s
                )
                await self._send(message)
                self.stats.record("retry")
            except _TRANSPORT_ERRORS:
                self._drop_connection()
                self.stats.record("dropped_measurement")

    async def request_assignment(
        self, dst_id: int, options: list[RelayOption], t_hours: float
    ) -> RelayOption:
        """Ask the controller which option the next call should use.

        Without a retry policy this fails fast (original semantics).  With
        one, the request is retried within the policy's attempt/deadline
        budget and then falls back to :meth:`default_option` -- the §7
        degrade-to-direct behaviour.
        """
        if self._retry is None:
            async with self._request_lock:
                await self._send(
                    RequestMessage(
                        src_id=self.client_id,
                        dst_id=dst_id,
                        t_hours=t_hours,
                        options=[encode_option(o) for o in options],
                    )
                )
                reply = await self._receive()
            if not isinstance(reply, AssignMessage):
                raise ProtocolError(f"expected assign, got {type(reply).__name__}")
            return decode_option(reply.option)
        return await self._request_assignment_resilient(dst_id, options, t_hours)

    async def fetch_stats(self) -> StatsMessage:
        """Query the controller's operational counters."""
        async with self._request_lock:
            await self._ensure_connected()
            await self._send_resilience_report()
            await self._send(StatsRequestMessage())
            if self._retry is not None:
                reply = await asyncio.wait_for(
                    self._receive(), timeout=self._retry.request_timeout_s
                )
            else:
                reply = await self._receive()
        if not isinstance(reply, StatsMessage):
            raise ProtocolError(f"expected stats, got {type(reply).__name__}")
        return reply

    async def fetch_metrics(self) -> str:
        """Scrape the controller: its Prometheus text exposition.

        The returned text carries the controller's per-message-type
        counters and latency histograms, plus the policy's assign-path
        instruments when the controller runs with observability enabled.
        """
        async with self._request_lock:
            await self._ensure_connected()
            await self._send(MetricsRequestMessage())
            if self._retry is not None:
                reply = await asyncio.wait_for(
                    self._receive(), timeout=self._retry.request_timeout_s
                )
            else:
                reply = await self._receive()
        if not isinstance(reply, MetricsMessage):
            raise ProtocolError(f"expected metrics, got {type(reply).__name__}")
        return reply.text

    @staticmethod
    def default_option(options: list[RelayOption]) -> RelayOption:
        """The client-side fallback: direct if offered, else first candidate."""
        if not options:
            raise ValueError("need at least one option to fall back to")
        if DIRECT in options:
            return DIRECT
        return options[0]

    # ------------------------------------------------------------------
    # Resilient request path
    # ------------------------------------------------------------------

    async def _request_assignment_resilient(
        self, dst_id: int, options: list[RelayOption], t_hours: float
    ) -> RelayOption:
        policy = self._retry
        assert policy is not None
        deadline = time.monotonic() + policy.deadline_s
        request = RequestMessage(
            src_id=self.client_id,
            dst_id=dst_id,
            t_hours=t_hours,
            options=[encode_option(o) for o in options],
        )
        for attempt in range(1, policy.max_attempts + 1):
            if self._breaker is not None and not self._breaker.allow():
                self.stats.record("breaker_fastfail")
                break
            try:
                reply = await asyncio.wait_for(
                    self._round_trip(request),
                    timeout=min(policy.request_timeout_s, deadline - time.monotonic()),
                )
                if not isinstance(reply, AssignMessage):
                    raise ProtocolError(f"expected assign, got {type(reply).__name__}")
                choice = decode_option(reply.option)
            except _TRANSPORT_ERRORS as exc:
                if isinstance(exc, asyncio.TimeoutError):
                    self.stats.record("timeout")
                if self._breaker is not None:
                    self._breaker.record_failure()
                # The reply to this request may still be in flight; a fresh
                # connection is the only way to keep the stream in sync.
                self._drop_connection()
                if attempt >= policy.max_attempts:
                    break
                delay = policy.delay_for(attempt)
                if time.monotonic() + delay >= deadline:
                    break
                self.stats.record("retry")
                await asyncio.sleep(delay)
                continue
            if self._breaker is not None:
                self._breaker.record_success()
            await self._maybe_report_resilience()
            return choice
        self.stats.record("fallback")
        return self.default_option(options)

    async def _round_trip(self, request: RequestMessage) -> Any:
        async with self._request_lock:
            await self._ensure_connected()
            await self._send(request)
            return await self._receive()

    async def _ensure_connected(self) -> None:
        if self._writer is None:
            await self.connect()

    def _drop_connection(self) -> None:
        """Abandon the current connection (the next use reconnects)."""
        if self._writer is not None:
            self._writer.close()
        self._writer = None
        self._reader = None

    async def _maybe_report_resilience(self) -> None:
        """Push updated fault counters after a successful interaction."""
        if self.stats.total_events() == self._last_reported_events:
            return
        try:
            await self._report_resilience()
        except (ConnectionError, OSError):  # best-effort telemetry
            pass

    async def _report_resilience(self) -> None:
        if self._writer is None or self.stats.total_events() == 0:
            return
        await self._send_resilience_report()

    async def _send_resilience_report(self) -> None:
        if self._writer is None or self.stats.total_events() == self._last_reported_events:
            return
        await self._send(
            ResilienceMessage(
                client_id=self.client_id,
                n_retries=self.stats.n_retries,
                n_fallbacks=self.stats.n_fallbacks,
                n_reconnects=self.stats.n_reconnects,
                n_timeouts=self.stats.n_timeouts,
            )
        )
        self._last_reported_events = self.stats.total_events()

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------

    async def _send(self, message: Any) -> None:
        if self._writer is None:
            raise RuntimeError("client is not connected")
        self._writer.write(encode_message(message))
        await self._writer.drain()

    async def _receive(self) -> Any:
        if self._reader is None:
            raise RuntimeError("client is not connected")
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("controller closed the connection")
        return decode_message(line)
