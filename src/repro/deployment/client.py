"""Instrumented client agent: the modified-Skype-client stand-in.

A :class:`TestbedClient` opens one TCP connection to the controller,
introduces itself, and then (a) reports measurements after every call and
(b) asks the controller which relaying option an upcoming call should use
-- the same two interactions the paper added to the Skype client.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.deployment.protocol import (
    AssignMessage,
    ByeMessage,
    HelloMessage,
    MeasurementMessage,
    ProtocolError,
    RequestMessage,
    StatsMessage,
    StatsRequestMessage,
    decode_message,
    encode_message,
    encode_option,
)
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import RelayOption
from repro.deployment.protocol import decode_option

__all__ = ["TestbedClient"]


class TestbedClient:
    """One instrumented client, identified by ``client_id`` and a site label."""

    def __init__(self, client_id: int, site: str, host: str, port: int) -> None:
        self.client_id = client_id
        self.site = site
        self._host = host
        self._port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        # One request in flight at a time per connection: replies carry no
        # correlation id, so request/response must not interleave.
        self._request_lock = asyncio.Lock()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(self._host, self._port)
        await self._send(HelloMessage(client_id=self.client_id, site=self.site))

    async def close(self) -> None:
        if self._writer is not None:
            try:
                await self._send(ByeMessage(client_id=self.client_id))
            except ConnectionError:  # pragma: no cover - teardown race
                pass
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "TestbedClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Protocol actions
    # ------------------------------------------------------------------

    async def report_measurement(
        self,
        dst_id: int,
        option: RelayOption,
        metrics: PathMetrics,
        t_hours: float,
    ) -> None:
        """Push one completed call's metrics to the controller."""
        await self._send(
            MeasurementMessage(
                src_id=self.client_id,
                dst_id=dst_id,
                t_hours=t_hours,
                option=encode_option(option),
                rtt_ms=metrics.rtt_ms,
                loss_rate=metrics.loss_rate,
                jitter_ms=metrics.jitter_ms,
            )
        )

    async def request_assignment(
        self, dst_id: int, options: list[RelayOption], t_hours: float
    ) -> RelayOption:
        """Ask the controller which option the next call should use."""
        async with self._request_lock:
            await self._send(
                RequestMessage(
                    src_id=self.client_id,
                    dst_id=dst_id,
                    t_hours=t_hours,
                    options=[encode_option(o) for o in options],
                )
            )
            reply = await self._receive()
        if not isinstance(reply, AssignMessage):
            raise ProtocolError(f"expected assign, got {type(reply).__name__}")
        return decode_option(reply.option)

    async def fetch_stats(self) -> StatsMessage:
        """Query the controller's operational counters."""
        async with self._request_lock:
            await self._send(StatsRequestMessage())
            reply = await self._receive()
        if not isinstance(reply, StatsMessage):
            raise ProtocolError(f"expected stats, got {type(reply).__name__}")
        return reply

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------

    async def _send(self, message: Any) -> None:
        if self._writer is None:
            raise RuntimeError("client is not connected")
        self._writer.write(encode_message(message))
        await self._writer.drain()

    async def _receive(self) -> Any:
        if self._reader is None:
            raise RuntimeError("client is not connected")
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("controller closed the connection")
        return decode_message(line)
