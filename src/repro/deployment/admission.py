"""Admission control and graceful load shedding for the controller.

Via's premise is that relay selection must never make a call *worse*
than the default path.  Under overload the naive failure mode does
exactly that: requests queue unboundedly, p99 latency collapses, and
clients burn their whole timeout budget learning nothing.  This module
is the three-dimensional call-admission-control answer (after the CAC
literature in PAPERS.md): an explicit admission trade-off that protects
the service quality of *admitted* work by rejecting or degrading new
work, along three signals --

1. **connection count** -- how many clients the frontend is carrying
   (the CAC "number of connections" dimension);
2. **queue latency** -- the request queue's depth and its estimated
   wait (EWMA service time x depth), the "will this request make its
   deadline at all" signal;
3. **relay capacity** -- the assignment rate the relay fleet can absorb
   without violating the §4.6 per-relay load caps
   (``benchmarks/bench_ext_relay_load_cap.py``), modelled as a token
   bucket's refill rate via :meth:`AdmissionConfig.for_relay_fleet`.

Decisions form a **degradation ladder**, applied per request:

* ``admit`` -- full policy assignment (consumes a token, enters the
  bounded queue with a deadline);
* ``degrade`` -- answer from the controller's cached last assignment
  for the pair: stale but instant, touching no policy state;
* ``shed`` -- explicit :class:`~repro.deployment.protocol.ShedMessage`
  (v2) or a default-path assign (v1), so the client falls back *now*
  instead of timing out silently.

Every decision lands in ``via_admission_*`` metrics, so an operator can
see the ladder working before users can feel it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.obs.metrics import MetricsRegistry

__all__ = ["AdmissionConfig", "AdmissionController", "AdmissionDecision"]

#: Ladder rungs, in decreasing order of service quality.
ADMIT = "admit"
DEGRADE = "degrade"
SHED = "shed"


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """One rung of the ladder plus the signal that put us there."""

    action: str  # "admit" | "degrade" | "shed"
    reason: str = ""

    @property
    def admitted(self) -> bool:
        return self.action == ADMIT

    @property
    def degraded(self) -> bool:
        return self.action == DEGRADE

    @property
    def shed(self) -> bool:
        return self.action == SHED


@dataclass(frozen=True, slots=True)
class AdmissionConfig:
    """Tuning knobs of the admission ladder.

    The defaults are deliberately permissive -- an unconfigured
    controller admits everything, exactly the pre-admission behaviour --
    so admission is opt-in pressure handling, not a new failure mode.
    """

    #: Hard bound on queued (admitted, unserved) requests; at or beyond
    #: it every new request sheds.
    max_queue_depth: int = 1024
    #: Soft bound: at or beyond it new requests degrade to cache.
    degrade_queue_depth: int = 256
    #: Per-request deadline: time from admission to the policy running.
    #: A request that waited longer is shed explicitly, never served
    #: stale-after-deadline or dropped silently.
    queue_timeout_s: float = 1.0
    #: Token-bucket refill rate in admissions/second (relay capacity);
    #: ``None`` leaves the rate dimension unmetered.
    rate: float | None = None
    #: Token-bucket burst size (full bucket at startup).
    burst: float = 256.0
    #: Connection-count dimension: refuse *new connections* beyond
    #: ``max_connections`` and start degrading requests once the live
    #: count reaches ``degrade_connections``.  ``None`` disables.
    max_connections: int | None = None
    degrade_connections: int | None = None
    #: EWMA weight for the per-request service-time estimate feeding the
    #: queue-latency signal.
    service_ewma_alpha: float = 0.1

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1: {self.max_queue_depth}")
        if not 1 <= self.degrade_queue_depth <= self.max_queue_depth:
            raise ValueError(
                "need 1 <= degrade_queue_depth <= max_queue_depth: "
                f"{self.degrade_queue_depth} vs {self.max_queue_depth}"
            )
        if self.queue_timeout_s <= 0.0:
            raise ValueError(f"queue_timeout_s must be positive: {self.queue_timeout_s}")
        if self.rate is not None and self.rate <= 0.0:
            raise ValueError(f"rate must be positive when set: {self.rate}")
        if self.burst < 1.0:
            raise ValueError(f"burst must be >= 1: {self.burst}")
        if self.max_connections is not None and self.max_connections < 1:
            raise ValueError(f"max_connections must be >= 1: {self.max_connections}")
        if self.degrade_connections is not None and self.degrade_connections < 1:
            raise ValueError(
                f"degrade_connections must be >= 1: {self.degrade_connections}"
            )
        if not 0.0 < self.service_ewma_alpha <= 1.0:
            raise ValueError(
                f"service_ewma_alpha must be in (0, 1]: {self.service_ewma_alpha}"
            )

    @classmethod
    def for_relay_fleet(
        cls,
        n_relays: int,
        *,
        per_relay_cap: float | None = 0.15,
        relay_calls_per_s: float = 200.0,
        **overrides,
    ) -> "AdmissionConfig":
        """Derive the token rate from relay capacity (§4.6 load caps).

        Each relay absorbs ``relay_calls_per_s`` concurrent-call setups.
        With a per-relay cap ``c`` (the busiest relay carries at most a
        ``c`` share of assignments -- the knob benchmarked in
        ``benchmarks/bench_ext_relay_load_cap.py``), the admissible total
        rate before the busiest relay saturates is ``relay_calls_per_s /
        c``, bounded by the whole fleet's ``n_relays *
        relay_calls_per_s``.  Without a cap, uncapped VIA concentrates
        load (Figure 17c), so the conservative admissible rate is a
        single relay's worth.
        """
        if n_relays < 1:
            raise ValueError(f"n_relays must be >= 1: {n_relays}")
        if per_relay_cap is not None and not 0.0 < per_relay_cap <= 1.0:
            raise ValueError(f"per_relay_cap must be in (0, 1]: {per_relay_cap}")
        fleet_rate = n_relays * relay_calls_per_s
        if per_relay_cap is None:
            rate = min(relay_calls_per_s, fleet_rate)
        else:
            rate = min(relay_calls_per_s / per_relay_cap, fleet_rate)
        return cls(rate=rate, **overrides)


class AdmissionController:
    """Stateful executor of the admission ladder (one per controller).

    The clock is injectable so tests can walk the token bucket through
    time without sleeping.  All mutation happens on the event-loop
    thread; no locking is needed.
    """

    def __init__(
        self,
        config: AdmissionConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config if config is not None else AdmissionConfig()
        self._clock = clock
        self._tokens = float(self.config.burst)
        self._last_refill = clock()
        self._ewma_service_s = 0.0
        self.n_connections = 0
        self.n_admitted = 0
        self.n_degraded = 0
        self.n_shed = 0
        self.n_connections_refused = 0
        #: Chaos hook: while True, every request sheds (reason="fault").
        self.forced_overload = False

        registry = registry if registry is not None else MetricsRegistry()
        self._obs_decisions = registry.counter(
            "via_admission_decisions_total",
            "Admission-ladder decisions for relay-assignment requests.",
            ("decision",),
        )
        for action in (ADMIT, DEGRADE, SHED):
            self._obs_decisions.labels(decision=action)
        self._obs_sheds = registry.counter(
            "via_admission_sheds_total",
            "Requests answered with an explicit shed, by triggering signal.",
            ("reason",),
        )
        self._obs_queue_depth = registry.gauge(
            "via_admission_queue_depth",
            "Admitted requests waiting for a policy worker.",
        )
        self._obs_tokens = registry.gauge(
            "via_admission_tokens",
            "Relay-capacity tokens currently available.",
        )
        self._obs_connections = registry.gauge(
            "via_admission_connections",
            "Live connections as the admission plane counts them.",
        )
        self._obs_refused = registry.counter(
            "via_admission_connections_refused_total",
            "Connections refused at accept time (connection-count signal).",
        )
        self._obs_queue_wait = registry.histogram(
            "via_admission_queue_wait_seconds",
            "Time admitted requests spent queued before the policy ran.",
        )
        self._obs_tokens.set(self._tokens)

    # ------------------------------------------------------------------
    # Connection-count dimension
    # ------------------------------------------------------------------

    def connection_opened(self) -> bool:
        """Account a new connection; False means refuse it (over cap)."""
        limit = self.config.max_connections
        if limit is not None and self.n_connections >= limit:
            self.n_connections_refused += 1
            self._obs_refused.inc()
            return False
        self.n_connections += 1
        self._obs_connections.set(self.n_connections)
        return True

    def connection_closed(self) -> None:
        self.n_connections = max(0, self.n_connections - 1)
        self._obs_connections.set(self.n_connections)

    @property
    def _connection_pressure(self) -> bool:
        soft = self.config.degrade_connections
        return soft is not None and self.n_connections >= soft

    # ------------------------------------------------------------------
    # Queue-latency dimension
    # ------------------------------------------------------------------

    def note_queue_depth(self, depth: int) -> None:
        self._obs_queue_depth.set(depth)

    def observe_queue_wait(self, seconds: float) -> None:
        self._obs_queue_wait.observe(seconds)

    def observe_service(self, seconds: float) -> None:
        """Fold one request's policy service time into the EWMA."""
        alpha = self.config.service_ewma_alpha
        if self._ewma_service_s == 0.0:
            self._ewma_service_s = seconds
        else:
            self._ewma_service_s += alpha * (seconds - self._ewma_service_s)

    def estimated_wait_s(self, queue_depth: int) -> float:
        """Expected queueing delay for a request arriving now."""
        return queue_depth * self._ewma_service_s

    # ------------------------------------------------------------------
    # Relay-capacity dimension (token bucket)
    # ------------------------------------------------------------------

    def _refill(self, now: float) -> None:
        rate = self.config.rate
        if rate is None:
            self._tokens = float(self.config.burst)
        else:
            elapsed = max(0.0, now - self._last_refill)
            self._tokens = min(float(self.config.burst), self._tokens + elapsed * rate)
        self._last_refill = now

    @property
    def tokens(self) -> float:
        self._refill(self._clock())
        return self._tokens

    # ------------------------------------------------------------------
    # The ladder
    # ------------------------------------------------------------------

    def decide(self, queue_depth: int) -> AdmissionDecision:
        """Place one arriving request on the ladder.

        Severe pressure sheds, moderate pressure degrades, otherwise the
        request is admitted (consuming a token).  The decision is purely
        a function of the three signals and the clock, so a driven test
        can walk the ladder deterministically.
        """
        cfg = self.config
        now = self._clock()
        self._refill(now)
        self._obs_tokens.set(self._tokens)
        if self.forced_overload:
            return self._shed("fault")
        if queue_depth >= cfg.max_queue_depth:
            return self._shed("queue_full")
        if self.estimated_wait_s(queue_depth) > cfg.queue_timeout_s:
            # Joining the queue now would blow the deadline anyway:
            # shedding up front is strictly kinder than a deadline shed.
            return self._shed("queue_latency")
        if self._tokens < 1.0:
            return self._degrade("rate")
        if queue_depth >= cfg.degrade_queue_depth:
            return self._degrade("queue_depth")
        if self._connection_pressure:
            return self._degrade("connections")
        self._tokens -= 1.0
        self._obs_tokens.set(self._tokens)
        self.n_admitted += 1
        self._obs_decisions.labels(decision=ADMIT).inc()
        return AdmissionDecision(ADMIT)

    def count_shed(self, reason: str) -> None:
        """Count a shed decided outside :meth:`decide` (deadline expiry,
        cache miss after degrade, shutdown drain)."""
        self.n_shed += 1
        self._obs_decisions.labels(decision=SHED).inc()
        self._obs_sheds.labels(reason=reason).inc()

    def count_degraded(self) -> None:
        """Count a degrade actually served from cache."""
        self.n_degraded += 1
        self._obs_decisions.labels(decision=DEGRADE).inc()

    def _shed(self, reason: str) -> AdmissionDecision:
        self.count_shed(reason)
        return AdmissionDecision(SHED, reason)

    def _degrade(self, reason: str) -> AdmissionDecision:
        # Counted as degraded only when the cache serve succeeds (the
        # server calls count_degraded / count_shed accordingly), so the
        # decision counter tracks outcomes, not intents.
        return AdmissionDecision(DEGRADE, reason)
