"""Controlled-deployment prototype (§5.5 of the paper).

The paper deployed a cloud controller plus 14 instrumented Skype clients
in five countries; the controller orchestrated ~1000 back-to-back calls
over 18 caller-callee pairs through 9-20 relaying options each and
compared VIA's per-call choice to an oracle with dense ground truth.

This package is the working equivalent: a real asyncio TCP controller
(:mod:`repro.deployment.controller`) speaking a JSON-lines protocol
(:mod:`repro.deployment.protocol`) with instrumented client agents
(:mod:`repro.deployment.client`), orchestrated over localhost by
:mod:`repro.deployment.testbed`, with call performance drawn from the
synthetic world.
"""

from repro.deployment.protocol import (
    AssignMessage,
    ByeMessage,
    HelloMessage,
    MeasurementMessage,
    MetricsMessage,
    MetricsRequestMessage,
    RequestMessage,
    ResilienceMessage,
    StatsMessage,
    StatsRequestMessage,
    decode_message,
    encode_message,
    decode_option,
    encode_option,
)
from repro.deployment.resilience import CircuitBreaker, ResilienceStats, RetryPolicy
from repro.deployment.faults import FaultInjector, FaultPlan, RelayOutage
from repro.deployment.controller import ViaController
from repro.deployment.client import TestbedClient
from repro.deployment.testbed import TestbedConfig, TestbedReport, run_testbed

__all__ = [
    "HelloMessage",
    "MeasurementMessage",
    "RequestMessage",
    "AssignMessage",
    "StatsRequestMessage",
    "StatsMessage",
    "MetricsRequestMessage",
    "MetricsMessage",
    "ResilienceMessage",
    "ByeMessage",
    "encode_message",
    "decode_message",
    "encode_option",
    "decode_option",
    "RetryPolicy",
    "CircuitBreaker",
    "ResilienceStats",
    "FaultPlan",
    "FaultInjector",
    "RelayOutage",
    "ViaController",
    "TestbedClient",
    "TestbedConfig",
    "TestbedReport",
    "run_testbed",
]
