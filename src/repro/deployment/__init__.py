"""Controlled-deployment prototype (§5.5 of the paper).

The paper deployed a cloud controller plus 14 instrumented Skype clients
in five countries; the controller orchestrated ~1000 back-to-back calls
over 18 caller-callee pairs through 9-20 relaying options each and
compared VIA's per-call choice to an oracle with dense ground truth.

This package is the working equivalent: a real asyncio TCP controller
(:mod:`repro.deployment.controller`) speaking a JSON-lines protocol
(:mod:`repro.deployment.protocol`) with instrumented client agents
(:mod:`repro.deployment.client`), orchestrated over localhost by
:mod:`repro.deployment.testbed`, with call performance drawn from the
synthetic world.
"""

from repro.deployment.protocol import (
    LATEST_PROTOCOL,
    PROTOCOL_V1,
    PROTOCOL_V2,
    AssignMessage,
    ByeMessage,
    ErrorMessage,
    HelloAckMessage,
    HelloMessage,
    MeasurementMessage,
    MetricsMessage,
    MetricsRequestMessage,
    ProtocolError,
    RedirectMessage,
    RequestMessage,
    ResilienceMessage,
    ShardMapMessage,
    ShedMessage,
    StatsMessage,
    StatsRequestMessage,
    SyncMessage,
    SyncRequestMessage,
    decode_message,
    encode_message,
    decode_option,
    encode_option,
)
from repro.deployment.resilience import CircuitBreaker, ResilienceStats, RetryPolicy
from repro.deployment.faults import FaultInjector, FaultPlan, RelayOutage
from repro.deployment.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)
from repro.deployment.aserver import ViaServer
from repro.deployment.controller import ViaController
from repro.deployment.client import (
    AssignmentResult,
    AsyncViaClient,
    RedirectError,
    ServerError,
    ShedError,
    TestbedClient,
)
from repro.deployment.ring import (
    ControllerRing,
    InProcessRing,
    ShardController,
    ShardedViaClient,
    ShardMap,
    ring_pair_key,
)
from repro.deployment.testbed import TestbedConfig, TestbedReport, run_testbed

__all__ = [
    "PROTOCOL_V1",
    "PROTOCOL_V2",
    "LATEST_PROTOCOL",
    "HelloMessage",
    "HelloAckMessage",
    "MeasurementMessage",
    "RequestMessage",
    "AssignMessage",
    "StatsRequestMessage",
    "StatsMessage",
    "MetricsRequestMessage",
    "MetricsMessage",
    "ResilienceMessage",
    "ErrorMessage",
    "ShedMessage",
    "ByeMessage",
    "RedirectMessage",
    "ShardMapMessage",
    "SyncRequestMessage",
    "SyncMessage",
    "ProtocolError",
    "encode_message",
    "decode_message",
    "encode_option",
    "decode_option",
    "RetryPolicy",
    "CircuitBreaker",
    "ResilienceStats",
    "FaultPlan",
    "FaultInjector",
    "RelayOutage",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "ViaServer",
    "ViaController",
    "TestbedClient",
    "AsyncViaClient",
    "AssignmentResult",
    "ServerError",
    "ShedError",
    "RedirectError",
    "ShardMap",
    "ShardController",
    "ControllerRing",
    "InProcessRing",
    "ShardedViaClient",
    "ring_pair_key",
    "TestbedConfig",
    "TestbedReport",
    "run_testbed",
]
