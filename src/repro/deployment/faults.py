"""Fault-injection harness for the deployment plane (chaos mode).

A :class:`FaultPlan` declares *what* goes wrong and *when*: connections
dropped mid-session, controller replies delayed, request windows in which
the controller blackholes (accepts but never answers), and relay outage
windows.  A :class:`FaultInjector` is the stateful executor the controller
consults per message; its RNG is seeded so a chaos experiment replays
identically.

The plan is shared with the world model: ``relay_outages`` both schedules
:class:`~repro.netmodel.world.RelayOutage` windows on the ``World`` (so
calls through a dead relay blackhole) and drives the controller's
down-relay set (so the policy repicks around the outage).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.netmodel.world import RelayOutage

__all__ = ["FaultPlan", "FaultInjector", "RelayOutage"]


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Declarative chaos schedule for one deployment experiment.

    Rates are per *handled message*; time windows are in the experiment's
    ``t_hours`` call-clock (the same clock messages carry), so a plan is
    meaningful independently of wall-clock speed.
    """

    seed: int = 0
    #: P(abruptly close the client's connection after handling a message).
    drop_connection_rate: float = 0.0
    #: P(delay a reply by ``delay_reply_s`` before sending it).
    delay_reply_rate: float = 0.0
    delay_reply_s: float = 0.02
    #: ``t_hours`` windows during which requests get no reply at all.
    blackhole_windows: tuple[tuple[float, float], ...] = ()
    #: ``t_hours`` windows during which every request's policy service
    #: stalls for ``stall_s`` wall seconds (a slow/overloaded policy; the
    #: deterministic way to drive out-of-order v2 completion and
    #: deadline sheds in tests).
    stall_windows: tuple[tuple[float, float], ...] = ()
    stall_s: float = 0.05
    #: ``t_hours`` windows during which the admission plane force-sheds
    #: every request (simulated controller overload).
    overload_windows: tuple[tuple[float, float], ...] = ()
    #: Relays down for ``t_hours`` windows (kill-relay schedule).
    relay_outages: tuple[RelayOutage, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_connection_rate", "delay_reply_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {rate}")
        if self.delay_reply_s < 0.0:
            raise ValueError(f"delay_reply_s must be >= 0: {self.delay_reply_s}")
        if self.stall_s < 0.0:
            raise ValueError(f"stall_s must be >= 0: {self.stall_s}")
        for field in ("blackhole_windows", "stall_windows", "overload_windows"):
            for start, end in getattr(self, field):
                if end <= start:
                    raise ValueError(f"empty {field} window: [{start}, {end})")

    @property
    def any_faults(self) -> bool:
        return bool(
            self.drop_connection_rate
            or self.delay_reply_rate
            or self.blackhole_windows
            or self.stall_windows
            or self.overload_windows
            or self.relay_outages
        )

    def blackholed_at(self, t_hours: float) -> bool:
        """Is the controller blackholing requests at ``t_hours``?"""
        return any(start <= t_hours < end for start, end in self.blackhole_windows)

    def stalled_at(self, t_hours: float) -> bool:
        """Is the policy stalling request service at ``t_hours``?"""
        return any(start <= t_hours < end for start, end in self.stall_windows)

    def overloaded_at(self, t_hours: float) -> bool:
        """Is the controller force-shedding (simulated overload)?"""
        return any(start <= t_hours < end for start, end in self.overload_windows)

    def relays_down_at(self, t_hours: float) -> frozenset[int]:
        """Relay ids with an active scheduled outage at ``t_hours``."""
        return frozenset(
            o.relay_id for o in self.relay_outages if o.active_at(t_hours)
        )


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan` (one per controller).

    Draws from a seeded RNG so the injected fault sequence is a pure
    function of the plan and the order of handled messages.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self.n_dropped_connections = 0
        self.n_delayed_replies = 0
        self.n_blackholed_requests = 0
        self.n_stalled_requests = 0
        self.n_forced_overloads = 0

    @property
    def n_faults_injected(self) -> int:
        return (
            self.n_dropped_connections
            + self.n_delayed_replies
            + self.n_blackholed_requests
            + self.n_stalled_requests
            + self.n_forced_overloads
        )

    def should_drop_connection(self) -> bool:
        if self.plan.drop_connection_rate <= 0.0:
            return False
        if self._rng.random() < self.plan.drop_connection_rate:
            self.n_dropped_connections += 1
            return True
        return False

    def reply_delay_s(self) -> float:
        """Seconds to stall before replying (0.0 = no delay this time)."""
        if self.plan.delay_reply_rate <= 0.0:
            return 0.0
        if self._rng.random() < self.plan.delay_reply_rate:
            self.n_delayed_replies += 1
            return self.plan.delay_reply_s
        return 0.0

    def should_blackhole(self, t_hours: float) -> bool:
        if self.plan.blackholed_at(t_hours):
            self.n_blackholed_requests += 1
            return True
        return False

    def request_stall_s(self, t_hours: float) -> float:
        """Wall seconds to stall this request's policy service (0 = none)."""
        if self.plan.stalled_at(t_hours):
            self.n_stalled_requests += 1
            return self.plan.stall_s
        return 0.0

    def overloaded_at(self, t_hours: float) -> bool:
        """Force the admission plane into overload for this request?"""
        if self.plan.overloaded_at(t_hours):
            self.n_forced_overloads += 1
            return True
        return False
