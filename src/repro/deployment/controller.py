"""The VIA controller as a real asyncio TCP service.

Wraps a :class:`~repro.core.policy.ViaPolicy` behind the wire protocol:
clients push per-call measurements (stage 1 of Figure 10) and query for
relay assignments (stage 4).  One controller serves many concurrent
clients; all policy state lives in-process, exactly like the paper's
central controller on Azure.  The network face itself -- protocol
negotiation, pipelining, the admission ladder -- lives in
:class:`~repro.deployment.aserver.ViaServer`; this class owns the state.

Robustness (§7 operational concerns):

* a policy exception while handling one message is logged and isolated --
  it never kills the client's connection, and a request still gets a
  best-effort default-path reply;
* an :class:`~repro.deployment.admission.AdmissionController` guards the
  request path: under overload the controller degrades to cached
  assignments, then sheds explicitly -- p99 latency stays bounded and no
  request ever times out silently;
* disconnected clients are dropped from the live-client set, so
  ``n_clients`` reflects reality (site labels stay sticky for call
  records);
* an optional :class:`~repro.deployment.faults.FaultPlan` turns the
  controller into its own chaos monkey (dropped connections, delayed or
  blackholed replies, stalled or force-shed request windows) for fault
  experiments;
* learned state can be checkpointed to disk and is reloaded on start, so
  a controller crash recovers instead of relearning from scratch;
* with a :class:`~repro.store.Store` attached, every state-changing
  message is appended to a write-ahead log *before* the policy acts on
  it, and startup recovery replays the WAL tail on top of the latest
  snapshot -- a crash loses nothing, not just "since the last snapshot".
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Any

from repro.core.policy import ViaConfig, ViaPolicy
from repro.deployment.admission import AdmissionConfig, AdmissionController
from repro.deployment.aserver import ViaServer
from repro.deployment.faults import FaultInjector, FaultPlan
from repro.deployment.protocol import (
    MAX_LINE_BYTES,
    AssignMessage,
    MeasurementMessage,
    MetricsMessage,
    RequestMessage,
    ResilienceMessage,
    StatsMessage,
    decode_option,
    encode_option,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import timed
from repro.store import Store, atomic_write_bytes, recover
from repro.telephony.call import Call

__all__ = ["ViaController"]

logger = logging.getLogger(__name__)

_SNAPSHOT_FORMAT = "via-controller-snapshot-v1"


class ViaController:
    """Asyncio server running the relay-selection policy.

    Use as an async context manager::

        async with ViaController(config) as controller:
            ...  # connect clients to controller.port

    ``client_sites`` holds the *live* clients (hello adds, disconnect or
    bye removes); ``site_labels`` remembers every site a client ever
    announced, used for the Call records' country field.

    ``faults`` injects controller-side chaos; ``snapshot_path`` makes
    :meth:`start` restore a previous checkpoint when one exists (write one
    with :meth:`save_snapshot`).  ``admission`` tunes the overload ladder
    (the default config admits everything); ``n_workers`` sizes the
    policy worker pool serving pipelined v2 requests;
    ``request_batch_max`` caps how many backlogged requests one worker
    drains into a single vectorised ``assign_many`` pass (1 disables
    batching; see ``docs/performance.md``); ``idle_timeout_s``
    disconnects slow-loris/idle peers (None disables).

    Every controller owns a private :class:`MetricsRegistry` (pass one in
    to share): message counters and per-message-type latency histograms
    are *always* collected (they back the stats endpoint, so they must be
    exact), while the policy's assign-path histograms on the same registry
    fill in only when :mod:`repro.obs.runtime` is enabled.  Scrape the
    whole registry with :meth:`metrics_text` or, over the wire, with a
    :class:`~repro.deployment.protocol.MetricsRequestMessage`.
    """

    #: Message types pre-bound in the registry so a scrape shows every
    #: series at zero before the first message arrives.
    _MESSAGE_TYPES = (
        "hello",
        "measurement",
        "request",
        "stats_request",
        "metrics_request",
        "resilience",
        "sync_request",
        "shard_map",
        "bye",
    )

    def __init__(
        self,
        policy_config: ViaConfig | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        faults: FaultPlan | None = None,
        snapshot_path: str | Path | None = None,
        registry: MetricsRegistry | None = None,
        store: Store | str | Path | None = None,
        admission: AdmissionConfig | None = None,
        n_workers: int = 4,
        idle_timeout_s: float | None = None,
        request_batch_max: int = 16,
        policy_cls: type[ViaPolicy] = ViaPolicy,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.policy = policy_cls(
            policy_config or ViaConfig(), name="controller", registry=self.registry
        )
        self.host = host
        self._requested_port = port
        self._n_workers = n_workers
        self._idle_timeout_s = idle_timeout_s
        self._request_batch_max = request_batch_max
        self.client_sites: dict[int, str] = {}
        self.site_labels: dict[int, str] = {}
        self._call_counter = 0
        self._client_resilience: dict[int, ResilienceMessage] = {}
        #: Last served assignment per (src, dst): the stale-but-instant
        #: state the degrade rung of the admission ladder answers from.
        self._assign_cache: dict[tuple[int, int], dict[str, Any]] = {}
        self.faults = FaultInjector(faults) if faults is not None else None
        self.admission = AdmissionController(admission, registry=self.registry)
        self._frontend: ViaServer | None = None
        self.snapshot_path = Path(snapshot_path) if snapshot_path is not None else None
        # Durable storage plane: a path builds a Store sharing this
        # controller's registry, so one scrape shows via_store_* too.
        if store is not None and not isinstance(store, Store):
            store = Store(store, registry=self.registry)
        self.store = store
        # Registry-backed operational counters (PR 1 kept these as ad-hoc
        # ints; the wire-visible StatsMessage shape is unchanged).
        messages = self.registry.counter(
            "via_controller_messages_total",
            "Messages handled, by protocol message type.",
            ("type",),
        )
        self._msg_counts = {t: messages.labels(type=t) for t in self._MESSAGE_TYPES}
        self._msg_seconds = self.registry.histogram(
            "via_controller_message_duration_seconds",
            "Controller-side handling latency, by protocol message type.",
            ("type",),
        )
        self._obs_reconnects = self.registry.counter(
            "via_controller_reconnects_total",
            "Hello messages from a client id seen before (client reconnects).",
        )
        self._obs_policy_errors = self.registry.counter(
            "via_controller_policy_errors_total",
            "Policy exceptions isolated while handling a message.",
        )
        self._obs_protocol_errors = self.registry.counter(
            "via_controller_protocol_errors_total",
            "Malformed or oversized wire lines rejected.",
        )
        self._obs_clients = self.registry.gauge(
            "via_controller_clients",
            "Currently connected clients (hello seen, not yet disconnected).",
        )
        # Silent state loss is an operator's nightmare: every startup
        # restore attempt lands here, so "corrupt" can page someone.
        self._obs_snapshot_restores = self.registry.counter(
            "via_controller_snapshot_restores_total",
            "Startup state-restore attempts, by outcome.",
            ("outcome",),
        )
        for outcome in ("ok", "corrupt", "missing"):
            self._obs_snapshot_restores.labels(outcome=outcome)

    # ------------------------------------------------------------------
    # Registry-backed counter views (the StatsMessage observables)
    # ------------------------------------------------------------------

    @property
    def n_measurements(self) -> int:
        return int(self._msg_counts["measurement"].value)

    @n_measurements.setter
    def n_measurements(self, value: int) -> None:
        self._msg_counts["measurement"].value = float(value)

    @property
    def n_requests(self) -> int:
        return int(self._msg_counts["request"].value)

    @n_requests.setter
    def n_requests(self, value: int) -> None:
        self._msg_counts["request"].value = float(value)

    @property
    def n_reconnects(self) -> int:
        return int(self._obs_reconnects.value)

    @n_reconnects.setter
    def n_reconnects(self, value: int) -> None:
        self._obs_reconnects._default_series().value = float(value)

    @property
    def n_policy_errors(self) -> int:
        return int(self._obs_policy_errors.value)

    @n_policy_errors.setter
    def n_policy_errors(self, value: int) -> None:
        self._obs_policy_errors._default_series().value = float(value)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        if self._frontend is not None:
            raise RuntimeError("controller already started")
        if self.store is not None:
            # Durable-store recovery: snapshot + WAL-tail replay.  Never
            # raises; damage downgrades to a counted outcome instead.
            report = recover(self.store, self)
            self._obs_snapshot_restores.labels(outcome=report.snapshot_outcome).inc()
        elif self.snapshot_path is not None:
            if not self.snapshot_path.exists():
                self._obs_snapshot_restores.labels(outcome="missing").inc()
            else:
                # Auto-restore is best-effort: a corrupt checkpoint (e.g. a
                # crash mid-write) must not prevent the controller from
                # starting fresh.  Explicit load_snapshot() still raises.
                try:
                    self.load_snapshot(self.snapshot_path)
                except (ValueError, KeyError, OSError, json.JSONDecodeError):
                    self._obs_snapshot_restores.labels(outcome="corrupt").inc()
                    logger.exception(
                        "ignoring unreadable snapshot %s; starting fresh",
                        self.snapshot_path,
                    )
                else:
                    self._obs_snapshot_restores.labels(outcome="ok").inc()
        frontend = ViaServer(
            self,
            self.admission,
            host=self.host,
            port=self._requested_port,
            n_workers=self._n_workers,
            idle_timeout_s=self._idle_timeout_s,
            request_batch_max=self._request_batch_max,
        )
        await frontend.start()
        self._frontend = frontend

    async def stop(self) -> None:
        """Stop serving and sever live connections (a crash, as clients
        see it: their next request must reconnect or fall back)."""
        if self._frontend is not None:
            await self._frontend.stop()
            self._frontend = None
            if self.store is not None:
                # Clean shutdown folds the log down: final snapshot,
                # compaction of the now-covered segments, handles closed.
                try:
                    self.save_store_snapshot()
                except Exception:
                    logger.exception("final store snapshot failed; WAL retains state")
                self.store.close()

    async def __aenter__(self) -> "ViaController":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._frontend is None:
            raise RuntimeError("controller not started")
        return self._frontend.port

    # ------------------------------------------------------------------
    # Crash recovery: snapshot / restore
    # ------------------------------------------------------------------

    def snapshot_dict(self) -> dict:
        """JSON-compatible checkpoint: policy state + controller counters."""
        return {
            "format": _SNAPSHOT_FORMAT,
            "policy": self.policy.state_dict(),
            "n_measurements": self.n_measurements,
            "n_requests": self.n_requests,
            "call_counter": self._call_counter,
            "site_labels": {str(cid): site for cid, site in self.site_labels.items()},
        }

    def restore_dict(self, payload: dict) -> None:
        """Restore a checkpoint produced by :meth:`snapshot_dict`."""
        if payload.get("format") != _SNAPSHOT_FORMAT:
            raise ValueError(f"unrecognised snapshot format: {payload.get('format')!r}")
        self.policy.load_state_dict(payload["policy"])
        self.n_measurements = int(payload.get("n_measurements", 0))
        self.n_requests = int(payload.get("n_requests", 0))
        self._call_counter = int(payload.get("call_counter", 0))
        self.site_labels.update(
            {int(cid): site for cid, site in payload.get("site_labels", {}).items()}
        )

    @timed("controller.save_snapshot")
    def save_snapshot(self, path: str | Path | None = None) -> Path:
        """Write the checkpoint to ``path`` (default: ``snapshot_path``)."""
        target = Path(path) if path is not None else self.snapshot_path
        if target is None:
            raise ValueError("no snapshot path given and none configured")
        # Write + fsync + rename + directory fsync: without the fsyncs a
        # power loss after the rename can still surface a zero-length
        # "good" checkpoint (the rename survives, the data doesn't).
        return atomic_write_bytes(
            target, json.dumps(self.snapshot_dict()).encode("utf-8")
        )

    def load_snapshot(self, path: str | Path) -> None:
        """Restore the checkpoint at ``path``."""
        self.restore_dict(json.loads(Path(path).read_text(encoding="utf-8")))
        logger.info(
            "restored snapshot from %s (%d measurements, %d requests)",
            path,
            self.n_measurements,
            self.n_requests,
        )

    # ------------------------------------------------------------------
    # Relay outage plumbing (operators / fault plans mark relays down)
    # ------------------------------------------------------------------

    def set_down_relays(self, relay_ids) -> None:
        """Mark ``relay_ids`` down: the policy routes around them."""
        self.policy.set_down_relays(relay_ids)

    # ------------------------------------------------------------------
    # Ring hooks (overridden by repro.deployment.ring.ShardController;
    # a standalone controller is its own one-shard fleet)
    # ------------------------------------------------------------------

    def _hello_shard_map(self) -> dict | None:
        """Shard map to attach to v2 hello_acks; None on single controllers
        (and omitted from the wire, keeping pre-ring hello_acks intact)."""
        return None

    def _sync_replies(self, message: Any) -> list[Any]:
        """Frames answering a gossip ``sync_request``.

        A standalone controller has no shard-local history mirror, so it
        declines rather than serve a payload gossip would double-count.
        """
        from repro.deployment.protocol import ErrorMessage

        return [
            ErrorMessage(
                code="unknown_type",
                detail="sync_request: this controller is not a ring shard",
            )
        ]

    def _on_shard_map(self, message: Any) -> None:
        """A shard-map push arrived; standalone controllers ignore it."""
        logger.debug("ignoring shard_map push: not a ring shard")

    # ------------------------------------------------------------------
    # Message accounting (shared by the frontend and WAL replay)
    # ------------------------------------------------------------------

    def _count_message(self, msg_type: str) -> None:
        series = self._msg_counts.get(msg_type)
        if series is None:
            # Unknown-but-decodable types (e.g. a stray assign) still count.
            series = self._msg_counts.setdefault(
                msg_type,
                self.registry.counter(
                    "via_controller_messages_total",
                    "Messages handled, by protocol message type.",
                    ("type",),
                ).labels(type=msg_type),
            )
        series.inc()

    def _maybe_store_snapshot(self) -> None:
        if self.store is not None and self.store.should_snapshot():
            try:
                self.save_store_snapshot()
            except Exception:
                logger.exception("auto-snapshot failed; WAL still covers state")

    # ------------------------------------------------------------------
    # Policy bridging
    # ------------------------------------------------------------------

    def _call_from(self, src_id: int, dst_id: int, t_hours: float) -> Call:
        """A minimal Call record: client ids play the role of AS numbers."""
        self._call_counter += 1
        return Call(
            call_id=self._call_counter,
            t_hours=t_hours,
            src_asn=src_id,
            dst_asn=dst_id,
            src_country=self.site_labels.get(src_id, "?"),
            dst_country=self.site_labels.get(dst_id, "?"),
            src_user=src_id,
            dst_user=dst_id,
        )

    def _on_hello(self, client_id: int, site: str, *, live: bool = True) -> None:
        """Register a client introduction (``live=False`` during replay:
        site labels are state, live connections are not)."""
        if live and self.store is not None:
            self.store.log_hello(client_id, site)
        if client_id in self.site_labels:
            self._obs_reconnects.inc()
        self.site_labels[client_id] = site
        if live:
            self.client_sites[client_id] = site
            self._obs_clients.set(len(self.client_sites))

    def _on_disconnect(self, client_id: int) -> None:
        """Drop a client from the live set (bye or connection loss)."""
        self.client_sites.pop(client_id, None)
        self._obs_clients.set(len(self.client_sites))

    def _on_measurement(self, message: MeasurementMessage, *, log: bool = True) -> None:
        if log and self.store is not None:
            # Log-before-act: the WAL holds the record before the policy
            # learns from it, so a crash after this line loses nothing.
            self.store.log_measurement(
                message.src_id,
                message.dst_id,
                message.t_hours,
                message.option,
                message.rtt_ms,
                message.loss_rate,
                message.jitter_ms,
                src_site=self.site_labels.get(message.src_id, "?"),
                dst_site=self.site_labels.get(message.dst_id, "?"),
            )
        call = self._call_from(message.src_id, message.dst_id, message.t_hours)
        self.policy.observe(call, decode_option(message.option), message.metrics())

    def _on_request(self, message: RequestMessage, *, log: bool = True) -> AssignMessage:
        if log and self.store is not None:
            # Requests are logged too: assignment consumes policy RNG and
            # builds bandit state, so recovery must replay them to keep a
            # restored controller's future choices identical.
            self.store.log_request(
                message.src_id, message.dst_id, message.t_hours, message.options
            )
        call = self._call_from(message.src_id, message.dst_id, message.t_hours)
        options = [decode_option(o) for o in message.options]
        choice = self.policy.assign(call, options)
        encoded = encode_option(choice)
        self._assign_cache[(message.src_id, message.dst_id)] = encoded
        return AssignMessage(option=encoded)

    def _on_request_many(
        self, messages: list[RequestMessage], *, log: bool = True
    ) -> list[AssignMessage]:
        """Batched :meth:`_on_request`: one vectorised policy pass.

        Handling is equivalent to serving the requests one by one in
        arrival order -- WAL records, call ids, assignment-cache writes
        and the policy's RNG draws all happen in the same sequence
        (``assign_many`` equals sequential ``assign`` calls when no
        observes interleave, which is exactly the request path) -- but
        the selection itself runs through
        :meth:`~repro.core.policy.ViaPolicy.assign_many`, amortising the
        per-call hot path across the whole drained queue
        (``docs/performance.md``).
        """
        if log and self.store is not None:
            # Log-before-act, in arrival order, exactly as the scalar
            # handler would have.
            for message in messages:
                self.store.log_request(
                    message.src_id, message.dst_id, message.t_hours, message.options
                )
        calls = [
            self._call_from(m.src_id, m.dst_id, m.t_hours) for m in messages
        ]
        options_per_call = [
            [decode_option(o) for o in m.options] for m in messages
        ]
        choices = self.policy.assign_many(calls, options_per_call)
        replies: list[AssignMessage] = []
        for message, choice in zip(messages, choices):
            encoded = encode_option(choice)
            self._assign_cache[(message.src_id, message.dst_id)] = encoded
            replies.append(AssignMessage(option=encoded))
        return replies

    def cached_assignment(self, message: RequestMessage) -> AssignMessage | None:
        """The degrade rung: the pair's last assignment, if it is still
        among the offered options.  Touches no policy state and consumes
        no policy RNG, so degraded serving never perturbs the admitted
        stream's determinism."""
        cached = self._assign_cache.get((message.src_id, message.dst_id))
        if cached is None or cached not in message.options:
            return None
        return AssignMessage(option=cached)

    # ------------------------------------------------------------------
    # Durable store bridging (WAL replay + snapshots)
    # ------------------------------------------------------------------

    def apply_record(self, record: dict) -> None:
        """Re-apply one WAL record during recovery.

        Mirrors the live handlers exactly -- same counters, same policy
        error isolation -- minus store logging (the record is already on
        disk) and minus replies (there is no peer).  Unknown kinds are
        ignored for forward compatibility.
        """
        kind = record.get("kind")
        if kind == "hello":
            self._count_message("hello")
            self._on_hello(int(record["client_id"]), str(record["site"]), live=False)
        elif kind == "measurement":
            self._count_message("measurement")
            message = MeasurementMessage(
                src_id=int(record["src_id"]),
                dst_id=int(record["dst_id"]),
                t_hours=float(record["t_hours"]),
                option=record["option"],
                rtt_ms=float(record["rtt_ms"]),
                loss_rate=float(record["loss_rate"]),
                jitter_ms=float(record["jitter_ms"]),
            )
            try:
                self._on_measurement(message, log=False)
            except Exception:
                self._obs_policy_errors.inc()
                logger.exception("replayed policy.observe failed (seq=%s)", record.get("seq"))
        elif kind == "request":
            self._count_message("request")
            request = RequestMessage(
                src_id=int(record["src_id"]),
                dst_id=int(record["dst_id"]),
                t_hours=float(record["t_hours"]),
                options=list(record["options"]),
            )
            try:
                self._on_request(request, log=False)
            except Exception:
                self._obs_policy_errors.inc()
                logger.exception("replayed policy.assign failed (seq=%s)", record.get("seq"))

    def save_store_snapshot(self) -> Path:
        """Snapshot into the durable store and fold the covered WAL down."""
        if self.store is None:
            raise ValueError("no store configured")
        return self.store.snapshot(self)

    @staticmethod
    def _default_reply(message: RequestMessage) -> AssignMessage | None:
        """Best-effort reply when the policy blew up or the request was
        shed for a v1 peer: the default path if offered, else the first
        candidate; None when nothing was offered (the client's own
        timeout/fallback machinery takes over)."""
        if not message.options:
            return None
        for option_data in message.options:
            if option_data.get("kind") == "direct":
                return AssignMessage(option=option_data)
        return AssignMessage(option=message.options[0])

    def metrics_text(self) -> str:
        """The controller's full Prometheus text exposition: message
        counters, per-type latency histograms, admission-plane gauges,
        and the policy's assign-path instruments (fed while observability
        is enabled)."""
        return self.registry.render_text()

    def _metrics_reply(self) -> MetricsMessage:
        """The exposition as a wire message, truncated at a line boundary
        if a huge registry would overflow the protocol's line limit."""
        text = self.metrics_text()
        # JSON escaping roughly doubles worst-case size; keep a margin.
        budget = MAX_LINE_BYTES - 4096
        if len(text.encode("utf-8")) > budget // 2:
            lines = text.splitlines()
            kept: list[str] = []
            size = 0
            for line in lines:
                size += len(line.encode("utf-8")) + 1
                if 2 * size > budget:
                    kept.append("# TRUNCATED: exposition exceeded wire line limit")
                    break
                kept.append(line)
            text = "\n".join(kept) + "\n"
        return MetricsMessage(text=text)

    def _stats(self) -> StatsMessage:
        """Operator-facing counters (the §7 scalability discussion's
        observables: per-call control load, client population, resilience
        events, and the admission plane's shed/degraded totals)."""
        reports = self._client_resilience.values()
        return StatsMessage(
            n_measurements=self.n_measurements,
            n_requests=self.n_requests,
            n_clients=len(self.client_sites),
            n_refreshes=self.policy.n_refreshes,
            n_fallbacks=sum(r.n_fallbacks for r in reports),
            n_retries=sum(r.n_retries for r in reports),
            n_reconnects=self.n_reconnects,
            n_policy_errors=self.n_policy_errors,
            n_faults_injected=(
                self.faults.n_faults_injected if self.faults is not None else 0
            ),
            n_shed=self.admission.n_shed,
            n_degraded=self.admission.n_degraded,
        )
