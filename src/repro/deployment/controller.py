"""The VIA controller as a real asyncio TCP service.

Wraps a :class:`~repro.core.policy.ViaPolicy` behind the wire protocol:
clients push per-call measurements (stage 1 of Figure 10) and query for
relay assignments (stage 4).  One controller serves many concurrent
clients; all policy state lives in-process, exactly like the paper's
central controller on Azure.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Any

from repro.core.policy import ViaConfig, ViaPolicy
from repro.deployment.protocol import (
    AssignMessage,
    ByeMessage,
    HelloMessage,
    MeasurementMessage,
    ProtocolError,
    RequestMessage,
    StatsMessage,
    StatsRequestMessage,
    decode_message,
    decode_option,
    encode_message,
    encode_option,
)
from repro.telephony.call import Call

__all__ = ["ViaController"]

logger = logging.getLogger(__name__)


class ViaController:
    """Asyncio server running the relay-selection policy.

    Use as an async context manager::

        async with ViaController(config) as controller:
            ...  # connect clients to controller.port

    ``client_sites`` (filled by hello messages) map client ids to site
    labels, used only for logging and for the Call records' country field.
    """

    def __init__(
        self,
        policy_config: ViaConfig | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.policy = ViaPolicy(policy_config or ViaConfig(), name="controller")
        self.host = host
        self._requested_port = port
        self._server: asyncio.Server | None = None
        self.client_sites: dict[int, str] = {}
        self.n_measurements = 0
        self.n_requests = 0
        self._call_counter = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("controller already started")
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self._requested_port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "ViaController":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("controller not started")
        return self._server.sockets[0].getsockname()[1]

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = decode_message(line)
                except ProtocolError as exc:
                    logger.warning("dropping bad message from %s: %s", peer, exc)
                    continue
                if isinstance(message, HelloMessage):
                    self.client_sites[message.client_id] = message.site
                elif isinstance(message, MeasurementMessage):
                    self._on_measurement(message)
                elif isinstance(message, RequestMessage):
                    reply = self._on_request(message)
                    writer.write(encode_message(reply))
                    await writer.drain()
                elif isinstance(message, StatsRequestMessage):
                    writer.write(encode_message(self._stats()))
                    await writer.drain()
                elif isinstance(message, ByeMessage):
                    break
                else:  # AssignMessage arriving at the server is a client bug
                    logger.warning("unexpected %s from %s", type(message).__name__, peer)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    # ------------------------------------------------------------------
    # Policy bridging
    # ------------------------------------------------------------------

    def _call_from(self, src_id: int, dst_id: int, t_hours: float) -> Call:
        """A minimal Call record: client ids play the role of AS numbers."""
        self._call_counter += 1
        return Call(
            call_id=self._call_counter,
            t_hours=t_hours,
            src_asn=src_id,
            dst_asn=dst_id,
            src_country=self.client_sites.get(src_id, "?"),
            dst_country=self.client_sites.get(dst_id, "?"),
            src_user=src_id,
            dst_user=dst_id,
        )

    def _on_measurement(self, message: MeasurementMessage) -> None:
        self.n_measurements += 1
        call = self._call_from(message.src_id, message.dst_id, message.t_hours)
        self.policy.observe(call, decode_option(message.option), message.metrics())

    def _on_request(self, message: RequestMessage) -> AssignMessage:
        self.n_requests += 1
        call = self._call_from(message.src_id, message.dst_id, message.t_hours)
        options = [decode_option(o) for o in message.options]
        choice = self.policy.assign(call, options)
        return AssignMessage(option=encode_option(choice))

    def _stats(self) -> StatsMessage:
        """Operator-facing counters (the §7 scalability discussion's
        observables: per-call control load and client population)."""
        return StatsMessage(
            n_measurements=self.n_measurements,
            n_requests=self.n_requests,
            n_clients=len(self.client_sites),
            n_refreshes=self.policy.n_refreshes,
        )
