"""Multi-process controller ring: sharded serving with replicated learning.

The paper's §7 discussion asks whether one logical Via controller can
serve a large deployment and points at partitioning as the answer.  This
module is that answer for the deployment plane: N independent
:class:`ShardController` processes, each a full durable
:class:`~repro.deployment.controller.ViaController`, split the pair space
by the same :func:`~repro.core.sharding.stable_shard_of` consistent hash
that :class:`~repro.core.sharding.ShardedPolicy` models in simulation.

How the pieces fit::

    ControllerRing (parent process)
      |  spawns N shard processes, collects their bound ports,
      |  pushes the completed ShardMap to every shard (shard_map msg)
      v
    ShardController x N            ShardedViaClient
      - owns pairs where            - learns the map from hello_ack
        stable_shard_of(pair)==i    - routes each pair to its owner
      - redirects the rest          - follows redirects on stale maps
      - gossips learned state
      - WAL-recovers on restart

**Routing.**  A pair's owner is ``stable_shard_of((min(src, dst),
max(src, dst)), n_shards)`` over *client ids* -- exactly the canonical
AS-granularity pair key the controller's policy uses for these calls
(client ids play the role of AS numbers in the deployment plane), and
computable by any client from the shard map alone.  A request landing on
the wrong shard (stale map) is answered with a
:class:`~repro.deployment.protocol.RedirectMessage` carrying the owner's
address and a fresh map -- never silently served, so no shard learns
state it would fight over with the owner.

**Replicated learning.**  Each shard keeps a ``local_history`` mirror of
only the measurements *it* observed (fed by both the live path and WAL
replay, so it survives crashes).  A gossip round pulls every peer's
local history (``sync_request``/``sync`` frames, chunked to the wire
limit) and rebuilds the policy's working history as ``local ∪ merge(peer
locals)`` through :meth:`repro.core.history.CallHistory.merge`.  Because
each measurement lives in exactly one shard's local mirror, the rebuild
is idempotent -- re-gossiping never double counts.  The merged view
feeds predictions at the shard's next periodic refresh (the current
period's bandit state is deliberately left alone).

**Failover.**  Shards ride the PR 4 durability path: a killed shard's
WAL already holds every acknowledged measurement (log-before-act with
unbuffered appends), so a restart recovers its own state exactly, then
one gossip round catches it up on what the fleet learned while it was
down.  The ring pushes a bumped shard map after a restart; receiving a
newer map triggers that catch-up round automatically.
"""

from __future__ import annotations

import asyncio
import logging
import multiprocessing
import socket as socket_module
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.core.history import CallHistory, history_from_dict, history_to_dict
from repro.core.keys import PairKeyer
from repro.core.policy import ViaConfig
from repro.core.sharding import stable_shard_of
from repro.deployment.client import AsyncViaClient, RedirectError
from repro.deployment.controller import ViaController
from repro.deployment.protocol import (
    AssignMessage,
    ErrorMessage,
    ProtocolError,
    RedirectMessage,
    RequestMessage,
    ShardMapMessage,
    StatsMessage,
    SyncMessage,
    SyncRequestMessage,
    decode_message,
    encode_message,
)
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import RelayOption
from repro.telephony.call import Call

__all__ = [
    "ShardMap",
    "ShardController",
    "ControllerRing",
    "InProcessRing",
    "ShardedViaClient",
    "ring_pair_key",
]

logger = logging.getLogger(__name__)

#: History entries per sync frame: ~180 bytes of JSON per entry keeps a
#: full frame comfortably under the 64 KiB wire line limit.
SYNC_CHUNK_ENTRIES = 200


def ring_pair_key(src_id: int, dst_id: int) -> tuple[int, int]:
    """The canonical (unordered) pair key the ring routes on.

    Client ids play the role of AS numbers in the deployment plane, so
    this is exactly the AS-granularity key the controller's policy uses
    -- and any client can compute it from the two ids alone."""
    return (src_id, dst_id) if src_id <= dst_id else (dst_id, src_id)


@dataclass(frozen=True, slots=True)
class ShardMap:
    """Versioned shard membership: shard index -> (host, port).

    Maps are replaced wholesale when a newer ``version`` arrives (the
    ring bumps it on every membership/address change), never patched."""

    version: int
    shards: tuple[tuple[str, int], ...]

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("a shard map needs at least one shard")
        if self.version < 1:
            raise ValueError(f"shard map version must be >= 1: {self.version}")

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, src_id: int, dst_id: int) -> int:
        """The shard owning this pair of client ids."""
        return stable_shard_of(ring_pair_key(src_id, dst_id), self.n_shards)

    def address_of(self, shard: int) -> tuple[str, int]:
        return self.shards[shard]

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "shards": [[host, port] for host, port in self.shards],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardMap":
        try:
            return cls(
                version=int(data["version"]),
                shards=tuple((str(h), int(p)) for h, p in data["shards"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"bad shard map payload: {data!r}") from exc


class ShardController(ViaController):
    """One shard of a controller ring.

    A full :class:`~repro.deployment.controller.ViaController` (store,
    admission ladder, v1/v2 protocol, snapshots) plus the ring duties:
    ownership checks with redirect-on-wrong-shard, the local-observation
    mirror, gossip (serving ``sync_request`` and pulling peers), and
    shard-map bookkeeping.  With ``n_shards=1`` and no map it behaves
    exactly like its base class.
    """

    def __init__(
        self,
        policy_config: ViaConfig | None = None,
        *,
        shard_index: int = 0,
        n_shards: int = 1,
        shard_map: ShardMap | None = None,
        gossip_interval_s: float | None = None,
        gossip_on_map_update: bool = True,
        gossip_timeout_s: float = 5.0,
        sync_chunk_entries: int = SYNC_CHUNK_ENTRIES,
        **kwargs: Any,
    ) -> None:
        if not 0 <= shard_index < n_shards:
            raise ValueError(
                f"shard_index {shard_index} out of range for n_shards {n_shards}"
            )
        super().__init__(policy_config, **kwargs)
        self.shard_index = shard_index
        self.n_shards = n_shards
        self.gossip_interval_s = gossip_interval_s
        self.gossip_on_map_update = gossip_on_map_update
        self.gossip_timeout_s = gossip_timeout_s
        self.sync_chunk_entries = sync_chunk_entries
        self._shard_map: ShardMap | None = shard_map
        #: Only the measurements THIS shard observed (live or WAL replay)
        #: -- the unit of gossip.  Each measurement lives in exactly one
        #: shard's local mirror, which is what makes the anti-entropy
        #: rebuild idempotent.
        self.local_history = CallHistory(
            window_hours=self.policy.config.refresh_hours
        )
        self._gossip_task: asyncio.Task | None = None
        self._catchup_tasks: set[asyncio.Task] = set()
        # via_shard_* instruments (same private registry as everything
        # else on this controller, so one scrape shows the ring state).
        self.registry.gauge(
            "via_shard_index", "This controller's shard index in the ring."
        ).set(shard_index)
        self._obs_map_version = self.registry.gauge(
            "via_shard_map_version",
            "Version of the shard map this shard currently routes by (0 = none).",
        )
        if shard_map is not None:
            self._obs_map_version.set(shard_map.version)
        self._obs_redirects = self.registry.counter(
            "via_shard_redirects_total",
            "Requests answered with a redirect to the owning shard.",
        )
        self._obs_gossip_rounds = self.registry.counter(
            "via_shard_gossip_rounds_total",
            "Completed gossip rounds (peer state pulled and folded).",
        )
        self._obs_gossip_exchanges = self.registry.counter(
            "via_shard_gossip_exchanges_total",
            "Per-peer gossip pulls, by outcome.",
            ("outcome",),
        )
        for outcome in ("ok", "error"):
            self._obs_gossip_exchanges.labels(outcome=outcome)
        self._obs_merged_entries = self.registry.gauge(
            "via_shard_merged_entries",
            "(pair, option, window) aggregates in the merged history "
            "after the last gossip round.",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def shard_map(self) -> ShardMap | None:
        return self._shard_map

    async def start(self) -> None:
        await super().start()
        if self.gossip_interval_s is not None:
            self._gossip_task = asyncio.ensure_future(self._gossip_loop())

    async def stop(self) -> None:
        tasks = list(self._catchup_tasks)
        if self._gossip_task is not None:
            tasks.append(self._gossip_task)
            self._gossip_task = None
        self._catchup_tasks.clear()
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        await super().stop()

    async def _gossip_loop(self) -> None:
        assert self.gossip_interval_s is not None
        while True:
            await asyncio.sleep(self.gossip_interval_s)
            try:
                await self.gossip_now()
            except asyncio.CancelledError:
                raise
            except Exception:  # pragma: no cover - isolation backstop
                logger.exception("shard %d: gossip round failed", self.shard_index)

    # ------------------------------------------------------------------
    # Ownership and redirects
    # ------------------------------------------------------------------

    def owner_of(self, src_id: int, dst_id: int) -> int:
        """The shard owning this pair under the current topology."""
        if self._shard_map is not None:
            return self._shard_map.shard_of(src_id, dst_id)
        return stable_shard_of(ring_pair_key(src_id, dst_id), self.n_shards)

    def _maybe_redirect(self, message: RequestMessage) -> RedirectMessage | None:
        if self._shard_map is None or self.n_shards <= 1:
            return None
        owner = self.owner_of(message.src_id, message.dst_id)
        if owner == self.shard_index:
            return None
        self._obs_redirects.inc()
        host, port = self._shard_map.address_of(owner)
        return RedirectMessage(
            shard=owner, host=host, port=port, shard_map=self._shard_map.to_dict()
        )

    def _on_request(
        self, message: RequestMessage, *, log: bool = True
    ) -> AssignMessage | RedirectMessage:
        redirect = self._maybe_redirect(message)
        if redirect is not None:
            # Not WAL-logged: a redirect consumes no policy state, so a
            # recovered shard must not replay it.
            return redirect
        return super()._on_request(message, log=log)

    def _on_request_many(
        self, messages: list[RequestMessage], *, log: bool = True
    ) -> list[AssignMessage | RedirectMessage]:
        """Batched serving with redirects split out.

        Owned requests keep their relative arrival order through the
        base class's batch handler (same WAL sequence, call ids and RNG
        draws as serving them one by one); wrong-shard requests are
        answered with redirects in place."""
        replies: list[AssignMessage | RedirectMessage | None] = [None] * len(messages)
        owned_rows: list[int] = []
        owned: list[RequestMessage] = []
        for i, message in enumerate(messages):
            redirect = self._maybe_redirect(message)
            if redirect is not None:
                replies[i] = redirect
            else:
                owned_rows.append(i)
                owned.append(message)
        if owned:
            for i, reply in zip(owned_rows, super()._on_request_many(owned, log=log)):
                replies[i] = reply
        return replies  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # The local-observation mirror
    # ------------------------------------------------------------------

    def _on_measurement(self, message: Any, *, log: bool = True) -> None:
        super()._on_measurement(message, log=log)
        # Mirror into the local observation set with exactly the keying
        # and orientation the policy used (measurements for pairs we do
        # not own -- a stale client's sends -- are accepted too: gossip
        # carries them to the owner's merged view).
        from repro.deployment.protocol import decode_option

        call = Call(
            call_id=0,
            t_hours=message.t_hours,
            src_asn=message.src_id,
            dst_asn=message.dst_id,
            src_country=self.site_labels.get(message.src_id, "?"),
            dst_country=self.site_labels.get(message.dst_id, "?"),
            src_user=message.src_id,
            dst_user=message.dst_id,
        )
        keyer: PairKeyer = getattr(self.policy, "_keyer", None) or PairKeyer("as")
        view = keyer.view(call)
        option = view.normalize(decode_option(message.option))
        self.local_history.add(view.pair_key, option, message.t_hours, message.metrics())

    # ------------------------------------------------------------------
    # Snapshots: the mirror is state too
    # ------------------------------------------------------------------

    def snapshot_dict(self) -> dict:
        payload = super().snapshot_dict()
        payload["local_history"] = history_to_dict(self.local_history)
        return payload

    def restore_dict(self, payload: dict) -> None:
        super().restore_dict(payload)
        saved = payload.get("local_history")
        if saved is not None:
            self.local_history = history_from_dict(saved)

    # ------------------------------------------------------------------
    # Ring hooks (the server dispatches these)
    # ------------------------------------------------------------------

    def _hello_shard_map(self) -> dict | None:
        return self._shard_map.to_dict() if self._shard_map is not None else None

    def _sync_replies(self, message: SyncRequestMessage) -> list[Any]:
        scope = getattr(message, "scope", "local")
        if scope == "local":
            history = self.local_history
        elif scope == "merged":
            history = self.policy.history
        else:
            return [
                ErrorMessage(
                    code="malformed", detail=f"unknown sync scope: {scope!r}"
                )
            ]
        return list(self._sync_frames(history))

    def _sync_frames(self, history: CallHistory) -> Iterator[SyncMessage]:
        """Chunk one history into wire-sized ``sync`` frames."""
        payload = history_to_dict(history)
        flat: list[tuple[str, dict]] = [
            (window, entry)
            for window, entries in payload["windows"].items()
            for entry in entries
        ]
        chunks = [
            flat[i : i + self.sync_chunk_entries]
            for i in range(0, len(flat), self.sync_chunk_entries)
        ] or [[]]
        for seq, chunk in enumerate(chunks):
            windows: dict[str, list[dict]] = {}
            for window, entry in chunk:
                windows.setdefault(window, []).append(entry)
            yield SyncMessage(
                shard=self.shard_index,
                seq=seq,
                last=(seq == len(chunks) - 1),
                history={"window_hours": payload["window_hours"], "windows": windows},
                n_measurements=self.n_measurements,
            )

    def _on_shard_map(self, message: ShardMapMessage) -> None:
        try:
            incoming = ShardMap.from_dict(message.shard_map)
        except ValueError:
            logger.exception("shard %d: rejecting bad shard map", self.shard_index)
            return
        if incoming.n_shards != self.n_shards:
            logger.error(
                "shard %d: rejecting shard map with n_shards=%d (ours is %d)",
                self.shard_index,
                incoming.n_shards,
                self.n_shards,
            )
            return
        if self._shard_map is not None and incoming.version <= self._shard_map.version:
            return
        self._shard_map = incoming
        self._obs_map_version.set(incoming.version)
        logger.info(
            "shard %d: shard map now v%d (%d shards)",
            self.shard_index,
            incoming.version,
            incoming.n_shards,
        )
        if self.gossip_on_map_update and self.n_shards > 1:
            # Membership changed under us (fleet start, or we just came
            # back from the dead): one catch-up round folds in whatever
            # the fleet learned meanwhile.
            try:
                task = asyncio.get_running_loop().create_task(self.gossip_now())
            except RuntimeError:
                return  # outside a loop (tests poking the hook directly)
            self._catchup_tasks.add(task)
            task.add_done_callback(self._catchup_tasks.discard)

    # ------------------------------------------------------------------
    # Gossip: pull peers' local state, rebuild the merged view
    # ------------------------------------------------------------------

    async def gossip_now(self) -> int:
        """One anti-entropy round; returns the number of peers folded.

        Pulls every peer's *local* history and rebuilds the policy's
        working history as ``local ∪ merge(peer locals)``.  The rebuild
        replaces ``policy.history`` wholesale: since every measurement
        lives in exactly one shard's local mirror, the result is the true
        fleet-wide union no matter how often (or in what order) rounds
        run.  Predictions pick the new data up at the next periodic
        refresh -- mid-period bandit state is deliberately untouched.
        """
        shard_map = self._shard_map
        if shard_map is None or shard_map.n_shards <= 1:
            return 0
        peers = [i for i in range(shard_map.n_shards) if i != self.shard_index]
        folded: list[CallHistory] = []
        for peer in peers:
            host, port = shard_map.address_of(peer)
            try:
                history = await self._pull_peer_history(host, port)
            except (ConnectionError, OSError, asyncio.TimeoutError, ProtocolError, ValueError):
                self._obs_gossip_exchanges.labels(outcome="error").inc()
                logger.warning(
                    "shard %d: gossip pull from shard %d (%s:%d) failed",
                    self.shard_index,
                    peer,
                    host,
                    port,
                    exc_info=True,
                )
                continue
            self._obs_gossip_exchanges.labels(outcome="ok").inc()
            folded.append(history)
        # Bound the mirror (and therefore gossip frames) to the windows
        # the policy still predicts from: the current period and the one
        # it learns from.
        if self.policy.period >= 0:
            self.local_history.prune_before(self.policy.period - 1)
        merged = history_from_dict(history_to_dict(self.local_history))
        for history in folded:
            merged.merge(history)
        self.policy.history = merged
        self._obs_gossip_rounds.inc()
        self._obs_merged_entries.set(
            sum(len(list(merged.window_items(w))) for w in merged.windows())
        )
        return len(folded)

    async def _pull_peer_history(self, host: str, port: int) -> CallHistory:
        """Fetch one peer's local history over a throwaway connection.

        No hello is sent on purpose: a hello would register this shard in
        the peer's client set and WAL, polluting its operational counters
        and recovery stream with control-plane chatter."""
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(encode_message(SyncRequestMessage(scope="local")))
            await writer.drain()
            history: CallHistory | None = None
            while True:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=self.gossip_timeout_s
                )
                if not line:
                    raise ConnectionError("peer closed mid-sync")
                message = decode_message(line)
                if isinstance(message, SyncMessage):
                    chunk = history_from_dict(message.history)
                    history = chunk if history is None else history.merge(chunk)
                    if message.last:
                        return history
                elif isinstance(message, ErrorMessage):
                    raise ProtocolError(f"peer refused sync: {message.code}")
                # anything else (stray pushes) is ignored
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass


# ----------------------------------------------------------------------
# The multi-process ring
# ----------------------------------------------------------------------


def _shard_entry(
    shard_index: int,
    n_shards: int,
    config: ViaConfig | None,
    host: str,
    port: int,
    store_root: str | None,
    gossip_interval_s: float | None,
    admission: Any,
    conn: Any,
) -> None:
    """Child-process entry: serve one shard until the parent kills us."""

    async def serve() -> None:
        store = None
        if store_root is not None:
            store = str(Path(store_root) / f"shard-{shard_index}")
        controller = ShardController(
            config,
            shard_index=shard_index,
            n_shards=n_shards,
            host=host,
            port=port,
            store=store,
            gossip_interval_s=gossip_interval_s,
            admission=admission,
        )
        await controller.start()
        conn.send(("ready", shard_index, controller.port))
        conn.close()
        # Failover is modelled as a hard kill (SIGKILL from the parent);
        # the WAL's unbuffered appends make that safe.  So: serve forever.
        while True:
            await asyncio.sleep(3600.0)

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:  # pragma: no cover - parent teardown
        pass


def _mp_context() -> multiprocessing.context.BaseContext:
    """Fork when available (cheap, inherits the loaded modules), else spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return multiprocessing.get_context("spawn")


class ControllerRing:
    """Parent-side manager of an N-shard controller fleet.

    Spawns one :class:`ShardController` process per shard, collects the
    ports they bound, distributes the completed :class:`ShardMap`, and
    drives failover (:meth:`kill_shard` / :meth:`restart_shard`).  The
    parent stays synchronous -- map pushes are plain blocking sockets --
    so benchmarks and tests can drive a fleet without their own loop.
    """

    def __init__(
        self,
        n_shards: int,
        config: ViaConfig | None = None,
        *,
        host: str = "127.0.0.1",
        store_root: str | Path | None = None,
        gossip_interval_s: float | None = None,
        admission: Any = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1: {n_shards}")
        self.n_shards = n_shards
        self.config = config
        self.host = host
        self.store_root = str(store_root) if store_root is not None else None
        self.gossip_interval_s = gossip_interval_s
        self.admission = admission
        self._ctx = _mp_context()
        self._procs: list[Any | None] = [None] * n_shards
        self._ports: list[int] = [0] * n_shards
        self._map_version = 0
        self.shard_map: ShardMap | None = None

    # -- lifecycle -----------------------------------------------------

    def start(self, *, timeout_s: float = 30.0) -> ShardMap:
        """Spawn every shard, then distribute the completed map."""
        if self.shard_map is not None:
            raise RuntimeError("ring already started")
        for i in range(self.n_shards):
            self._spawn(i, port=0, timeout_s=timeout_s)
        self._publish_map()
        assert self.shard_map is not None
        return self.shard_map

    def stop(self) -> None:
        for i, proc in enumerate(self._procs):
            if proc is not None and proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=10.0)
        self._procs = [None] * self.n_shards

    def __enter__(self) -> "ControllerRing":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- failover ------------------------------------------------------

    def kill_shard(self, shard: int) -> None:
        """SIGKILL one shard: the crash the WAL is built to survive."""
        proc = self._procs[shard]
        if proc is None or not proc.is_alive():
            raise RuntimeError(f"shard {shard} is not running")
        proc.kill()
        proc.join(timeout=10.0)
        self._procs[shard] = None

    def restart_shard(self, shard: int, *, timeout_s: float = 30.0) -> None:
        """Respawn a dead shard on its old port and re-publish the map.

        The restarted shard recovers its own WAL during startup; the map
        push (bumped version) then triggers its catch-up gossip round.
        """
        if self._procs[shard] is not None and self._procs[shard].is_alive():
            raise RuntimeError(f"shard {shard} is still running")
        self._spawn(shard, port=self._ports[shard], timeout_s=timeout_s)
        self._publish_map()

    # -- internals -----------------------------------------------------

    def _spawn(self, shard: int, *, port: int, timeout_s: float) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_shard_entry,
            args=(
                shard,
                self.n_shards,
                self.config,
                self.host,
                port,
                self.store_root,
                self.gossip_interval_s,
                self.admission,
                child_conn,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        if not parent_conn.poll(timeout_s):
            proc.kill()
            raise TimeoutError(f"shard {shard} did not report ready in {timeout_s}s")
        kind, reported_shard, bound_port = parent_conn.recv()
        parent_conn.close()
        if kind != "ready" or reported_shard != shard:  # pragma: no cover
            proc.kill()
            raise RuntimeError(f"shard {shard} handshake failed: {kind!r}")
        self._procs[shard] = proc
        self._ports[shard] = bound_port

    def _publish_map(self) -> None:
        self._map_version += 1
        self.shard_map = ShardMap(
            version=self._map_version,
            shards=tuple((self.host, p) for p in self._ports),
        )
        frame = encode_message(ShardMapMessage(shard_map=self.shard_map.to_dict()))
        for shard in range(self.n_shards):
            proc = self._procs[shard]
            if proc is None or not proc.is_alive():
                continue
            try:
                with socket_module.create_connection(
                    (self.host, self._ports[shard]), timeout=5.0
                ) as sock:
                    sock.sendall(frame)
            except OSError:
                logger.warning(
                    "could not push shard map v%d to shard %d",
                    self._map_version,
                    shard,
                    exc_info=True,
                )


class InProcessRing:
    """An N-shard ring inside one event loop (tests and the CI smoke).

    Same :class:`ShardController` code, no processes: shards bind real
    sockets on this loop, the map is injected directly, and gossip runs
    only when :meth:`gossip_round` is called (deterministic by default).
    """

    def __init__(
        self,
        n_shards: int,
        config: ViaConfig | None = None,
        *,
        store_root: str | Path | None = None,
        gossip_on_map_update: bool = False,
        **shard_kwargs: Any,
    ) -> None:
        store_root = Path(store_root) if store_root is not None else None
        self.shards = [
            ShardController(
                config,
                shard_index=i,
                n_shards=n_shards,
                gossip_on_map_update=gossip_on_map_update,
                store=(store_root / f"shard-{i}") if store_root is not None else None,
                **shard_kwargs,
            )
            for i in range(n_shards)
        ]
        self.shard_map: ShardMap | None = None
        self._map_version = 0

    async def start(self) -> ShardMap:
        for shard in self.shards:
            await shard.start()
        return self.publish_map()

    def publish_map(self) -> ShardMap:
        self._map_version += 1
        self.shard_map = ShardMap(
            version=self._map_version,
            shards=tuple(("127.0.0.1", s.port) for s in self.shards),
        )
        message = ShardMapMessage(shard_map=self.shard_map.to_dict())
        for shard in self.shards:
            shard._on_shard_map(message)
        return self.shard_map

    async def gossip_round(self) -> None:
        for shard in self.shards:
            await shard.gossip_now()

    async def stop(self) -> None:
        for shard in self.shards:
            await shard.stop()

    async def __aenter__(self) -> "InProcessRing":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()


# ----------------------------------------------------------------------
# The ring-aware client
# ----------------------------------------------------------------------


class ShardedViaClient:
    """A client that routes every pair to its owning shard.

    Bootstraps off any one shard (the seed): the hello_ack carries the
    shard map, after which each request goes straight to its owner --
    the common case is zero redirects.  A
    :class:`~repro.deployment.client.RedirectError` (stale map after a
    failover) refreshes the map and retries once at the named owner.
    Holds one pipelined :class:`~repro.deployment.client.AsyncViaClient`
    per shard, created lazily.
    """

    def __init__(
        self,
        client_id: int,
        site: str,
        host: str,
        port: int,
        *,
        hello_timeout_s: float = 5.0,
        **client_kwargs: Any,
    ) -> None:
        self.client_id = client_id
        self.site = site
        self._seed_addr = (host, port)
        self._hello_timeout_s = hello_timeout_s
        self._client_kwargs = client_kwargs
        self.shard_map: ShardMap | None = None
        self._clients: dict[tuple[str, int], AsyncViaClient] = {}

    async def connect(self) -> None:
        seed = await self._client_at(self._seed_addr)
        await seed.wait_hello_ack(timeout=self._hello_timeout_s)
        if seed.shard_map is not None:
            self.shard_map = ShardMap.from_dict(seed.shard_map)
        else:
            # A single controller: a one-shard "ring" of the seed itself.
            self.shard_map = ShardMap(version=1, shards=(self._seed_addr,))

    async def close(self) -> None:
        for client in list(self._clients.values()):
            await client.close()
        self._clients.clear()

    async def __aenter__(self) -> "ShardedViaClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # -- routing -------------------------------------------------------

    async def _client_at(self, addr: tuple[str, int]) -> AsyncViaClient:
        client = self._clients.get(addr)
        if client is None:
            client = AsyncViaClient(
                self.client_id, self.site, addr[0], addr[1], **self._client_kwargs
            )
            await client.connect()
            self._clients[addr] = client
        return client

    def _owner_addr(self, src_id: int, dst_id: int) -> tuple[str, int]:
        assert self.shard_map is not None, "connect() first"
        return self.shard_map.address_of(self.shard_map.shard_of(src_id, dst_id))

    def _learn_map(self, payload: dict[str, Any] | None) -> None:
        if payload is None:
            return
        try:
            incoming = ShardMap.from_dict(payload)
        except ValueError:
            return
        if self.shard_map is None or incoming.version > self.shard_map.version:
            self.shard_map = incoming

    # -- protocol actions ----------------------------------------------

    async def assign(
        self,
        dst_id: int,
        options: list[RelayOption],
        t_hours: float,
        *,
        src_id: int | None = None,
        timeout: float | None = None,
    ) -> Any:
        """Route one assignment to the pair's owner (redirect-repaired)."""
        src = src_id if src_id is not None else self.client_id
        client = await self._client_at(self._owner_addr(src, dst_id))
        try:
            return await client.assign(
                dst_id, options, t_hours, src_id=src_id, timeout=timeout
            )
        except RedirectError as exc:
            # Stale map (e.g. the fleet re-published after a failover):
            # adopt the server's map and retry once at the named owner.
            self._learn_map(exc.shard_map)
            retry = await self._client_at((exc.host, exc.port))
            return await retry.assign(
                dst_id, options, t_hours, src_id=src_id, timeout=timeout
            )

    async def report_measurement(
        self,
        dst_id: int,
        option: RelayOption,
        metrics: PathMetrics,
        t_hours: float,
    ) -> None:
        """Push a measurement to the pair's owning shard (fire-and-forget)."""
        client = await self._client_at(self._owner_addr(self.client_id, dst_id))
        await client.report_measurement(dst_id, option, metrics, t_hours)

    async def fetch_stats(self) -> list[StatsMessage]:
        """Per-shard operational counters, indexed by shard."""
        assert self.shard_map is not None, "connect() first"
        stats: list[StatsMessage] = []
        for shard in range(self.shard_map.n_shards):
            client = await self._client_at(self.shard_map.address_of(shard))
            stats.append(await client.fetch_stats())
        return stats
