"""Asyncio connection frontend: protocol negotiation, pipelining, shedding.

This module is the controller's network face, split out of
:mod:`repro.deployment.controller` so policy state and socket handling
evolve independently.  One :class:`ViaServer` owns the listening socket,
per-connection reader tasks, a bounded request queue, and a small pool
of worker coroutines -- all on a single-threaded event loop.

Request flow::

    reader -> admission ladder -> [bounded queue] -> worker -> reply
                    |                                   |
                    +-- degrade: cached assignment      +-- deadline
                    +-- shed: explicit ShedMessage          expired?
                                                            shed, not
                                                            silence

Protocol versions coexist per connection:

* **v1** connections (no ``protocol`` in hello) keep the PR 1
  contract: replies in request order, so admitted requests are served
  inline -- one at a time per connection -- exactly as before.
* **v2** connections pipeline: admitted requests enter the shared queue
  and complete *out of order*; replies carry the request's ``corr_id``.

Hostile input never reaches an unhandled exception: malformed lines are
answered with a per-request :class:`~repro.deployment.protocol.ErrorMessage`
(v2) or dropped (v1); an oversized line is rejected after the stream has
been resynchronised (v2 keeps the connection, v1 closes cleanly); a
slow-loris peer is disconnected by the idle timeout.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass, replace
from time import perf_counter
from typing import TYPE_CHECKING, Any

from repro.deployment.admission import AdmissionController
from repro.deployment.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_V1,
    LATEST_PROTOCOL,
    AssignMessage,
    ByeMessage,
    ErrorMessage,
    HelloAckMessage,
    HelloMessage,
    MeasurementMessage,
    MetricsRequestMessage,
    OversizedLineError,
    ProtocolError,
    RequestMessage,
    ResilienceMessage,
    ShardMapMessage,
    ShedMessage,
    StatsRequestMessage,
    SyncRequestMessage,
    decode_message,
    encode_message,
    read_wire_line,
)
from repro.obs.tracing import trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.deployment.controller import ViaController

__all__ = ["ViaServer"]

logger = logging.getLogger(__name__)


@dataclass(slots=True)
class _Connection:
    """Per-connection state the reader loop threads through handlers."""

    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    peer: Any
    protocol: int = PROTOCOL_V1
    client_id: int | None = None

    @property
    def v2(self) -> bool:
        return self.protocol >= 2


@dataclass(slots=True)
class _QueuedRequest:
    """An admitted request waiting for a policy worker."""

    conn: _Connection
    message: RequestMessage
    enqueued_at: float
    deadline: float


class ViaServer:
    """The controller's asyncio TCP frontend (see module docstring)."""

    def __init__(
        self,
        controller: "ViaController",
        admission: AdmissionController,
        *,
        host: str,
        port: int,
        n_workers: int = 4,
        idle_timeout_s: float | None = None,
        request_batch_max: int = 16,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1: {n_workers}")
        if request_batch_max < 1:
            raise ValueError(f"request_batch_max must be >= 1: {request_batch_max}")
        self.controller = controller
        self.admission = admission
        self.host = host
        self._requested_port = port
        self.n_workers = n_workers
        self.idle_timeout_s = idle_timeout_s
        #: Upper bound on how many queued requests one worker drains into
        #: a single ``assign_many`` pass; 1 disables batching.
        self.request_batch_max = request_batch_max
        self._server: asyncio.Server | None = None
        self._queue: asyncio.Queue[_QueuedRequest] | None = None
        self._workers: list[asyncio.Task] = []
        self._conn_tasks: set[asyncio.Task] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("controller not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("controller already started")
        self._queue = asyncio.Queue()
        self._workers = [
            asyncio.ensure_future(self._worker()) for _ in range(self.n_workers)
        ]
        # The stream limit is above the protocol cap on purpose: lines in
        # between return normally and fail the exact protocol check in
        # read_wire_line; only true monsters take the resync path.
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self._requested_port,
            limit=2 * MAX_LINE_BYTES,
        )

    async def stop(self) -> None:
        """Stop serving and sever live connections (a crash, as clients
        see it: their next request must reconnect or fall back)."""
        if self._server is None:
            return
        self._server.close()
        for writer in list(self._conn_writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await self._server.wait_closed()
        self._server = None
        for task in self._workers:
            task.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        # Queued-but-unserved requests died with their connections; the
        # shed accounting still records them so nothing vanishes silently.
        if self._queue is not None:
            while not self._queue.empty():
                self._queue.get_nowait()
                self.admission.count_shed("shutdown")
            self._queue = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        controller = self.controller
        peer = writer.get_extra_info("peername")
        if not self.admission.connection_opened():
            # Connection-count signal: refuse at the door, explicitly.
            try:
                writer.write(
                    encode_message(
                        ErrorMessage(code="overloaded", detail="connection limit")
                    )
                )
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        conn = _Connection(reader=reader, writer=writer, peer=peer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        try:
            await self._reader_loop(conn)
        except (ConnectionError, OSError):
            pass  # peer vanished mid-exchange; clean up below
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._conn_writers.discard(writer)
            self.admission.connection_closed()
            if conn.client_id is not None:
                controller._on_disconnect(conn.client_id)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _read_line(self, conn: _Connection) -> bytes:
        if self.idle_timeout_s is None:
            return await read_wire_line(conn.reader)
        return await asyncio.wait_for(
            read_wire_line(conn.reader), timeout=self.idle_timeout_s
        )

    async def _reader_loop(self, conn: _Connection) -> None:
        controller = self.controller
        while True:
            try:
                line = await self._read_line(conn)
            except OversizedLineError as exc:
                controller._obs_protocol_errors.inc()
                logger.warning("oversized line from %s: %s", conn.peer, exc)
                if conn.v2:
                    # The stream was resynchronised; reject per-message.
                    await self._send(conn, ErrorMessage(code="oversized"))
                    continue
                break  # v1: clean close, not an unhandled exception
            except asyncio.TimeoutError:
                # Slow-loris / idle peer: reclaim the connection.
                logger.info("idle timeout: closing connection to %s", conn.peer)
                break
            if not line:
                break
            try:
                message = decode_message(line)
            except ProtocolError as exc:
                controller._obs_protocol_errors.inc()
                logger.warning("dropping bad message from %s: %s", conn.peer, exc)
                if conn.v2:
                    await self._send(
                        conn, ErrorMessage(code="malformed", detail=str(exc)[:200])
                    )
                continue
            controller._count_message(message.type)
            if isinstance(message, ByeMessage):
                break
            t0 = perf_counter()
            with trace("handle_message", type=message.type):
                await self._handle_message(conn, message)
            if not isinstance(message, RequestMessage):
                # Requests are timed at service time (workers), where the
                # latency actually accrues; everything else is inline.
                controller._msg_seconds.labels(type=message.type).observe(
                    perf_counter() - t0
                )
            faults = controller.faults
            if faults is not None and faults.should_drop_connection():
                logger.info("fault injection: dropping connection to %s", conn.peer)
                break

    async def _handle_message(self, conn: _Connection, message: Any) -> None:
        """Handle one decoded message; policy errors are isolated here."""
        controller = self.controller
        if isinstance(message, HelloMessage):
            conn.client_id = message.client_id
            if message.protocol >= 2:
                conn.protocol = min(message.protocol, LATEST_PROTOCOL)
                await self._send(
                    conn,
                    HelloAckMessage(
                        protocol=conn.protocol,
                        shard_map=controller._hello_shard_map(),
                        corr_id=message.corr_id,
                    ),
                )
            controller._on_hello(message.client_id, message.site)
        elif isinstance(message, MeasurementMessage):
            try:
                controller._on_measurement(message)
            except Exception:
                controller._obs_policy_errors.inc()
                logger.exception("policy.observe failed for %s", conn.peer)
        elif isinstance(message, RequestMessage):
            await self._on_request(conn, message)
        elif isinstance(message, StatsRequestMessage):
            await self._send_reply(conn, controller._stats(), message.corr_id)
        elif isinstance(message, MetricsRequestMessage):
            await self._send_reply(conn, controller._metrics_reply(), message.corr_id)
        elif isinstance(message, ResilienceMessage):
            controller._client_resilience[message.client_id] = message
        elif isinstance(message, SyncRequestMessage):
            # Gossip pull: the reply may span several frames (chunked to
            # the wire's line cap); each echoes the request's corr_id.
            for frame in controller._sync_replies(message):
                await self._send_reply(conn, frame, message.corr_id)
        elif isinstance(message, ShardMapMessage):
            controller._on_shard_map(message)
        else:  # a server-to-client type arriving at the server is a bug
            logger.warning("unexpected %s from %s", type(message).__name__, conn.peer)
            if conn.v2:
                await self._send(
                    conn,
                    ErrorMessage(code="unknown_type", corr_id=message.corr_id),
                )
        controller._maybe_store_snapshot()

    # ------------------------------------------------------------------
    # The request path: admission ladder -> queue -> worker
    # ------------------------------------------------------------------

    async def _on_request(self, conn: _Connection, message: RequestMessage) -> None:
        controller = self.controller
        faults = controller.faults
        if faults is not None and faults.should_blackhole(message.t_hours):
            # Deliberate chaos: the one sanctioned silent non-reply.
            logger.info("fault injection: blackholing request from %s", conn.peer)
            return
        if faults is not None:
            self.admission.forced_overload = faults.overloaded_at(message.t_hours)
        assert self._queue is not None
        depth = self._queue.qsize()
        self.admission.note_queue_depth(depth)
        decision = self.admission.decide(depth)
        if decision.admitted:
            loop = asyncio.get_event_loop()
            item = _QueuedRequest(
                conn=conn,
                message=message,
                enqueued_at=loop.time(),
                deadline=loop.time() + self.admission.config.queue_timeout_s,
            )
            if conn.v2:
                self._queue.put_nowait(item)
                self.admission.note_queue_depth(self._queue.qsize())
            else:
                # v1 promises in-order replies: serve inline, one at a
                # time per connection, exactly the pre-v2 behaviour.
                await self._serve_request(item)
            return
        if decision.degraded:
            cached = controller.cached_assignment(message)
            if cached is not None:
                self.admission.count_degraded()
                await self._send_reply(conn, cached, message.corr_id)
                return
            # No stale state to serve: fall through one more rung.
            self.admission.count_shed(f"{decision.reason}_no_cache")
            await self._send_shed(conn, message, decision.reason)
            return
        await self._send_shed(conn, message, decision.reason)

    async def _worker(self) -> None:
        """One policy worker: drains the shared queue until cancelled.

        When the queue has depth, a worker opportunistically drains up to
        ``request_batch_max`` requests and serves them through the
        controller's vectorised :meth:`~repro.deployment.controller.\
ViaController._on_request_many` -- the deeper the backlog, the more the
        per-call hot path amortises (exactly when it matters).  Fault
        plans inject per-request chaos, so batching is skipped while one
        is configured.
        """
        assert self._queue is not None
        queue = self._queue
        while True:
            item = await queue.get()
            items = [item]
            if self.request_batch_max > 1 and self.controller.faults is None:
                while len(items) < self.request_batch_max:
                    try:
                        items.append(queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
            try:
                self.admission.note_queue_depth(queue.qsize())
                if len(items) == 1:
                    await self._serve_request(items[0])
                else:
                    await self._serve_batch(items)
            except (ConnectionError, OSError):
                pass  # peer vanished mid-reply; its reader loop cleans up
            except asyncio.CancelledError:
                raise
            except Exception:  # pragma: no cover - isolation backstop
                logger.exception("request worker failed")
            finally:
                for _ in items:
                    queue.task_done()

    async def _serve_request(self, item: _QueuedRequest) -> None:
        controller = self.controller
        conn, message = item.conn, item.message
        loop = asyncio.get_event_loop()
        now = loop.time()
        self.admission.observe_queue_wait(now - item.enqueued_at)
        if now > item.deadline:
            # Too stale to serve: an explicit shed beats a late answer
            # the client's own timeout already gave up on.
            self.admission.count_shed("deadline")
            await self._send_shed(conn, message, "deadline")
            return
        faults = controller.faults
        if faults is not None:
            stall = faults.request_stall_s(message.t_hours)
            if stall > 0.0:
                await asyncio.sleep(stall)  # chaos: an overloaded policy
        t0 = perf_counter()
        try:
            reply = controller._on_request(message)
        except Exception:
            controller._obs_policy_errors.inc()
            logger.exception("policy.assign failed for %s", conn.peer)
            reply = controller._default_reply(message)
        service_s = perf_counter() - t0
        self.admission.observe_service(service_s)
        controller._msg_seconds.labels(type="request").observe(service_s)
        if reply is None:
            return
        await self._send_reply(conn, reply, message.corr_id)

    async def _serve_batch(self, items: list[_QueuedRequest]) -> None:
        """Serve a drained batch through one ``assign_many`` pass.

        Deadline-expired items are shed exactly as :meth:`_serve_request`
        would shed them; the rest are assigned in arrival order by a
        single vectorised call (equivalent to serving them one by one --
        no observes interleave within a batch).  Per-request service time
        is recorded as the batch's amortised share.  If the batched pass
        fails, every item retries through the scalar handler so one
        poisoned request cannot take down its batch-mates; one dead
        peer's send failure is likewise isolated from the others.
        """
        controller = self.controller
        loop = asyncio.get_event_loop()
        now = loop.time()
        fresh: list[_QueuedRequest] = []
        for item in items:
            self.admission.observe_queue_wait(now - item.enqueued_at)
            if now > item.deadline:
                self.admission.count_shed("deadline")
                await self._safe_send_shed(item.conn, item.message, "deadline")
            else:
                fresh.append(item)
        if not fresh:
            return
        t0 = perf_counter()
        replies: list[AssignMessage] | None
        try:
            replies = controller._on_request_many([it.message for it in fresh])
        except Exception:
            controller._obs_policy_errors.inc()
            logger.exception(
                "batched policy.assign_many failed; retrying %d requests serially",
                len(fresh),
            )
            replies = None
        if replies is None:
            # Scalar fallback; the batch handler already WAL-logged the
            # requests (log-before-act), so don't log them twice.
            for it in fresh:
                t1 = perf_counter()
                try:
                    reply = controller._on_request(it.message, log=False)
                except Exception:
                    controller._obs_policy_errors.inc()
                    logger.exception("policy.assign failed for %s", it.conn.peer)
                    reply = controller._default_reply(it.message)
                service_s = perf_counter() - t1
                self.admission.observe_service(service_s)
                controller._msg_seconds.labels(type="request").observe(service_s)
                if reply is not None:
                    await self._safe_send_reply(it.conn, reply, it.message.corr_id)
            return
        service_s = (perf_counter() - t0) / len(fresh)
        for it, reply in zip(fresh, replies):
            self.admission.observe_service(service_s)
            controller._msg_seconds.labels(type="request").observe(service_s)
            await self._safe_send_reply(it.conn, reply, it.message.corr_id)

    async def _safe_send_reply(
        self, conn: _Connection, reply: Any, corr_id: int | None
    ) -> None:
        try:
            await self._send_reply(conn, reply, corr_id)
        except (ConnectionError, OSError):
            pass  # this peer vanished; keep serving its batch-mates

    async def _safe_send_shed(
        self, conn: _Connection, message: RequestMessage, reason: str
    ) -> None:
        try:
            await self._send_shed(conn, message, reason)
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # Replies
    # ------------------------------------------------------------------

    async def _send_shed(
        self, conn: _Connection, message: RequestMessage, reason: str
    ) -> None:
        """Explicit load-shed reply; a v1 client (which has no ``shed``
        vocabulary) gets its default path assigned server-side instead,
        so even legacy clients never wait on an answer that isn't
        coming."""
        if conn.v2:
            await self._send(
                conn, ShedMessage(reason=reason or "overload", corr_id=message.corr_id)
            )
            return
        reply = self.controller._default_reply(message)
        if reply is not None:
            await self._send_reply(conn, reply, message.corr_id)

    async def _send_reply(
        self, conn: _Connection, reply: Any, corr_id: int | None
    ) -> None:
        faults = self.controller.faults
        if faults is not None:
            delay = faults.reply_delay_s()
            if delay > 0.0:
                await asyncio.sleep(delay)
        if corr_id is not None and getattr(reply, "corr_id", None) != corr_id:
            reply = replace(reply, corr_id=corr_id)
        await self._send(conn, reply)

    async def _send(self, conn: _Connection, message: Any) -> None:
        # One write() per message keeps frames atomic even when several
        # workers reply on the same connection concurrently.
        conn.writer.write(encode_message(message))
        await conn.writer.drain()
