"""Testbed orchestration: the §5.5 controlled experiment, end to end.

Reproduces the paper's methodology over real localhost TCP:

1. spin up the controller and 14 clients across five countries
   (Singapore, India, USA, UK, Sri Lanka -- the paper's sites),
2. *measurement phase*: each of 18 caller-callee pairs makes short
   back-to-back calls through every relaying option several times
   (the paper: "9-20 different relaying options, 4-5 times each"),
3. *VIA phase*: each pair makes calls routed by the controller's
   relay-selection policy, reporting measurements as it goes,
4. score each VIA-phase call's *sub-optimality*
   ``(Perf_VIA - Perf_oracle) / Perf_oracle`` against the ground-truth
   best option of the day (Figure 18).

The direct path is omitted as an option, as in the paper.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.core.baselines import via_config
from repro.deployment.admission import AdmissionConfig
from repro.deployment.client import TestbedClient
from repro.deployment.controller import ViaController
from repro.deployment.faults import FaultPlan
from repro.deployment.protocol import LATEST_PROTOCOL
from repro.deployment.resilience import RetryPolicy
from repro.netmodel.options import RelayOption
from repro.netmodel.topology import TopologyConfig
from repro.netmodel.world import World, WorldConfig, build_world
from repro.obs import runtime as obs_runtime

__all__ = ["TestbedConfig", "TestbedReport", "run_testbed"]

#: Retry policy used in chaos mode when the config does not supply one:
#: tight timeouts so blackholed/delayed replies fall back quickly instead
#: of stretching the experiment's wall-clock; full jitter so a fleet of
#: clients retrying into the same fault decorrelates instead of herding.
CHAOS_RETRY = RetryPolicy(
    max_attempts=3,
    request_timeout_s=0.25,
    base_delay_s=0.01,
    max_delay_s=0.05,
    deadline_s=2.0,
    jitter_mode="full",
)

#: The five deployment countries of the paper's testbed.
PAPER_SITES: tuple[str, ...] = ("SG", "IN", "US", "GB", "LK")


@dataclass(frozen=True, slots=True)
class TestbedConfig:
    """Scale and schedule of the controlled deployment."""

    n_clients: int = 14
    n_pairs: int = 18
    #: Back-to-back calls per (pair, option) in the measurement phase.
    measurement_rounds: int = 4
    #: VIA-driven calls per pair in the evaluation phase.
    via_rounds: int = 30
    metric: str = "rtt_ms"
    seed: int = 99
    #: Registry name of the controller's policy; must resolve to a
    #: :class:`~repro.core.policy.ViaPolicy` variant (``via``,
    #: ``via-vector``, ...) because the wire protocol drives the scalar
    #: assign/observe interface with checkpointing.
    policy: str = "via"
    sites: tuple[str, ...] = PAPER_SITES
    #: Chaos mode: a fault plan injected into the controller and the world
    #: (connection drops, delayed/blackholed replies, relay outages).
    chaos: FaultPlan | None = None
    #: Client retry policy; defaults to CHAOS_RETRY when chaos is on, and
    #: to no resilience layer (the original fail-fast client) otherwise.
    retry: RetryPolicy | None = None
    #: Observability: enable span tracing + gated histograms for the run
    #: and scrape the controller over the wire into ``report.metrics_text``.
    observe: bool = False
    #: Durable storage: when set, the controller write-ahead-logs every
    #: state-changing message under this directory, snapshots on stop,
    #: and recovers from snapshot + WAL replay on start.
    store_dir: str | None = None
    #: Wire protocol the clients speak (1 = PR 1 dialect, 2 = pipelined
    #: correlation-id dialect); the controller always accepts both.
    protocol: int = LATEST_PROTOCOL
    #: Admission-ladder tuning for the controller; None admits everything
    #: (the pre-admission behaviour).
    admission: AdmissionConfig | None = None

    def __post_init__(self) -> None:
        if self.n_clients < 2 or self.n_pairs < 1:
            raise ValueError("need at least two clients and one pair")
        if self.measurement_rounds < 1 or self.via_rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not self.sites:
            raise ValueError("need at least one site")
        _testbed_policy_class(self.policy)  # fail fast on bad names


def _testbed_policy_class(name: str) -> type:
    """Resolve a registry policy name to the controller's policy class.

    Raises :class:`~repro.core.registry.UnknownPolicyError` (with its
    did-you-mean listing) for unregistered names, and ``ValueError`` for
    registered policies that are not ViaPolicy variants.
    """
    from repro.core.policy import ViaPolicy
    from repro.core.registry import REGISTRY

    entry = REGISTRY.get(name)
    if entry.policy_class is None or not issubclass(entry.policy_class, ViaPolicy):
        raise ValueError(
            f"testbed policy {name!r} is not a ViaPolicy variant; the "
            f"controller needs the scalar assign/observe + checkpoint "
            f"interface (try 'via' or 'via-vector')"
        )
    return entry.policy_class


@dataclass(slots=True)
class TestbedReport:
    """Figure 18 material: per-call sub-optimality of VIA's choices."""

    suboptimalities: list[float] = field(default_factory=list)
    n_pairs: int = 0
    n_calls: int = 0
    n_measurements: int = 0
    options_per_pair: list[int] = field(default_factory=list)
    # Resilience observables (nonzero only under chaos / faults):
    n_fallbacks: int = 0
    n_retries: int = 0
    n_reconnects: int = 0
    n_timeouts: int = 0
    n_dropped_measurements: int = 0
    #: Requests the controller explicitly shed (client-observed; the
    #: paired call proceeded on the client-side default path).
    n_sheds: int = 0
    #: Requests the controller answered from its stale assignment cache.
    n_degraded: int = 0
    n_faults_injected: int = 0
    n_policy_errors: int = 0
    #: VIA-phase calls placed while a relay outage window was active.
    n_outage_calls: int = 0
    #: VIA-phase calls whose assigned option rode a down relay anyway.
    n_dead_assignments: int = 0
    #: WAL records the controller's durable store appended (0 without one).
    n_wal_records: int = 0
    #: Prometheus text exposition scraped from the controller at the end
    #: of the run (always captured; richest with ``observe=True``).
    metrics_text: str = ""

    @property
    def frac_exact_best(self) -> float:
        """Fraction of calls where VIA picked the single best option."""
        if not self.suboptimalities:
            return 0.0
        return float(np.mean(np.asarray(self.suboptimalities) <= 1e-9))

    def frac_within(self, tolerance: float) -> float:
        """Fraction of calls within ``tolerance`` of the oracle (0.2 = 20%)."""
        if not self.suboptimalities:
            return 0.0
        return float(np.mean(np.asarray(self.suboptimalities) <= tolerance))

    def cdf(self, points: int = 50) -> list[tuple[float, float]]:
        """(sub-optimality, cumulative fraction) points for the Fig 18 CDF."""
        values = np.sort(np.asarray(self.suboptimalities))
        if values.size == 0:
            return []
        fractions = np.arange(1, values.size + 1) / values.size
        step = max(1, values.size // points)
        return [(float(v), float(f)) for v, f in zip(values[::step], fractions[::step])]


def _build_testbed_world(config: TestbedConfig) -> World:
    """A world whose country catalog covers the paper's five sites."""
    # The catalog is ordered by call volume; Sri Lanka is deep in it, so a
    # catalog-prefix large enough to include every site is required.
    from repro.netmodel.topology import COUNTRY_CATALOG

    codes = [c[0] for c in COUNTRY_CATALOG]
    needed = max(codes.index(site) for site in config.sites) + 1
    return build_world(
        WorldConfig(
            topology=TopologyConfig(n_countries=needed, n_relays=14, seed=config.seed),
            n_days=4,
            seed=config.seed,
        )
    )


def _pick_clients_and_pairs(
    world: World, config: TestbedConfig, rng: np.random.Generator
) -> tuple[list[tuple[int, str]], list[tuple[int, int]]]:
    """(client_id -> (asn, site)) assignments and cross-site pairs.

    Clients are spread round-robin over the sites; pairs connect clients
    in *different* countries (the paper's pairs were international).
    """
    clients: list[tuple[int, str]] = []
    site_ases = {site: list(world.topology.country_ases[site]) for site in config.sites}
    for i in range(config.n_clients):
        site = config.sites[i % len(config.sites)]
        ases = site_ases[site]
        clients.append((int(ases[i % len(ases)]), site))

    candidates = [
        (a, b)
        for a in range(config.n_clients)
        for b in range(config.n_clients)
        if clients[a][1] != clients[b][1] and clients[a][0] != clients[b][0]
    ]
    if len(candidates) < config.n_pairs:
        raise ValueError("not enough cross-site client pairs; add clients or sites")
    chosen = rng.choice(len(candidates), size=config.n_pairs, replace=False)
    return clients, [candidates[int(i)] for i in chosen]


def _relayed_options(world: World, src_asn: int, dst_asn: int) -> list[RelayOption]:
    """The pair's candidate options with the direct path removed (§5.5)."""
    return [o for o in world.options_for_pair(src_asn, dst_asn) if o.is_relayed]


async def _run_async(config: TestbedConfig) -> TestbedReport:
    rng = np.random.default_rng(config.seed)
    world = _build_testbed_world(config)
    clients_spec, pairs = _pick_clients_and_pairs(world, config, rng)

    chaos = config.chaos
    retry = config.retry
    if chaos is not None:
        # Relay outages live in the world: calls through a dead relay see
        # blackhole metrics, exactly what a real kill-relay event does.
        for outage in chaos.relay_outages:
            world.add_outage(outage)
        if retry is None:
            retry = CHAOS_RETRY

    policy_config = via_config(
        config.metric,
        refresh_hours=24.0,
        seed=config.seed,
        epsilon=0.02,
        min_direct_samples=2,
        use_tomography=False,
    )
    report = TestbedReport(n_pairs=len(pairs))

    async with ViaController(
        policy_config,
        faults=chaos,
        store=config.store_dir,
        admission=config.admission,
        policy_cls=_testbed_policy_class(config.policy),
    ) as controller:
        clients = [
            TestbedClient(
                client_id=i,
                site=site,
                host="127.0.0.1",
                port=controller.port,
                retry=retry,
                protocol=config.protocol,
            )
            for i, (_asn, site) in enumerate(clients_spec)
        ]
        await asyncio.gather(*(c.connect() for c in clients))
        try:
            # ----- Phase 1: back-to-back measurement calls (day 0) -----
            t_hours = 0.1
            for src_idx, dst_idx in pairs:
                src_asn, _ = clients_spec[src_idx]
                dst_asn, _ = clients_spec[dst_idx]
                options = _relayed_options(world, src_asn, dst_asn)
                report.options_per_pair.append(len(options))
                for _round in range(config.measurement_rounds):
                    for option in options:
                        metrics = world.sample_call(src_asn, dst_asn, option, t_hours, rng)
                        await clients[src_idx].report_measurement(
                            dst_idx, option, metrics, t_hours
                        )
                        report.n_measurements += 1
                t_hours += 0.01

            # ----- Phase 2: VIA-driven calls, scored vs oracle (day 1) -----
            eval_day = 1

            async def one_call(src_idx: int, dst_idx: int, t_hours: float) -> None:
                src_asn, _ = clients_spec[src_idx]
                dst_asn, _ = clients_spec[dst_idx]
                options = _relayed_options(world, src_asn, dst_asn)
                choice = await clients[src_idx].request_assignment(dst_idx, options, t_hours)
                if world.relays_down_at(t_hours):
                    report.n_outage_calls += 1
                    if not world.option_available(choice, t_hours):
                        report.n_dead_assignments += 1
                metrics = world.sample_call(src_asn, dst_asn, choice, t_hours, rng)
                await clients[src_idx].report_measurement(dst_idx, choice, metrics, t_hours)
                true_costs = {
                    o: world.true_mean(src_asn, dst_asn, o, eval_day).get(config.metric)
                    for o in options
                }
                best_cost = min(true_costs.values())
                report.suboptimalities.append(
                    (true_costs[choice] - best_cost) / best_cost
                )
                report.n_calls += 1

            for round_idx in range(config.via_rounds):
                t_hours = 24.05 + round_idx * 0.02
                if chaos is not None:
                    # Operators mark scheduled outages down at the
                    # controller; the policy repicks around them.
                    controller.set_down_relays(world.relays_down_at(t_hours))
                await asyncio.gather(
                    *(one_call(src, dst, t_hours) for src, dst in pairs)
                )

            # Scrape the controller over the wire (the same exchange an
            # operator's poller would run); fall back to the in-process
            # registry if chaos severed the scraping client's connection.
            try:
                report.metrics_text = await clients[0].fetch_metrics()
            except Exception:
                report.metrics_text = controller.metrics_text()
        finally:
            await asyncio.gather(*(c.close() for c in clients))
            for client in clients:
                report.n_fallbacks += client.stats.n_fallbacks
                report.n_retries += client.stats.n_retries
                report.n_reconnects += client.stats.n_reconnects
                report.n_timeouts += client.stats.n_timeouts
                report.n_dropped_measurements += client.stats.n_dropped_measurements
                report.n_sheds += client.stats.n_sheds
            report.n_degraded = controller.admission.n_degraded
            report.n_policy_errors = controller.n_policy_errors
            if controller.faults is not None:
                report.n_faults_injected = controller.faults.n_faults_injected
            if controller.store is not None:
                report.n_wal_records = controller.store.wal.last_seq
    return report


def run_testbed(config: TestbedConfig | None = None) -> TestbedReport:
    """Run the full §5.5 deployment experiment; blocking convenience API.

    With ``observe=True`` the run executes under an enabled observability
    scope: assign-path spans and latency histograms land in the
    controller's registry and the scraped ``report.metrics_text``.
    """
    config = config or TestbedConfig()
    with obs_runtime.enabled_scope(config.observe or obs_runtime.enabled):
        return asyncio.run(_run_async(config))
