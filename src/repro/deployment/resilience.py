"""Client-side resilience primitives: retries, backoff and circuit breaking.

The paper's §7 answer to "what if the controller is unreachable?" is that
the client "simply falls back to the default path" -- relay selection is an
optimisation, never a dependency.  This module provides the machinery that
makes the fallback disciplined rather than accidental:

* :class:`RetryPolicy` -- a deadline-bounded, capped-exponential-backoff
  schedule with *deterministic* jitter (seeded per attempt), so fault
  experiments replay identically under a fixed seed.
* :class:`CircuitBreaker` -- after enough consecutive failures the client
  stops hammering a dead controller and fails fast to the default path,
  probing again (half-open) only after a cool-down.
* :class:`ResilienceStats` -- the counters the testbed and the controller's
  stats endpoint aggregate (retries, fallbacks, reconnects, timeouts).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable

from repro.obs import runtime as obs_runtime
from repro.obs.metrics import REGISTRY

__all__ = ["RetryPolicy", "CircuitBreaker", "ResilienceStats"]

#: Client-side fault events on the default registry (fed only while
#: observability is enabled; the exact per-client counts always live in
#: :class:`ResilienceStats` and travel in ResilienceMessage reports).
_CLIENT_EVENTS = REGISTRY.counter(
    "via_client_events_total",
    "Client-side resilience events (retries, fallbacks, ...), by event.",
    ("event",),
)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Deadline + capped exponential backoff with deterministic jitter.

    ``request_timeout_s`` bounds one round-trip; ``deadline_s`` bounds the
    whole operation including backoff sleeps.  Jitter is derived from
    ``(seed, attempt)`` alone, so two runs with the same seed retry on the
    same schedule -- a requirement for reproducible chaos experiments.
    """

    max_attempts: int = 3
    request_timeout_s: float = 1.0
    base_delay_s: float = 0.05
    max_delay_s: float = 1.0
    backoff_factor: float = 2.0
    #: Relative jitter amplitude in ``scaled`` mode: each delay is scaled
    #: by ``1 + j*u`` with ``u`` deterministic in [-1, 1].  ``0`` disables
    #: jitter in either mode.
    jitter: float = 0.25
    #: ``scaled`` keeps delays near the exponential schedule (good for
    #: tests asserting timing); ``full`` is AWS-style full jitter --
    #: ``uniform(0, raw)`` -- which decorrelates a thundering herd of
    #: clients all retrying into the same overloaded controller, at the
    #: cost of occasionally near-zero sleeps.
    jitter_mode: str = "scaled"
    deadline_s: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.request_timeout_s <= 0.0 or self.deadline_s <= 0.0:
            raise ValueError("timeouts must be positive")
        if self.base_delay_s < 0.0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1: {self.backoff_factor}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1): {self.jitter}")
        if self.jitter_mode not in ("scaled", "full"):
            raise ValueError(
                f"jitter_mode must be 'scaled' or 'full': {self.jitter_mode!r}"
            )

    def delay_for(self, attempt: int) -> float:
        """Backoff sleep before retry ``attempt`` (1-based), jittered.

        Deterministic in ``(seed, attempt)`` in both modes, so two runs
        with the same seed retry on the same schedule."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1: {attempt}")
        raw = min(
            self.max_delay_s, self.base_delay_s * self.backoff_factor ** (attempt - 1)
        )
        if self.jitter == 0.0:
            return raw
        rng = random.Random((self.seed << 32) ^ attempt)
        if self.jitter_mode == "full":
            return rng.uniform(0.0, raw)
        return raw * (1.0 + self.jitter * rng.uniform(-1.0, 1.0))

    def delays(self) -> list[float]:
        """The full backoff schedule (one sleep per retry attempt)."""
        return [self.delay_for(a) for a in range(1, self.max_attempts)]


class CircuitBreaker:
    """Fail-fast guard in front of a flaky controller.

    Closed: every call is allowed.  After ``failure_threshold`` consecutive
    failures the breaker *opens*: calls are rejected (the caller should go
    straight to its fallback) until ``reset_after_s`` has elapsed, at which
    point one trial call is let through (*half-open*); its success closes
    the breaker, its failure re-opens it.

    ``clock`` is injectable so tests need not sleep through cool-downs.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after_s: float = 2.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1: {failure_threshold}")
        if reset_after_s <= 0.0:
            raise ValueError(f"reset_after_s must be positive: {reset_after_s}")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._half_open = False
        self.n_opens = 0
        self.n_rejections = 0

    @property
    def state(self) -> str:
        """``closed``, ``open`` or ``half-open`` (for logs and tests)."""
        if self._opened_at is None:
            return "closed"
        if self._half_open:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """May the caller contact the controller right now?"""
        if self._opened_at is None:
            return True
        if self._half_open:
            # A trial call is already the one in flight; further callers
            # keep failing fast until it resolves.
            self.n_rejections += 1
            return False
        if self._clock() - self._opened_at >= self.reset_after_s:
            self._half_open = True
            return True
        self.n_rejections += 1
        return False

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._opened_at = None
        self._half_open = False

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self._half_open or self._consecutive_failures >= self.failure_threshold:
            if self._opened_at is None or self._half_open:
                self.n_opens += 1
            self._opened_at = self._clock()
            self._half_open = False


@dataclass(slots=True)
class ResilienceStats:
    """Cumulative per-client fault counters (reported to the controller).

    :meth:`record` is the preferred mutator: it bumps the exact per-client
    field *and* mirrors the event into the default metrics registry
    (``via_client_events_total{event=...}``) when observability is on, so
    a scrape sees fleet-wide fallback/retry rates without waiting for the
    next ResilienceMessage round-trip.
    """

    n_retries: int = 0
    n_fallbacks: int = 0
    n_reconnects: int = 0
    n_timeouts: int = 0
    n_dropped_measurements: int = 0
    n_breaker_fastfails: int = 0
    n_sheds: int = 0

    #: Event name -> counter field, the vocabulary :meth:`record` accepts.
    EVENT_FIELDS = {
        "retry": "n_retries",
        "fallback": "n_fallbacks",
        "reconnect": "n_reconnects",
        "timeout": "n_timeouts",
        "dropped_measurement": "n_dropped_measurements",
        "breaker_fastfail": "n_breaker_fastfails",
        "shed": "n_sheds",
    }

    def record(self, event: str) -> None:
        """Count one resilience ``event`` (see :attr:`EVENT_FIELDS`)."""
        field = self.EVENT_FIELDS.get(event)
        if field is None:
            raise ValueError(
                f"unknown resilience event {event!r}; "
                f"expected one of {sorted(self.EVENT_FIELDS)}"
            )
        setattr(self, field, getattr(self, field) + 1)
        if obs_runtime.enabled:
            _CLIENT_EVENTS.labels(event=event).inc()

    def as_dict(self) -> dict[str, int]:
        return {
            "n_retries": self.n_retries,
            "n_fallbacks": self.n_fallbacks,
            "n_reconnects": self.n_reconnects,
            "n_timeouts": self.n_timeouts,
            "n_dropped_measurements": self.n_dropped_measurements,
            "n_breaker_fastfails": self.n_breaker_fastfails,
            "n_sheds": self.n_sheds,
        }

    def total_events(self) -> int:
        return sum(self.as_dict().values())
