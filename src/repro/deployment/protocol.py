"""JSON-lines wire protocol between instrumented clients and the controller.

One JSON object per line (newline-delimited), UTF-8.  Client->server
messages (hello, measurement, request, stats_request, metrics_request,
resilience, sync_request, bye) and server->client replies (hello_ack,
assign, stats, metrics, error, shed, redirect, sync); shard_map flows in
both directions inside a controller ring.  The paper notes the per-call
overhead is exactly
the first pair: "one measurement update and one control message exchange
per call" (§7); the operator-facing stats/metrics exchanges are off the
call path.

Two protocol versions share this wire format:

* **v1** (the PR 1 original): no correlation ids, replies arrive in
  request order, one failed request costs the connection.  Still spoken
  by default when a ``hello`` carries no ``protocol`` field.
* **v2**: negotiated by sending ``hello`` with ``protocol: 2`` (the
  server answers with ``hello_ack``).  Every message may carry a
  ``corr_id``; replies echo it, so any number of requests can be in
  flight on one connection and complete out of order.  Failures become
  per-request :class:`ErrorMessage` replies instead of connection
  teardown, and an overloaded controller answers :class:`ShedMessage`
  (an explicit "use your default path") rather than timing out silently.

``corr_id`` is encoded only when set, so a v2 peer talking to v1 code
produces byte-identical v1 wire lines for id-less messages.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict, dataclass
from typing import Any, Union

from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import OptionKind, RelayOption

__all__ = [
    "HelloMessage",
    "HelloAckMessage",
    "MeasurementMessage",
    "RequestMessage",
    "AssignMessage",
    "StatsRequestMessage",
    "StatsMessage",
    "MetricsRequestMessage",
    "MetricsMessage",
    "ResilienceMessage",
    "ErrorMessage",
    "ShedMessage",
    "ByeMessage",
    "RedirectMessage",
    "ShardMapMessage",
    "SyncRequestMessage",
    "SyncMessage",
    "Message",
    "encode_message",
    "decode_message",
    "encode_option",
    "decode_option",
    "read_wire_line",
    "ProtocolError",
    "OversizedLineError",
    "PROTOCOL_V1",
    "PROTOCOL_V2",
    "LATEST_PROTOCOL",
]

MAX_LINE_BYTES = 64 * 1024

PROTOCOL_V1 = 1
PROTOCOL_V2 = 2
LATEST_PROTOCOL = PROTOCOL_V2


class ProtocolError(ValueError):
    """Raised on malformed or unknown wire messages."""


class OversizedLineError(ProtocolError):
    """A wire line exceeded :data:`MAX_LINE_BYTES`.

    Raised by :func:`read_wire_line` *after* the stream has been
    resynchronised to the next newline, so the caller may answer with a
    per-message error and keep reading (v2) or close cleanly (v1) --
    never an unhandled exception in the reader loop.
    """


def encode_option(option: RelayOption) -> dict[str, Any]:
    """Wire form of a relaying option."""
    return {"kind": option.kind.value, "ingress": option.ingress, "egress": option.egress}


def decode_option(data: dict[str, Any]) -> RelayOption:
    """Parse the wire form back into a :class:`RelayOption`."""
    try:
        kind = OptionKind(data["kind"])
        return RelayOption(kind=kind, ingress=data.get("ingress"), egress=data.get("egress"))
    except (KeyError, ValueError, TypeError) as exc:
        raise ProtocolError(f"bad option payload: {data!r}") from exc


@dataclass(frozen=True, slots=True)
class HelloMessage:
    """Client introduction: who, where, and which protocol it speaks.

    ``protocol`` is the highest version the client understands; v1
    clients omit it (the field defaults to 1) and see exactly the PR 1
    behaviour.  A server speaking v2 answers any ``protocol >= 2`` hello
    with a :class:`HelloAckMessage` carrying the negotiated version."""

    client_id: int
    site: str
    protocol: int = PROTOCOL_V1

    type: str = "hello"
    corr_id: int | None = None


@dataclass(frozen=True, slots=True)
class HelloAckMessage:
    """Server's v2 greeting: the negotiated protocol version and the
    server's wire limits (so clients can cap their own frames)."""

    protocol: int
    max_line_bytes: int = MAX_LINE_BYTES
    #: When the server is one shard of a ring, its current shard map
    #: (see :class:`repro.deployment.ring.ShardMap`), so clients can
    #: route each pair to its owning shard from the first request.
    #: ``None`` -- and omitted from the wire -- on single controllers.
    shard_map: dict[str, Any] | None = None

    type: str = "hello_ack"
    corr_id: int | None = None


@dataclass(frozen=True, slots=True)
class MeasurementMessage:
    """One completed call's measured network metrics."""

    src_id: int
    dst_id: int
    t_hours: float
    option: dict[str, Any]
    rtt_ms: float
    loss_rate: float
    jitter_ms: float

    type: str = "measurement"
    corr_id: int | None = None

    def metrics(self) -> PathMetrics:
        return PathMetrics(
            rtt_ms=self.rtt_ms, loss_rate=self.loss_rate, jitter_ms=self.jitter_ms
        )


@dataclass(frozen=True, slots=True)
class RequestMessage:
    """Pre-call relay query: which option should this call use?"""

    src_id: int
    dst_id: int
    t_hours: float
    options: list[dict[str, Any]]

    type: str = "request"
    corr_id: int | None = None


@dataclass(frozen=True, slots=True)
class AssignMessage:
    """Controller's reply to a request."""

    option: dict[str, Any]

    type: str = "assign"
    corr_id: int | None = None


@dataclass(frozen=True, slots=True)
class StatsRequestMessage:
    """Operator query: ask the controller for its counters."""

    type: str = "stats_request"
    corr_id: int | None = None


@dataclass(frozen=True, slots=True)
class StatsMessage:
    """Controller counters (measurements, requests, clients, refreshes)
    plus the resilience observables: client-reported fallbacks/retries,
    reconnects seen server-side, per-message policy errors, faults the
    chaos harness injected, and the admission plane's shed/degraded
    totals.  Added fields default to zero so v1 peers interoperate."""

    n_measurements: int
    n_requests: int
    n_clients: int
    n_refreshes: int
    n_fallbacks: int = 0
    n_retries: int = 0
    n_reconnects: int = 0
    n_policy_errors: int = 0
    n_faults_injected: int = 0
    n_shed: int = 0
    n_degraded: int = 0

    type: str = "stats"
    corr_id: int | None = None


@dataclass(frozen=True, slots=True)
class MetricsRequestMessage:
    """Operator query: scrape the controller's metrics registry."""

    type: str = "metrics_request"
    corr_id: int | None = None


@dataclass(frozen=True, slots=True)
class MetricsMessage:
    """The controller's metrics in Prometheus text exposition format.

    ``text`` is the full multi-line exposition (newlines survive JSON
    encoding); ``format`` names the dialect so future formats can be
    negotiated without a new message type."""

    text: str
    format: str = "prometheus"

    type: str = "metrics"
    corr_id: int | None = None


@dataclass(frozen=True, slots=True)
class ResilienceMessage:
    """Client-side fault counters, pushed opportunistically.

    Counters are *cumulative per client*: the controller keeps the latest
    report per client id and sums across clients, so re-reports after a
    reconnect never double count."""

    client_id: int
    n_retries: int = 0
    n_fallbacks: int = 0
    n_reconnects: int = 0
    n_timeouts: int = 0
    n_sheds: int = 0

    type: str = "resilience"
    corr_id: int | None = None


@dataclass(frozen=True, slots=True)
class ErrorMessage:
    """Per-request failure report (v2): the request named by ``corr_id``
    failed, the connection is still good.

    ``code`` is machine-readable (``malformed``, ``oversized``,
    ``unknown_type``, ``overloaded``, ``shutdown``); ``detail`` is for
    humans and logs."""

    code: str
    detail: str = ""

    type: str = "error"
    corr_id: int | None = None


@dataclass(frozen=True, slots=True)
class ShedMessage:
    """Explicit load-shed reply (v2): the controller declines this
    request so the client should place the call on its default path now.

    An overloaded controller must degrade the *optimisation*, never the
    call: shedding is always an explicit reply, so clients fall back
    immediately instead of burning their timeout budget.
    ``retry_after_s`` hints when control-plane pressure may have eased."""

    reason: str = "overload"
    retry_after_s: float = 0.0

    type: str = "shed"
    corr_id: int | None = None


@dataclass(frozen=True, slots=True)
class RedirectMessage:
    """This shard does not own the request's pair (stale client map).

    Carries the owning shard's index and address so the client can retry
    there directly, plus the server's current ``shard_map`` so the
    client's routing table is fixed for every future pair too.  A
    redirect is *not* an error: the request was well-formed, it just
    knocked on the wrong door."""

    shard: int
    host: str
    port: int
    shard_map: dict[str, Any] | None = None

    type: str = "redirect"
    corr_id: int | None = None


@dataclass(frozen=True, slots=True)
class ShardMapMessage:
    """Push of the ring's current shard map.

    Sent ring→shard when membership or addresses change (e.g. after a
    failover restart) and server→client opportunistically.  Receivers
    replace their routing table wholesale when ``version`` is newer."""

    shard_map: dict[str, Any]

    type: str = "shard_map"
    corr_id: int | None = None


@dataclass(frozen=True, slots=True)
class SyncRequestMessage:
    """Gossip pull: ask a shard for its learned call history.

    ``scope="local"`` returns only measurements the shard observed
    itself (what peers must fold in -- gossiping the merged view would
    double count); ``scope="merged"`` returns the full post-gossip view
    (used by tooling and the failover equivalence tests)."""

    scope: str = "local"

    type: str = "sync_request"
    corr_id: int | None = None


@dataclass(frozen=True, slots=True)
class SyncMessage:
    """One chunk of a shard's serialised call history.

    Large histories are split across frames to respect the wire's
    ``MAX_LINE_BYTES``; ``seq`` orders the chunks and ``last`` marks the
    final one.  ``history`` is a :func:`repro.core.history.history_to_dict`
    payload restricted to this chunk's entries."""

    shard: int
    seq: int
    last: bool
    history: dict[str, Any]
    n_measurements: int = 0

    type: str = "sync"
    corr_id: int | None = None


@dataclass(frozen=True, slots=True)
class ByeMessage:
    """Client sign-off; the controller closes the connection."""

    client_id: int

    type: str = "bye"
    corr_id: int | None = None


Message = Union[
    HelloMessage,
    HelloAckMessage,
    MeasurementMessage,
    RequestMessage,
    AssignMessage,
    StatsRequestMessage,
    StatsMessage,
    MetricsRequestMessage,
    MetricsMessage,
    ResilienceMessage,
    ErrorMessage,
    ShedMessage,
    RedirectMessage,
    ShardMapMessage,
    SyncRequestMessage,
    SyncMessage,
    ByeMessage,
]

_MESSAGE_TYPES: dict[str, type] = {
    "hello": HelloMessage,
    "hello_ack": HelloAckMessage,
    "measurement": MeasurementMessage,
    "request": RequestMessage,
    "assign": AssignMessage,
    "stats_request": StatsRequestMessage,
    "stats": StatsMessage,
    "metrics_request": MetricsRequestMessage,
    "metrics": MetricsMessage,
    "resilience": ResilienceMessage,
    "error": ErrorMessage,
    "shed": ShedMessage,
    "redirect": RedirectMessage,
    "shard_map": ShardMapMessage,
    "sync_request": SyncRequestMessage,
    "sync": SyncMessage,
    "bye": ByeMessage,
}


def encode_message(message: Message) -> bytes:
    """Serialise a message to one newline-terminated JSON line.

    An unset ``corr_id`` is omitted from the wire entirely, so id-less
    messages stay byte-identical to protocol v1; likewise an unset
    ``shard_map`` (single controllers' hello_acks predate sharding)."""
    payload = asdict(message)
    if payload.get("corr_id") is None:
        payload.pop("corr_id", None)
    if "shard_map" in payload and payload["shard_map"] is None:
        payload.pop("shard_map")
    line = json.dumps(payload, separators=(",", ":")) + "\n"
    encoded = line.encode("utf-8")
    if len(encoded) > MAX_LINE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
    return encoded


def decode_message(line: bytes | str) -> Message:
    """Parse one wire line into its message dataclass."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise OversizedLineError(f"line exceeds {MAX_LINE_BYTES} bytes")
        line = line.decode("utf-8", errors="strict")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"not valid JSON: {line[:80]!r}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(f"expected a JSON object: {line[:80]!r}")
    msg_type = payload.pop("type", None)
    cls = _MESSAGE_TYPES.get(msg_type)
    if cls is None:
        raise ProtocolError(f"unknown message type: {msg_type!r}")
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ProtocolError(f"bad fields for {msg_type!r}: {exc}") from exc


async def read_wire_line(
    reader: asyncio.StreamReader, *, max_bytes: int = MAX_LINE_BYTES
) -> bytes:
    """Read one newline-terminated line, hardened against hostile framing.

    Returns ``b""`` at EOF, the partial tail when the peer disconnects
    mid-line, and otherwise one complete line of at most ``max_bytes``.
    A longer line raises :class:`OversizedLineError` -- but only after
    discarding input through the next newline, so the stream stays in
    sync and the connection remains usable.  The reader's own buffer
    limit must exceed ``max_bytes`` for the size check to be exact
    (servers pass ``limit=2 * MAX_LINE_BYTES`` to ``start_server``).
    """
    try:
        line = await reader.readline()
    except ValueError:
        # The stream-limit overflow path: readline() dropped its buffer.
        # Discard until the terminating newline (or EOF) to resync.
        while True:
            try:
                tail = await reader.readline()
            except ValueError:
                continue
            if not tail or tail.endswith(b"\n"):
                break
        raise OversizedLineError(f"line exceeds {max_bytes} bytes") from None
    if len(line) > max_bytes:
        # Framed (a newline arrived) but over the protocol cap.  The
        # stream is already in sync; reject just this message.
        raise OversizedLineError(f"line exceeds {max_bytes} bytes")
    return line
